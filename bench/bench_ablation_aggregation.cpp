// Ablation: message aggregation via the parcel queue + connection cache
// (paper §3.2.2 and the "message aggregation yields mixed results" lesson of
// §7.1). Three regimes for the same 8B flood:
//   * send-immediate (_i): no aggregation at all,
//   * default cache (8192 connections): aggregation only under back-pressure,
//   * a single connection: maximal aggregation (every flush batches all
//     queued parcels into one HPX message).
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: parcel aggregation (send-immediate vs connection-cache "
      "limits)",
      "aggregation reduces per-message pressure on the network stack (helps "
      "mpi and throughput) but adds queue/cache locking and batching delay "
      "(hurts latency) — the paper's mixed-results trade-off",
      env);
  std::printf(
      "variant,config,attempted_K/s,achieved_injection_K/s,"
      "message_rate_K/s,stddev_K/s\n");

  struct Variant {
    const char* label;
    const char* config;
    std::size_t max_connections;
  };
  const Variant variants[] = {
      {"immediate", "lci_psr_cq_pin_i", 8192},
      {"cache8192", "lci_psr_cq_pin", 8192},
      {"cache1", "lci_psr_cq_pin", 1},
      {"immediate", "mpi_i", 8192},
      {"cache8192", "mpi", 8192},
      {"cache1", "mpi", 1},
  };
  for (const auto& variant : variants) {
    bench::RateParams params;
    params.parcelport = variant.config;
    params.msg_size = 8;
    params.batch = 100;
    params.total_msgs = static_cast<std::size_t>(5000 * env.scale);
    params.workers = env.workers;
    params.max_connections = variant.max_connections;
    std::printf("%s,", variant.label);
    bench::report_rate_point(params, env.runs);
  }
  return 0;
}
