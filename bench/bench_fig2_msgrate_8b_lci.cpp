// Figure 2: achieved message rate of 8 B messages vs attempted injection
// rate — the eight LCI variant combinations, all with send-immediate.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 2: 8B message rate vs injection rate (8 LCI variants, _i)",
      "pin > mt (dedicated progress thread wins, up to 2.6x); psr > sr "
      "(one-sided put header wins, up to 3.5x); cq vs sy minor at 8B",
      env);
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");

  const double rates_kps[] = {4, 16, 64, 0};
  for (const char* config :
       {"lci_psr_cq_pin_i", "lci_psr_cq_mt_i", "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i", "lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i", "lci_sr_sy_mt_i"}) {
    for (double rate : rates_kps) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.batch = 100;
      params.total_msgs = static_cast<std::size_t>(6000 * env.scale);
      params.attempted_rate = rate * 1e3;
      params.workers = env.workers;
      bench::report_rate_point(params, env.runs);
    }
  }
  return 0;
}
