// Tables 2 and 3: the simulated platform profiles standing in for SDSC
// Expanse (HDR InfiniBand, ConnectX-6) and Rostam (FDR InfiniBand,
// ConnectX-3), plus a raw-fabric sanity measurement of each profile's
// latency/bandwidth gating.
#include <cstdio>
#include <vector>

#include "common/clock.hpp"
#include "fabric/nic.hpp"
#include "harness.hpp"

namespace {

// Measures raw fabric one-way latency and streaming bandwidth for a profile.
void measure_profile(const char* name, fabric::Config config) {
  config.num_ranks = 2;
  fabric::Fabric fab(config);

  // One-way latency: post, poll until delivered.
  const int kLatencyRounds = 200;
  std::uint64_t payload = 0;
  common::Timer timer;
  for (int i = 0; i < kLatencyRounds; ++i) {
    while (fab.nic(0).post_send(1, &payload, sizeof(payload), 0) !=
           common::Status::kOk) {
    }
    bool got = false;
    while (!got) {
      fab.nic(1).poll_rx(4, [&](fabric::RxEvent&&) { got = true; });
    }
  }
  const double latency_us = timer.elapsed_us() / kLatencyRounds;

  // Streaming bandwidth: 64 KiB chunks via RDMA write.
  const std::size_t kChunk = 64 * 1024, kChunks = 200;
  std::vector<std::byte> src(kChunk), dst(kChunk);
  const auto mr = fab.nic(1).register_memory(dst.data(), dst.size());
  std::size_t delivered = 0;
  timer.reset();
  for (std::size_t i = 0; i < kChunks; ++i) {
    while (fab.nic(0).post_write_imm(1, mr, 0, src.data(), src.size(), i) !=
           common::Status::kOk) {
      fab.nic(1).poll_rx(16, [&](fabric::RxEvent&&) { ++delivered; });
    }
  }
  while (delivered < kChunks) {
    fab.nic(1).poll_rx(16, [&](fabric::RxEvent&&) { ++delivered; });
  }
  const double seconds = timer.elapsed_s();
  const double gbps =
      static_cast<double>(kChunk * kChunks) * 8.0 / seconds / 1e9;

  std::printf("%s\n", fabric::Profile::describe(config, name).c_str());
  std::printf("  measured one-way latency : %8.2f us (configured %.2f)\n",
              latency_us, config.latency_us);
  std::printf("  measured stream bandwidth: %8.2f Gbps (configured %.1f)\n",
              gbps, config.bandwidth_gbps);
}

}  // namespace

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Tables 2 & 3: simulated platform profiles (SDSC Expanse / Rostam)",
      "Expanse: HDR 100Gbps-class, ~1.1us; Rostam: FDR 56Gbps-class, "
      "~1.6us; measured values should approach the configured model",
      env);
  std::printf(
      "# Table 2 (SDSC Expanse): AMD EPYC 7742 128c, ConnectX-6, HDR "
      "(2x50Gbps), GCC 10.2, OpenMPI 4.1.5/UCX 1.14 -> simulated below\n");
  measure_profile("expanse", fabric::Profile::expanse(2));
  std::printf(
      "# Table 3 (Rostam): Xeon Gold 6148 40c, ConnectX-3, FDR (4x14Gbps), "
      "GCC 10.3, OpenMPI 4.1.5/UCX 1.14 -> simulated below\n");
  measure_profile("rostam", fabric::Profile::rostam(2));
  return 0;
}
