// Figure 1: achieved message rate of 8 B messages vs attempted injection
// rate — MPI vs LCI, with and without the send-immediate optimisation.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 1: 8B message rate vs injection rate (mpi, mpi_i, "
      "lci_psr_cq_pin, lci_psr_cq_pin_i)",
      "rates first track the injection rate then plateau; mpi (without "
      "send-immediate) degrades past its peak; lci plateaus highest",
      env);
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");

  const double rates_kps[] = {2, 4, 8, 16, 32, 64, 0 /*unlimited*/};
  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    for (double rate : rates_kps) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.batch = 100;  // paper's batch size for 8B
      params.total_msgs =
          static_cast<std::size_t>(6000 * env.scale);
      params.attempted_rate = rate * 1e3;
      params.workers = env.workers;
      bench::report_rate_point(params, env.runs);
    }
  }
  return 0;
}
