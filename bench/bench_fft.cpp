// Thin wrapper over the "fft" suite of the experiment registry
// (bench/suites.cpp): the distributed four-step FFT workload (row FFTs,
// all-to-all transpose, row FFTs) across parcelports, locality counts and
// collective-algorithm families, bit-exactly validated against a serial
// reference on every run. The point matrix, repetition policy and metric
// definitions all live in the registry; `bench_suite` runs the same suite
// with baseline gating and docs rendering on top.
#include "suites.hpp"

int main(int argc, char** argv) {
  return bench::suites::run_suite_main("fft", argc, argv);
}
