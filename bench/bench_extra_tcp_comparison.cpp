// Extra (beyond the paper's figures): the TCP parcelport — HPX's original
// backend, which the paper mentions but does not plot — against the MPI and
// LCI parcelports. Quantifies why stream transports were abandoned for AMT
// workloads: one ordered pipe per peer means head-of-line blocking and no
// concurrent-message parallelism.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Extra: TCP parcelport vs MPI vs LCI",
      "tcp trails both on message rate (every message funnels through one "
      "ordered stream) and degrades worst as the window grows "
      "(head-of-line blocking)",
      env);

  std::printf("# 8B message rate\n");
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    bench::RateParams params;
    params.parcelport = config;
    params.msg_size = 8;
    params.batch = 100;
    params.total_msgs = static_cast<std::size_t>(5000 * env.scale);
    params.workers = env.workers;
    bench::report_rate_point(params, env.runs);
  }

  std::printf("# 16KiB latency vs window\n");
  std::printf("config,msg_size,window,latency_us,stddev_us\n");
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (unsigned window : {1u, 8u, 32u}) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = 16 * 1024;
      params.window = window;
      params.steps = static_cast<unsigned>(25 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }

  std::printf("# Octo-Tiger proxy, Expanse profile, 4 localities\n");
  std::printf("config,localities,steps_per_s,stddev\n");
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    bench::OctoParams params;
    params.parcelport = config;
    params.platform = "expanse";
    params.localities = 4;
    params.level = 3;
    params.steps = static_cast<int>(2 * env.scale);
    params.workers = 2;
    bench::report_octo_point(params, env.runs);
  }
  return 0;
}
