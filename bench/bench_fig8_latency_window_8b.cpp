// Figure 8: 8 B message latency vs window size (number of concurrent
// ping-pong chains), all eleven configurations.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 8: 8B one-way latency vs window size (11 configs)",
      "latency grows with window everywhere; lci_psr_cq_pin_i stays lowest; "
      "mpi_i beats mpi at small windows but crosses over (paper: window 8) "
      "as concurrency grows",
      env);
  std::printf("config,msg_size,window,latency_us,stddev_us\n");

  const unsigned windows[] = {1, 2, 4, 8, 16, 32, 64};
  for (const char* config :
       {"lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i", "mpi",
        "mpi_i"}) {
    for (unsigned window : windows) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.window = window;
      params.steps = static_cast<unsigned>(40 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
