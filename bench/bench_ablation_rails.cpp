// Ablation: fabric rails per directed link — the simulator-level analogue of
// replicating low-level network resources (multiple QPs / network contexts),
// which the paper's §7.2 identifies as the main future-work lever for
// message rate. More rails = more independent bandwidth-serialised channels
// and more receive-side channel try-locks to spread pollers across.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: fabric rails per link (multi-QP striping, paper §7.2)",
      "more rails relieve per-channel serialisation for 16KiB floods; with "
      "one rail every message of a flow funnels through one channel lock",
      env);
  std::printf(
      "rails,config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");

  for (const unsigned rails : {1u, 2u, 4u, 8u}) {
    for (const char* config : {"lci_psr_cq_pin_i", "mpi_i"}) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 16 * 1024;
      params.batch = 10;
      params.total_msgs = static_cast<std::size_t>(800 * env.scale);
      params.workers = env.workers;
      params.fabric_rails = rails;
      std::printf("%u,", rails);
      bench::report_rate_point(params, env.runs);
    }
  }
  return 0;
}
