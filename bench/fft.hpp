// Distributed 1-D FFT workload (four-step / transpose algorithm) — the
// collectives stress test named by Strack & Pflüger's HPX FFT benchmark:
// row FFTs, a twiddle scaling, an all-to-all transpose through
// CollectiveGroup, and a second round of row FFTs.
//
// An N = dim x dim point transform is laid out as a dim x dim matrix
// distributed by rows across the localities (dim must be a power of two
// and divisible by the locality count). Every run is validated bit-exactly
// against fft_four_step_reference(), which executes the identical
// arithmetic in the identical order serially — any divergence aborts the
// benchmark. fft_radix2 / fft_four_step_reference are exposed so tests can
// additionally check the four-step pipeline against a direct radix-2
// transform of the full input.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bench {

/// In-place radix-2 Cooley-Tukey FFT, natural-order output. n must be a
/// power of two.
void fft_radix2(std::complex<double>* data, std::size_t n);

/// Deterministic pseudo-random input signal of n points (integer-mixed, so
/// the values are reproducible across platforms).
std::vector<std::complex<double>> fft_input(std::size_t n);

/// Serial four-step transform of x (size dim*dim): returns out where
/// out[k1 * dim + k2] = X[dim * k2 + k1] of the DFT X. Performs exactly
/// the row-FFT / twiddle / transpose / row-FFT arithmetic the distributed
/// path performs, in the same order.
std::vector<std::complex<double>> fft_four_step_reference(
    const std::vector<std::complex<double>>& x, std::size_t dim);

struct FftParams {
  std::string parcelport;
  std::string platform = "expanse";
  std::uint32_t localities = 2;
  unsigned workers = 2;
  std::size_t dim = 64;  // transform size = dim * dim points
  int iters = 4;         // transforms per run (timed together)
  // Shaped wire (any field > 0 switches the fabric to wall-clock gating).
  double bandwidth_gbps = 0.0;
  double latency_us = 0.0;
  double pkt_rate_mpps = 0.0;
  unsigned fabric_rails = 0;
};

struct FftResult {
  double ms_per_fft = 0.0;
};

/// Runs `iters` distributed transforms and validates the final result
/// bit-exactly against fft_four_step_reference (mismatch aborts).
FftResult run_fft(const FftParams& params);

/// CSV row: config,localities,dim,fft_ms,stddev_ms. Returns mean ms.
double report_fft_point(const FftParams& params, int runs);

}  // namespace bench
