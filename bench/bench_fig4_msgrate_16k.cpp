// Figure 4: achieved message rate of 16 KiB messages vs attempted injection
// rate — MPI vs LCI, with/without send-immediate. 16 KiB exceeds the 8 KiB
// zero-copy threshold, so each parcel travels as header + one follow-up.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 4: 16KiB message rate vs injection rate (mpi, mpi_i, "
      "lci_psr_cq_pin, lci_psr_cq_pin_i)",
      "lci sustains its plateau (paper: up to 30x mpi); both mpi variants' "
      "achieved rate decays as injection pressure grows; aggregation (no _i) "
      "does not help lci at this size",
      env);
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");

  const double rates_kps[] = {1, 2, 4, 8, 16, 0};
  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    for (double rate : rates_kps) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 16 * 1024;
      params.batch = 10;  // paper's batch size for 16KiB
      params.total_msgs = static_cast<std::size_t>(1200 * env.scale);
      params.attempted_rate = rate * 1e3;
      params.workers = env.workers;
      bench::report_rate_point(params, env.runs);
    }
  }
  return 0;
}
