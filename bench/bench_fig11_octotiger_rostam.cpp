// Figure 11: Octo-Tiger proxy strong scaling on the Rostam-like platform
// profile (FDR InfiniBand, Table 3) — mpi, mpi_i, lci, with speedups.
#include <cstdio>
#include <map>
#include <string>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 11: Octo-Tiger proxy strong scaling, Rostam profile (level 5 "
      "-> proxy level 2, 5 steps -> scaled)",
      "smaller gaps than on Expanse (fewer cores, fewer nodes): lci ~1.04x "
      "over mpi and ~1.08x over mpi_i at the largest node count",
      env);
  std::printf("config,localities,steps_per_s,stddev\n");

  const std::uint32_t locality_counts[] = {2, 4, 8};
  std::map<std::string, std::map<std::uint32_t, double>> results;
  for (const char* config : {"mpi", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (std::uint32_t localities : locality_counts) {
      bench::OctoParams params;
      params.parcelport = config;
      params.platform = "rostam";
      params.localities = localities;
      params.level = 2;
      params.steps = static_cast<int>(3 * env.scale);
      params.workers = 2;
      results[config][localities] =
          bench::report_octo_point(params, env.runs);
    }
  }

  std::printf("# speedup columns (right axis of the paper's figure)\n");
  std::printf("localities,lci_over_mpi,lci_over_mpi_i\n");
  for (std::uint32_t localities : locality_counts) {
    std::printf("%u,%.3f,%.3f\n", localities,
                results["lci_psr_cq_pin_i"][localities] /
                    results["mpi"][localities],
                results["lci_psr_cq_pin_i"][localities] /
                    results["mpi_i"][localities]);
  }
  return 0;
}
