// Binds the declarative experiment registry (src/expdriver/) to the bench
// harness: registers every paper figure and ablation as a suite, provides
// the PointRunner that executes suite points through the harness (plus
// suite telemetry probes), and the shared main() used by the thin
// bench_fig*/bench_ablation_* wrapper binaries.
#pragma once

#include "expdriver/experiment.hpp"

namespace bench::suites {

/// Registers every suite (idempotent). Called by run_suite_main and the
/// bench_suite CLI; tests call it directly.
void register_all();

/// PointRunner executing a point through the bench harness; appends the
/// telemetry-probe metrics of `spec` after each run.
expdriver::PointRunner make_harness_runner(const expdriver::SuiteSpec& spec);

/// Shared main of the wrapper binaries: prints the standard header, runs the
/// named suite with the environment policy, and honours `--json <file>`
/// (writes the schema-versioned suite result there). Returns the process
/// exit code.
int run_suite_main(const char* suite_name, int argc, char** argv);

}  // namespace bench::suites
