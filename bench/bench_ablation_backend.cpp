// Transport-backend ablation ("ablation_backend" suite) plus the
// multi-process scaling probe the simulator cannot express.
//
// Default mode runs the registered suite (sim vs shm single-process points,
// same parcelport and traffic) and then — when POSIX shm and fork() are
// available — a 4-rank scaling probe: the same 8 B pair flood once inside
// ONE process (4 simulator localities sharing one scheduler pool) and once
// across FOUR processes over shm rings, equal total worker count. On a
// multi-core machine the 4-process arm is expected to scale past the
// single-process ceiling (target: >= 2x on >= 4 cores); the ratio is
// recorded, never gated — it is a property of the machine.
//
// SPMD mode (`--spmd-rate [msgs]`) runs ONE rank's role of that flood in
// the current process, for use under the launcher:
//   amtnet_launch -n 4 -- bench_ablation_backend --spmd-rate 20000
// Even ranks flood rank+1; odd ranks sink and ack. Every rank prints its
// own rate row and exits 0 on success — the CI shm-smoke sanity bench.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define AMTNET_BENCH_HAVE_FORK 1
#endif

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "expdriver/driver.hpp"
#include "fabric/backend_shm.hpp"
#include "stack/stack.hpp"
#include "suites.hpp"

namespace {

std::atomic<std::uint64_t> g_received{0};
std::atomic<bool> g_ack{false};

void flood_sink(std::vector<std::uint8_t> payload) {
  (void)payload;
  g_received.fetch_add(1, std::memory_order_relaxed);
}

void flood_ack() { g_ack.store(true, std::memory_order_release); }

/// Multi-process action ids are assigned on first use per process; every
/// rank must mint them in the same order before any traffic flows.
void register_flood_actions() {
  (void)amt::action_id<&flood_sink>();
  (void)amt::action_id<&flood_ack>();
}

bool spin_until(const std::atomic<bool>& flag, double timeout_s) {
  const common::Nanos deadline =
      common::now_ns() + static_cast<common::Nanos>(timeout_s * 1e9);
  while (!flag.load(std::memory_order_acquire)) {
    if (common::now_ns() > deadline) return false;
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  return true;
}

/// This process's role in the pair flood: even ranks send `total` 8 B
/// parcels to rank+1 and wait for the ack; odd ranks sink `total` parcels,
/// ack the sender, and wait for the ack-ack. Returns the sender-side rate
/// in messages/s (0.0 for receivers), negative on timeout.
double run_flood_role(amt::Runtime& runtime, amt::Rank rank,
                      std::size_t total) {
  amt::Locality& self = runtime.local_locality();
  g_received.store(0);
  g_ack.store(false);

  if (rank % 2 == 0) {
    const amt::Rank dst = rank + 1;
    const std::vector<std::uint8_t> payload(8, 0x42);
    const common::Nanos t0 = common::now_ns();
    self.spawn([&, dst] {
      amt::Locality& here = amt::here();
      for (std::size_t i = 0; i < total; ++i) {
        here.apply<&flood_sink>(dst, payload);
      }
    });
    if (!spin_until(g_ack, 120.0)) return -1.0;
    const double elapsed_s = common::ns_to_s(common::now_ns() - t0);
    self.spawn([dst] { amt::here().apply<&flood_ack>(dst); });
    return elapsed_s > 0.0 ? static_cast<double>(total) / elapsed_s : 0.0;
  }

  // Receiver: drain, ack, wait for the ack-ack so the sender's last
  // messages are out of the rings before either side tears down.
  const amt::Rank src = rank - 1;
  const common::Nanos deadline =
      common::now_ns() + static_cast<common::Nanos>(120.0 * 1e9);
  while (g_received.load(std::memory_order_relaxed) < total) {
    if (common::now_ns() > deadline) return -1.0;
  }
  self.spawn([src] { amt::here().apply<&flood_ack>(src); });
  (void)spin_until(g_ack, 10.0);  // best effort: teardown is safe anyway
  return 0.0;
}

/// Single-process arm: 4 simulator localities in one runtime, ranks 0->1
/// and 2->3 flooding concurrently. Returns the aggregate rate in msgs/s.
double run_single_process_arm(std::size_t per_pair, unsigned workers) {
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.num_localities = 4;
  options.threads_per_locality = workers;
  options.platform = "loopback";
  auto runtime = amtnet::make_runtime(options);
  g_received.store(0);
  const std::vector<std::uint8_t> payload(8, 0x42);
  const common::Nanos t0 = common::now_ns();
  for (const amt::Rank sender : {amt::Rank{0}, amt::Rank{2}}) {
    runtime->locality(sender).spawn([&, sender] {
      amt::Locality& here = amt::here();
      for (std::size_t i = 0; i < per_pair; ++i) {
        here.apply<&flood_sink>(sender + 1, payload);
      }
    });
  }
  const std::size_t expected = 2 * per_pair;
  while (g_received.load(std::memory_order_relaxed) < expected) {
  }
  const double elapsed_s = common::ns_to_s(common::now_ns() - t0);
  runtime->stop();
  return elapsed_s > 0.0 ? static_cast<double>(expected) / elapsed_s : 0.0;
}

int run_spmd_rate(std::size_t per_pair) {
  const char* rank_env = std::getenv("AMTNET_SHM_RANK");
  const char* ranks_env = std::getenv("AMTNET_SHM_RANKS");
  if (rank_env == nullptr || ranks_env == nullptr) {
    std::fprintf(stderr,
                 "--spmd-rate requires the amtnet_launch environment "
                 "(AMTNET_SHM_RANK / AMTNET_SHM_RANKS)\n");
    return 2;
  }
  const int rank = std::atoi(rank_env);
  const int ranks = std::atoi(ranks_env);
  if (ranks < 2 || ranks % 2 != 0) {
    std::fprintf(stderr, "--spmd-rate needs an even rank count, got %d\n",
                 ranks);
    return 2;
  }
  register_flood_actions();
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.backend = "shm";
  options.num_localities = static_cast<amt::Rank>(ranks);
  options.threads_per_locality = 2;
  options.platform = "loopback";
  auto runtime = amtnet::make_runtime(options);
  const double rate =
      run_flood_role(*runtime, static_cast<amt::Rank>(rank), per_pair);
  if (rate < 0.0) {
    std::fprintf(stderr, "rank %d: flood timed out\n", rank);
    return 1;
  }
  if (rank % 2 == 0) {
    std::printf("spmd_rank,%d,msgs,%zu,rate_kps,%.1f\n", rank, per_pair,
                rate / 1e3);
    std::fflush(stdout);
  }
  runtime->stop();
  return 0;
}

#if defined(AMTNET_BENCH_HAVE_FORK)
/// Four-process arm: fork 4 ranks over a private shm session, each running
/// run_flood_role; sender children report their rate through a pipe.
/// Returns the aggregate rate in msgs/s, or a negative value on failure.
double run_multi_process_arm(std::size_t per_pair, unsigned workers) {
  constexpr int kRanks = 4;
  const std::string session =
      "amtnet-bench-" + std::to_string(static_cast<long long>(::getpid()));
  ::setenv("AMTNET_SHM_SESSION", session.c_str(), 1);

  int pipes[kRanks][2];
  pid_t pids[kRanks];
  for (int r = 0; r < kRanks; ++r) {
    if (::pipe(pipes[r]) != 0) return -1.0;
    const pid_t pid = ::fork();
    if (pid < 0) return -1.0;
    if (pid == 0) {
      ::close(pipes[r][0]);
      ::setenv("AMTNET_SHM_RANK", std::to_string(r).c_str(), 1);
      int code = 1;
      double rate = 0.0;
      try {
        amtnet::StackOptions options;
        options.parcelport = "lci_psr_cq_pin_i";
        options.backend = "shm";
        options.num_localities = kRanks;
        options.threads_per_locality = workers;
        options.platform = "loopback";
        auto runtime = amtnet::make_runtime(options);
        rate = run_flood_role(*runtime, static_cast<amt::Rank>(r), per_pair);
        runtime->stop();
        code = rate < 0.0 ? 1 : 0;
      } catch (...) {
        code = 1;
      }
      (void)!::write(pipes[r][1], &rate, sizeof(rate));
      ::close(pipes[r][1]);
      ::_exit(code);
    }
    pids[r] = pid;
    ::close(pipes[r][1]);
  }

  double aggregate = 0.0;
  bool ok = true;
  for (int r = 0; r < kRanks; ++r) {
    double rate = 0.0;
    if (::read(pipes[r][0], &rate, sizeof(rate)) == sizeof(rate) &&
        rate > 0.0) {
      aggregate += rate;
    }
    ::close(pipes[r][0]);
    int status = 0;
    ::waitpid(pids[r], &status, 0);
    ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  ::unsetenv("AMTNET_SHM_SESSION");
  return ok ? aggregate : -1.0;
}
#endif  // AMTNET_BENCH_HAVE_FORK

void run_scaling_probe() {
  if (!fabric::shm_available()) {
    std::printf("\n# multi-process scaling probe skipped: no POSIX shm\n");
    return;
  }
#if !defined(AMTNET_BENCH_HAVE_FORK)
  std::printf("\n# multi-process scaling probe skipped: no fork()\n");
#else
  const expdriver::RunEnv env = expdriver::run_env_from_environment();
  const std::size_t per_pair =
      expdriver::scaled_count(20000, env.scale);
  // Equal total worker count: 4 localities x W threads in one process vs
  // 4 processes x W threads. W comes from the bench worker knob, split.
  const unsigned workers = env.workers >= 4 ? env.workers / 4 : 1;
  register_flood_actions();

  const double single = run_single_process_arm(per_pair, workers);
  const double multi = run_multi_process_arm(per_pair, workers);
  std::printf("\n# 8 B pair-flood scaling, equal total workers (4 x %u): one "
              "process (sim, 4 localities) vs four processes (shm). The "
              ">= 2x target applies on >= 4 cores; this machine has %u.\n",
              workers, common::hardware_core_count());
  std::printf("mode,processes,workers_total,rate_kps\n");
  std::printf("sim_1proc,1,%u,%.1f\n", 4 * workers, single / 1e3);
  if (multi < 0.0) {
    std::printf("shm_4proc,4,%u,failed\n", 4 * workers);
    return;
  }
  std::printf("shm_4proc,4,%u,%.1f\n", 4 * workers, multi / 1e3);
  if (single > 0.0) {
    std::printf("speedup,,,%.2f\n", multi / single);
  }
  std::fflush(stdout);
#endif
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spmd-rate") == 0) {
      const std::size_t msgs = i + 1 < argc
                                   ? static_cast<std::size_t>(
                                         std::strtoull(argv[i + 1], nullptr,
                                                       10))
                                   : 20000;
      return run_spmd_rate(msgs == 0 ? 20000 : msgs);
    }
  }
  const int code = bench::suites::run_suite_main("ablation_backend", argc,
                                                 argv);
  if (code != 0) return code;
  run_scaling_probe();
  return 0;
}
