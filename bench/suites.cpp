#include "suites.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "expdriver/driver.hpp"
#include "expdriver/registry.hpp"
#include "expdriver/results.hpp"
#include "fft.hpp"
#include "harness.hpp"
#include "loadgen/loadgen.hpp"

namespace bench::suites {

namespace {

using expdriver::Labels;
using expdriver::PointKind;
using expdriver::PointSpec;
using expdriver::RunEnv;
using expdriver::Sample;
using expdriver::SuiteRegistry;
using expdriver::SuiteResult;
using expdriver::SuiteSpec;

// The paper's configuration sets (Table 1).
const std::vector<const char*> kElevenConfigs = {
    "lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
    "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
    "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i", "mpi", "mpi_i"};

// Unified workload bases shared by every suite measuring the same shape
// (previously each bench main hard-coded its own slightly different counts:
// fig3 ran 5000-message floods against fig1's 6000, fig6 ran 1000 against
// fig4/5's 1200, and the octo benches disagreed on step counts — so
// "identical" configurations were never actually identical runs).
constexpr std::size_t k8bFloodMsgs = 6000;    // 8 B flood, batch 100
constexpr std::size_t k16kFloodMsgs = 1200;   // 16 KiB flood, batch 10
constexpr int kLatencySteps8b = 40;           // 8 B windowed ping-pong
constexpr int kLatencySteps16k = 25;          // 16 KiB windowed ping-pong
constexpr int kLatencyStepsSized = 60;        // size-sweep ping-pong
constexpr int kOctoSteps = 3;                 // proxy-app time steps

std::string kps_label(double kps) {
  if (kps == 0.0) return "unlimited";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", kps);
  return buf;
}

PointSpec rate_point(const std::string& config, std::size_t msg_size,
                     std::size_t batch, std::size_t base_total,
                     double attempted_kps) {
  PointSpec p;
  p.kind = PointKind::kRate;
  p.parcelport = config;
  p.msg_size = msg_size;
  p.batch = batch;
  p.base_total_msgs = base_total;
  p.attempted_rate = attempted_kps * 1e3;
  p.labels = {{"config", config},
              {"msg_size", std::to_string(msg_size)},
              {"attempted_kps", kps_label(attempted_kps)}};
  return p;
}

PointSpec latency_point(const std::string& config, std::size_t msg_size,
                        unsigned window, int base_steps) {
  PointSpec p;
  p.kind = PointKind::kLatency;
  p.parcelport = config;
  p.msg_size = msg_size;
  p.window = window;
  p.base_steps = base_steps;
  p.labels = {{"config", config},
              {"msg_size", std::to_string(msg_size)},
              {"window", std::to_string(window)}};
  return p;
}

PointSpec octo_point(const std::string& config, const std::string& platform,
                     std::uint32_t localities, int level) {
  PointSpec p;
  p.kind = PointKind::kOcto;
  p.parcelport = config;
  p.platform = platform;
  p.localities = localities;
  p.level = level;
  p.base_steps = kOctoSteps;
  p.workers = 2;  // proxy-app convention of the original figure benches
  p.labels = {{"config", config},
              {"platform", platform},
              {"localities", std::to_string(localities)}};
  return p;
}

PointSpec openloop_point(const std::string& config, double offered_rps,
                         const std::string& process) {
  PointSpec p;
  p.kind = PointKind::kOpenLoop;
  p.parcelport = config;
  p.attempted_rate = offered_rps;
  // ~0.5 s of offered load per sample at scale 1.0, so every point sees the
  // same observation window regardless of its rate.
  p.base_total_msgs = static_cast<std::size_t>(offered_rps / 2.0);
  p.ol_process = process;
  p.workers = 2;
  p.labels = {{"config", config},
              {"process", process},
              {"offered_rps", kps_label(offered_rps)}};
  return p;
}

PointSpec coll_point(const std::string& config, const std::string& op,
                     const std::string& algo, std::uint32_t localities,
                     std::size_t payload_bytes, int base_iters) {
  PointSpec p;
  p.kind = PointKind::kColl;
  p.parcelport = config;
  p.coll_op = op;
  p.localities = localities;
  p.msg_size = payload_bytes;
  p.base_steps = base_iters;
  p.workers = 2;
  p.labels = {{"config", config},
              {"op", op},
              {"algo", algo},
              {"localities", std::to_string(localities)},
              {"payload", std::to_string(payload_bytes)}};
  return p;
}

PointSpec fft_point(const std::string& config, std::uint32_t localities,
                    std::size_t dim, int base_iters) {
  PointSpec p;
  p.kind = PointKind::kFft;
  p.parcelport = config;
  p.localities = localities;
  p.fft_dim = dim;
  p.base_steps = base_iters;
  p.workers = 2;
  p.labels = {{"config", config},
              {"localities", std::to_string(localities)},
              {"dim", std::to_string(dim)}};
  return p;
}

// ---- derived console summaries (the views the paper plots) ---------------

/// Figure 3/6 view: per config, the peak rate_kps median across the
/// injection-rate sweep.
void print_peak_by_config(const SuiteResult& result) {
  std::printf("\n# peak message rate per config (paper's bar view)\n");
  std::printf("config,peak_message_rate_K/s\n");
  std::vector<std::pair<std::string, double>> peaks;  // insertion order
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto* rate = point.metric("rate_kps");
    if (config == point.labels.end() || rate == nullptr) continue;
    auto it = std::find_if(peaks.begin(), peaks.end(), [&](const auto& e) {
      return e.first == config->second;
    });
    if (it == peaks.end()) {
      peaks.push_back({config->second, rate->median});
    } else if (rate->median > it->second) {
      it->second = rate->median;
    }
  }
  for (const auto& [config, peak] : peaks) {
    std::printf("%s,%.1f\n", config.c_str(), peak);
  }
  std::fflush(stdout);
}

/// Figure 10/11 view: lci-over-mpi speedup columns per locality count.
void print_octo_speedups(const SuiteResult& result) {
  std::map<std::string, std::map<std::string, double>> by_config;
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto localities = point.labels.find("localities");
    const auto* steps = point.metric("steps_per_s");
    if (config == point.labels.end() || localities == point.labels.end() ||
        steps == nullptr) {
      continue;
    }
    by_config[config->second][localities->second] = steps->median;
  }
  const auto& lci = by_config["lci_psr_cq_pin_i"];
  std::printf("\n# speedup columns (right axis of the paper's figure)\n");
  std::printf("localities,lci_over_mpi,lci_over_mpi_i\n");
  for (const auto& [localities, lci_steps] : lci) {
    const auto mpi = by_config["mpi"].find(localities);
    const auto mpi_i = by_config["mpi_i"].find(localities);
    if (mpi == by_config["mpi"].end() || mpi_i == by_config["mpi_i"].end()) {
      continue;
    }
    std::printf("%s,%.3f,%.3f\n", localities.c_str(),
                lci_steps / mpi->second, lci_steps / mpi_i->second);
  }
  std::fflush(stdout);
}

/// §3.1 ablation view: improved-over-original app speedup.
void print_mpi_original_speedup(const SuiteResult& result) {
  double improved = 0.0, original = 0.0;
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto* steps = point.metric("steps_per_s");
    if (config == point.labels.end() || steps == nullptr) continue;
    if (config->second == "mpi") improved = steps->median;
    if (config->second == "mpi_orig") original = steps->median;
  }
  if (original > 0.0) {
    std::printf("\n# improved/original app speedup: %.3f\n",
                improved / original);
    std::fflush(stdout);
  }
}

/// Progress-engine ablation view: per config (completion x tickets x
/// shards), the rate_kps median at each pinned worker count — the scaling
/// curves the ablation argues over.
void print_progress_scaling(const SuiteResult& result) {
  // variant -> workers -> rate, insertion-ordered by first appearance.
  std::vector<std::pair<std::string, std::map<int, double>>> rows;
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto workers = point.labels.find("workers");
    const auto* rate = point.metric("rate_kps");
    if (config == point.labels.end() || workers == point.labels.end() ||
        rate == nullptr) {
      continue;
    }
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& row) {
      return row.first == config->second;
    });
    if (it == rows.end()) {
      rows.push_back({config->second, {}});
      it = rows.end() - 1;
    }
    it->second[std::atoi(workers->second.c_str())] = rate->median;
  }
  std::printf("\n# 16KiB flood rate (K/s) by progress-pool width\n");
  std::printf("config,w1,w2,w4,w8\n");
  for (const auto& [config, by_workers] : rows) {
    std::printf("%s", config.c_str());
    for (int workers : {1, 2, 4, 8}) {
      const auto rate = by_workers.find(workers);
      if (rate == by_workers.end()) {
        std::printf(",-");
      } else {
        std::printf(",%.1f", rate->second);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

// ---- suite definitions ----------------------------------------------------

SuiteSpec fig1() {
  SuiteSpec s;
  s.name = "fig1_msgrate_8b";
  s.binary = "bench_fig1_msgrate_8b";
  s.figure = "Figure 1";
  s.title = "8B message rate vs injection rate (mpi, mpi_i, lci_psr_cq_pin, "
            "lci_psr_cq_pin_i)";
  s.expectation =
      "rates first track the injection rate then plateau; mpi (without "
      "send-immediate) degrades past its peak; lci plateaus highest";
  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    for (double rate : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 0.0}) {
      s.points.push_back(rate_point(config, 8, 100, k8bFloodMsgs, rate));
    }
  }
  s.probes = {{"fabric_packets", "fabric/", "/packets_sent"}};
  return s;
}

SuiteSpec fig2() {
  SuiteSpec s;
  s.name = "fig2_msgrate_8b_lci";
  s.binary = "bench_fig2_msgrate_8b_lci";
  s.figure = "Figure 2";
  s.title = "8B message rate vs injection rate (8 LCI variants, _i)";
  s.expectation =
      "pin > mt (dedicated progress thread wins, up to 2.6x); psr > sr "
      "(one-sided put header wins, up to 3.5x); cq vs sy minor at 8B";
  for (const char* config :
       {"lci_psr_cq_pin_i", "lci_psr_cq_mt_i", "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i", "lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i", "lci_sr_sy_mt_i"}) {
    for (double rate : {4.0, 16.0, 64.0, 0.0}) {
      s.points.push_back(rate_point(config, 8, 100, k8bFloodMsgs, rate));
    }
  }
  return s;
}

SuiteSpec fig3() {
  SuiteSpec s;
  s.name = "fig3_peak_8b";
  s.binary = "bench_fig3_peak_8b";
  s.figure = "Figure 3";
  s.title = "peak 8B message rate across injection rates (11 configs)";
  s.expectation =
      "lci_psr_cq_pin_i highest; all mt variants clustered well below the "
      "pin variants; mpi variants lowest";
  for (const char* config : kElevenConfigs) {
    for (double rate : {8.0, 32.0, 0.0}) {
      s.points.push_back(rate_point(config, 8, 100, k8bFloodMsgs, rate));
    }
  }
  s.post_summary = print_peak_by_config;
  return s;
}

SuiteSpec fig4() {
  SuiteSpec s;
  s.name = "fig4_msgrate_16k";
  s.binary = "bench_fig4_msgrate_16k";
  s.figure = "Figure 4";
  s.title = "16KiB message rate vs injection rate (mpi, mpi_i, "
            "lci_psr_cq_pin, lci_psr_cq_pin_i)";
  s.expectation =
      "lci sustains its plateau (paper: up to 30x mpi); both mpi variants' "
      "achieved rate decays as injection pressure grows; aggregation (no _i) "
      "does not help lci at this size";
  s.smoke = true;
  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    for (double rate : {1.0, 2.0, 4.0, 8.0, 16.0, 0.0}) {
      s.points.push_back(
          rate_point(config, 16 * 1024, 10, k16kFloodMsgs, rate));
    }
  }
  s.probes = {{"fabric_packets", "fabric/", "/packets_sent"}};
  return s;
}

SuiteSpec fig5() {
  SuiteSpec s;
  s.name = "fig5_msgrate_16k_lci";
  s.binary = "bench_fig5_msgrate_16k_lci";
  s.figure = "Figure 5";
  s.title = "16KiB message rate vs injection rate (8 LCI variants, _i)";
  s.expectation =
      "cq variants plateau smoothly and ~25-30% above sy variants (which "
      "oscillate); pin beats mt by 17-50%";
  for (const char* config :
       {"lci_psr_cq_pin_i", "lci_psr_cq_mt_i", "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i", "lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i", "lci_sr_sy_mt_i"}) {
    for (double rate : {2.0, 8.0, 0.0}) {
      s.points.push_back(
          rate_point(config, 16 * 1024, 10, k16kFloodMsgs, rate));
    }
  }
  return s;
}

SuiteSpec fig6() {
  SuiteSpec s;
  s.name = "fig6_peak_16k";
  s.binary = "bench_fig6_peak_16k";
  s.figure = "Figure 6";
  s.title = "peak 16KiB message rate across injection rates (11 configs)";
  s.expectation =
      "cq+pin variants on top; sy variants ~25-30% lower; mt variants "
      "capped by progress contention; mpi variants at the bottom";
  for (const char* config : kElevenConfigs) {
    for (double rate : {4.0, 0.0}) {
      s.points.push_back(
          rate_point(config, 16 * 1024, 10, k16kFloodMsgs, rate));
    }
  }
  s.post_summary = print_peak_by_config;
  return s;
}

SuiteSpec fig7() {
  SuiteSpec s;
  s.name = "fig7_latency_size";
  s.binary = "bench_fig7_latency_size";
  s.figure = "Figure 7";
  s.title = "one-way latency vs message size, window 1 (11 configs)";
  s.expectation =
      "lci_psr_cq_pin(_i) lowest across sizes; mpi_i competitive below 1KB "
      "then 3-5x worse for large messages; send-immediate always helps lci "
      "latency";
  for (const char* config : kElevenConfigs) {
    for (std::size_t size : {8u, 64u, 512u, 4096u, 16384u, 65536u}) {
      s.points.push_back(latency_point(config, size, 1, kLatencyStepsSized));
    }
  }
  // Straddle the small-parcel fast-path threshold: the ping-pong's
  // whole-parcel frame is payload + 53 B (24 B frame header + 4 B action
  // id + 8 B promise id + two u32 args + a 9 B inline-vector prefix), and
  // the fast path takes frames up to the 8192 B eager threshold. These
  // two payloads put the frame at threshold -8 B and +8 B, so the curve
  // shows the step where parcels leave the one-message path — only
  // meaningful for the LCI rows; the MPI rows have no fast path but keep
  // the sweep aligned. (test_parcelports pins this arithmetic against the
  // fastpath counters.)
  for (const char* config : kElevenConfigs) {
    for (std::size_t size : {8192u - 53 - 8, 8192u - 53 + 8}) {
      s.points.push_back(latency_point(config, size, 1, kLatencyStepsSized));
    }
  }
  return s;
}

SuiteSpec fig8() {
  SuiteSpec s;
  s.name = "fig8_latency_window_8b";
  s.binary = "bench_fig8_latency_window_8b";
  s.figure = "Figure 8";
  s.title = "8B one-way latency vs window size (11 configs)";
  s.expectation =
      "latency grows with window everywhere; lci_psr_cq_pin_i stays lowest; "
      "mpi_i beats mpi at small windows but crosses over (paper: window 8) "
      "as concurrency grows";
  for (const char* config : kElevenConfigs) {
    for (unsigned window : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      s.points.push_back(latency_point(config, 8, window, kLatencySteps8b));
    }
  }
  return s;
}

SuiteSpec fig9() {
  SuiteSpec s;
  s.name = "fig9_latency_window_16k";
  s.binary = "bench_fig9_latency_window_16k";
  s.figure = "Figure 9";
  s.title = "16KiB one-way latency vs window size (11 configs)";
  s.expectation =
      "the mpi/lci gap widens with the window (paper: mpi_i vs "
      "lci_psr_cq_pin_i grows from 2x at window 1 to 9.6x at window 64)";
  for (const char* config : kElevenConfigs) {
    for (unsigned window : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      s.points.push_back(
          latency_point(config, 16 * 1024, window, kLatencySteps16k));
    }
  }
  return s;
}

SuiteSpec fig10() {
  SuiteSpec s;
  s.name = "fig10_octotiger_expanse";
  s.binary = "bench_fig10_octotiger_expanse";
  s.figure = "Figure 10";
  s.title = "Octo-Tiger proxy strong scaling, Expanse profile";
  s.expectation =
      "lci >= mpi >= mpi_i at every node count, gap growing with nodes; "
      "mpi_i disproportionately bad on the high-core-count platform "
      "(blocking-lock convoy; paper: up to 13.6x)";
  for (const char* config : {"mpi", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (std::uint32_t localities : {2u, 4u, 6u, 8u}) {
      s.points.push_back(octo_point(config, "expanse", localities, 3));
    }
  }
  s.post_summary = print_octo_speedups;
  return s;
}

SuiteSpec fig11() {
  SuiteSpec s;
  s.name = "fig11_octotiger_rostam";
  s.binary = "bench_fig11_octotiger_rostam";
  s.figure = "Figure 11";
  s.title = "Octo-Tiger proxy strong scaling, Rostam profile";
  s.expectation =
      "smaller gaps than on Expanse (fewer cores, fewer nodes): lci ~1.04x "
      "over mpi and ~1.08x over mpi_i at the largest node count";
  for (const char* config : {"mpi", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (std::uint32_t localities : {2u, 4u, 8u}) {
      s.points.push_back(octo_point(config, "rostam", localities, 2));
    }
  }
  s.post_summary = print_octo_speedups;
  return s;
}

SuiteSpec ablation_mpi_original() {
  SuiteSpec s;
  s.name = "ablation_mpi_original";
  s.binary = "bench_ablation_mpi_original";
  s.figure = "§3.1 ablation";
  s.title = "original vs improved MPI parcelport";
  s.expectation =
      "improved ('mpi') beats original ('mpi_orig') on the proxy app and on "
      "latency for messages that now fit the dynamic header (~20% app-level "
      "in the paper)";
  for (const char* config : {"mpi_orig", "mpi"}) {
    s.points.push_back(octo_point(config, "expanse", 4, 3));
  }
  for (const char* config : {"mpi_orig", "mpi", "mpi_orig_i", "mpi_i"}) {
    for (std::size_t size : {256u, 2048u, 4096u}) {
      s.points.push_back(latency_point(config, size, 4, kLatencySteps8b));
    }
  }
  s.post_summary = print_mpi_original_speedup;
  return s;
}

SuiteSpec ablation_mpi_lock() {
  SuiteSpec s;
  s.name = "ablation_mpi_lock";
  s.binary = "bench_ablation_mpi_lock";
  s.figure = "§7.1 ablation";
  s.title = "coarse vs fine-grained progress lock in the MPI layer";
  s.expectation =
      "the fine-grained variant sustains higher 16KiB message rates and "
      "lower windowed latency; the gap grows with concurrency (worker "
      "threads convoy on the blocking lock in MPI_Test)";
  for (const char* config : {"mpi_i", "mpi_fine_i"}) {
    s.points.push_back(rate_point(config, 16 * 1024, 10, k16kFloodMsgs, 0.0));
  }
  for (const char* config : {"mpi_i", "mpi_fine_i"}) {
    for (unsigned window : {1u, 8u, 32u}) {
      s.points.push_back(latency_point(config, 8, window, kLatencySteps8b));
    }
  }
  return s;
}

SuiteSpec ablation_zc_threshold() {
  SuiteSpec s;
  s.name = "ablation_zc_threshold";
  s.binary = "bench_ablation_zc_threshold";
  s.figure = "§2.2 ablation";
  s.title = "zero-copy serialization threshold (HPX default 8192)";
  s.expectation =
      "for 4KiB payloads: a tiny threshold forces needless rendezvous "
      "(worse latency); for 16KiB payloads: a huge threshold forces inline "
      "copies of large data through the eager path";
  for (std::size_t threshold : {512u, 8192u, 65536u}) {
    for (const char* config : {"lci_psr_cq_pin_i", "mpi_i"}) {
      PointSpec p = latency_point(config, 4096, 4, kLatencySteps8b);
      p.zero_copy_threshold = threshold;
      p.labels["zc"] = std::to_string(threshold);
      s.points.push_back(std::move(p));
    }
  }
  for (std::size_t threshold : {2048u, 8192u, 65536u}) {
    PointSpec p =
        rate_point("lci_psr_cq_pin_i", 16 * 1024, 10, k16kFloodMsgs, 0.0);
    p.zero_copy_threshold = threshold;
    p.labels["zc"] = std::to_string(threshold);
    s.points.push_back(std::move(p));
  }
  return s;
}

/// Adaptive-aggregation view: per LCI variant, the backpressured 8B flood
/// rate of the adaptive engine over the `_i` bypass and over fp-only — the
/// headline speedups — plus the unloaded-latency ratio (the "load-aware"
/// claim: no batching delay when the destination window is empty).
void print_aggregation_speedup(const SuiteResult& result) {
  struct Row {
    double adaptive = 0.0, fponly = 0.0, bypass = 0.0;
    double lat_adaptive = 0.0, lat_fponly = 0.0;
  };
  std::vector<std::pair<std::string, Row>> rows;  // insertion order
  for (const auto& point : result.points) {
    const auto variant = point.labels.find("variant");
    const auto mode = point.labels.find("mode");
    const auto size = point.labels.find("msg_size");
    if (variant == point.labels.end() || mode == point.labels.end() ||
        size == point.labels.end() || size->second != "8") {
      continue;
    }
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& row) {
      return row.first == variant->second;
    });
    if (it == rows.end()) {
      rows.push_back({variant->second, {}});
      it = rows.end() - 1;
    }
    if (const auto* rate = point.metric("rate_kps")) {
      if (mode->second == "adaptive") it->second.adaptive = rate->median;
      if (mode->second == "fponly") it->second.fponly = rate->median;
      if (mode->second == "bypass") it->second.bypass = rate->median;
    }
    if (const auto* lat = point.metric("latency_us")) {
      if (mode->second == "adaptive") it->second.lat_adaptive = lat->median;
      if (mode->second == "fponly") it->second.lat_fponly = lat->median;
    }
  }
  std::printf(
      "\n# adaptive aggregation at 8B under backpressure (rate speedups; "
      "idle_latency_ratio from the unloaded window-1 points)\n");
  std::printf("variant,adaptive_over_bypass,adaptive_over_fponly,"
              "idle_latency_ratio\n");
  double bypass_log_sum = 0.0, fponly_log_sum = 0.0, lat_log_sum = 0.0;
  std::size_t bypass_n = 0, fponly_n = 0, lat_n = 0;
  for (const auto& [variant, row] : rows) {
    const double over_bypass =
        row.bypass > 0.0 ? row.adaptive / row.bypass : 0.0;
    const double over_fponly =
        row.fponly > 0.0 ? row.adaptive / row.fponly : 0.0;
    const double lat_ratio =
        row.lat_fponly > 0.0 ? row.lat_adaptive / row.lat_fponly : 0.0;
    if (over_bypass > 0.0) {
      bypass_log_sum += std::log(over_bypass);
      ++bypass_n;
    }
    if (over_fponly > 0.0) {
      fponly_log_sum += std::log(over_fponly);
      ++fponly_n;
    }
    if (lat_ratio > 0.0) {
      lat_log_sum += std::log(lat_ratio);
      ++lat_n;
    }
    std::printf("%s,%.3f,%.3f,%.3f\n", variant.c_str(), over_bypass,
                over_fponly, lat_ratio);
  }
  if (bypass_n > 0 && fponly_n > 0) {
    std::printf("geomean,%.3f,%.3f,%.3f\n",
                std::exp(bypass_log_sum / bypass_n),
                std::exp(fponly_log_sum / fponly_n),
                lat_n > 0 ? std::exp(lat_log_sum / lat_n) : 0.0);
  }
  std::fflush(stdout);
}

SuiteSpec ablation_aggregation() {
  SuiteSpec s;
  s.name = "ablation_aggregation";
  s.binary = "bench_ablation_aggregation";
  s.figure = "§3.2.2/§7.1 ablation";
  s.title =
      "parcel aggregation: connection-cache limits vs the adaptive "
      "per-destination coalescing engine";
  s.expectation =
      "historical trade-off (upper half): connection-cache aggregation cuts "
      "per-message pressure but adds locking and batching delay. Adaptive "
      "engine (lower half): on a message-rate-capped wire (0.3 Mpps) under "
      "a backpressured admission window the 8B flood coalesces into batch "
      "frames and beats both the _i bypass and the fp-only path (>=1.2x "
      "geomean; uncoalesced modes peg at the packet cap), while unloaded "
      "single-parcel latency is untouched because an empty destination "
      "window bypasses the buffers entirely";
  s.smoke = true;
  struct Variant {
    const char* label;
    const char* config;
    std::size_t max_connections;
  };
  for (const Variant& variant : {Variant{"immediate", "lci_psr_cq_pin_i", 8192},
                                 Variant{"cache8192", "lci_psr_cq_pin", 8192},
                                 Variant{"cache1", "lci_psr_cq_pin", 1},
                                 Variant{"immediate", "mpi_i", 8192},
                                 Variant{"cache8192", "mpi", 8192},
                                 Variant{"cache1", "mpi", 1}}) {
    PointSpec p = rate_point(variant.config, 8, 100, k8bFloodMsgs, 0.0);
    p.max_connections = variant.max_connections;
    p.labels["variant"] = variant.label;
    s.points.push_back(std::move(p));
  }
  // ---- adaptive aggregation engine --------------------------------------
  // Three modes per variant, all behind the same blocking admission window
  // (the backpressure signal that activates coalescing): the connection-path
  // bypass (fpoff), the whole-parcel fast path alone, and the fast path
  // with the adaptive aggregator on top.
  struct Mode {
    const char* label;
    const char* tokens;  // appended between the variant and "_i_block64"
  };
  const std::vector<Mode> modes = {
      {"bypass", "_fpoff"},
      {"fponly", "_fp"},
      {"adaptive", "_fp_agg8192_aggt200"}};
  const std::vector<const char*> variants = {"psr_cq_pin", "psr_cq_mt",
                                             "sr_cq_mt"};
  for (const char* variant : variants) {
    for (const Mode& mode : modes) {
      const std::string config =
          "lci_" + std::string(variant) + mode.tokens + "_i_block64";
      // The backpressured 8B flood: the window parks senders at 64
      // outstanding parcels, so the aggregator sees a persistently
      // non-empty destination queue and batches. The wire is shaped with a
      // NIC message-rate cap (0.3 Mpps, 10 Gbps, 5 µs) — the regime Yan et
      // al. identify for small-parcel AMT traffic, where per-message NIC
      // cost rather than bytes or host CPU bounds the flood. Uncoalesced
      // modes peg at the cap; batch frames carry many parcels per packet.
      PointSpec p8 = rate_point(config, 8, 100, k8bFloodMsgs, 0.0);
      // 16 KiB flood: over the eager threshold, every parcel must take the
      // rendezvous fallback untouched — aggregation must not tax it. Same
      // shaped wire: at 16 KiB the line rate, not the packet cap, binds.
      PointSpec p16k = rate_point(config, 16 * 1024, 10, k16kFloodMsgs, 0.0);
      for (PointSpec* p : {&p8, &p16k}) {
        p->rate_pkt_mpps = 0.3;
        p->rate_bandwidth_gbps = 10.0;
        p->rate_latency_us = 5.0;
        p->labels["variant"] = variant;
        p->labels["mode"] = mode.label;
        s.points.push_back(std::move(*p));
      }
    }
  }
  // Unloaded single-parcel latency (no admission window, depth always 0):
  // the load-aware switch must keep the aggregator out of the way, so
  // adaptive may not regress over fp-only by more than noise.
  for (const char* variant : variants) {
    for (const Mode& mode : modes) {
      const std::string config =
          "lci_" + std::string(variant) + mode.tokens + "_i";
      PointSpec lat = latency_point(config, 8, 1, 200);
      lat.labels["variant"] = variant;
      lat.labels["mode"] = mode.label;
      s.points.push_back(std::move(lat));
    }
  }
  // The proxy app under the same window: batching must help (or at least
  // not hurt) a real task graph, not just synthetic floods.
  for (const Mode& mode : modes) {
    PointSpec p = octo_point("lci_psr_cq_pin" + std::string(mode.tokens) +
                                 "_i_block64",
                             "expanse", 4, 3);
    p.labels["variant"] = "octo_psr_cq_pin";
    p.labels["mode"] = mode.label;
    s.points.push_back(std::move(p));
  }
  s.probes = {{"agg_batched", "pplci/", "/agg_batched"},
              {"agg_flushes_size", "pplci/", "/agg_flushes_size"},
              {"agg_flushes_stall", "pplci/", "/agg_flushes_stall"},
              {"agg_flushes_age", "pplci/", "/agg_flushes_age"},
              {"agg_flushes_idle", "pplci/", "/agg_flushes_idle"}};
  s.post_summary = print_aggregation_speedup;
  return s;
}

SuiteSpec ablation_rails() {
  SuiteSpec s;
  s.name = "ablation_rails";
  s.binary = "bench_ablation_rails";
  s.figure = "§7.2 ablation";
  s.title = "fabric rails per link (multi-QP striping)";
  s.expectation =
      "more rails relieve per-channel serialisation for 16KiB floods; with "
      "one rail every message of a flow funnels through one channel lock";
  for (unsigned rails : {1u, 2u, 4u, 8u}) {
    for (const char* config : {"lci_psr_cq_pin_i", "mpi_i"}) {
      PointSpec p = rate_point(config, 16 * 1024, 10, k16kFloodMsgs, 0.0);
      p.fabric_rails = rails;
      p.labels["rails"] = std::to_string(rails);
      s.points.push_back(std::move(p));
    }
  }
  return s;
}

SuiteSpec ablation_pipeline() {
  SuiteSpec s;
  s.name = "ablation_pipeline";
  s.binary = "bench_ablation_pipeline";
  s.figure = "follow-up pipelining ablation";
  s.title = "LCI follow-up pipeline depth (pd1/pd4/pd16/unbounded)";
  s.expectation =
      "unbounded depth sustains a rate >= depth 1, and the gap grows with "
      "the number of zero-copy chunks per message (more independent pieces "
      "to overlap)";
  s.smoke = true;
  struct Depth {
    const char* label;
    const char* config;
  };
  const std::vector<Depth> depths = {{"1", "lci_psr_cq_pin_pd1_i"},
                                     {"4", "lci_psr_cq_pin_pd4_i"},
                                     {"16", "lci_psr_cq_pin_pd16_i"},
                                     {"inf", "lci_psr_cq_pin_i"}};
  for (std::size_t zchunks : {1u, 2u, 4u}) {
    for (const Depth& depth : depths) {
      PointSpec p = rate_point(depth.config, 16 * 1024, 10, 800, 0.0);
      p.zchunk_count = zchunks;
      p.fabric_rails = 4;
      p.labels["depth"] = depth.label;
      p.labels["zchunks"] = std::to_string(zchunks);
      s.points.push_back(std::move(p));
    }
  }
  // Per-message view: single-chain multi-zchunk ping-pong exposes the
  // serialized piece walk directly (the flood above hides it behind
  // cross-message parallelism).
  for (std::size_t zchunks : {2u, 4u}) {
    for (const Depth& depth : depths) {
      PointSpec p = latency_point(depth.config, 16 * 1024, 1, 150);
      p.zchunk_count = zchunks;
      p.fabric_rails = 4;
      p.labels["depth"] = depth.label;
      p.labels["zchunks"] = std::to_string(zchunks);
      s.points.push_back(std::move(p));
    }
  }
  s.probes = {{"send_retries", "pplci/", "/send_retries"}};
  return s;
}

SuiteSpec ablation_progress() {
  SuiteSpec s;
  s.name = "ablation_progress";
  s.binary = "bench_ablation_progress";
  s.figure = "progress-engine scaling ablation";
  s.title =
      "mt progress scaling: rendezvous shards x progress tickets x workers";
  s.expectation =
      "with sharded rendezvous state the 16KiB flood rate holds or improves "
      "as idle workers join the mt progress pool, while the rs1 single-table "
      "baseline flattens first; a small ticket bound (pt1/pt2) keeps most of "
      "the unbounded rate without the full polling herd (progress_skips "
      "counts the turned-away pollers)";
  s.smoke = true;
  struct Tickets {
    const char* label;
    const char* token;  // appended after _mt; "" = unbounded (no token)
  };
  const std::vector<Tickets> tickets = {{"1", "_pt1"},
                                        {"2", "_pt2"},
                                        {"inf", ""}};
  for (const char* comp : {"cq", "sy"}) {
    for (const Tickets& ticket : tickets) {
      for (unsigned workers : {1u, 2u, 4u, 8u}) {
        const std::string config =
            std::string("lci_psr_") + comp + "_mt" + ticket.token + "_i";
        PointSpec p = rate_point(config, 16 * 1024, 10, k16kFloodMsgs, 0.0);
        p.workers = workers;
        p.fabric_rails = 4;
        // Four zero-copy chunks per message: every parcel drives four
        // concurrent rendezvous handshakes through the shared tables, so
        // the point measures progress-path contention, not fabric copies.
        p.zchunk_count = 4;
        p.labels["comp"] = comp;
        p.labels["tickets"] = ticket.label;
        p.labels["workers"] = std::to_string(workers);
        s.points.push_back(std::move(p));
      }
    }
  }
  // The pre-sharding baseline: one global rendezvous table (rs1), every
  // idle worker polling (ptinf). The scaling gap against the rows above is
  // the ablation's headline.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    PointSpec p =
        rate_point("lci_psr_cq_mt_rs1_i", 16 * 1024, 10, k16kFloodMsgs, 0.0);
    p.workers = workers;
    p.fabric_rails = 4;
    p.zchunk_count = 4;
    p.labels["comp"] = "cq";
    p.labels["tickets"] = "inf";
    p.labels["shards"] = "1";
    p.labels["workers"] = std::to_string(workers);
    s.points.push_back(std::move(p));
  }
  s.probes = {{"progress_skips", "pplci/", "/progress_skips"}};
  s.post_summary = print_progress_scaling;
  return s;
}

/// Fast-path ablation view: per LCI variant, the 8B flood-rate and 8B
/// latency ratio of fp=on over fp=off — the headline speedup table.
void print_fastpath_speedup(const SuiteResult& result) {
  struct Row {
    double rate_on = 0.0, rate_off = 0.0;
    double lat_on = 0.0, lat_off = 0.0;
  };
  std::vector<std::pair<std::string, Row>> rows;  // insertion order
  for (const auto& point : result.points) {
    const auto variant = point.labels.find("variant");
    const auto fp = point.labels.find("fp");
    const auto size = point.labels.find("msg_size");
    if (variant == point.labels.end() || fp == point.labels.end() ||
        size == point.labels.end() || size->second != "8") {
      continue;
    }
    auto it = std::find_if(rows.begin(), rows.end(), [&](const auto& row) {
      return row.first == variant->second;
    });
    if (it == rows.end()) {
      rows.push_back({variant->second, {}});
      it = rows.end() - 1;
    }
    const bool on = fp->second == "on";
    if (const auto* rate = point.metric("rate_kps")) {
      (on ? it->second.rate_on : it->second.rate_off) = rate->median;
    }
    if (const auto* lat = point.metric("latency_us")) {
      (on ? it->second.lat_on : it->second.lat_off) = lat->median;
    }
  }
  std::printf("\n# fast-path speedup at 8B (fp=on over fp=off)\n");
  std::printf("variant,rate_speedup,latency_ratio\n");
  double rate_log_sum = 0.0, lat_log_sum = 0.0;
  std::size_t rate_n = 0, lat_n = 0;
  for (const auto& [variant, row] : rows) {
    const double rate =
        row.rate_off > 0.0 ? row.rate_on / row.rate_off : 0.0;
    const double lat = row.lat_off > 0.0 ? row.lat_on / row.lat_off : 0.0;
    if (rate > 0.0) {
      rate_log_sum += std::log(rate);
      ++rate_n;
    }
    if (lat > 0.0) {
      lat_log_sum += std::log(lat);
      ++lat_n;
    }
    std::printf("%s,%.3f,%.3f\n", variant.c_str(), rate, lat);
  }
  if (rate_n > 0 && lat_n > 0) {
    std::printf("geomean,%.3f,%.3f\n", std::exp(rate_log_sum / rate_n),
                std::exp(lat_log_sum / lat_n));
  }
  std::fflush(stdout);
}

SuiteSpec ablation_fastpath() {
  SuiteSpec s;
  s.name = "ablation_fastpath";
  s.binary = "bench_ablation_fastpath";
  s.figure = "small-parcel fast-path ablation";
  s.expectation =
      "with the fast path on, every sub-threshold parcel rides one "
      "whole-parcel frame instead of header + connection bookkeeping: the "
      "8B flood rate improves across all variants (most on sr, which "
      "otherwise pays receiver-connection acquisition per message) and "
      "single-parcel latency drops; at 4KiB the frame still fits and the "
      "win narrows but must not invert";
  s.title =
      "small-parcel fast path on/off (8 LCI variants x 8B/512B/4KiB)";
  s.smoke = true;
  const std::vector<const char*> variants = {
      "psr_cq_pin", "psr_cq_mt", "psr_sy_pin", "psr_sy_mt",
      "sr_cq_pin",  "sr_cq_mt",  "sr_sy_pin",  "sr_sy_mt"};
  struct Mode {
    const char* label;
    const char* token;
  };
  for (const Mode& mode : {Mode{"on", "_fp"}, Mode{"off", "_fpoff"}}) {
    for (const char* variant : variants) {
      const std::string config =
          "lci_" + std::string(variant) + mode.token + "_i";
      // Rate floods at the three sizes the ablation argues over.
      PointSpec p8 = rate_point(config, 8, 100, k8bFloodMsgs, 0.0);
      PointSpec p512 = rate_point(config, 512, 100, k8bFloodMsgs, 0.0);
      PointSpec p4k = rate_point(config, 4096, 10, k16kFloodMsgs, 0.0);
      // Single-parcel (window 1) 8B latency. A deeper chain than the
      // fig8 base: per-hop savings of a few microseconds need more than a
      // couple of round trips per run to rise above scheduler noise at
      // smoke scale.
      PointSpec lat = latency_point(config, 8, 1, 200);
      for (PointSpec* p : {&p8, &p512, &p4k, &lat}) {
        p->labels["variant"] = variant;
        p->labels["fp"] = mode.label;
        s.points.push_back(std::move(*p));
      }
    }
  }
  s.probes = {{"fastpath_hits", "pplci/", "/fastpath_hits"},
              {"fastpath_fallbacks", "pplci/", "/fastpath_fallbacks"}};
  s.post_summary = print_fastpath_speedup;
  return s;
}

/// Open-loop view: per config+process, offered vs goodput and the tail.
void print_openloop_knee(const SuiteResult& result) {
  std::printf("\n# open-loop knee (offered vs goodput and tail)\n");
  std::printf(
      "config,process,offered_kps,goodput_kps,p50_us,p99_us,p999_us,shed\n");
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto process = point.labels.find("process");
    const auto* offered = point.metric("offered_kps");
    const auto* goodput = point.metric("goodput_kps");
    const auto* p50 = point.metric("p50_us");
    const auto* p99 = point.metric("p99_us");
    const auto* p999 = point.metric("p999_us");
    const auto* shed = point.metric("admit_shed");
    if (config == point.labels.end() || offered == nullptr ||
        goodput == nullptr) {
      continue;
    }
    std::printf("%s,%s,%.3f,%.3f,%.1f,%.1f,%.1f,%.0f\n",
                config->second.c_str(),
                process != point.labels.end() ? process->second.c_str() : "-",
                offered->median, goodput->median,
                p50 != nullptr ? p50->median : 0.0,
                p99 != nullptr ? p99->median : 0.0,
                p999 != nullptr ? p999->median : 0.0,
                shed != nullptr ? shed->median : 0.0);
  }
}

SuiteSpec openloop() {
  SuiteSpec s;
  s.name = "openloop";
  s.binary = "bench_openloop";
  s.figure = "serving extra";
  s.title = "open-loop serving: latency knee vs offered load and admission";
  s.expectation =
      "past the shaped-fabric capacity (~3.9k req/s at 4KiB) the "
      "uncontrolled p99.9 explodes with queueing (the knee), goodput "
      "plateaus at capacity; a bounded shed window keeps the tail within a "
      "small factor of sub-saturation while goodput stays at the plateau "
      "(the shed counters show what it cost); blocking never sheds but "
      "parks the queue at the generator, so the measured-from-arrival tail "
      "stays saturated; deadline-drop trades completions for tail";
  s.smoke = true;
  // The knee sweep: admission off across 0.3x..1.5x of saturation.
  for (double rps : {1200.0, 2400.0, 3600.0, 6000.0}) {
    s.points.push_back(openloop_point("lci_psr_cq_pin_i", rps, "poisson"));
  }
  // Admission policies at 1.5x saturation.
  for (const char* config :
       {"lci_psr_cq_pin_i_shed16", "lci_psr_cq_pin_i_shed32",
        "lci_psr_cq_pin_i_block16"}) {
    s.points.push_back(openloop_point(config, 6000.0, "poisson"));
  }
  {
    // Deadline drops need a real queue: no send-immediate and a single
    // cached connection, so parcels wait behind in-flight aggregates; the
    // deadline is pinned below one aggregate's send time so queued parcels
    // reliably go stale.
    PointSpec p = openloop_point("lci_psr_cq_pin_dl512", 6000.0, "poisson");
    p.max_connections = 1;
    p.ol_admit_deadline_us = 200;
    // Double observation window: at smoke scale the stale-queue regime
    // needs time to establish before the median run shows drops.
    p.base_total_msgs *= 2;
    s.points.push_back(std::move(p));
  }
  // Bursty arrivals: the same long-run rate concentrated in on-periods
  // stresses the tail below saturation and the shed window above it.
  s.points.push_back(openloop_point("lci_psr_cq_pin_i", 2400.0, "burst"));
  s.points.push_back(
      openloop_point("lci_psr_cq_pin_i_shed16", 6000.0, "burst"));
  // Cross-parcelport reference: mpi_i through the same serving path.
  s.points.push_back(openloop_point("mpi_i", 2400.0, "poisson"));
  s.points.push_back(openloop_point("mpi_i", 6000.0, "poisson"));
  s.probes = {{"admit_accepted", "amt/", "/admit_accepted"},
              {"admit_shed", "amt/", "/admit_shed"},
              {"admit_deadline_drops", "amt/", "/admit_deadline_drops"}};
  s.post_summary = print_openloop_knee;
  return s;
}

SuiteSpec extra_tcp_comparison() {
  SuiteSpec s;
  s.name = "extra_tcp_comparison";
  s.binary = "bench_extra_tcp_comparison";
  s.figure = "§1 extra";
  s.title = "TCP parcelport vs MPI vs LCI";
  s.expectation =
      "tcp trails both on message rate (every message funnels through one "
      "ordered stream) and degrades worst as the window grows "
      "(head-of-line blocking)";
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    s.points.push_back(rate_point(config, 8, 100, k8bFloodMsgs, 0.0));
  }
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (unsigned window : {1u, 8u, 32u}) {
      s.points.push_back(
          latency_point(config, 16 * 1024, window, kLatencySteps16k));
    }
  }
  for (const char* config : {"tcp_i", "mpi_i", "lci_psr_cq_pin_i"}) {
    s.points.push_back(octo_point(config, "expanse", 4, 3));
  }
  return s;
}

/// docs/collectives.md view: per (op, payload, localities), the speedup of
/// each log-depth algorithm over the centralised root-gather baseline, plus
/// the geomean of the tree/rd wins at >= 8 localities (the claim the docs
/// make; ring is recorded but excluded — its 2(n-1) rounds lose by design on
/// a message-rate-capped wire).
void print_collectives_speedup(const SuiteResult& result) {
  struct Cell {
    std::string op, payload, localities;
    double central = 0.0;
    std::vector<std::pair<std::string, double>> algos;  // insertion order
  };
  std::vector<Cell> cells;
  for (const auto& point : result.points) {
    const auto op = point.labels.find("op");
    const auto algo = point.labels.find("algo");
    const auto payload = point.labels.find("payload");
    const auto localities = point.labels.find("localities");
    const auto* us = point.metric("coll_us");
    if (op == point.labels.end() || algo == point.labels.end() ||
        payload == point.labels.end() || localities == point.labels.end() ||
        us == nullptr) {
      continue;
    }
    auto it = std::find_if(cells.begin(), cells.end(), [&](const Cell& c) {
      return c.op == op->second && c.payload == payload->second &&
             c.localities == localities->second;
    });
    if (it == cells.end()) {
      cells.push_back({op->second, payload->second, localities->second,
                       0.0, {}});
      it = cells.end() - 1;
    }
    if (algo->second == "central") {
      it->central = us->median;
    } else {
      it->algos.emplace_back(algo->second, us->median);
    }
  }
  std::printf("\n# log-depth collectives vs the centralised baseline "
              "(speedup = central_us / algo_us)\n");
  std::printf("op,payload_B,localities,algo,central_us,algo_us,speedup\n");
  double log_sum = 0.0;
  std::size_t log_n = 0;
  for (const Cell& cell : cells) {
    for (const auto& [algo, us] : cell.algos) {
      const double speedup = us > 0.0 ? cell.central / us : 0.0;
      std::printf("%s,%s,%s,%s,%.1f,%.1f,%.3f\n", cell.op.c_str(),
                  cell.payload.c_str(), cell.localities.c_str(),
                  algo.c_str(), cell.central, us, speedup);
      if (speedup > 0.0 && algo != "ring" &&
          std::strtoul(cell.localities.c_str(), nullptr, 10) >= 8) {
        log_sum += std::log(speedup);
        ++log_n;
      }
    }
  }
  if (log_n > 0) {
    std::printf("geomean_tree_rd_at_8plus,,,,,,%.3f\n",
                std::exp(log_sum / static_cast<double>(log_n)));
  }
  std::fflush(stdout);
}

SuiteSpec ablation_collectives() {
  SuiteSpec s;
  s.name = "ablation_collectives";
  s.binary = "bench_ablation_collectives";
  s.figure = "docs/collectives.md ablation";
  s.title =
      "collective algorithms: centralised root-gather vs the log-depth "
      "binomial/recursive-doubling/ring families";
  s.expectation =
      "on a message-rate-capped wire (0.02 Mpps per NIC, the only resource "
      "the fabric serialises across a root's fan-out) the centralised "
      "release phase costs (n-1) serialised sends while binomial broadcast "
      "and recursive-doubling allreduce pay only log2(n) rounds, so the "
      "log-depth algorithms win at >= 8 localities and the gap widens with "
      "n. Ring allreduce is bandwidth-optimal but round-count linear: its "
      "sub-threshold chunks dodge the rendezvous handshakes central's "
      "full-payload sends pay, but 2(n-1) gap-paced rounds erode that edge "
      "as n grows — it trails recursive doubling everywhere here and "
      "approaches parity with central by 16 localities, exactly the "
      "crossover flip the docs' alpha-beta model predicts when rounds*alpha "
      "outweighs the per-byte savings";
  s.smoke = true;
  // The wire: generous line rate (bandwidth is near-free for these payload
  // sizes), HDR-class latency, and a per-NIC message-rate cap that makes
  // root fan-out the bottleneck — the regime Yan et al. identify for
  // small-parcel AMT traffic. Payloads stay under AMTNET_COLL_LARGE_BYTES
  // so forced-family runs compare un-pipelined algorithms.
  struct Algo {
    const char* label;
    const char* token;
  };
  const std::vector<std::uint32_t> kLocalities = {4, 8, 16};
  auto add = [&](const char* op, const Algo& algo, std::size_t payload) {
    for (const std::uint32_t n : kLocalities) {
      PointSpec p = coll_point(
          std::string("lci_psr_cq_pin_i_coll") + algo.token, op, algo.label,
          n, payload, 40);
      p.rate_bandwidth_gbps = 50.0;
      p.rate_latency_us = 5.0;
      p.rate_pkt_mpps = 0.02;
      s.points.push_back(std::move(p));
    }
  };
  for (const std::size_t payload : {std::size_t{8}, std::size_t{8192}}) {
    add("allreduce", {"central", "central"}, payload);
    add("allreduce", {"rd", "rd"}, payload);
    add("broadcast", {"central", "central"}, payload);
    add("broadcast", {"tree", "tree"}, payload);
  }
  // Ring at the larger payload only: the honest negative result this wire
  // is expected to produce (recorded, excluded from the geomean claim).
  add("allreduce", {"ring", "ring"}, 8192);
  s.probes = {{"coll_msgs", "amt/coll/msgs", ""},
              {"coll_bytes", "amt/coll/bytes", ""}};
  s.post_summary = print_collectives_speedup;
  return s;
}

SuiteSpec fft() {
  SuiteSpec s;
  s.name = "fft";
  s.binary = "bench_fft";
  s.figure = "docs/collectives.md workload";
  s.title =
      "distributed four-step FFT (row FFTs, all-to-all transpose, row FFTs) "
      "validated bit-exactly against a serial reference";
  s.expectation =
      "the transpose is a bandwidth-heavy all-to-all whose per-locality "
      "block shrinks as 1/n^2, so on the shaped wire the transform time is "
      "dominated by per-message cost and the auto-selected pairwise "
      "exchange tracks or beats the centralised transpose as localities "
      "grow; every run memcmp-validates the distributed result against the "
      "serial four-step reference, so any wire reordering or algorithm bug "
      "aborts the benchmark rather than skewing it";
  s.smoke = true;
  auto add = [&](const std::string& config, std::uint32_t n) {
    PointSpec p = fft_point(config, n, 64, 8);
    p.rate_bandwidth_gbps = 50.0;
    p.rate_latency_us = 5.0;
    p.rate_pkt_mpps = 0.05;
    s.points.push_back(std::move(p));
  };
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    add("lci_psr_cq_pin_i", n);
    add("mpi_i", n);
    add("lci_psr_cq_pin_i_collcentral", n);
  }
  s.probes = {{"coll_msgs", "amt/coll/msgs", ""},
              {"coll_bytes", "amt/coll/bytes", ""}};
  return s;
}

void print_backend_summary(const SuiteResult& result) {
  // One row per (msg_size, metric): sim vs shm medians and their ratio.
  struct Cell {
    std::string metric;
    std::string msg_size;
    double sim = 0.0;
    double shm = 0.0;
  };
  std::vector<Cell> cells;
  for (const auto& point : result.points) {
    const auto config = point.labels.find("config");
    const auto size = point.labels.find("msg_size");
    if (config == point.labels.end() || size == point.labels.end()) continue;
    const bool shm =
        config->second.find("backendshm") != std::string::npos;
    for (const char* metric : {"rate_kps", "latency_us"}) {
      const auto* m = point.metric(metric);
      if (m == nullptr) continue;
      auto it = std::find_if(cells.begin(), cells.end(), [&](const Cell& c) {
        return c.metric == metric && c.msg_size == size->second;
      });
      if (it == cells.end()) {
        cells.push_back({metric, size->second, 0.0, 0.0});
        it = cells.end() - 1;
      }
      (shm ? it->shm : it->sim) = m->median;
    }
  }
  std::printf("\n# shm backend vs the simulator, same parcelport and "
              "traffic (ratio = shm / sim)\n");
  std::printf("metric,msg_size,sim,shm,ratio\n");
  for (const Cell& cell : cells) {
    const double ratio = cell.sim > 0.0 ? cell.shm / cell.sim : 0.0;
    std::printf("%s,%s,%.3f,%.3f,%.3f\n", cell.metric.c_str(),
                cell.msg_size.c_str(), cell.sim, cell.shm, ratio);
    if (cell.metric == "latency_us" && ratio > 3.0) {
      std::printf("# note: shm single-pair latency is %.1fx the simulator's "
                  "(target: within 3x)\n", ratio);
    }
  }
  std::fflush(stdout);
}

SuiteSpec ablation_backend() {
  SuiteSpec s;
  s.name = "ablation_backend";
  s.binary = "bench_ablation_backend";
  s.figure = "transport-backend ablation";
  s.title =
      "fabric backends head to head: the modelled simulator vs POSIX "
      "shared-memory rings, same parcelport and traffic";
  s.expectation =
      "the shm backend replaces the simulator's in-process delivery with "
      "real ring-buffer hand-offs and memcpy/CMA data movement, so its "
      "single-pair numbers carry genuine memory-system cost: latency should "
      "stay within a small factor (target 3x) of the zero-time simulator "
      "and the 8 B eager rate within the same order of magnitude. The "
      "payoff is not single-pair speed but scaling: shm ranks live in "
      "separate processes, so a multi-process launch (the scaling probe "
      "this binary runs after the suite, and amtnet_launch in general) can "
      "use every core instead of time-slicing all localities on one "
      "process's scheduler quantum";
  // Wall-clock measurements of the real machine (the shm rows especially):
  // recorded and compared by eye, never gated — a committed baseline from
  // one machine says nothing about another's memory system.
  s.smoke = false;
  for (const char* config :
       {"lci_psr_cq_pin_i", "lci_psr_cq_pin_i_backendshm"}) {
    for (const std::size_t size : {std::size_t{8}, std::size_t{16384}}) {
      PointSpec p = rate_point(config, size, size == 8 ? 100 : 10,
                               size == 8 ? k8bFloodMsgs : k16kFloodMsgs, 0.0);
      p.platform = "loopback";
      s.points.push_back(std::move(p));
    }
    PointSpec lat = latency_point(config, 8, 1, kLatencyStepsSized);
    lat.platform = "loopback";
    s.points.push_back(std::move(lat));
  }
  s.metric_overrides = {
      {"rate_kps", "kps", false, /*gate=*/false, 0.30},
      {"injection_kps", "kps", false, /*gate=*/false, 0.30},
      {"latency_us", "us", true, /*gate=*/false, 0.30},
  };
  s.post_summary = print_backend_summary;
  return s;
}

}  // namespace

void register_all() {
  static const bool registered = [] {
    SuiteRegistry& registry = SuiteRegistry::instance();
    registry.add(fig1());
    registry.add(fig2());
    registry.add(fig3());
    registry.add(fig4());
    registry.add(fig5());
    registry.add(fig6());
    registry.add(fig7());
    registry.add(fig8());
    registry.add(fig9());
    registry.add(fig10());
    registry.add(fig11());
    registry.add(ablation_mpi_original());
    registry.add(ablation_mpi_lock());
    registry.add(ablation_zc_threshold());
    registry.add(ablation_aggregation());
    registry.add(ablation_rails());
    registry.add(ablation_pipeline());
    registry.add(ablation_progress());
    registry.add(ablation_fastpath());
    registry.add(openloop());
    registry.add(extra_tcp_comparison());
    registry.add(ablation_collectives());
    registry.add(ablation_backend());
    registry.add(fft());
    return true;
  }();
  (void)registered;
}

expdriver::PointRunner make_harness_runner(const SuiteSpec& spec) {
  const std::vector<expdriver::TelemetryProbe> probes = spec.probes;
  return [probes](const PointSpec& p, const RunEnv& env) -> Sample {
    telemetry::Snapshot snapshot;
    bool have_snapshot = false;
    if (!probes.empty()) {
      const auto sink = [&](const telemetry::Snapshot& snap) {
        snapshot = snap;
        have_snapshot = true;
      };
      bench::set_snapshot_sink(sink);
      loadgen::set_snapshot_sink(sink);
    }

    Sample sample;
    const unsigned workers = p.workers != 0 ? p.workers : env.workers;
    switch (p.kind) {
      case PointKind::kRate: {
        RateParams params;
        params.parcelport = p.parcelport;
        params.msg_size = p.msg_size;
        params.batch = p.batch;
        params.total_msgs = expdriver::scaled_count(p.base_total_msgs,
                                                    env.scale);
        params.attempted_rate = p.attempted_rate;
        params.workers = workers;
        params.platform = p.platform;
        params.zero_copy_threshold = p.zero_copy_threshold;
        params.max_connections = p.max_connections;
        params.fabric_rails = p.fabric_rails;
        params.zchunk_count = p.zchunk_count;
        params.bandwidth_gbps = p.rate_bandwidth_gbps;
        params.latency_us = p.rate_latency_us;
        params.pkt_rate_mpps = p.rate_pkt_mpps;
        const RateResult result = run_message_rate(params);
        sample.push_back(
            {"injection_kps", result.achieved_injection_rate / 1e3});
        sample.push_back({"rate_kps", result.message_rate / 1e3});
        break;
      }
      case PointKind::kLatency: {
        LatencyParams params;
        params.parcelport = p.parcelport;
        params.msg_size = p.msg_size;
        params.window = p.window;
        params.steps = static_cast<unsigned>(
            expdriver::scaled_count(static_cast<std::size_t>(p.base_steps),
                                    env.scale));
        params.workers = workers;
        params.platform = p.platform;
        params.zero_copy_threshold = p.zero_copy_threshold;
        params.fabric_rails = p.fabric_rails;
        params.zchunk_count = p.zchunk_count;
        sample.push_back({"latency_us", run_latency_us(params)});
        break;
      }
      case PointKind::kOcto: {
        OctoParams params;
        params.parcelport = p.parcelport;
        params.platform = p.platform;
        params.localities = p.localities;
        params.level = p.level;
        params.steps = static_cast<int>(
            expdriver::scaled_count(static_cast<std::size_t>(p.base_steps),
                                    env.scale));
        params.workers = workers;
        sample.push_back({"steps_per_s", run_octo_steps_per_second(params)});
        break;
      }
      case PointKind::kOpenLoop: {
        loadgen::Params params;
        params.parcelport = p.parcelport;
        params.localities = p.localities;
        params.workers = workers;
        params.requests = expdriver::scaled_count(p.base_total_msgs,
                                                  env.scale);
        params.arrival.rate_rps = p.attempted_rate;
        params.arrival.seed = p.ol_seed;
        params.arrival.process = p.ol_process == "burst"
                                     ? loadgen::ArrivalConfig::Process::kBurst
                                     : loadgen::ArrivalConfig::Process::kPoisson;
        params.size_mix = loadgen::parse_size_mix(p.ol_size_mix);
        params.zero_copy_threshold = p.zero_copy_threshold;
        params.max_connections = p.max_connections;
        params.fabric_rails = p.fabric_rails;
        params.bandwidth_gbps = p.ol_bandwidth_gbps;
        params.latency_us = p.ol_latency_us;
        // Deadline points pin their deadline through the same env knob a
        // user would set, so the plumbing is exercised and the ambient
        // environment can't skew the recorded point.
        const char* prev_deadline = std::getenv("AMTNET_ADMIT_DEADLINE_US");
        const std::string saved_deadline =
            prev_deadline != nullptr ? prev_deadline : "";
        if (p.ol_admit_deadline_us > 0) {
          ::setenv("AMTNET_ADMIT_DEADLINE_US",
                   std::to_string(p.ol_admit_deadline_us).c_str(), 1);
        }
        const loadgen::Result result = loadgen::run_open_loop(params);
        if (p.ol_admit_deadline_us > 0) {
          if (prev_deadline != nullptr) {
            ::setenv("AMTNET_ADMIT_DEADLINE_US", saved_deadline.c_str(), 1);
          } else {
            ::unsetenv("AMTNET_ADMIT_DEADLINE_US");
          }
        }
        if (!result.conserved) {
          // Conservation (generated == accepted + shed, accepted ==
          // completed + deadline drops) is the subsystem's contract; a
          // violated run means lost or double-counted requests, so no
          // number it produced can be trusted.
          std::fprintf(stderr,
                       "openloop: request conservation violated "
                       "(generated=%llu accepted=%llu shed=%llu "
                       "completed=%llu deadline_drops=%llu)\n",
                       static_cast<unsigned long long>(result.generated),
                       static_cast<unsigned long long>(result.accepted),
                       static_cast<unsigned long long>(result.shed),
                       static_cast<unsigned long long>(result.completed),
                       static_cast<unsigned long long>(
                           result.deadline_drops));
          std::abort();
        }
        sample.push_back({"goodput_kps", result.goodput_kps});
        sample.push_back({"offered_kps", result.offered_kps});
        sample.push_back({"p50_us", result.p50_us});
        sample.push_back({"p99_us", result.p99_us});
        sample.push_back({"p999_us", result.p999_us});
        sample.push_back({"gen_lag_p99_us", result.gen_lag_p99_us});
        sample.push_back(
            {"peak_queue_depth",
             static_cast<double>(result.peak_queue_depth)});
        // Low 32 bits of the FNV-1a schedule hash (exact in a double):
        // identical across runs and machines under a fixed seed, so any
        // drift in the recorded results flags a reproducibility break.
        sample.push_back(
            {"schedule_hash32",
             static_cast<double>(result.schedule_hash & 0xffffffffull)});
        break;
      }
      case PointKind::kColl: {
        CollBenchParams params;
        params.parcelport = p.parcelport;
        params.platform = p.platform;
        params.localities = p.localities;
        params.workers = workers;
        params.op = p.coll_op;
        params.payload_bytes = p.msg_size;
        params.iters = static_cast<int>(
            expdriver::scaled_count(static_cast<std::size_t>(p.base_steps),
                                    env.scale));
        params.bandwidth_gbps = p.rate_bandwidth_gbps;
        params.latency_us = p.rate_latency_us;
        params.pkt_rate_mpps = p.rate_pkt_mpps;
        params.fabric_rails = p.fabric_rails;
        sample.push_back({"coll_us", run_collective_us(params)});
        break;
      }
      case PointKind::kFft: {
        FftParams params;
        params.parcelport = p.parcelport;
        params.platform = p.platform;
        params.localities = p.localities;
        params.workers = workers;
        params.dim = p.fft_dim;
        params.iters = static_cast<int>(
            expdriver::scaled_count(static_cast<std::size_t>(p.base_steps),
                                    env.scale));
        params.bandwidth_gbps = p.rate_bandwidth_gbps;
        params.latency_us = p.rate_latency_us;
        params.pkt_rate_mpps = p.rate_pkt_mpps;
        params.fabric_rails = p.fabric_rails;
        sample.push_back({"fft_ms", run_fft(params).ms_per_fft});
        break;
      }
    }

    if (!probes.empty()) {
      bench::set_snapshot_sink(nullptr);
      loadgen::set_snapshot_sink(nullptr);
      for (const auto& probe : probes) {
        sample.push_back(
            {probe.metric,
             have_snapshot ? static_cast<double>(snapshot.counter_sum(
                                 probe.prefix, probe.suffix))
                           : 0.0});
      }
    }
    return sample;
  };
}

int run_suite_main(const char* suite_name, int argc, char** argv) {
  register_all();
  const SuiteSpec* spec = SuiteRegistry::instance().find(suite_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown suite '%s'\n", suite_name);
    return 2;
  }
  const RunEnv env = expdriver::run_env_from_environment();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (supported: --json <file>)\n",
                   argv[i]);
    }
  }
  std::printf("# %s: %s\n", spec->figure.c_str(), spec->title.c_str());
  std::printf("# paper expectation: %s\n", spec->expectation.c_str());
  std::printf(
      "# env: scale=%.2f runs=%d warmup=%d workers/locality=%u (set "
      "AMTNET_BENCH_SCALE/RUNS/WARMUP/WORKERS to adjust)\n",
      env.scale, env.repetitions, env.warmup, env.workers);
  const SuiteResult result =
      expdriver::run_suite(*spec, env, make_harness_runner(*spec));
  if (!json_path.empty()) {
    if (!expdriver::write_file(json_path,
                               expdriver::results_to_json(result))) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace bench::suites
