// Profiling breakdown — the reproduction analogue of the paper's "profiling
// results show ..." analyses. Runs the same 16 KiB flood under each backend
// and prints the layer-by-layer counters: parcels vs HPX messages
// (aggregation ratio), fabric packets and bytes (protocol message overhead),
// TX-window rejections and RNR stalls (back-pressure), connection-cache
// pressure, and tasks executed per delivered message (runtime overhead).
#include <atomic>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "stack/stack.hpp"

namespace {

std::atomic<std::uint64_t> received{0};

void sink(std::vector<std::uint8_t> payload) {
  (void)payload;
  received.fetch_add(1);
}

void profile_config(const char* name, std::size_t msg_size,
                    std::size_t total, unsigned workers) {
  amtnet::StackOptions options;
  options.parcelport = name;
  options.num_localities = 2;
  options.threads_per_locality = workers;
  options.platform = "expanse";
  auto runtime = amtnet::make_runtime(options);

  received.store(0);
  const std::vector<std::uint8_t> payload(msg_size, 1);
  common::Timer timer;
  runtime->locality(0).spawn([&] {
    for (std::size_t i = 0; i < total; ++i) {
      amt::here().apply<&sink>(1, payload);
    }
  });
  runtime->locality(0).scheduler().wait_until(
      [&] { return received.load() >= total; });
  const double seconds = timer.elapsed_s();

  const auto send_stats = runtime->locality(0).stats();
  const auto recv_stats = runtime->locality(1).stats();
  const auto tx = runtime->fabric().nic(0).stats();
  const auto rx = runtime->fabric().nic(1).stats();
  const auto tasks0 = runtime->locality(0).scheduler().tasks_executed();
  const auto tasks1 = runtime->locality(1).scheduler().tasks_executed();
  const auto cache_fails =
      runtime->locality(0).connection_cache().acquire_failures();
  runtime->stop();

  std::printf("%s\n", name);
  std::printf("  rate                    : %8.1f K msgs/s\n",
              static_cast<double>(total) / seconds / 1e3);
  std::printf("  parcels -> HPX messages : %8llu -> %llu (aggregation %.2fx)\n",
              static_cast<unsigned long long>(send_stats.parcels_sent),
              static_cast<unsigned long long>(send_stats.messages_sent),
              send_stats.messages_sent
                  ? static_cast<double>(send_stats.parcels_sent) /
                        static_cast<double>(send_stats.messages_sent)
                  : 0.0);
  std::printf("  fabric pkts sender->recv: %8llu (%.2f per message: header"
              " + follow-ups + protocol)\n",
              static_cast<unsigned long long>(tx.packets_sent),
              send_stats.messages_sent
                  ? static_cast<double>(tx.packets_sent) /
                        static_cast<double>(send_stats.messages_sent)
                  : 0.0);
  std::printf("  fabric bytes sent       : %8.1f MiB\n",
              static_cast<double>(tx.bytes_sent) / (1024.0 * 1024.0));
  std::printf("  tx-window rejections    : %8llu, receiver RNR stalls: %llu\n",
              static_cast<unsigned long long>(tx.sends_rejected_tx_window),
              static_cast<unsigned long long>(rx.rnr_stalls));
  std::printf("  connection-cache misses : %8llu\n",
              static_cast<unsigned long long>(cache_fails));
  std::printf("  tasks executed (s/r)    : %8llu / %llu (%.2f per message)\n",
              static_cast<unsigned long long>(tasks0),
              static_cast<unsigned long long>(tasks1),
              static_cast<double>(tasks0 + tasks1) /
                  static_cast<double>(recv_stats.messages_received
                                          ? recv_stats.messages_received
                                          : 1));
  std::fflush(stdout);
}

}  // namespace

int main() {
  const auto env = bench::Env::from_environment();
  bench::print_header(
      "Profiling breakdown per backend (16KiB flood, then 8B flood)",
      "mpi shows fewer fabric packets/message only because aggregation "
      "batches parcels; lci shows lower per-message overhead and no "
      "connection-cache traffic with _i",
      env);
  const auto total16 = static_cast<std::size_t>(800 * env.scale);
  const auto total8 = static_cast<std::size_t>(4000 * env.scale);
  std::printf("== 16KiB x %zu ==\n", total16);
  for (const char* name :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i", "tcp_i"}) {
    profile_config(name, 16 * 1024, total16, env.workers);
  }
  std::printf("== 8B x %zu ==\n", total8);
  for (const char* name :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i", "tcp_i"}) {
    profile_config(name, 8, total8, env.workers);
  }
  return 0;
}
