// Profiling breakdown — the reproduction analogue of the paper's "profiling
// results show ..." analyses. Runs the same 16 KiB flood under each backend
// and prints the layer-by-layer breakdown, read entirely from the runtime's
// telemetry registry (src/telemetry/): parcels vs HPX messages (aggregation
// ratio), fabric packets and bytes (protocol message overhead), TX-window
// rejections and RNR stalls (back-pressure), connection-cache pressure,
// tasks executed per delivered message (runtime overhead), and the latency
// histograms — serialize time, LCI progress time, and the MPI progress-lock
// acquire wait (the paper §4's smoking gun for the mpi backend).
//
// Also dumps a Chrome-trace JSON (chrome://tracing / Perfetto) of the run to
// AMTNET_TRACE_FILE, or bench_profile_trace.json when unset.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "stack/stack.hpp"
#include "telemetry/telemetry.hpp"

namespace {

std::atomic<std::uint64_t> received{0};

void sink(std::vector<std::uint8_t> payload) {
  (void)payload;
  received.fetch_add(1);
}

void print_hist(const telemetry::Snapshot& snap, const char* label,
                const std::string& name, double scale, const char* unit) {
  const telemetry::HistogramSummary* h = snap.histogram(name);
  if (h == nullptr || h->count == 0) return;
  std::printf(
      "  %-24s: p50 %8.2f  p90 %8.2f  p99 %8.2f  max %8.2f %s (n=%llu)\n",
      label, static_cast<double>(h->p50) * scale,
      static_cast<double>(h->p90) * scale, static_cast<double>(h->p99) * scale,
      static_cast<double>(h->max) * scale,
      unit, static_cast<unsigned long long>(h->count));
}

void profile_config(const char* name, std::size_t msg_size, std::size_t total,
                    unsigned workers) {
  amtnet::StackOptions options;
  options.parcelport = name;
  options.num_localities = 2;
  options.threads_per_locality = workers;
  options.platform = "expanse";
  auto runtime = amtnet::make_runtime(options);

  received.store(0);
  const std::vector<std::uint8_t> payload(msg_size, 1);
  common::Timer timer;
  runtime->locality(0).spawn([&] {
    for (std::size_t i = 0; i < total; ++i) {
      amt::here().apply<&sink>(1, payload);
    }
  });
  runtime->locality(0).scheduler().wait_until(
      [&] { return received.load() >= total; });
  const double seconds = timer.elapsed_s();

  // Everything below comes from one registry snapshot — the same numbers
  // the removed per-layer stats atomics used to carry, now in one place.
  const telemetry::Snapshot snap = runtime->telemetry().snapshot();
  runtime->stop();

  const std::uint64_t parcels = snap.counter("amt/loc0/parcels_sent");
  const std::uint64_t messages = snap.counter("amt/loc0/messages_sent");
  const std::uint64_t delivered = snap.counter("amt/loc1/messages_received");
  const std::uint64_t packets = snap.counter("fabric/nic0/packets_sent");
  const std::uint64_t bytes = snap.counter("fabric/nic0/bytes_sent");
  const std::uint64_t tx_rejects =
      snap.counter("fabric/nic0/tx_window_rejects");
  const std::uint64_t rnr = snap.counter_sum("fabric/", "/rnr_stalls");
  const std::uint64_t cache_fails =
      snap.counter("amt/loc0/conncache_failures");
  const std::uint64_t tasks = snap.counter_sum("sched/", "/tasks_executed");
  const std::uint64_t steals = snap.counter_sum("sched/", "/tasks_stolen");

  std::printf("%s\n", name);
  std::printf("  rate                    : %8.1f K msgs/s\n",
              static_cast<double>(total) / seconds / 1e3);
  std::printf("  parcels -> HPX messages : %8llu -> %llu (aggregation %.2fx)\n",
              static_cast<unsigned long long>(parcels),
              static_cast<unsigned long long>(messages),
              messages ? static_cast<double>(parcels) /
                             static_cast<double>(messages)
                       : 0.0);
  std::printf("  fabric pkts sender->recv: %8llu (%.2f per message: header"
              " + follow-ups + protocol)\n",
              static_cast<unsigned long long>(packets),
              messages ? static_cast<double>(packets) /
                             static_cast<double>(messages)
                       : 0.0);
  std::printf("  fabric bytes sent       : %8.1f MiB\n",
              static_cast<double>(bytes) / (1024.0 * 1024.0));
  std::printf("  tx-window rejections    : %8llu, receiver RNR stalls: %llu\n",
              static_cast<unsigned long long>(tx_rejects),
              static_cast<unsigned long long>(rnr));
  std::printf("  connection-cache misses : %8llu\n",
              static_cast<unsigned long long>(cache_fails));
  std::printf("  tasks executed (stolen) : %8llu (%llu) — %.2f per message\n",
              static_cast<unsigned long long>(tasks),
              static_cast<unsigned long long>(steals),
              static_cast<double>(tasks) /
                  static_cast<double>(delivered ? delivered : 1));
  print_hist(snap, "serialize", "amt/loc0/serialize_ns", 1e-3, "us");
  print_hist(snap, "parcelport send", "pplci/loc0/send_ns", 1e-3, "us");
  print_hist(snap, "parcelport send", "ppmpi/loc0/send_ns", 1e-3, "us");
  print_hist(snap, "parcelport send", "pptcp/loc0/send_ns", 1e-3, "us");
  print_hist(snap, "lci progress", "minilci/dev0/progress_ns", 1e-3, "us");
  // The paper §4 smoking gun: time workers spend waiting to acquire the
  // MPI big lock before every MPI call (coarse lock mode only).
  print_hist(snap, "mpi lock wait", "minimpi/comm0/progress_lock_wait_ns",
             1e-3, "us");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Profiling breakdown per backend (16KiB flood, then 8B flood)",
      "mpi shows fewer fabric packets/message only because aggregation "
      "batches parcels; lci shows lower per-message overhead and no "
      "connection-cache traffic with _i",
      env);
  if (!telemetry::timing_enabled()) {
    std::printf("# AMTNET_TELEMETRY=off: latency histograms will be empty\n");
  }
  // Record the whole run as a Chrome trace regardless of AMTNET_TRACE_FILE
  // (which only selects the output path here).
  telemetry::TraceRecorder& tracer = telemetry::TraceRecorder::instance();
  tracer.set_enabled(telemetry::timing_enabled());
  const std::string trace_file = telemetry::TraceRecorder::env_trace_file()
                                     .empty()
                                     ? std::string("bench_profile_trace.json")
                                     : telemetry::TraceRecorder::env_trace_file();

  const auto total16 = static_cast<std::size_t>(800 * env.scale);
  const auto total8 = static_cast<std::size_t>(4000 * env.scale);
  std::printf("== 16KiB x %zu ==\n", total16);
  for (const char* name :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i", "tcp_i"}) {
    profile_config(name, 16 * 1024, total16, env.workers);
  }
  std::printf("== 8B x %zu ==\n", total8);
  for (const char* name :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i", "tcp_i"}) {
    profile_config(name, 8, total8, env.workers);
  }

  if (tracer.enabled()) {
    if (tracer.dump_json_to_file(trace_file)) {
      std::printf("# chrome trace written to %s (%llu events dropped)\n",
                  trace_file.c_str(),
                  static_cast<unsigned long long>(tracer.dropped()));
    } else {
      std::printf("# failed to write chrome trace to %s\n",
                  trace_file.c_str());
    }
  }
  return 0;
}
