// google-benchmark microbenchmarks for the hot-path primitives the paper's
// analysis keeps pointing at: completion-queue push/poll, matching-table
// insert/match, packet-pool alloc/free, spin-lock vs mutex acquisition,
// serialization (inline vs zero-copy), and fabric injection.
#include <benchmark/benchmark.h>

#include <mutex>
#include <vector>

#include "amt/serialization.hpp"
#include "common/spinlock.hpp"
#include "fabric/nic.hpp"
#include "minilci/completion.hpp"
#include "minilci/matching_table.hpp"
#include "minilci/packet_pool.hpp"
#include "queues/mpmc_queue.hpp"
#include "queues/mpsc_queue.hpp"
#include "queues/spsc_ring.hpp"

namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  queues::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.try_push(i++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_MpscQueuePushPop(benchmark::State& state) {
  queues::MpscQueue<std::uint64_t> queue;
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  queues::MpmcQueue<std::uint64_t> queue(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.try_push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_SpinMutexLockUnlock(benchmark::State& state) {
  common::SpinMutex mutex;
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_SpinMutexLockUnlock);

void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex mutex;
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_LciCompQueue(benchmark::State& state) {
  minilci::CompQueue cq;
  for (auto _ : state) {
    minilci::CqEntry entry;
    entry.tag = 1;
    cq.push(std::move(entry));
    benchmark::DoNotOptimize(cq.poll());
  }
}
BENCHMARK(BM_LciCompQueue);

void BM_LciSynchronizer(benchmark::State& state) {
  minilci::Synchronizer sync(1);
  for (auto _ : state) {
    sync.signal(minilci::CqEntry{});
    std::vector<minilci::CqEntry> out;
    benchmark::DoNotOptimize(sync.test(&out));
  }
}
BENCHMARK(BM_LciSynchronizer);

void BM_MatchingTableRendezvous(benchmark::State& state) {
  minilci::MatchingTable table;
  minilci::Tag tag = 0;
  for (auto _ : state) {
    table.insert_arrival(0, tag, minilci::Arrival{});
    benchmark::DoNotOptimize(
        table.insert_recv(0, tag, minilci::PostedRecv{}));
    ++tag;
  }
}
BENCHMARK(BM_MatchingTableRendezvous);

void BM_PacketPoolAllocRelease(benchmark::State& state) {
  minilci::PacketPool pool(256, 8192);
  for (auto _ : state) {
    auto packet = pool.try_alloc();
    benchmark::DoNotOptimize(packet->data());
  }
}
BENCHMARK(BM_PacketPoolAllocRelease);

void BM_SerializeInline(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    amt::OutputArchive ar(1 << 20);  // huge threshold: always inline
    ar << data;
    benchmark::DoNotOptimize(ar.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_SerializeInline)->Arg(8)->Arg(512)->Arg(4096);

void BM_SerializeZeroCopy(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    amt::OutputArchive ar(8);  // tiny threshold: always a zero-copy chunk
    ar << data;
    benchmark::DoNotOptimize(ar.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_SerializeZeroCopy)->Arg(512)->Arg(4096)->Arg(65536);

void BM_FabricSendPollRoundtrip(benchmark::State& state) {
  fabric::Fabric fabric(fabric::Profile::loopback(2));
  const std::vector<std::byte> payload(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    while (fabric.nic(0).post_send(1, payload.data(), payload.size(), 1) !=
           common::Status::kOk) {
      fabric.nic(1).poll_rx(64, [](fabric::RxEvent&&) {});
    }
    std::size_t got = 0;
    while (got == 0) {
      got = fabric.nic(1).poll_rx(1, [](fabric::RxEvent&&) {});
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FabricSendPollRoundtrip)->Arg(8)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
