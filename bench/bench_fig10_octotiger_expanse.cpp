// Figure 10: Octo-Tiger proxy strong scaling on the Expanse-like platform
// profile (HDR InfiniBand, Table 2) — mpi, mpi_i, and the default LCI
// configuration. Prints steps/s plus the lci/mpi speedup columns the paper
// plots on the right axis.
#include <cstdio>
#include <map>
#include <string>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 10: Octo-Tiger proxy strong scaling, Expanse profile (level "
      "6 -> proxy level 3, 5 steps -> scaled)",
      "lci >= mpi >= mpi_i at every node count, gap growing with nodes; "
      "mpi_i disproportionately bad on the high-core-count platform "
      "(blocking-lock convoy; paper: up to 13.6x)",
      env);
  std::printf("config,localities,steps_per_s,stddev\n");

  const std::uint32_t locality_counts[] = {2, 4, 6, 8};
  std::map<std::string, std::map<std::uint32_t, double>> results;
  for (const char* config : {"mpi", "mpi_i", "lci_psr_cq_pin_i"}) {
    for (std::uint32_t localities : locality_counts) {
      bench::OctoParams params;
      params.parcelport = config;
      params.platform = "expanse";
      params.localities = localities;
      params.level = 3;
      params.steps = static_cast<int>(2 * env.scale);
      params.workers = 2;
      results[config][localities] =
          bench::report_octo_point(params, env.runs);
    }
  }

  std::printf("# speedup columns (right axis of the paper's figure)\n");
  std::printf("localities,lci_over_mpi,lci_over_mpi_i\n");
  for (std::uint32_t localities : locality_counts) {
    std::printf("%u,%.3f,%.3f\n", localities,
                results["lci_psr_cq_pin_i"][localities] /
                    results["mpi"][localities],
                results["lci_psr_cq_pin_i"][localities] /
                    results["mpi_i"][localities]);
  }
  return 0;
}
