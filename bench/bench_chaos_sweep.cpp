// Chaos sweep: message rate under escalating fault injection, plus the cost
// of the integrity machinery itself.
//
// Three regimes per configuration:
//   * clean        — faults off, integrity off: the PR-2 baseline numbers.
//   * integrity    — zero fault probabilities but AMTNET_FAULT_INTEGRITY=1:
//                    CRC trailers, acks, and retransmit tracking run on a
//                    polite network. The clean-vs-integrity gap is the pure
//                    protocol overhead (acceptance: within noise for the
//                    fault-free case only when integrity is off, which is
//                    the default).
//   * drop/dup/corrupt at 1%, 3%, 5% — throughput under real chaos: rates
//                    degrade with retransmits but every run still delivers
//                    everything (the harness validates counts internally).
//
// Faults are passed through the AMTNET_FAULT_* environment knobs, exactly
// as a user would inject them, so this bench also exercises that plumbing.
// Seeds are fixed per point; rerunning reproduces the same fault pattern.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.hpp"

namespace {

struct Regime {
  const char* label;
  const char* drop;
  const char* dup;
  const char* corrupt;
  const char* integrity;
};

void apply_regime(const Regime& regime) {
  setenv("AMTNET_FAULT_DROP", regime.drop, 1);
  setenv("AMTNET_FAULT_DUP", regime.dup, 1);
  setenv("AMTNET_FAULT_CORRUPT", regime.corrupt, 1);
  setenv("AMTNET_FAULT_INTEGRITY", regime.integrity, 1);
  setenv("AMTNET_FAULT_SEED", "12345", 1);
}

void clear_regime() {
  unsetenv("AMTNET_FAULT_DROP");
  unsetenv("AMTNET_FAULT_DUP");
  unsetenv("AMTNET_FAULT_CORRUPT");
  unsetenv("AMTNET_FAULT_INTEGRITY");
  unsetenv("AMTNET_FAULT_SEED");
}

}  // namespace

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Chaos sweep: 8-byte message rate vs injected fault intensity",
      "integrity-only matches clean within protocol-overhead noise; rates "
      "degrade gracefully as drop/dup/corrupt rise to 5% with zero lost or "
      "corrupted deliveries",
      env);

  const Regime regimes[] = {
      {"clean", "0", "0", "0", "0"},
      {"integrity", "0", "0", "0", "1"},
      {"faults_1pct", "0.01", "0.01", "0.01", "0"},
      {"faults_3pct", "0.03", "0.03", "0.03", "0"},
      {"faults_5pct", "0.05", "0.05", "0.05", "0"},
  };
  const char* configs[] = {"lci_psr_cq_pin_i", "mpi_i"};

  std::printf(
      "regime,config,attempted_K/s,achieved_injection_K/s,"
      "message_rate_K/s,stddev_K/s\n");
  for (const char* config : configs) {
    for (const Regime& regime : regimes) {
      apply_regime(regime);
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.total_msgs = static_cast<std::size_t>(20000 * env.scale);
      params.workers = env.workers;
      std::printf("%s,", regime.label);
      bench::report_rate_point(params, env.runs);
    }
  }
  clear_regime();
  return 0;
}
