// Figure 3: highest achieved 8 B message rate across injection rates, for
// all eleven configurations of the paper.
#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 3: peak 8B message rate across injection rates (11 configs)",
      "lci_psr_cq_pin_i highest; all mt variants clustered well below the "
      "pin variants; mpi variants lowest",
      env);
  std::printf("config,peak_message_rate_K/s\n");

  const double rates_kps[] = {8, 32, 0};
  for (const char* config :
       {"lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i", "mpi",
        "mpi_i"}) {
    double peak = 0.0;
    for (double rate : rates_kps) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.batch = 100;
      params.total_msgs = static_cast<std::size_t>(5000 * env.scale);
      params.attempted_rate = rate * 1e3;
      params.workers = env.workers;
      std::printf("# ");
      peak = std::max(peak, bench::report_rate_point(params, env.runs));
    }
    std::printf("%s,%.1f\n", config, peak);
    std::fflush(stdout);
  }
  return 0;
}
