// Figure 7: single-chain (window 1) ping-pong latency vs message size, all
// eleven configurations. The zero-copy serialization threshold stays at its
// 8192-byte default, so sizes above 8 KiB add a rendezvous follow-up.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 7: one-way latency vs message size, window 1 (11 configs)",
      "lci_psr_cq_pin(_i) lowest across sizes; mpi_i competitive below 1KB "
      "then 3-5x worse for large messages; send-immediate always helps lci "
      "latency",
      env);
  std::printf("config,msg_size,window,latency_us,stddev_us\n");

  const std::size_t sizes[] = {8, 64, 512, 4096, 16384, 65536};
  for (const char* config :
       {"lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i", "mpi",
        "mpi_i"}) {
    for (std::size_t size : sizes) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = size;
      params.window = 1;
      params.steps = static_cast<unsigned>(60 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
