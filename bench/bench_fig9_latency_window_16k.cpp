// Figure 9: 16 KiB message latency vs window size, all eleven
// configurations. Each message uses header + rendezvous follow-up.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 9: 16KiB one-way latency vs window size (11 configs)",
      "the mpi/lci gap widens with the window (paper: mpi_i vs "
      "lci_psr_cq_pin_i grows from 2x at window 1 to 9.6x at window 64)",
      env);
  std::printf("config,msg_size,window,latency_us,stddev_us\n");

  const unsigned windows[] = {1, 2, 4, 8, 16, 32, 64};
  for (const char* config :
       {"lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i", "mpi",
        "mpi_i"}) {
    for (unsigned window : windows) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = 16 * 1024;
      params.window = window;
      params.steps = static_cast<unsigned>(25 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
