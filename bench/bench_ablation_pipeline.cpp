// Ablation: follow-up pipeline depth — how many follow-up pieces a sender
// connection keeps in flight at once (pd1 reproduces the old serialized
// one-op-at-a-time walk, no suffix = unbounded). Swept on the paper's 16 KiB
// message-rate shape (header + one zero-copy follow-up) and on multi-zchunk
// payloads (header + 2 or 4 follow-ups) over a 4-rail fabric, where eager
// posting lets independent pieces ride different rails concurrently.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: LCI follow-up pipeline depth (pd1/pd4/pd16/unbounded)",
      "unbounded depth sustains a rate >= depth 1, and the gap grows with "
      "the number of zero-copy chunks per message (more independent pieces "
      "to overlap)",
      env);
  std::printf(
      "depth,zchunks,config,attempted_K/s,achieved_injection_K/s,"
      "message_rate_K/s,stddev_K/s\n");

  struct Depth {
    const char* label;   // CSV column
    const char* config;  // parcelport name carrying the pd token
  };
  const Depth depths[] = {
      {"1", "lci_psr_cq_pin_pd1_i"},
      {"4", "lci_psr_cq_pin_pd4_i"},
      {"16", "lci_psr_cq_pin_pd16_i"},
      {"inf", "lci_psr_cq_pin_i"},
  };

  // 16 KiB per chunk (over the 8 KiB zero-copy threshold); zchunks=1 is the
  // Figure 4 shape, 2 and 4 stress out-of-order piece completion.
  for (const std::size_t zchunks : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const Depth& depth : depths) {
      bench::RateParams params;
      params.parcelport = depth.config;
      params.msg_size = 16 * 1024;
      params.zchunk_count = zchunks;
      params.batch = 10;
      params.total_msgs = static_cast<std::size_t>(800 * env.scale);
      params.workers = env.workers;
      params.fabric_rails = 4;
      std::printf("%s,%zu,", depth.label, zchunks);
      bench::report_rate_point(params, env.runs);
    }
  }

  // Per-message view: single-chain ping-pong with multi-zchunk hops. The
  // flood above hides per-connection serialization behind cross-message
  // parallelism; one chain exposes it directly — with depth 1 each hop pays
  // one piece round after another, with unbounded depth the pieces overlap
  // across the four rails.
  std::printf(
      "\ndepth,zchunks,config,msg_size,window,latency_us,stddev_us\n");
  for (const std::size_t zchunks : {std::size_t{2}, std::size_t{4}}) {
    for (const Depth& depth : depths) {
      bench::LatencyParams params;
      params.parcelport = depth.config;
      params.msg_size = 16 * 1024;
      params.zchunk_count = zchunks;
      params.window = 1;
      params.steps = static_cast<unsigned>(150 * env.scale);
      params.workers = env.workers;
      params.fabric_rails = 4;
      std::printf("%s,%zu,", depth.label, zchunks);
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
