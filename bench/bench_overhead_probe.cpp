// Telemetry overhead probe: unlimited-rate 8B flood on the fastest config
// (lci_psr_cq_pin_i), one CSV rate row. Compare three settings to check the
// "telemetry costs <= 5% message rate" budget:
//   * this build as-is            (counters + timing histograms, tracing off)
//   * AMTNET_TELEMETRY=0          (counters only; no clock reads)
//   * a -DAMTNET_TELEMETRY_DISABLED=ON build (everything compiled out)
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Telemetry overhead probe: unlimited 8B flood, lci_psr_cq_pin_i",
      "rate within ~5% of an AMTNET_TELEMETRY_DISABLED build; "
      "AMTNET_TELEMETRY=0 within noise of it",
      env);
  std::printf("config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
              "stddev_K/s\n");
  bench::RateParams params;
  params.parcelport = "lci_psr_cq_pin_i";
  params.msg_size = 8;
  params.batch = 100;
  params.total_msgs = static_cast<std::size_t>(20000 * env.scale);
  params.attempted_rate = 0;  // unlimited
  params.workers = env.workers;
  bench::report_rate_point(params, env.runs);
  return 0;
}
