// Shared benchmark harness reproducing the paper's three experiment shapes:
//   * message-rate microbenchmark (§4.1, Figures 1-6): a sender creates
//     tasks at a fixed attempted rate, each task injects a batch of
//     fixed-size messages; the receiver acks once everything arrived. We
//     report the achieved injection rate and the achieved message rate.
//   * multi-chain ping-pong latency (§4.2, Figures 7-9): `window` chains of
//     `steps` round trips; one-way latency = elapsed / (2 * steps).
//   * Octo-Tiger proxy strong scaling (§5, Figures 10-11): steps/second of
//     the octree proxy across locality counts and parcelports.
//
// Scaling knobs (environment):
//   AMTNET_BENCH_SCALE  multiplies message/step counts (default 1.0)
//   AMTNET_BENCH_RUNS   repetitions per data point   (default 2)
//   AMTNET_BENCH_WORKERS worker threads per locality (default 8)
//
// Command-line flags (parsed by Env::from_args):
//   --json <file>  additionally write every reported data point as a JSON
//                  record to <file>; the file is rewritten after each point
//                  so interrupted runs still leave valid JSON behind.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace amt {
class Runtime;
}

namespace bench {

struct Env {
  double scale = 1.0;
  int runs = 2;
  unsigned workers = 8;
  std::string json_path;  // empty: no JSON sink
  static Env from_environment();
  /// from_environment() plus command-line flags (currently --json <file>,
  /// which also installs the process-wide JSON record sink).
  static Env from_args(int argc, char** argv);
};

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
};

inline Stats stats_of(const std::vector<double>& samples) {
  Stats stats;
  if (samples.empty()) return stats;
  for (double s : samples) stats.mean += s;
  stats.mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - stats.mean) * (s - stats.mean);
  stats.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return stats;
}

// ---- message rate (Figures 1-6) ----

struct RateParams {
  std::string parcelport;
  std::size_t msg_size = 8;
  std::size_t batch = 100;
  std::size_t total_msgs = 10000;
  double attempted_rate = 0.0;  // messages/s; 0 = unlimited
  unsigned workers = 4;
  std::string platform = "expanse";
  std::size_t zero_copy_threshold = 8192;  // HPX default
  std::size_t max_connections = 8192;      // connection-cache cap
  unsigned fabric_rails = 0;               // 0 = platform default
  // Multi-zchunk shape: each message carries this many zero-copy chunks of
  // msg_size bytes instead of one inline payload (each chunk must exceed
  // zero_copy_threshold to travel zero-copy). Supported: 0 (plain payload,
  // the default), 1, 2, 4.
  std::size_t zchunk_count = 0;
  // Shaped wire (any field > 0 turns wall-clock gating on, like the
  // open-loop harness): per-packet latency, line rate, and a NIC
  // message-rate cap. A pkt_rate cap makes a small-message flood
  // message-rate-bound — the regime where coalescing pays — instead of
  // host-CPU-bound. 0 everywhere = the platform's zero-time fabric.
  double bandwidth_gbps = 0.0;
  double latency_us = 0.0;
  double pkt_rate_mpps = 0.0;
};

struct RateResult {
  double achieved_injection_rate = 0.0;  // messages/s
  double message_rate = 0.0;             // messages/s
};

RateResult run_message_rate(const RateParams& params);

/// Repeats the rate benchmark and prints one CSV row:
/// config,attempted_K/s,injection_K/s,rate_K/s,rate_stddev_K/s
/// Returns the mean message rate (K/s).
double report_rate_point(const RateParams& params, int runs);

// ---- latency (Figures 7-9) ----

struct LatencyParams {
  std::string parcelport;
  std::size_t msg_size = 8;
  unsigned window = 1;  // concurrent ping-pong chains
  unsigned steps = 100; // round trips per chain
  unsigned workers = 4;
  std::string platform = "expanse";
  std::size_t zero_copy_threshold = 8192;
  unsigned fabric_rails = 0;  // 0 = platform default
  // Multi-zchunk shape: each hop carries this many zero-copy chunks of
  // msg_size bytes instead of one inline payload. Supported: 0 (plain
  // payload, the default), 2, 4.
  std::size_t zchunk_count = 0;
};

double run_latency_us(const LatencyParams& params);

/// CSV row: config,msg_size,window,latency_us,stddev_us
void report_latency_point(const LatencyParams& params, int runs);

// ---- Octo-Tiger proxy (Figures 10-11) ----

struct OctoParams {
  std::string parcelport;
  std::string platform = "expanse";
  std::uint32_t localities = 2;
  int level = 3;
  int steps = 3;
  unsigned workers = 2;
};

double run_octo_steps_per_second(const OctoParams& params);

/// CSV row: config,localities,steps_per_s,stddev. Returns mean steps/s.
double report_octo_point(const OctoParams& params, int runs);

// ---- collective rounds (docs/collectives.md ablation) ----

struct CollBenchParams {
  std::string parcelport;  // may carry a coll<ALGO> token
  std::string platform = "expanse";
  std::uint32_t localities = 4;
  unsigned workers = 2;
  std::string op = "allreduce";  // allreduce | broadcast | alltoall | barrier
  std::size_t payload_bytes = 8; // per-rank block for alltoall
  int iters = 50;                // collectives timed back to back
  // Shaped wire (any field > 0 switches the fabric to wall-clock gating).
  double bandwidth_gbps = 0.0;
  double latency_us = 0.0;
  double pkt_rate_mpps = 0.0;
  unsigned fabric_rails = 0;
};

/// Mean wall-clock microseconds per collective across `iters` back-to-back
/// rounds (barrier-fenced, measured on rank 0).
double run_collective_us(const CollBenchParams& params);

/// CSV row: config,op,localities,payload,coll_us,stddev_us. Returns mean.
double report_collective_point(const CollBenchParams& params, int runs);

/// Prints the standard benchmark header: figure id, paper expectation, env.
void print_header(const char* figure, const char* expectation,
                  const Env& env);

/// Installs (or, with an empty path, removes) the JSON record sink used by
/// the report_* functions. Usually set via Env::from_args / --json.
void set_json_output(const std::string& path);

/// Installs a callback that receives the telemetry registry snapshot of each
/// benchmark run, captured just before the runtime stops. The experiment
/// driver uses it to pull per-point counters (suite telemetry probes); pass
/// nullptr to remove. Not thread-safe vs a running benchmark.
void set_snapshot_sink(std::function<void(const telemetry::Snapshot&)> sink);

/// Feeds `runtime`'s telemetry snapshot to the installed snapshot sink
/// (no-op without one). Benchmark entry points living outside harness.cpp
/// call this just before stopping the runtime they drove.
void capture_harness_snapshot(const amt::Runtime& runtime);

}  // namespace bench
