// Ablation (§7.1 main lesson): the coarse blocking progress lock inside the
// MPI/UCX layer vs a fine-grained-locking variant of the same library
// (config token `fine`). The paper's profiles blame the coarse lock for the
// MPI parcelport's collapse under concurrent messages; here the two minimpi
// lock disciplines are compared directly under the same parcelport.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: coarse vs fine-grained progress lock in the MPI layer",
      "the fine-grained variant sustains higher 16KiB message rates and "
      "lower windowed latency; the gap grows with concurrency (worker "
      "threads convoy on the blocking lock in MPI_Test)",
      env);

  std::printf("# 16KiB message rate (unlimited injection)\n");
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");
  for (const char* config : {"mpi_i", "mpi_fine_i"}) {
    bench::RateParams params;
    params.parcelport = config;
    params.msg_size = 16 * 1024;
    params.batch = 10;
    params.total_msgs = static_cast<std::size_t>(1200 * env.scale);
    params.attempted_rate = 0.0;
    params.workers = env.workers;
    bench::report_rate_point(params, env.runs);
  }

  std::printf("# 8B latency vs window\n");
  std::printf("config,msg_size,window,latency_us,stddev_us\n");
  for (const char* config : {"mpi_i", "mpi_fine_i"}) {
    for (unsigned window : {1u, 8u, 32u}) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = 8;
      params.window = window;
      params.steps = static_cast<unsigned>(40 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
