// Thin wrapper over the "ablation_collectives" suite of the experiment
// registry (bench/suites.cpp): centralised root-gather collectives vs the
// log-depth binomial / recursive-doubling / ring families on a
// message-rate-capped wire, across localities and payload sizes. The point
// matrix, repetition policy and metric definitions all live in the
// registry; `bench_suite` runs the same suite with baseline gating and
// docs rendering on top.
#include "suites.hpp"

int main(int argc, char** argv) {
  return bench::suites::run_suite_main("ablation_collectives", argc, argv);
}
