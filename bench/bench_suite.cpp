// Experiment driver CLI: the one entry point to the declarative suite
// registry.
//
//   bench_suite --list
//       Enumerate every registered suite (one line per suite).
//   bench_suite --run <suite|smoke|all> [--results-dir D]
//       Run the selected suites and write BENCH_<suite>.json into the
//       results directory (default <repo>/bench/results).
//   bench_suite --check [suite|smoke|all] [--baseline-dir D]
//                [--tolerance-scale X] [--use-results]
//       Re-run the selected suites (or, with --use-results, reuse the files
//       in the results directory) and compare against the committed
//       baselines. Exits 1 when any gated metric regressed beyond its
//       tolerance band. This is the CI perf-regression gate.
//   bench_suite --render [--dry-run]
//       Regenerate docs/figures.md and the marked blocks of EXPERIMENTS.md
//       and docs/tuning.md from the registry, the knob registry and the
//       recorded results. --dry-run writes nothing and exits 1 if any file
//       would change (the CI docs-freshness gate).
//
// Shared flags: --repo-root <dir> (default "."), --results-dir,
// --baseline-dir.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "expdriver/compare.hpp"
#include "expdriver/driver.hpp"
#include "expdriver/registry.hpp"
#include "expdriver/render.hpp"
#include "expdriver/results.hpp"
#include "suites.hpp"

namespace {

using expdriver::SuiteRegistry;
using expdriver::SuiteResult;
using expdriver::SuiteSpec;

struct Options {
  std::string mode;           // list | run | check | render
  std::string target;         // suite name | "all" | "smoke"
  std::string repo_root = ".";
  std::string results_dir;    // default <repo_root>/bench/results
  std::string baseline_dir;   // default <repo_root>/bench/baselines
  double tolerance_scale = 1.0;
  bool use_results = false;   // --check: reuse recorded results, don't re-run
  bool dry_run = false;       // --render: report-only
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: bench_suite --list\n"
      "       bench_suite --run <suite|smoke|all> [--results-dir D]\n"
      "       bench_suite --check [suite|smoke|all] [--baseline-dir D]\n"
      "                   [--tolerance-scale X] [--use-results]\n"
      "       bench_suite --render [--dry-run]\n"
      "shared: --repo-root <dir> (default .)\n"
      "env:    AMTNET_BENCH_SCALE/RUNS/WARMUP/WORKERS scale the runs\n");
}

std::vector<const SuiteSpec*> select_suites(const std::string& target) {
  SuiteRegistry& registry = SuiteRegistry::instance();
  if (target == "all") return registry.all();
  if (target == "smoke") return registry.smoke();
  std::vector<const SuiteSpec*> picked;
  if (const SuiteSpec* spec = registry.find(target)) picked.push_back(spec);
  return picked;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

int do_list() {
  std::printf("%-28s %-34s %-20s %6s %s\n", "suite", "binary", "figure",
              "points", "smoke");
  for (const SuiteSpec* spec : SuiteRegistry::instance().all()) {
    std::printf("%-28s %-34s %-20s %6zu %s\n", spec->name.c_str(),
                spec->binary.c_str(), spec->figure.c_str(),
                spec->points.size(), spec->smoke ? "yes" : "-");
  }
  return 0;
}

SuiteResult run_one(const SuiteSpec& spec, const expdriver::RunEnv& env) {
  std::printf("== %s (%s) ==\n", spec.name.c_str(), spec.figure.c_str());
  return expdriver::run_suite(spec, env,
                              bench::suites::make_harness_runner(spec));
}

int do_run(const Options& options) {
  const auto suites = select_suites(options.target);
  if (suites.empty()) {
    std::fprintf(stderr, "no suite matches '%s' (try --list)\n",
                 options.target.c_str());
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.results_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n",
                 options.results_dir.c_str(), ec.message().c_str());
    return 1;
  }
  const expdriver::RunEnv env = expdriver::run_env_from_environment();
  for (const SuiteSpec* spec : suites) {
    const SuiteResult result = run_one(*spec, env);
    const std::string path = join_path(
        options.results_dir, expdriver::results_file_name(spec->name));
    if (!expdriver::write_file(path, expdriver::results_to_json(result))) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int do_check(const Options& options) {
  const auto suites = select_suites(options.target);
  if (suites.empty()) {
    std::fprintf(stderr, "no suite matches '%s' (try --list)\n",
                 options.target.c_str());
    return 2;
  }
  const expdriver::RunEnv env = expdriver::run_env_from_environment();
  expdriver::CompareOptions compare_options;
  compare_options.tolerance_scale = options.tolerance_scale;
  int checked = 0;
  bool failed = false;
  for (const SuiteSpec* spec : suites) {
    const std::string baseline_path = join_path(
        options.baseline_dir, expdriver::results_file_name(spec->name));
    const auto baseline_text = expdriver::read_file(baseline_path);
    if (!baseline_text) {
      std::printf("-- %s: no baseline at %s, skipping\n", spec->name.c_str(),
                  baseline_path.c_str());
      continue;
    }
    const auto baseline = expdriver::results_from_json(*baseline_text);
    if (!baseline) {
      std::fprintf(stderr, "-- %s: baseline %s is malformed\n",
                   spec->name.c_str(), baseline_path.c_str());
      failed = true;
      continue;
    }
    SuiteResult current;
    if (options.use_results) {
      const std::string results_path = join_path(
          options.results_dir, expdriver::results_file_name(spec->name));
      const auto text = expdriver::read_file(results_path);
      const auto parsed =
          text ? expdriver::results_from_json(*text) : std::nullopt;
      if (!parsed) {
        std::fprintf(stderr, "-- %s: no usable results at %s\n",
                     spec->name.c_str(), results_path.c_str());
        failed = true;
        continue;
      }
      current = *parsed;
    } else {
      current = run_one(*spec, env);
    }
    const expdriver::CompareReport report = expdriver::compare_results(
        spec, *baseline, current, compare_options);
    ++checked;
    for (const std::string& note : report.notes) {
      std::printf("-- %s: note: %s\n", spec->name.c_str(), note.c_str());
    }
    for (const std::string& regression : report.regressions) {
      std::fprintf(stderr, "-- %s: REGRESSION: %s\n", spec->name.c_str(),
                   regression.c_str());
    }
    std::printf("-- %s: %s\n", spec->name.c_str(),
                report.failed() ? "FAIL" : "ok");
    failed = failed || report.failed();
  }
  if (checked == 0 && !failed) {
    std::printf("no baselines found under %s; nothing gated\n",
                options.baseline_dir.c_str());
  }
  return failed ? 1 : 0;
}

expdriver::ResultsBySuite load_results(const std::string& results_dir) {
  expdriver::ResultsBySuite results;
  for (const SuiteSpec* spec : SuiteRegistry::instance().all()) {
    const std::string path =
        join_path(results_dir, expdriver::results_file_name(spec->name));
    const auto text = expdriver::read_file(path);
    if (!text) continue;
    if (auto parsed = expdriver::results_from_json(*text)) {
      results.emplace(spec->name, std::move(*parsed));
    } else {
      std::fprintf(stderr, "warning: ignoring malformed %s\n", path.c_str());
    }
  }
  return results;
}

/// Writes (or, in dry-run, diff-checks) one rendered file. Returns false on
/// hard errors; sets `stale` when dry-run detects a needed change.
bool emit(const std::string& path, const std::string& rendered, bool dry_run,
          bool& stale) {
  const auto existing = expdriver::read_file(path);
  if (existing && *existing == rendered) {
    std::printf("fresh  %s\n", path.c_str());
    return true;
  }
  if (dry_run) {
    std::printf("STALE  %s (re-run `bench_suite --render` and commit)\n",
                path.c_str());
    stale = true;
    return true;
  }
  if (!expdriver::write_file(path, rendered)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote  %s\n", path.c_str());
  return true;
}

/// Re-renders the block between `begin`/`end` markers of the file. Missing
/// markers are a hard error: the docs gate must not silently skip a file.
bool emit_block(const std::string& path, const char* begin, const char* end,
                const std::string& payload, bool dry_run, bool& stale) {
  const auto content = expdriver::read_file(path);
  if (!content) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  const auto replaced =
      expdriver::replace_between(*content, begin, end, payload);
  if (!replaced) {
    std::fprintf(stderr, "%s: markers '%s' .. '%s' missing or out of order\n",
                 path.c_str(), begin, end);
    return false;
  }
  return emit(path, *replaced, dry_run, stale);
}

int do_render(const Options& options) {
  const auto suites = SuiteRegistry::instance().all();
  const expdriver::ResultsBySuite results =
      load_results(options.results_dir);
  bool stale = false;
  bool ok = true;
  std::error_code ec;
  std::filesystem::create_directories(join_path(options.repo_root, "docs"),
                                      ec);
  ok = emit(join_path(options.repo_root, "docs/figures.md"),
            expdriver::render_figures_md(suites, results), options.dry_run,
            stale) &&
       ok;
  ok = emit_block(join_path(options.repo_root, "EXPERIMENTS.md"),
                  expdriver::kExperimentsBegin, expdriver::kExperimentsEnd,
                  expdriver::render_experiments_block(suites, results),
                  options.dry_run, stale) &&
       ok;
  ok = emit_block(join_path(options.repo_root, "docs/tuning.md"),
                  expdriver::kKnobsBegin, expdriver::kKnobsEnd,
                  expdriver::render_knobs_block(common::knob_registry()),
                  options.dry_run, stale) &&
       ok;
  if (!ok) return 2;
  return stale ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--list") == 0) {
      options.mode = "list";
    } else if (std::strcmp(arg, "--run") == 0) {
      options.mode = "run";
      options.target = value("--run");
    } else if (std::strcmp(arg, "--check") == 0) {
      options.mode = "check";
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        options.target = argv[++i];
      } else {
        options.target = "smoke";
      }
    } else if (std::strcmp(arg, "--render") == 0) {
      options.mode = "render";
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      options.dry_run = true;
    } else if (std::strcmp(arg, "--use-results") == 0) {
      options.use_results = true;
    } else if (std::strcmp(arg, "--repo-root") == 0) {
      options.repo_root = value(arg);
    } else if (std::strcmp(arg, "--results-dir") == 0) {
      options.results_dir = value(arg);
    } else if (std::strcmp(arg, "--baseline-dir") == 0) {
      options.baseline_dir = value(arg);
    } else if (std::strcmp(arg, "--tolerance-scale") == 0) {
      options.tolerance_scale = std::atof(value(arg));
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      usage(stderr);
      return 2;
    }
  }
  if (options.mode.empty()) {
    usage(stderr);
    return 2;
  }
  if (options.results_dir.empty()) {
    options.results_dir = join_path(options.repo_root, "bench/results");
  }
  if (options.baseline_dir.empty()) {
    options.baseline_dir = join_path(options.repo_root, "bench/baselines");
  }

  bench::suites::register_all();
  if (options.mode == "list") return do_list();
  if (options.mode == "run") return do_run(options);
  if (options.mode == "check") return do_check(options);
  return do_render(options);
}
