// Thin wrapper over the "ablation_fastpath" suite of the experiment registry
// (bench/suites.cpp). The point matrix, repetition policy and metric
// definitions all live there; `bench_suite` runs the same suite with
// baseline gating and docs rendering on top.
#include "suites.hpp"

int main(int argc, char** argv) {
  return bench::suites::run_suite_main("ablation_fastpath", argc, argv);
}
