// Thin wrapper over the "openloop" suite of the experiment registry
// (bench/suites.cpp): open-loop serving — a seeded Poisson/bursty load
// generator drives RPC actions through the shaped fabric past saturation,
// mapping the tail-latency knee and what each admission policy (shed /
// block / deadline-drop) does to it. The point matrix, repetition policy
// and metric definitions all live in the registry; `bench_suite` runs the
// same suite with baseline gating and docs rendering on top.
#include "suites.hpp"

int main(int argc, char** argv) {
  return bench::suites::run_suite_main("openloop", argc, argv);
}
