#include "fft.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "amt/collectives.hpp"
#include "common/clock.hpp"
#include "harness.hpp"
#include "stack/stack.hpp"

namespace bench {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Twiddle shared by the distributed path and the serial reference — both
// must execute the identical expression for bit-exact agreement.
std::complex<double> twiddle(std::size_t num, std::size_t den) {
  return std::polar(1.0, -2.0 * kPi * static_cast<double>(num % den) /
                             static_cast<double>(den));
}

// One benchmark at a time (the harness convention): the channel between
// the driving thread and the locality tasks.
std::atomic<int> g_fft_done{0};
std::atomic<std::uint64_t> g_fft_elapsed_ns{0};
amt::CollectiveGroup* g_fft_group = nullptr;

}  // namespace

void fft_radix2(std::complex<double>* data, std::size_t n) {
  assert(n != 0 && (n & (n - 1)) == 0);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> w = twiddle(k, len);
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
}

std::vector<std::complex<double>> fft_input(std::size_t n) {
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Weyl-style integer mix: reproducible, uncorrelated, exactly
    // representable transformations of small integers.
    const std::uint64_t a = (i * 2654435761u + 12345u) % 2048u;
    const std::uint64_t b = (i * 40503u + 9973u) % 2048u;
    x[i] = {static_cast<double>(a) / 1024.0 - 1.0,
            static_cast<double>(b) / 1024.0 - 1.0};
  }
  return x;
}

std::vector<std::complex<double>> fft_four_step_reference(
    const std::vector<std::complex<double>>& x, std::size_t dim) {
  assert(x.size() == dim * dim);
  // Matrix B[n2][n1] = x[dim * n1 + n2], row-FFT over n1.
  std::vector<std::complex<double>> b(dim * dim);
  for (std::size_t n2 = 0; n2 < dim; ++n2) {
    for (std::size_t n1 = 0; n1 < dim; ++n1) {
      b[n2 * dim + n1] = x[dim * n1 + n2];
    }
  }
  for (std::size_t n2 = 0; n2 < dim; ++n2) {
    fft_radix2(b.data() + n2 * dim, dim);
  }
  // Twiddle: Z[n2][k1] = W_N^{n2 k1} Y[n2][k1].
  const std::size_t total = dim * dim;
  for (std::size_t n2 = 0; n2 < dim; ++n2) {
    for (std::size_t k1 = 0; k1 < dim; ++k1) {
      b[n2 * dim + k1] *= twiddle(n2 * k1, total);
    }
  }
  // Transpose to T[k1][n2], then row-FFT over n2.
  std::vector<std::complex<double>> t(dim * dim);
  for (std::size_t k1 = 0; k1 < dim; ++k1) {
    for (std::size_t n2 = 0; n2 < dim; ++n2) {
      t[k1 * dim + n2] = b[n2 * dim + k1];
    }
  }
  for (std::size_t k1 = 0; k1 < dim; ++k1) {
    fft_radix2(t.data() + k1 * dim, dim);
  }
  return t;  // t[k1 * dim + k2] = X[dim * k2 + k1]
}

FftResult run_fft(const FftParams& params) {
  const std::size_t dim = params.dim;
  const std::uint32_t n_loc = params.localities;
  assert(dim != 0 && (dim & (dim - 1)) == 0);
  assert(dim % n_loc == 0);
  const std::size_t rows_per = dim / n_loc;  // n2 rows per locality
  const std::size_t total = dim * dim;

  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = n_loc;
  options.threads_per_locality = params.workers;
  options.platform = params.platform;
  options.fabric_rails = params.fabric_rails;
  amt::RuntimeConfig config = amtnet::make_runtime_config(options);
  if (params.bandwidth_gbps > 0.0 || params.latency_us > 0.0 ||
      params.pkt_rate_mpps > 0.0) {
    config.fabric.zero_time = false;
    if (params.bandwidth_gbps > 0.0) {
      config.fabric.bandwidth_gbps = params.bandwidth_gbps;
    }
    if (params.latency_us > 0.0) config.fabric.latency_us = params.latency_us;
    if (params.pkt_rate_mpps > 0.0) {
      config.fabric.pkt_rate_mpps = params.pkt_rate_mpps;
    }
  }
  auto runtime = std::make_unique<amt::Runtime>(
      config, amtnet::default_parcelport_factory());
  runtime->start();
  auto group = std::make_unique<amt::CollectiveGroup>(*runtime);
  g_fft_group = group.get();
  g_fft_done.store(0);
  g_fft_elapsed_ns.store(0);

  const auto input = fft_input(total);
  const auto reference = fft_four_step_reference(input, dim);
  const int iters = params.iters < 1 ? 1 : params.iters;

  for (amt::Rank r = 0; r < n_loc; ++r) {
    runtime->locality(r).spawn([&, r] {
      amt::CollectiveGroup& coll = *g_fft_group;
      const std::size_t row0 = r * rows_per;        // first local n2
      const std::size_t block_elems = rows_per * rows_per;
      const std::size_t block_bytes =
          block_elems * sizeof(std::complex<double>);
      std::vector<std::complex<double>> local(rows_per * dim);
      std::vector<std::complex<double>> transposed(rows_per * dim);
      amt::CollectiveGroup::Bytes send(block_bytes * n_loc);

      coll.barrier();
      const common::Nanos t0 = common::now_ns();
      for (int iter = 0; iter < iters; ++iter) {
        // Step 0: (re)load the local rows B[n2][n1] = x[dim*n1 + n2].
        for (std::size_t j = 0; j < rows_per; ++j) {
          for (std::size_t n1 = 0; n1 < dim; ++n1) {
            local[j * dim + n1] = input[dim * n1 + (row0 + j)];
          }
        }
        // Step 1: row FFTs over n1.
        for (std::size_t j = 0; j < rows_per; ++j) {
          fft_radix2(local.data() + j * dim, dim);
        }
        // Step 2: twiddle by W_N^{n2 k1}.
        for (std::size_t j = 0; j < rows_per; ++j) {
          for (std::size_t k1 = 0; k1 < dim; ++k1) {
            local[j * dim + k1] *= twiddle((row0 + j) * k1, total);
          }
        }
        // Step 3: all-to-all transpose. Block for destination m carries
        // [local row j][k1 in m's block], row-major.
        for (std::uint32_t m = 0; m < n_loc; ++m) {
          auto* out = reinterpret_cast<std::complex<double>*>(
              send.data() + m * block_bytes);
          for (std::size_t j = 0; j < rows_per; ++j) {
            for (std::size_t kk = 0; kk < rows_per; ++kk) {
              out[j * rows_per + kk] = local[j * dim + (m * rows_per + kk)];
            }
          }
        }
        const amt::CollectiveGroup::Bytes recv =
            coll.all_to_all(send, block_bytes);
        for (std::uint32_t src = 0; src < n_loc; ++src) {
          const auto* in = reinterpret_cast<const std::complex<double>*>(
              recv.data() + src * block_bytes);
          for (std::size_t j = 0; j < rows_per; ++j) {
            for (std::size_t kk = 0; kk < rows_per; ++kk) {
              // T[k1_local = kk][n2 = src*rows_per + j]
              transposed[kk * dim + (src * rows_per + j)] =
                  in[j * rows_per + kk];
            }
          }
        }
        // Step 4: row FFTs over n2.
        for (std::size_t kk = 0; kk < rows_per; ++kk) {
          fft_radix2(transposed.data() + kk * dim, dim);
        }
      }
      coll.barrier();
      if (r == 0) {
        g_fft_elapsed_ns.store(
            static_cast<std::uint64_t>(common::now_ns() - t0));
      }
      // Bit-exact validation of this locality's slice against the serial
      // reference (identical arithmetic in identical order).
      const std::size_t k1_base = r * rows_per;  // final rows are k1-blocks
      if (std::memcmp(transposed.data(),
                      reference.data() + k1_base * dim,
                      rows_per * dim * sizeof(std::complex<double>)) != 0) {
        std::fprintf(stderr,
                     "FATAL: distributed FFT diverged from the serial "
                     "reference (locality %u, dim %zu, %u localities)\n",
                     r, dim, n_loc);
        std::abort();
      }
      g_fft_done.fetch_add(1, std::memory_order_release);
    });
  }

  runtime->locality(0).scheduler().wait_until([&] {
    return g_fft_done.load(std::memory_order_acquire) ==
           static_cast<int>(n_loc);
  });
  capture_harness_snapshot(*runtime);
  g_fft_group = nullptr;
  group.reset();
  runtime->stop();
  FftResult result;
  result.ms_per_fft = static_cast<double>(g_fft_elapsed_ns.load()) / 1e6 /
                      static_cast<double>(iters);
  return result;
}

double report_fft_point(const FftParams& params, int runs) {
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    samples.push_back(run_fft(params).ms_per_fft);
  }
  const auto stats = stats_of(samples);
  std::printf("%s,%u,%zu,%.3f,%.3f\n", params.parcelport.c_str(),
              params.localities, params.dim, stats.mean, stats.stddev);
  std::fflush(stdout);
  return stats.mean;
}

}  // namespace bench
