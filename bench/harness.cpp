#include "harness.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "amt/collectives.hpp"
#include "common/clock.hpp"
#include "octoproxy/simulation.hpp"
#include "stack/stack.hpp"

namespace bench {

namespace {

// JSON record sink (--json). Records accumulate here and the whole file is
// rewritten after each one, so an interrupted benchmark leaves valid JSON.
std::string g_json_path;
std::vector<std::string> g_json_records;

void append_json_record(std::string record) {
  if (g_json_path.empty()) return;
  g_json_records.push_back(std::move(record));
  std::FILE* f = std::fopen(g_json_path.c_str(), "w");
  if (f == nullptr) return;
  std::fputs("{\"records\":[", f);
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "\n" : ",\n",
                 g_json_records[i].c_str());
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
}

// Snapshot sink: captures the runtime's telemetry registry right before a
// benchmark run tears it down (the registry dies with the runtime).
std::function<void(const telemetry::Snapshot&)> g_snapshot_sink;

void capture_snapshot(const amt::Runtime& runtime) {
  if (g_snapshot_sink) g_snapshot_sink(runtime.telemetry().snapshot());
}

}  // namespace

void set_json_output(const std::string& path) {
  g_json_path = path;
  g_json_records.clear();
}

void set_snapshot_sink(std::function<void(const telemetry::Snapshot&)> sink) {
  g_snapshot_sink = std::move(sink);
}

void capture_harness_snapshot(const amt::Runtime& runtime) {
  capture_snapshot(runtime);
}

Env Env::from_environment() {
  Env env;
  if (const char* s = std::getenv("AMTNET_BENCH_SCALE")) {
    env.scale = std::strtod(s, nullptr);
  }
  if (const char* s = std::getenv("AMTNET_BENCH_RUNS")) {
    env.runs = static_cast<int>(std::strtol(s, nullptr, 10));
  }
  if (const char* s = std::getenv("AMTNET_BENCH_WORKERS")) {
    env.workers = static_cast<unsigned>(std::strtoul(s, nullptr, 10));
  }
  return env;
}

Env Env::from_args(int argc, char** argv) {
  Env env = from_environment();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      env.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument '%s' (supported: --json <file>)\n",
                   argv[i]);
    }
  }
  set_json_output(env.json_path);
  return env;
}

void print_header(const char* figure, const char* expectation,
                  const Env& env) {
  std::printf("# %s\n", figure);
  std::printf("# paper expectation: %s\n", expectation);
  std::printf(
      "# env: scale=%.2f runs=%d workers/locality=%u (set "
      "AMTNET_BENCH_SCALE/RUNS/WORKERS to adjust)\n",
      env.scale, env.runs, env.workers);
}

// ---- message rate ------------------------------------------------------

namespace {

// Global benchmark channel (one benchmark run active at a time).
std::atomic<std::uint64_t> g_rate_received{0};
std::atomic<std::uint64_t> g_rate_expected{0};
std::atomic<std::uint64_t> g_rate_sent{0};
std::atomic<std::int64_t> g_rate_injection_end_ns{0};
std::atomic<bool> g_rate_done{false};

void rate_ack() { g_rate_done.store(true, std::memory_order_release); }

void rate_count_one() {
  const auto received = g_rate_received.fetch_add(1) + 1;
  if (received == g_rate_expected.load(std::memory_order_relaxed)) {
    // Receiver signals back with one short message (paper §4.1).
    amt::here().apply<&rate_ack>(0);
  }
}

void rate_sink(std::vector<std::uint8_t> payload) {
  (void)payload;
  rate_count_one();
}

// Multi-zchunk sinks: each vector argument above the zero-copy threshold
// becomes one zero-copy chunk, i.e. one pipelined follow-up transfer.
void rate_sink_z2(std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
  (void)a;
  (void)b;
  rate_count_one();
}

void rate_sink_z4(std::vector<std::uint8_t> a, std::vector<std::uint8_t> b,
                  std::vector<std::uint8_t> c, std::vector<std::uint8_t> d) {
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  rate_count_one();
}

}  // namespace

RateResult run_message_rate(const RateParams& params) {
  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = 2;
  options.threads_per_locality = params.workers;
  options.platform = params.platform;
  options.zero_copy_threshold = params.zero_copy_threshold;
  options.max_connections = params.max_connections;
  options.fabric_rails = params.fabric_rails;
  amt::RuntimeConfig config = amtnet::make_runtime_config(options);
  if (params.bandwidth_gbps > 0.0 || params.latency_us > 0.0 ||
      params.pkt_rate_mpps > 0.0) {
    // Shaped wire: wall-clock gating so the bottleneck is a property of the
    // modeled fabric (message rate / line rate), not of the host machine.
    config.fabric.zero_time = false;
    if (params.bandwidth_gbps > 0.0) {
      config.fabric.bandwidth_gbps = params.bandwidth_gbps;
    }
    if (params.latency_us > 0.0) config.fabric.latency_us = params.latency_us;
    if (params.pkt_rate_mpps > 0.0) {
      config.fabric.pkt_rate_mpps = params.pkt_rate_mpps;
    }
  }
  auto runtime = std::make_unique<amt::Runtime>(
      config, amtnet::default_parcelport_factory());
  runtime->start();

  // Guard against total_msgs == 0 (tiny AMTNET_BENCH_SCALE rounding a
  // count down to nothing): zero expected messages would never trip the
  // receiver ack and the benchmark would hang forever.
  const std::size_t wanted = params.total_msgs == 0 ? 1 : params.total_msgs;
  const std::size_t n_tasks = (wanted + params.batch - 1) / params.batch;
  const std::size_t total = n_tasks * params.batch;

  g_rate_received.store(0);
  g_rate_expected.store(total);
  g_rate_sent.store(0);
  g_rate_injection_end_ns.store(0);
  g_rate_done.store(false);

  const std::vector<std::uint8_t> payload(params.msg_size, 0x42);
  const double task_rate =
      params.attempted_rate > 0.0
          ? params.attempted_rate / static_cast<double>(params.batch)
          : 0.0;

  const common::Nanos t0 = common::now_ns();
  runtime->locality(0).spawn([&, t0] {
    amt::Locality& here = amt::here();
    for (std::size_t task = 0; task < n_tasks; ++task) {
      if (task_rate > 0.0) {
        const common::Nanos due =
            t0 + static_cast<common::Nanos>(
                     static_cast<double>(task) * 1e9 / task_rate);
        here.scheduler().wait_until(
            [&] { return common::now_ns() >= due; });
      }
      here.spawn([&] {
        amt::Locality& sender = amt::here();
        for (std::size_t i = 0; i < params.batch; ++i) {
          switch (params.zchunk_count) {
            case 2:
              sender.apply<&rate_sink_z2>(1, payload, payload);
              break;
            case 4:
              sender.apply<&rate_sink_z4>(1, payload, payload, payload,
                                          payload);
              break;
            default:  // 0 or 1: one payload (zero-copy iff over threshold)
              sender.apply<&rate_sink>(1, payload);
              break;
          }
          if (g_rate_sent.fetch_add(1) + 1 == total) {
            g_rate_injection_end_ns.store(common::now_ns());
          }
        }
      });
    }
  });

  runtime->locality(0).scheduler().wait_until(
      [] { return g_rate_done.load(std::memory_order_acquire); });
  const common::Nanos t_done = common::now_ns();
  capture_snapshot(*runtime);
  runtime->stop();

  RateResult result;
  const double injection_s =
      common::ns_to_s(g_rate_injection_end_ns.load() - t0);
  const double total_s = common::ns_to_s(t_done - t0);
  result.achieved_injection_rate =
      static_cast<double>(total) / std::max(injection_s, 1e-9);
  result.message_rate = static_cast<double>(total) / std::max(total_s, 1e-9);
  return result;
}

double report_rate_point(const RateParams& params, int runs) {
  std::vector<double> rates, injections;
  for (int run = 0; run < runs; ++run) {
    const auto result = run_message_rate(params);
    rates.push_back(result.message_rate / 1e3);
    injections.push_back(result.achieved_injection_rate / 1e3);
  }
  const auto rate = stats_of(rates);
  const auto injection = stats_of(injections);
  std::printf("%s,%.1f,%.1f,%.1f,%.1f\n", params.parcelport.c_str(),
              params.attempted_rate / 1e3, injection.mean, rate.mean,
              rate.stddev);
  std::fflush(stdout);
  char record[512];
  std::snprintf(record, sizeof(record),
                "{\"kind\":\"message_rate\",\"config\":\"%s\","
                "\"msg_size\":%zu,\"zchunks\":%zu,\"attempted_kps\":%.3f,"
                "\"injection_kps\":%.3f,\"rate_kps\":%.3f,"
                "\"stddev_kps\":%.3f}",
                params.parcelport.c_str(), params.msg_size,
                params.zchunk_count, params.attempted_rate / 1e3,
                injection.mean, rate.mean, rate.stddev);
  append_json_record(record);
  return rate.mean;
}

// ---- latency -------------------------------------------------------------

namespace {

std::atomic<unsigned> g_chains_done{0};

void lat_pong(std::uint32_t chain, std::uint32_t remaining,
              std::vector<std::uint8_t> payload);

void lat_ping(std::uint32_t chain, std::uint32_t remaining,
              std::vector<std::uint8_t> payload) {
  // Runs on locality 1; each hop is a fresh task, as in the paper.
  amt::here().apply<&lat_pong>(0, chain, remaining, std::move(payload));
}

void lat_pong(std::uint32_t chain, std::uint32_t remaining,
              std::vector<std::uint8_t> payload) {
  if (remaining > 0) {
    amt::here().apply<&lat_ping>(1, chain, remaining - 1,
                                 std::move(payload));
  } else {
    g_chains_done.fetch_add(1, std::memory_order_release);
  }
}

// Multi-zchunk ping-pong: every hop ships its vectors as independent
// zero-copy follow-ups, so per-hop latency directly exposes whether the
// pieces travel serialized (pipeline depth 1) or overlapped.
void lat_pong_z4(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b,
                 std::vector<std::uint8_t> c, std::vector<std::uint8_t> d);

void lat_ping_z4(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b,
                 std::vector<std::uint8_t> c, std::vector<std::uint8_t> d) {
  amt::here().apply<&lat_pong_z4>(0, chain, remaining, std::move(a),
                                  std::move(b), std::move(c), std::move(d));
}

void lat_pong_z4(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b,
                 std::vector<std::uint8_t> c, std::vector<std::uint8_t> d) {
  if (remaining > 0) {
    amt::here().apply<&lat_ping_z4>(1, chain, remaining - 1, std::move(a),
                                    std::move(b), std::move(c), std::move(d));
  } else {
    g_chains_done.fetch_add(1, std::memory_order_release);
  }
}

void lat_pong_z2(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b);

void lat_ping_z2(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
  amt::here().apply<&lat_pong_z2>(0, chain, remaining, std::move(a),
                                  std::move(b));
}

void lat_pong_z2(std::uint32_t chain, std::uint32_t remaining,
                 std::vector<std::uint8_t> a, std::vector<std::uint8_t> b) {
  if (remaining > 0) {
    amt::here().apply<&lat_ping_z2>(1, chain, remaining - 1, std::move(a),
                                    std::move(b));
  } else {
    g_chains_done.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace

double run_latency_us(const LatencyParams& params) {
  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = 2;
  options.threads_per_locality = params.workers;
  options.platform = params.platform;
  options.zero_copy_threshold = params.zero_copy_threshold;
  options.fabric_rails = params.fabric_rails;
  auto runtime = amtnet::make_runtime(options);

  // Guard against steps == 0 (tiny AMTNET_BENCH_SCALE): steps - 1 would
  // wrap and the chains would never terminate.
  const unsigned steps = params.steps == 0 ? 1 : params.steps;
  g_chains_done.store(0);
  const common::Timer timer;
  runtime->locality(0).spawn([&] {
    const std::vector<std::uint8_t> payload(params.msg_size, 0x17);
    for (unsigned chain = 0; chain < params.window; ++chain) {
      switch (params.zchunk_count) {
        case 2:
          amt::here().apply<&lat_ping_z2>(1, chain, steps - 1, payload,
                                          payload);
          break;
        case 4:
          amt::here().apply<&lat_ping_z4>(1, chain, steps - 1, payload,
                                          payload, payload, payload);
          break;
        default:
          amt::here().apply<&lat_ping>(1, chain, steps - 1, payload);
          break;
      }
    }
  });
  runtime->locality(0).scheduler().wait_until([&] {
    return g_chains_done.load(std::memory_order_acquire) >= params.window;
  });
  const double elapsed_us = timer.elapsed_us();
  capture_snapshot(*runtime);
  runtime->stop();
  return elapsed_us / (2.0 * steps);
}

void report_latency_point(const LatencyParams& params, int runs) {
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    samples.push_back(run_latency_us(params));
  }
  const auto stats = stats_of(samples);
  std::printf("%s,%zu,%u,%.2f,%.2f\n", params.parcelport.c_str(),
              params.msg_size, params.window, stats.mean, stats.stddev);
  std::fflush(stdout);
  char record[512];
  std::snprintf(record, sizeof(record),
                "{\"kind\":\"latency\",\"config\":\"%s\",\"msg_size\":%zu,"
                "\"zchunks\":%zu,\"window\":%u,\"latency_us\":%.3f,"
                "\"stddev_us\":%.3f}",
                params.parcelport.c_str(), params.msg_size,
                params.zchunk_count, params.window, stats.mean,
                stats.stddev);
  append_json_record(record);
}

// ---- octo-tiger proxy ------------------------------------------------------

double run_octo_steps_per_second(const OctoParams& params) {
  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = params.localities;
  options.threads_per_locality = params.workers;
  options.platform = params.platform;
  auto runtime = amtnet::make_runtime(options);

  octo::Params sim;
  sim.level = params.level;
  sim.steps = params.steps;
  const auto report = octo::run_simulation(*runtime, sim);
  capture_snapshot(*runtime);
  runtime->stop();
  return report.steps_per_second;
}

double report_octo_point(const OctoParams& params, int runs) {
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    samples.push_back(run_octo_steps_per_second(params));
  }
  const auto stats = stats_of(samples);
  std::printf("%s,%u,%.3f,%.3f\n", params.parcelport.c_str(),
              params.localities, stats.mean, stats.stddev);
  std::fflush(stdout);
  char record[512];
  std::snprintf(record, sizeof(record),
                "{\"kind\":\"octo\",\"config\":\"%s\",\"localities\":%u,"
                "\"steps_per_s\":%.3f,\"stddev\":%.3f}",
                params.parcelport.c_str(), params.localities, stats.mean,
                stats.stddev);
  append_json_record(record);
  return stats.mean;
}

// ---- collective rounds -----------------------------------------------------

namespace {

std::atomic<int> g_coll_done{0};
std::atomic<std::uint64_t> g_coll_elapsed_ns{0};
amt::CollectiveGroup* g_coll_group = nullptr;

// Byte-wise wrapping add: commutative and associative, so every algorithm
// family produces identical results (exact under any combine order).
void coll_bench_combine(std::uint8_t* acc, const std::uint8_t* in,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] = static_cast<std::uint8_t>(acc[i] + in[i]);
  }
}

}  // namespace

double run_collective_us(const CollBenchParams& params) {
  amtnet::StackOptions options;
  options.parcelport = params.parcelport;
  options.num_localities = params.localities;
  options.threads_per_locality = params.workers;
  options.platform = params.platform;
  options.fabric_rails = params.fabric_rails;
  amt::RuntimeConfig config = amtnet::make_runtime_config(options);
  if (params.bandwidth_gbps > 0.0 || params.latency_us > 0.0 ||
      params.pkt_rate_mpps > 0.0) {
    config.fabric.zero_time = false;
    if (params.bandwidth_gbps > 0.0) {
      config.fabric.bandwidth_gbps = params.bandwidth_gbps;
    }
    if (params.latency_us > 0.0) config.fabric.latency_us = params.latency_us;
    if (params.pkt_rate_mpps > 0.0) {
      config.fabric.pkt_rate_mpps = params.pkt_rate_mpps;
    }
  }
  auto runtime = std::make_unique<amt::Runtime>(
      config, amtnet::default_parcelport_factory());
  runtime->start();
  auto group = std::make_unique<amt::CollectiveGroup>(*runtime);
  g_coll_group = group.get();
  g_coll_done.store(0);
  g_coll_elapsed_ns.store(0);

  const std::uint32_t n_loc = params.localities;
  const int iters = params.iters < 1 ? 1 : params.iters;
  for (amt::Rank r = 0; r < n_loc; ++r) {
    runtime->locality(r).spawn([&, r] {
      amt::CollectiveGroup& coll = *g_coll_group;
      amt::CollectiveGroup::Bytes data(params.payload_bytes,
                                       static_cast<std::uint8_t>(r + 1));
      amt::CollectiveGroup::Bytes a2a(params.payload_bytes * n_loc,
                                      static_cast<std::uint8_t>(r + 1));
      coll.barrier();
      const common::Nanos t0 = common::now_ns();
      for (int i = 0; i < iters; ++i) {
        if (params.op == "allreduce") {
          coll.allreduce(data, 1, &coll_bench_combine);
        } else if (params.op == "broadcast") {
          coll.broadcast(0, data);
        } else if (params.op == "alltoall") {
          a2a = coll.all_to_all(a2a, params.payload_bytes);
        } else {
          coll.barrier();
        }
      }
      coll.barrier();
      if (r == 0) {
        g_coll_elapsed_ns.store(
            static_cast<std::uint64_t>(common::now_ns() - t0));
      }
      g_coll_done.fetch_add(1, std::memory_order_release);
    });
  }

  runtime->locality(0).scheduler().wait_until([&] {
    return g_coll_done.load(std::memory_order_acquire) ==
           static_cast<int>(n_loc);
  });
  capture_snapshot(*runtime);
  g_coll_group = nullptr;
  group.reset();
  runtime->stop();
  return static_cast<double>(g_coll_elapsed_ns.load()) / 1e3 /
         static_cast<double>(iters);
}

double report_collective_point(const CollBenchParams& params, int runs) {
  std::vector<double> samples;
  for (int run = 0; run < runs; ++run) {
    samples.push_back(run_collective_us(params));
  }
  const auto stats = stats_of(samples);
  std::printf("%s,%s,%u,%zu,%.3f,%.3f\n", params.parcelport.c_str(),
              params.op.c_str(), params.localities, params.payload_bytes,
              stats.mean, stats.stddev);
  std::fflush(stdout);
  char record[512];
  std::snprintf(record, sizeof(record),
                "{\"kind\":\"coll\",\"config\":\"%s\",\"op\":\"%s\","
                "\"localities\":%u,\"payload\":%zu,\"coll_us\":%.3f,"
                "\"stddev\":%.3f}",
                params.parcelport.c_str(), params.op.c_str(),
                params.localities, params.payload_bytes, stats.mean,
                stats.stddev);
  append_json_record(record);
  return stats.mean;
}

}  // namespace bench
