// Ablation: the HPX zero-copy serialization threshold (paper §2.2; kept at
// its 8192-byte default throughout the paper's evaluation). The threshold
// decides whether an argument is copied inline into the non-zero-copy chunk
// (one message, one extra copy) or shipped as a zero-copy chunk (an extra
// follow-up message under its own tag, rendezvous when large). Sweeping it
// around the message size shows the inline-vs-rendezvous crossover the
// default is meant to straddle.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: zero-copy serialization threshold (HPX default 8192)",
      "for 4KiB payloads: a tiny threshold forces needless rendezvous "
      "(worse latency); for 16KiB payloads: a huge threshold forces inline "
      "copies of large data through the eager path",
      env);
  std::printf("# 4KiB-message latency, window 4\n");
  std::printf("config_zc,msg_size,window,latency_us,stddev_us\n");
  for (const std::size_t threshold : {512u, 8192u, 65536u}) {
    for (const char* config : {"lci_psr_cq_pin_i", "mpi_i"}) {
      bench::LatencyParams params;
      params.parcelport = std::string(config) + "(zc=" +
                          std::to_string(threshold) + ")";
      params.parcelport = config;  // parsed name stays canonical
      params.msg_size = 4096;
      params.window = 4;
      params.steps = static_cast<unsigned>(40 * env.scale);
      params.workers = env.workers;
      params.zero_copy_threshold = threshold;
      std::printf("zc=%zu:", threshold);
      bench::report_latency_point(params, env.runs);
    }
  }

  std::printf("# 16KiB message rate (unlimited injection)\n");
  std::printf(
      "config_zc,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");
  for (const std::size_t threshold : {2048u, 8192u, 65536u}) {
    bench::RateParams params;
    params.parcelport = "lci_psr_cq_pin_i";
    params.msg_size = 16 * 1024;
    params.batch = 10;
    params.total_msgs = static_cast<std::size_t>(800 * env.scale);
    params.workers = env.workers;
    params.zero_copy_threshold = threshold;
    std::printf("zc=%zu:", threshold);
    bench::report_rate_point(params, env.runs);
  }
  return 0;
}
