// Figure 5: achieved 16 KiB message rate vs injection rate — the eight LCI
// variants with send-immediate.
#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Figure 5: 16KiB message rate vs injection rate (8 LCI variants, _i)",
      "cq variants plateau smoothly and ~25-30% above sy variants (which "
      "oscillate); pin beats mt by 17-50%",
      env);
  std::printf(
      "config,attempted_K/s,achieved_injection_K/s,message_rate_K/s,"
      "stddev_K/s\n");

  const double rates_kps[] = {2, 8, 0};
  for (const char* config :
       {"lci_psr_cq_pin_i", "lci_psr_cq_mt_i", "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i", "lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i", "lci_sr_sy_mt_i"}) {
    for (double rate : rates_kps) {
      bench::RateParams params;
      params.parcelport = config;
      params.msg_size = 16 * 1024;
      params.batch = 10;
      params.total_msgs = static_cast<std::size_t>(1200 * env.scale);
      params.attempted_rate = rate * 1e3;
      params.workers = env.workers;
      bench::report_rate_point(params, env.runs);
    }
  }
  return 0;
}
