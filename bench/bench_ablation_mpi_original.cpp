// Ablation (§3.1 "the original version"): the pre-optimisation MPI
// parcelport — static 512 B header that cannot piggyback the transmission
// chunk, plus the tag-release protocol with a lock-protected free-tag list —
// against the improved MPI parcelport the paper evaluates. The paper credits
// the two optimisations with ~20% application speedup, dominated by the
// header-buffer change.
#include <cstdio>
#include <map>
#include <string>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto env = bench::Env::from_args(argc, argv);
  bench::print_header(
      "Ablation: original vs improved MPI parcelport (paper end of §3.1)",
      "improved ('mpi') beats original ('mpi_orig') on the proxy app and on "
      "latency for messages that now fit the dynamic header (~20% app-level "
      "in the paper)",
      env);

  std::printf("# proxy application, Expanse profile\n");
  std::printf("config,localities,steps_per_s,stddev\n");
  std::map<std::string, double> app;
  for (const char* config : {"mpi_orig", "mpi"}) {
    bench::OctoParams params;
    params.parcelport = config;
    params.platform = "expanse";
    params.localities = 4;
    params.level = 3;
    params.steps = static_cast<int>(2 * env.scale);
    params.workers = 2;
    app[config] = bench::report_octo_point(params, env.runs);
  }
  std::printf("# improved/original app speedup: %.3f\n",
              app["mpi"] / app["mpi_orig"]);

  std::printf("# latency, messages around the 512B header boundary\n");
  std::printf("config,msg_size,window,latency_us,stddev_us\n");
  for (const char* config : {"mpi_orig", "mpi", "mpi_orig_i", "mpi_i"}) {
    for (std::size_t size : {256u, 2048u, 4096u}) {
      bench::LatencyParams params;
      params.parcelport = config;
      params.msg_size = size;
      params.window = 4;
      params.steps = static_cast<unsigned>(40 * env.scale);
      params.workers = env.workers;
      bench::report_latency_point(params, env.runs);
    }
  }
  return 0;
}
