// Tests for minilci: completion mechanisms (queue / synchronizer / handler),
// medium & long protocols, dynamic put (eager + rendezvous), retry semantics,
// matching-table properties, packet pool, and progress thread-safety.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "minilci/device.hpp"
#include "minilci/rdv_table.hpp"
#include "test_util.hpp"

using minilci::Comp;
using minilci::CompQueue;
using minilci::Config;
using minilci::CqEntry;
using minilci::Device;
using minilci::MatchingTable;
using minilci::OpKind;
using minilci::PacketPool;
using minilci::Synchronizer;

namespace {

/// Two-rank harness: device 0 and device 1 with their remote-put CQs.
struct Pair {
  fabric::Fabric fabric;
  CompQueue rcq0, rcq1;
  Device dev0, dev1;

  explicit Pair(fabric::Config fab_config = fabric::Profile::loopback(2),
                Config lci_config = {})
      : fabric(fab_config),
        dev0(fabric, 0, lci_config, &rcq0),
        dev1(fabric, 1, lci_config, &rcq1) {}

  void pump() {
    dev0.progress();
    dev1.progress();
  }

  bool pump_until(const std::function<bool()>& pred,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(5000)) {
    return testutil::pump_until(pred, [&] { pump(); }, timeout);
  }
};

}  // namespace

// ---------------- completion objects ----------------

TEST(LciCompQueue, FifoSingleThread) {
  CompQueue cq;
  for (std::uint32_t i = 0; i < 5; ++i) {
    CqEntry entry;
    entry.tag = i;
    cq.push(std::move(entry));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto entry = cq.poll();
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->tag, i);
  }
  EXPECT_FALSE(cq.poll().has_value());
}

TEST(LciSynchronizer, SingleSignal) {
  Synchronizer sync;
  EXPECT_FALSE(sync.test());
  CqEntry entry;
  entry.tag = 42;
  sync.signal(std::move(entry));
  std::vector<CqEntry> out;
  ASSERT_TRUE(sync.test(&out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tag, 42u);
  EXPECT_FALSE(sync.test());  // reset for reuse
}

TEST(LciSynchronizer, MultiProducerThreshold) {
  Synchronizer sync(3);
  for (int i = 0; i < 2; ++i) {
    sync.signal(CqEntry{});
    EXPECT_FALSE(sync.test());
  }
  sync.signal(CqEntry{});
  std::vector<CqEntry> out;
  ASSERT_TRUE(sync.test(&out));
  EXPECT_EQ(out.size(), 3u);
}

TEST(LciSynchronizer, ConcurrentSignalsNeverLost) {
  constexpr int kThreads = 4;
  constexpr int kSignals = 1000;
  Synchronizer sync(kThreads * kSignals);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSignals; ++i) sync.signal(CqEntry{});
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<CqEntry> out;
  ASSERT_TRUE(sync.test(&out));
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads * kSignals));
}

TEST(LciHandler, InvokedInline) {
  int hits = 0;
  auto comp = Comp::handler(
      [](CqEntry&&, void* arg) { ++*static_cast<int*>(arg); }, &hits);
  signal_completion(comp, CqEntry{});
  signal_completion(comp, CqEntry{});
  EXPECT_EQ(hits, 2);
}

TEST(LciComp, NoneDiscardsSilently) {
  signal_completion(Comp::none(), CqEntry{});  // must not crash
}

// ---------------- packet pool ----------------

TEST(LciPacketPool, ExhaustionAndRecycle) {
  PacketPool pool(4, 128);
  std::vector<minilci::PacketBuffer> held;
  for (int i = 0; i < 4; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value());
    EXPECT_EQ(packet->capacity(), 128u);
    held.push_back(std::move(*packet));
  }
  EXPECT_FALSE(pool.try_alloc().has_value());  // exhausted -> retry
  held.pop_back();
  EXPECT_TRUE(pool.try_alloc().has_value());  // recycled
}

TEST(LciPacketPool, MoveSemantics) {
  PacketPool pool(2, 64);
  auto a = pool.try_alloc();
  ASSERT_TRUE(a.has_value());
  minilci::PacketBuffer b = std::move(*a);
  EXPECT_FALSE(a->valid());
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_FALSE(b.valid());
}

TEST(LciPacketPool, MagazineServesRepeatAllocsWithoutSharedList) {
  PacketPool pool(64, 32, /*cache_size=*/8);
  // First alloc must refill the magazine from the shared list (a miss)...
  auto first = pool.try_alloc();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(pool.cache_misses(), 1u);
  first->release();
  // ...after which alloc/release cycles stay within the magazine.
  for (int i = 0; i < 10; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value());
  }
  EXPECT_GE(pool.cache_hits(), 1u);
  EXPECT_EQ(pool.cache_misses(), 1u);
}

TEST(LciPacketPool, MagazineKeepsExhaustionSemantics) {
  PacketPool pool(4, 32, /*cache_size=*/8);
  std::vector<minilci::PacketBuffer> held;
  for (int i = 0; i < 4; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value()) << "packet " << i;
    held.push_back(std::move(*packet));
  }
  // All packets are out (some via the magazine): the pool must report
  // exhaustion, not lose packets to the cache.
  EXPECT_FALSE(pool.try_alloc().has_value());
  held.clear();
  for (int i = 0; i < 4; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value()) << "after recycle, packet " << i;
    held.push_back(std::move(*packet));
  }
}

TEST(LciPacketPool, MagazineConcurrentAllocReleaseLosesNothing) {
  PacketPool pool(128, 32, /*cache_size=*/16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 2000; ++i) {
        auto packet = pool.try_alloc();
        if (packet.has_value()) {
          packet->data()[0] = std::byte{0x42};
          packet->release();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Packets cached in the workers' magazines are invisible to this thread's
  // slot; flush them back so exhaustion accounting sees full capacity.
  pool.flush_caches();
  // Every packet must be recoverable afterwards (none leaked into a
  // magazine flush or double-freed).
  std::vector<minilci::PacketBuffer> held;
  for (int i = 0; i < 128; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value()) << "lost packet " << i;
    held.push_back(std::move(*packet));
  }
  EXPECT_FALSE(pool.try_alloc().has_value());
}

// ---------------- matching table ----------------

TEST(LciMatchingTable, RecvThenArrival) {
  MatchingTable table;
  EXPECT_FALSE(table.insert_recv(0, 1, minilci::PostedRecv{}).has_value());
  auto recv = table.insert_arrival(0, 1, minilci::Arrival{});
  EXPECT_TRUE(recv.has_value());
  EXPECT_EQ(table.pending_recvs(), 0u);
  EXPECT_EQ(table.pending_arrivals(), 0u);
}

TEST(LciMatchingTable, ArrivalThenRecv) {
  MatchingTable table;
  minilci::Arrival arrival;
  arrival.rdv_size = 99;
  EXPECT_FALSE(table.insert_arrival(2, 7, std::move(arrival)).has_value());
  auto got = table.insert_recv(2, 7, minilci::PostedRecv{});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rdv_size, 99u);
}

TEST(LciMatchingTable, KeysAreExact) {
  MatchingTable table;
  table.insert_arrival(0, 1, minilci::Arrival{});
  EXPECT_FALSE(table.insert_recv(0, 2, minilci::PostedRecv{}).has_value());
  EXPECT_FALSE(table.insert_recv(1, 1, minilci::PostedRecv{}).has_value());
  EXPECT_TRUE(table.insert_recv(0, 1, minilci::PostedRecv{}).has_value());
}

TEST(LciMatchingTable, FifoPerKey) {
  MatchingTable table;
  for (std::uint32_t i = 0; i < 4; ++i) {
    minilci::Arrival arrival;
    arrival.rdv_size = i;
    table.insert_arrival(0, 1, std::move(arrival));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto got = table.insert_recv(0, 1, minilci::PostedRecv{});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->rdv_size, i);
  }
}

class LciMatchingStress : public ::testing::TestWithParam<int> {};

TEST_P(LciMatchingStress, EveryRecvPairsWithExactlyOneArrival) {
  const int threads_per_side = GetParam();
  MatchingTable table;
  constexpr std::uint32_t kPerThread = 8000;
  std::atomic<std::uint64_t> paired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < threads_per_side; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const minilci::Tag tag =
            static_cast<minilci::Tag>(t) * kPerThread + i;
        if (table.insert_recv(0, tag, minilci::PostedRecv{}).has_value()) {
          paired.fetch_add(1);
        }
      }
    });
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const minilci::Tag tag =
            static_cast<minilci::Tag>(t) * kPerThread + i;
        if (table.insert_arrival(0, tag, minilci::Arrival{}).has_value()) {
          paired.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every key got exactly one recv and one arrival: exactly one side of each
  // pair observed the match.
  EXPECT_EQ(paired.load(),
            static_cast<std::uint64_t>(threads_per_side) * kPerThread);
  EXPECT_EQ(table.pending_recvs(), 0u);
  EXPECT_EQ(table.pending_arrivals(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LciMatchingStress,
                         ::testing::Values(1, 2, 4));

// ---------------- two-sided medium ----------------

TEST(LciDevice, MediumSendRecvViaQueue) {
  Pair pair;
  CompQueue cq;
  ASSERT_EQ(pair.dev1.recvm(0, 42, Comp::queue(&cq), 777),
            common::Status::kOk);
  const auto data = testutil::make_pattern(1, 100);
  CompQueue send_cq;
  ASSERT_EQ(pair.dev0.sendm(1, 42, data.data(), data.size(),
                            Comp::queue(&send_cq)),
            common::Status::kOk);
  // Local completion is immediate for medium sends.
  auto sent = send_cq.poll();
  ASSERT_TRUE(sent.has_value());
  EXPECT_EQ(sent->op, OpKind::kSendMedium);

  std::optional<CqEntry> got;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!got) got = cq.poll();
    return got.has_value();
  }));
  EXPECT_EQ(got->op, OpKind::kRecvMedium);
  EXPECT_EQ(got->rank, 0u);
  EXPECT_EQ(got->tag, 42u);
  EXPECT_EQ(got->size, 100u);
  EXPECT_EQ(got->user_context, 777u);
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 1, 100));
}

TEST(LciDevice, MediumUnexpectedThenRecv) {
  Pair pair;
  const auto data = testutil::make_pattern(2, 50);
  ASSERT_EQ(pair.dev0.sendm(1, 5, data.data(), data.size(), Comp::none()),
            common::Status::kOk);
  for (int i = 0; i < 20; ++i) pair.pump();  // deliver as unexpected
  CompQueue cq;
  ASSERT_EQ(pair.dev1.recvm(0, 5, Comp::queue(&cq)), common::Status::kOk);
  auto got = cq.poll();  // matched inline at post time
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 2, 50));
}

TEST(LciDevice, MediumViaSynchronizer) {
  Pair pair;
  Synchronizer sync;
  ASSERT_EQ(pair.dev1.recvm(0, 9, Comp::sync(&sync)), common::Status::kOk);
  const auto data = testutil::make_pattern(3, 8);
  ASSERT_EQ(pair.dev0.sendm(1, 9, data.data(), data.size(), Comp::none()),
            common::Status::kOk);
  ASSERT_TRUE(pair.pump_until([&] {
    std::vector<CqEntry> out;
    if (!sync.test(&out)) return false;
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(testutil::check_pattern(out[0].data.data(), 3, 8));
    return true;
  }));
}

TEST(LciDevice, MediumOversizeRejected) {
  Pair pair;
  std::vector<std::byte> big(pair.dev0.max_medium_size() + 1);
  EXPECT_EQ(pair.dev0.sendm(1, 0, big.data(), big.size(), Comp::none()),
            common::Status::kError);
}

TEST(LciDevice, SendmPacketAssemblesInPlace) {
  Pair pair;
  auto packet = pair.dev0.try_alloc_packet();
  ASSERT_TRUE(packet.has_value());
  const auto data = testutil::make_pattern(4, 64);
  std::memcpy(packet->data(), data.data(), data.size());
  packet->set_size(64);
  CompQueue cq;
  ASSERT_EQ(pair.dev1.recvm(0, 77, Comp::queue(&cq)), common::Status::kOk);
  ASSERT_EQ(pair.dev0.sendm_packet(1, 77, *packet, Comp::none()),
            common::Status::kOk);
  EXPECT_FALSE(packet->valid());  // consumed
  std::optional<CqEntry> got;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!got) got = cq.poll();
    return got.has_value();
  }));
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 4, 64));
}

// ---------------- two-sided long ----------------

TEST(LciDevice, LongSendRecvRendezvous) {
  Pair pair;
  const std::size_t size = 200 * 1024;
  const auto data = testutil::make_pattern(5, size);
  std::vector<std::byte> recv(size);
  CompQueue rcq, scq;
  ASSERT_EQ(pair.dev1.recvl(0, 3, recv.data(), recv.size(), Comp::queue(&rcq),
                            111),
            common::Status::kOk);
  ASSERT_EQ(pair.dev0.sendl(1, 3, data.data(), data.size(), Comp::queue(&scq),
                            222),
            common::Status::kOk);
  std::optional<CqEntry> r, s;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!r) r = rcq.poll();
    if (!s) s = scq.poll();
    return r.has_value() && s.has_value();
  }));
  EXPECT_EQ(r->op, OpKind::kRecvLong);
  EXPECT_EQ(r->size, size);
  EXPECT_EQ(r->user_buf, recv.data());
  EXPECT_EQ(r->user_context, 111u);
  EXPECT_EQ(s->op, OpKind::kSendLong);
  EXPECT_EQ(s->user_context, 222u);
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 5, size));
}

TEST(LciDevice, LongUnexpectedRtsThenRecvl) {
  Pair pair;
  const std::size_t size = 64 * 1024;
  const auto data = testutil::make_pattern(6, size);
  CompQueue scq;
  ASSERT_EQ(pair.dev0.sendl(1, 8, data.data(), data.size(), Comp::queue(&scq)),
            common::Status::kOk);
  for (int i = 0; i < 20; ++i) pair.pump();  // RTS lands unexpected
  std::vector<std::byte> recv(size);
  CompQueue rcq;
  ASSERT_EQ(pair.dev1.recvl(0, 8, recv.data(), recv.size(), Comp::queue(&rcq)),
            common::Status::kOk);
  std::optional<CqEntry> r;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!r) r = rcq.poll();
    return r.has_value();
  }));
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 6, size));
}

// ---------------- dynamic put ----------------

TEST(LciDevice, PutDynEagerLandsInRemoteCq) {
  Pair pair;
  const auto data = testutil::make_pattern(7, 128);
  CompQueue local;
  ASSERT_EQ(pair.dev0.put_dyn(1, 55, data.data(), data.size(),
                              Comp::queue(&local)),
            common::Status::kOk);
  auto sent = local.poll();
  ASSERT_TRUE(sent.has_value());
  EXPECT_EQ(sent->op, OpKind::kPutDyn);

  std::optional<CqEntry> got;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!got) got = pair.rcq1.poll();
    return got.has_value();
  }));
  EXPECT_EQ(got->op, OpKind::kRemotePut);
  EXPECT_EQ(got->rank, 0u);
  EXPECT_EQ(got->tag, 55u);
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 7, 128));
}

TEST(LciDevice, PutDynLargeUsesRendezvous) {
  Pair pair;
  const std::size_t size = 128 * 1024;
  const auto data = testutil::make_pattern(8, size);
  CompQueue local;
  ASSERT_EQ(pair.dev0.put_dyn(1, 66, data.data(), data.size(),
                              Comp::queue(&local)),
            common::Status::kOk);
  std::optional<CqEntry> got, sent;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!got) got = pair.rcq1.poll();
    if (!sent) sent = local.poll();
    return got.has_value() && sent.has_value();
  }));
  EXPECT_EQ(got->op, OpKind::kRemotePut);
  EXPECT_EQ(got->size, size);
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 8, size));
  EXPECT_EQ(sent->op, OpKind::kPutDyn);
}

TEST(LciDevice, PutDynPacketFastPath) {
  Pair pair;
  auto packet = pair.dev0.try_alloc_packet();
  ASSERT_TRUE(packet.has_value());
  const auto data = testutil::make_pattern(9, 40);
  std::memcpy(packet->data(), data.data(), data.size());
  packet->set_size(40);
  ASSERT_EQ(pair.dev0.put_dyn_packet(1, 12, *packet, Comp::none()),
            common::Status::kOk);
  std::optional<CqEntry> got;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!got) got = pair.rcq1.poll();
    return got.has_value();
  }));
  EXPECT_TRUE(testutil::check_pattern(got->data.data(), 9, 40));
}

// ---------------- one-sided get ----------------

TEST(LciDevice, GetReadsRemoteBuffer) {
  Pair pair;
  std::vector<double> remote(100);
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<double>(i) * 1.5;
  }
  const auto buffer = pair.dev1.register_remote_buffer(
      remote.data(), remote.size() * sizeof(double));

  std::vector<double> local(10, 0.0);
  CompQueue cq;
  ASSERT_EQ(pair.dev0.get(buffer, 20 * sizeof(double), local.data(),
                          local.size() * sizeof(double), Comp::queue(&cq),
                          555),
            common::Status::kOk);
  std::optional<CqEntry> done;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!done) done = cq.poll();
    return done.has_value();
  }));
  EXPECT_EQ(done->op, OpKind::kGet);
  EXPECT_EQ(done->rank, 1u);
  EXPECT_EQ(done->user_context, 555u);
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_DOUBLE_EQ(local[i], static_cast<double>(20 + i) * 1.5);
  }
  pair.dev1.deregister_remote_buffer(buffer);
}

TEST(LciDevice, GetBeyondBufferRejected) {
  Pair pair;
  std::vector<double> remote(4);
  const auto buffer = pair.dev1.register_remote_buffer(
      remote.data(), remote.size() * sizeof(double));
  double local[4];
  EXPECT_EQ(pair.dev0.get(buffer, 8, local, sizeof(local), Comp::none()),
            common::Status::kError);
  pair.dev1.deregister_remote_buffer(buffer);
}

TEST(LciDevice, GetDescriptorTravelsThroughMessages) {
  // The intended workflow: advertise a buffer by shipping its descriptor in
  // a medium message, then the peer gets directly.
  Pair pair;
  std::vector<std::uint64_t> remote(32);
  for (std::size_t i = 0; i < remote.size(); ++i) remote[i] = i * i;
  const auto buffer = pair.dev1.register_remote_buffer(
      remote.data(), remote.size() * sizeof(std::uint64_t));

  CompQueue cq0;
  ASSERT_EQ(pair.dev0.recvm(1, 7, Comp::queue(&cq0)), common::Status::kOk);
  ASSERT_EQ(pair.dev1.sendm(0, 7, &buffer, sizeof(buffer), Comp::none()),
            common::Status::kOk);
  std::optional<CqEntry> advert;
  ASSERT_TRUE(pair.pump_until([&] {
    if (!advert) advert = cq0.poll();
    return advert.has_value();
  }));
  minilci::RemoteBuffer received;
  std::memcpy(&received, advert->data.data(), sizeof(received));

  std::vector<std::uint64_t> local(32);
  Synchronizer sync;
  ASSERT_EQ(pair.dev0.get(received, 0, local.data(),
                          local.size() * sizeof(std::uint64_t),
                          Comp::sync(&sync)),
            common::Status::kOk);
  ASSERT_TRUE(pair.pump_until([&] { return sync.test(); }));
  EXPECT_EQ(local, remote);
}

// ---------------- retry semantics ----------------

TEST(LciDevice, InjectionReturnsRetryUnderTxPressure) {
  fabric::Config fab = fabric::Profile::loopback(2);
  fab.tx_window = 2;
  Pair pair(fab);
  int x = 0;
  // Fill the window, then expect explicit kRetry (LCI's contract).
  ASSERT_EQ(pair.dev0.sendm(1, 0, &x, sizeof(x), Comp::none()),
            common::Status::kOk);
  ASSERT_EQ(pair.dev0.sendm(1, 1, &x, sizeof(x), Comp::none()),
            common::Status::kOk);
  EXPECT_EQ(pair.dev0.sendm(1, 2, &x, sizeof(x), Comp::none()),
            common::Status::kRetry);
  // After the receiver drains, retry succeeds — the user-retry loop.
  ASSERT_TRUE(pair.pump_until([&] {
    return pair.dev0.sendm(1, 2, &x, sizeof(x), Comp::none()) ==
           common::Status::kOk;
  }));
}

// ---------------- multithreaded progress ----------------

struct LciStressParam {
  int sender_threads;
  int progress_threads;
};

class LciProgressStress
    : public ::testing::TestWithParam<LciStressParam> {};

TEST_P(LciProgressStress, ConcurrentSendersAndProgressDeliverAll) {
  const auto param = GetParam();
  fabric::Config fab = fabric::Profile::loopback(2);
  fab.srq_depth = 1024;
  fab.tx_window = 4096;
  Pair pair(fab);

  constexpr std::uint32_t kPerThread = 400;
  const std::uint32_t total =
      static_cast<std::uint32_t>(param.sender_threads) * kPerThread;

  CompQueue rcq;
  for (std::uint32_t tag = 0; tag < total; ++tag) {
    ASSERT_EQ(pair.dev1.recvm(0, tag, Comp::queue(&rcq), tag),
              common::Status::kOk);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < param.progress_threads; ++p) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        pair.dev1.progress();
        pair.dev0.progress();
      }
    });
  }
  for (int t = 0; t < param.sender_threads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const std::uint32_t tag =
            static_cast<std::uint32_t>(t) * kPerThread + i;
        const auto data = testutil::make_pattern(tag, 256);
        while (pair.dev0.sendm(1, tag, data.data(), data.size(),
                               Comp::none()) != common::Status::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::atomic<std::uint32_t> received{0};
  std::vector<std::atomic<int>> seen(total);
  const bool all = testutil::pump_until(
      [&] { return received.load() >= total; },
      [&] {
        rcq.poll_batch(64, [&](CqEntry&& entry) {
          EXPECT_TRUE(testutil::check_pattern(entry.data.data(), entry.tag,
                                              256));
          EXPECT_EQ(entry.user_context, entry.tag);
          seen[entry.tag].fetch_add(1);
          received.fetch_add(1);
        });
      },
      std::chrono::milliseconds(20000));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  ASSERT_TRUE(all) << "only " << received.load() << "/" << total;
  for (std::uint32_t tag = 0; tag < total; ++tag) {
    EXPECT_EQ(seen[tag].load(), 1) << "tag " << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LciProgressStress,
                         ::testing::Values(LciStressParam{1, 1},
                                           LciStressParam{2, 1},
                                           LciStressParam{2, 2},
                                           LciStressParam{4, 2}));

// ---------------- sharded rendezvous id table ----------------

TEST(LciIdTable, InsertExtractRoundTrip) {
  minilci::ShardedIdTable<int> table(16);
  EXPECT_EQ(table.num_shards(), 16u);
  std::vector<std::uint32_t> ids;
  std::set<std::uint32_t> distinct;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(table.insert(int(i)));
    distinct.insert(ids.back());
    EXPECT_NE(ids.back(), 0u);  // 0 is the empty-slot sentinel
  }
  EXPECT_EQ(distinct.size(), ids.size());
  EXPECT_EQ(table.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    auto value = table.extract(ids[i]);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(LciIdTable, UnknownOrStaleIdReturnsNullopt) {
  minilci::ShardedIdTable<int> table(4);
  EXPECT_FALSE(table.extract(12345).has_value());
  const std::uint32_t id = table.insert(7);
  EXPECT_TRUE(table.extract(id).has_value());
  EXPECT_FALSE(table.extract(id).has_value());  // second extract is stale
}

TEST(LciIdTable, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(minilci::ShardedIdTable<int>(1).num_shards(), 1u);
  EXPECT_EQ(minilci::ShardedIdTable<int>(3).num_shards(), 4u);
  EXPECT_EQ(minilci::ShardedIdTable<int>(16).num_shards(), 16u);
  EXPECT_EQ(minilci::ShardedIdTable<int>(17).num_shards(), 32u);
}

TEST(LciIdTable, SingleShardSurvivesGrowthAndTombstoneChurn) {
  // One shard (the rs1 ablation baseline) with a working set that forces
  // both capacity growth and same-capacity tombstone sweeps.
  minilci::ShardedIdTable<std::vector<int>> table(1);
  std::deque<std::pair<std::uint32_t, int>> live;
  int next = 0;
  for (int round = 0; round < 20000; ++round) {
    live.emplace_back(table.insert(std::vector<int>{next}), next);
    ++next;
    if (live.size() > 100) {
      auto [id, expected] = live.front();
      live.pop_front();
      auto value = table.extract(id);
      ASSERT_TRUE(value.has_value());
      ASSERT_EQ(value->at(0), expected);
    }
  }
  EXPECT_EQ(table.size(), live.size());
}

TEST(LciIdTable, ConcurrentInsertExtract) {
  minilci::ShardedIdTable<std::uint64_t> table(8);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Keep a small window of live ids so extracts interleave with other
      // threads' inserts into the same shards.
      std::deque<std::pair<std::uint32_t, std::uint64_t>> window;
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t value =
            (static_cast<std::uint64_t>(t) << 32) | static_cast<unsigned>(i);
        window.emplace_back(table.insert(std::uint64_t{value}), value);
        if (window.size() > 16) {
          auto [id, expected] = window.front();
          window.pop_front();
          auto out = table.extract(id);
          if (!out.has_value() || *out != expected) mismatches.fetch_add(1);
        }
      }
      while (!window.empty()) {
        auto [id, expected] = window.front();
        window.pop_front();
        auto out = table.extract(id);
        if (!out.has_value() || *out != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(table.size(), 0u);
}

// ---------------- lock-free synchronizer (inline path) ----------------

TEST(LciSynchronizer, InlineThresholdConcurrentProducersAndReuse) {
  // Threshold == kInlineSlots: the lock-free slot-claim path, reused across
  // cycles the way the parcelport recycles pooled synchronizers.
  constexpr int kThreshold = Synchronizer::kInlineSlots;
  constexpr int kCycles = 50;
  Synchronizer sync(kThreshold);
  ASSERT_TRUE(sync.inline_mode());
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    EXPECT_FALSE(sync.test());
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreshold; ++t) {
      producers.emplace_back([&, t] {
        CqEntry entry;
        entry.tag = static_cast<std::uint32_t>(t);
        entry.data = testutil::make_pattern(static_cast<std::uint64_t>(t), 64);
        sync.signal(std::move(entry));
      });
    }
    std::vector<CqEntry> out;
    while (!sync.test(&out)) std::this_thread::yield();
    for (auto& producer : producers) producer.join();
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kThreshold));
    std::array<int, kThreshold> seen{};
    for (const auto& entry : out) {
      ASSERT_LT(entry.tag, static_cast<std::uint32_t>(kThreshold));
      ++seen[entry.tag];
      EXPECT_TRUE(testutil::check_pattern(entry.data.data(),
                                          static_cast<std::uint64_t>(entry.tag),
                                          64));
    }
    for (int t = 0; t < kThreshold; ++t) EXPECT_EQ(seen[t], 1);
  }
}

TEST(LciSynchronizer, FallbackThresholdKeepsCapacityAcrossReuse) {
  // Threshold above kInlineSlots: the spinlocked vector path. The moved-out
  // vector must be re-reserved so steady-state reuse stays allocation-free.
  constexpr int kThreshold = Synchronizer::kInlineSlots + 4;
  Synchronizer sync(kThreshold);
  ASSERT_FALSE(sync.inline_mode());
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < kThreshold; ++i) sync.signal(CqEntry{});
    std::vector<CqEntry> out;
    ASSERT_TRUE(sync.test(&out));
    EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreshold));
  }
}

// ---------------- rendezvous-path stress (sharded tables, deferred lanes,
// ---------------- lock-free synchronizers with threshold>1 reuse)

class LciRendezvousStress : public ::testing::TestWithParam<int> {};

TEST_P(LciRendezvousStress, EightThreadSendlRecvlSynchronizerChurn) {
  fabric::Config fab = fabric::Profile::loopback(2);
  fab.num_rails = 4;
  fab.tx_window = 8;  // starve TX so writes defer through the per-dst lanes
  Config lci;
  lci.rdv_shards = static_cast<std::size_t>(GetParam());
  Pair pair(fab, lci);

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  constexpr std::size_t kLongLen = 12 * 1024;  // above the eager threshold
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // One synchronizer reused across iterations: the threshold-2
      // (inline, lock-free) arm/consume/re-arm cycle.
      Synchronizer sync(2);
      std::vector<std::byte> recv_buf(kLongLen);
      for (int i = 0; i < kIters; ++i) {
        const std::uint32_t tag =
            0x1000u + static_cast<std::uint32_t>(t * kIters + i);
        const auto payload = testutil::make_pattern(tag, kLongLen);
        if (pair.dev1.recvl(0, tag, recv_buf.data(), recv_buf.size(),
                            Comp::sync(&sync), 1) != common::Status::kOk) {
          failures.fetch_add(1);
          return;
        }
        while (pair.dev0.sendl(1, tag, payload.data(), payload.size(),
                               Comp::sync(&sync), 2) != common::Status::kOk) {
          pair.pump();
        }
        std::vector<CqEntry> done;
        const bool completed = testutil::pump_until(
            [&] { return sync.test(&done); }, [&] { pair.pump(); },
            std::chrono::milliseconds(30000));
        if (!completed) {
          failures.fetch_add(1);
          return;
        }
        bool send_seen = false;
        bool recv_seen = false;
        for (const auto& entry : done) {
          if (entry.op == OpKind::kSendLong) send_seen = true;
          if (entry.op == OpKind::kRecvLong) recv_seen = true;
        }
        if (!send_seen || !recv_seen ||
            !testutil::check_pattern(recv_buf.data(), tag, kLongLen)) {
          failures.fetch_add(1);
          return;
        }
        if ((i & 3) == 0) {
          // Medium-message churn interleaved with the rendezvous traffic.
          CompQueue mcq;
          const std::uint32_t mtag = 0x80000000u + tag;
          if (pair.dev1.recvm(0, mtag, Comp::queue(&mcq), 0) !=
              common::Status::kOk) {
            failures.fetch_add(1);
            return;
          }
          const auto medium = testutil::make_pattern(mtag, 512);
          while (pair.dev0.sendm(1, mtag, medium.data(), medium.size(),
                                 Comp::none()) != common::Status::kOk) {
            pair.pump();
          }
          std::optional<CqEntry> arrived;
          const bool medium_done = testutil::pump_until(
              [&] { return (arrived = mcq.poll()).has_value(); },
              [&] { pair.pump(); }, std::chrono::milliseconds(30000));
          if (!medium_done ||
              !testutil::check_pattern(arrived->data.data(), mtag, 512)) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// 1 shard = the pre-sharding global-table baseline; 16 = the default.
INSTANTIATE_TEST_SUITE_P(Shards, LciRendezvousStress, ::testing::Values(1, 16));

// ---------------- magazine thread-exit accounting ----------------

TEST(LciPacketPool, ThreadExitFlushesMagazines) {
  PacketPool pool(128, 32, /*cache_size=*/16);
  // Worker threads stock their magazine slots, then exit. shard_slot() hands
  // out fresh per-thread ids, so without the thread-exit flush the cached
  // packets would be stranded in slots no surviving thread maps to.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 500; ++i) {
        auto packet = pool.try_alloc();
        if (packet.has_value()) packet->release();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // No flush_caches() here: the exits themselves must have rebalanced the
  // pool. Every packet must be allocatable from this thread.
  std::vector<minilci::PacketBuffer> held;
  for (int i = 0; i < 128; ++i) {
    auto packet = pool.try_alloc();
    ASSERT_TRUE(packet.has_value())
        << "packet " << i << " stranded in an exited thread's magazine";
    held.push_back(std::move(*packet));
  }
  EXPECT_FALSE(pool.try_alloc().has_value());
}

TEST(LciPacketPool, ThreadExitAfterPoolDestructionIsSafe) {
  // The reverse order: the pool dies while a thread that used it is still
  // running. The thread's exit-time flusher must skip the dead pool.
  std::thread worker;
  {
    PacketPool pool(8, 32, /*cache_size=*/4);
    std::atomic<bool> used{false};
    worker = std::thread([&pool, &used] {
      auto packet = pool.try_alloc();
      if (packet.has_value()) packet->release();
      used.store(true);
      while (!used.load()) std::this_thread::yield();
    });
    while (!used.load()) std::this_thread::yield();
  }  // pool destroyed here, before the worker exits
  worker.join();  // must not touch the dead pool
}

// ---------------- two-sided traffic through a lossy fabric ----------------

TEST(LciDevice, MediumSurvivesDropsViaRetransmit) {
  fabric::Config fab = fabric::Profile::loopback(2);
  fab.faults.drop = 0.15;
  fab.faults.seed = 77;
  Pair pair(fab);
  constexpr std::uint32_t kCount = 30;
  CompQueue cq;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(pair.dev1.recvm(0, i, Comp::queue(&cq), i),
              common::Status::kOk);
  }
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const auto data = testutil::make_pattern(i, 200);
    while (pair.dev0.sendm(1, i, data.data(), data.size(), Comp::none()) !=
           common::Status::kOk) {
      pair.pump();
    }
  }
  std::vector<bool> seen(kCount, false);
  std::uint32_t received = 0;
  ASSERT_TRUE(pair.pump_until(
      [&] {
        while (auto entry = cq.poll()) {
          EXPECT_FALSE(seen[entry->tag]) << "duplicate tag " << entry->tag;
          EXPECT_TRUE(testutil::check_pattern(entry->data.data(), entry->tag,
                                              entry->size));
          seen[entry->tag] = true;
          ++received;
        }
        return received == kCount;
      },
      std::chrono::milliseconds(20000)))
      << "delivered " << received << "/" << kCount << " through the drops";
  const auto snap = pair.fabric.telemetry().snapshot();
  EXPECT_GT(snap.counter("reliable/lci0/retransmits"), 0u)
      << "drops at 15% must have forced at least one retransmit";
}
