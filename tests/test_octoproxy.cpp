// Tests for the Octo-Tiger proxy: Morton indexing properties, grid kernels
// (mass conservation, face extraction), partition coverage, and the key
// oracle — the distributed run over real parcelports produces a BIT-EXACT
// checksum match with the serial reference, for every backend and several
// locality counts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "octoproxy/simulation.hpp"
#include "stack/stack.hpp"

using octo::LeafGrid;
using octo::LeafId;
using octo::Params;

// ---------------- morton ----------------

TEST(Morton, EncodeDecodeRoundTrip) {
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      for (std::uint32_t z = 0; z < 8; ++z) {
        const auto code = octo::morton_encode(x, y, z);
        const auto [dx, dy, dz] = octo::morton_decode(code);
        EXPECT_EQ(dx, x);
        EXPECT_EQ(dy, y);
        EXPECT_EQ(dz, z);
      }
    }
  }
}

TEST(Morton, CodesAreAPermutation) {
  constexpr int kLevel = 3;
  std::set<LeafId> seen;
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      for (std::uint32_t z = 0; z < 8; ++z) {
        seen.insert(octo::morton_encode(x, y, z));
      }
    }
  }
  EXPECT_EQ(seen.size(), 512u);
  EXPECT_EQ(*seen.rbegin(), 511u);
  (void)kLevel;
}

TEST(Morton, FaceNeighborsAreSymmetric) {
  constexpr int kLevel = 3;
  for (LeafId leaf = 0; leaf < 512; ++leaf) {
    for (int face = 0; face < octo::kNumFaces; ++face) {
      const auto nbr = octo::face_neighbor(leaf, face, kLevel);
      if (!nbr) continue;
      const auto back =
          octo::face_neighbor(*nbr, octo::opposite_face(face), kLevel);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, leaf);
    }
  }
}

TEST(Morton, BoundaryHasNoNeighbor) {
  constexpr int kLevel = 2;
  const LeafId corner = octo::morton_encode(0, 0, 0);
  EXPECT_FALSE(octo::face_neighbor(corner, 0, kLevel).has_value());  // -x
  EXPECT_FALSE(octo::face_neighbor(corner, 2, kLevel).has_value());  // -y
  EXPECT_FALSE(octo::face_neighbor(corner, 4, kLevel).has_value());  // -z
  EXPECT_TRUE(octo::face_neighbor(corner, 1, kLevel).has_value());   // +x
}

TEST(Morton, PartitionCoversEveryLeafExactlyOnce) {
  const std::uint64_t n_leaves = 512;
  for (std::uint32_t parts : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    std::uint64_t covered = 0;
    for (std::uint32_t p = 0; p < parts; ++p) {
      const LeafId lo = octo::partition_begin(p, n_leaves, parts);
      const LeafId hi = octo::partition_begin(p + 1, n_leaves, parts);
      EXPECT_LE(lo, hi);
      for (LeafId leaf = lo; leaf < hi; ++leaf) {
        EXPECT_EQ(octo::owner_of_leaf(leaf, n_leaves, parts), p);
      }
      covered += hi - lo;
    }
    EXPECT_EQ(covered, n_leaves) << parts << " parts";
  }
}

// ---------------- leaf grid ----------------

TEST(LeafGridTest, InitIsDeterministic) {
  LeafGrid a, b;
  a.init(17, 8, 42);
  b.init(17, 8, 42);
  EXPECT_EQ(a.rho, b.rho);
  LeafGrid c;
  c.init(17, 8, 43);  // different seed
  EXPECT_NE(a.rho, c.rho);
}

TEST(LeafGridTest, InteriorDiffusionConservesMass) {
  LeafGrid grid;
  grid.init(0, 8, 1);
  // No ghosts: all faces are zero-flux -> mass exactly conserved up to FP.
  const double before = grid.mass();
  for (int i = 0; i < 10; ++i) grid.diffuse(0.1);
  EXPECT_NEAR(grid.mass(), before, 1e-9 * before);
}

TEST(LeafGridTest, DiffusionSmoothsTowardsUniform) {
  LeafGrid grid;
  grid.init(0, 8, 1);
  auto spread = [&] {
    double lo = 1e300, hi = -1e300;
    for (double q : grid.rho) {
      lo = std::min(lo, q);
      hi = std::max(hi, q);
    }
    return hi - lo;
  };
  const double before = spread();
  for (int i = 0; i < 20; ++i) grid.diffuse(0.1);
  EXPECT_LT(spread(), before);
}

TEST(LeafGridTest, FaceExtractionMatchesCells) {
  LeafGrid grid;
  grid.init(0, 4, 9);
  const auto plane = grid.extract_face(1);  // +x face -> i == nx-1
  ASSERT_EQ(plane.size(), 16u);
  for (int v = 0; v < 4; ++v) {
    for (int u = 0; u < 4; ++u) {
      // axis = x; u -> y, v -> z.
      EXPECT_DOUBLE_EQ(plane[static_cast<size_t>(u + 4 * v)],
                       grid.rho[static_cast<size_t>(grid.idx(3, u, v))]);
    }
  }
}

TEST(LeafGridTest, PairedFluxesConserveMassAcrossLeaves) {
  // Two leaves side by side exchanging ghost planes: combined mass must be
  // conserved to FP accuracy.
  LeafGrid a, b;
  a.init(octo::morton_encode(0, 0, 0), 8, 3);
  b.init(octo::morton_encode(1, 0, 0), 8, 3);
  const double before = a.mass() + b.mass();
  for (int step = 0; step < 10; ++step) {
    a.ghosts[1] = b.extract_face(0);  // a's +x ghost = b's -x plane
    b.ghosts[0] = a.extract_face(1);  // b's -x ghost = a's +x plane
    a.diffuse(0.1);
    b.diffuse(0.1);
  }
  EXPECT_NEAR(a.mass() + b.mass(), before, 1e-9 * before);
}

TEST(LeafGridTest, MultipoleMassMatchesSum) {
  LeafGrid grid;
  grid.init(5, 8, 7);
  const auto m = grid.multipole(5);
  EXPECT_NEAR(m[0], grid.mass(), 1e-12 * grid.mass());
  EXPECT_DOUBLE_EQ(m[7], 512.0);  // cell count
}

TEST(LeafGridTest, FingerprintSensitivity) {
  LeafGrid a, b;
  a.init(3, 8, 11);
  b.init(3, 8, 11);
  EXPECT_EQ(octo::leaf_fingerprint(3, a), octo::leaf_fingerprint(3, b));
  b.rho[100] += 1e-15;  // any bit flip must change the fingerprint
  EXPECT_NE(octo::leaf_fingerprint(3, a), octo::leaf_fingerprint(3, b));
  EXPECT_NE(octo::leaf_fingerprint(3, a), octo::leaf_fingerprint(4, a));
}

// ---------------- serial reference ----------------

TEST(OctoReference, MassConserved) {
  Params params;
  params.level = 2;
  params.steps = 4;
  const auto report = octo::run_reference(params);
  EXPECT_NEAR(report.final_mass, report.initial_mass,
              1e-9 * report.initial_mass);
  EXPECT_NE(report.checksum, 0u);
}

TEST(OctoReference, DeterministicAcrossRuns) {
  Params params;
  params.level = 2;
  params.steps = 3;
  const auto a = octo::run_reference(params);
  const auto b = octo::run_reference(params);
  EXPECT_EQ(a.checksum, b.checksum);
  params.seed = 43;
  const auto c = octo::run_reference(params);
  EXPECT_NE(a.checksum, c.checksum);
}

// ---------------- distributed vs reference (the oracle) ----------------

struct DistCase {
  const char* parcelport;
  amt::Rank localities;
};

class OctoDistributed : public ::testing::TestWithParam<DistCase> {};

TEST_P(OctoDistributed, BitExactVsSerialReference) {
  const auto param = GetParam();
  Params params;
  params.level = 2;  // 64 leaves
  params.steps = 3;
  const auto expected = octo::run_reference(params);

  amtnet::StackOptions options;
  options.parcelport = param.parcelport;
  options.num_localities = param.localities;
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);
  const auto report = octo::run_simulation(*runtime, params);
  runtime->stop();

  EXPECT_EQ(report.checksum, expected.checksum)
      << param.parcelport << " x" << param.localities;
  EXPECT_NEAR(report.final_mass, report.initial_mass,
              1e-9 * report.initial_mass);
  EXPECT_NEAR(report.final_mass, expected.final_mass,
              1e-9 * expected.final_mass);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OctoDistributed,
    ::testing::Values(DistCase{"lci_psr_cq_pin_i", 1},
                      DistCase{"lci_psr_cq_pin_i", 2},
                      DistCase{"lci_psr_cq_pin_i", 4},
                      DistCase{"lci_psr_cq_pin", 2},
                      DistCase{"lci_sr_sy_mt_i", 2},
                      DistCase{"lci_psr_sy_pin_i", 3},
                      DistCase{"mpi", 2}, DistCase{"mpi_i", 2},
                      DistCase{"mpi_i", 4}, DistCase{"mpi_orig", 2}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return std::string(info.param.parcelport) + "_x" +
             std::to_string(info.param.localities);
    });
