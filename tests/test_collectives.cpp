// Tests for the action-based collectives: barrier ordering, allreduce
// correctness, broadcast, repeated rounds, and operation over every
// parcelport kind.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "amt/collectives.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::CollectiveGroup;
using amt::Latch;

namespace {

/// Runs `fn` as a task on every locality and waits for all to finish.
template <typename Fn>
void on_all(amt::Runtime& runtime, Fn&& fn) {
  const amt::Rank n = runtime.num_localities();
  Latch done(n);
  for (amt::Rank r = 0; r < n; ++r) {
    runtime.locality(r).spawn([&fn, &done] {
      fn();
      done.count_down();
    });
  }
  done.wait(runtime.locality(0).scheduler());
}

}  // namespace

class Collectives : public ::testing::TestWithParam<const char*> {};

TEST_P(Collectives, AllreduceSumsContributions) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const double mine = static_cast<double>(amt::here().rank() + 1);
    const double sum = group.allreduce_sum(mine);
    if (sum != 1.0 + 2.0 + 3.0 + 4.0) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, BarrierSeparatesPhases) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 3;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> phase1{0};
  std::atomic<int> violations{0};
  on_all(*runtime, [&] {
    phase1.fetch_add(1);
    group.barrier();
    // After the barrier, every rank must observe all phase-1 increments.
    if (phase1.load() != 3) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, BroadcastDistributesRootValue) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const double got = group.broadcast_from_root(
        amt::here().rank() == 0 ? 12.5 : -1.0);
    if (got != 12.5) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, ManyBackToBackRounds) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 3;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    for (int round = 1; round <= 30; ++round) {
      const double sum = group.allreduce_sum(static_cast<double>(round));
      if (sum != 3.0 * round) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, Collectives,
                         ::testing::Values("lci_psr_cq_pin_i", "mpi_i",
                                           "tcp_i", "lci_sr_sy_mt"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });
