// Tests for the action-based collectives: barrier ordering, allreduce
// correctness, broadcast, repeated rounds, and operation over every
// parcelport kind; plus the log-depth algorithm families (binomial tree,
// recursive doubling, ring, pairwise) against centralised references on
// non-power-of-two locality counts, the bounded round window under
// out-of-order epoch arrival, the pipelined large-payload paths, the
// selection-model-vs-docs cross-check, and TSan-targetable stress floods.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "amt/collectives.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::CollectiveGroup;
using amt::Latch;

namespace {

/// Runs `fn` as a task on every locality and waits for all to finish.
template <typename Fn>
void on_all(amt::Runtime& runtime, Fn&& fn) {
  const amt::Rank n = runtime.num_localities();
  Latch done(n);
  for (amt::Rank r = 0; r < n; ++r) {
    runtime.locality(r).spawn([&fn, &done] {
      fn();
      done.count_down();
    });
  }
  done.wait(runtime.locality(0).scheduler());
}

/// Element-wise u32 sum — commutative and associative, exact under any
/// combine order (unlike floating point), so every algorithm family must
/// produce identical bytes.
void add_u32(std::uint8_t* acc, const std::uint8_t* in, std::size_t bytes) {
  for (std::size_t off = 0; off + 4 <= bytes; off += 4) {
    std::uint32_t a, b;
    std::memcpy(&a, acc + off, 4);
    std::memcpy(&b, in + off, 4);
    a += b;
    std::memcpy(acc + off, &a, 4);
  }
}

/// Rank r's deterministic contribution: `words` u32 values seeded by rank.
CollectiveGroup::Bytes u32_pattern(std::uint32_t rank, std::size_t words,
                                   std::uint32_t salt = 0) {
  CollectiveGroup::Bytes data(words * 4);
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint32_t v =
        (rank + 1) * 2654435761u + static_cast<std::uint32_t>(i) * 40503u +
        salt;
    std::memcpy(data.data() + i * 4, &v, 4);
  }
  return data;
}

/// RAII environment override that restores the previous value on scope exit
/// (the tests mutate AMTNET_COLL_* knobs between runtime spins only).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* prev = std::getenv(name);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      ::setenv(name_, prev_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string prev_;
};

/// Runs one round of every byte-span collective on every rank and checks
/// the results against locally computed references. Exercises whatever
/// algorithm family the group's tuning selects.
void exercise_all_ops(amt::Runtime& runtime, CollectiveGroup& group,
                      std::size_t words, std::atomic<int>& wrong) {
  const amt::Rank n = runtime.num_localities();
  // References, identical on every rank.
  CollectiveGroup::Bytes sum_ref = u32_pattern(0, words);
  for (amt::Rank r = 1; r < n; ++r) {
    const auto contrib = u32_pattern(r, words);
    add_u32(sum_ref.data(), contrib.data(), sum_ref.size());
  }
  CollectiveGroup::Bytes gather_ref;
  for (amt::Rank r = 0; r < n; ++r) {
    const auto part = u32_pattern(r, words);
    gather_ref.insert(gather_ref.end(), part.begin(), part.end());
  }
  on_all(runtime, [&] {
    const amt::Rank rank = amt::here().rank();
    const amt::Rank n_ranks = group.size();
    const std::size_t bytes = words * 4;

    auto mine = u32_pattern(rank, words);
    group.allreduce(mine, 4, &add_u32);
    if (mine != sum_ref) wrong.fetch_add(1);

    auto red = u32_pattern(rank, words);
    group.reduce(1 % n_ranks, red, 4, &add_u32);
    if (rank == 1 % n_ranks && red != sum_ref) wrong.fetch_add(1);

    auto bc = rank == 0 ? u32_pattern(7, words) : CollectiveGroup::Bytes{};
    group.broadcast(0, bc);
    if (bc != u32_pattern(7, words)) wrong.fetch_add(1);

    const auto mine_block =
        group.scatter(0, rank == 0 ? gather_ref : CollectiveGroup::Bytes{},
                      bytes);
    if (mine_block != u32_pattern(rank, words)) wrong.fetch_add(1);

    const auto gathered = group.gather(0, u32_pattern(rank, words));
    if (rank == 0 && gathered != gather_ref) wrong.fetch_add(1);

    // all_to_all: rank r sends block salted by destination; block i of the
    // result must be rank i's block salted by *this* rank.
    CollectiveGroup::Bytes send;
    for (amt::Rank dst = 0; dst < n_ranks; ++dst) {
      const auto block = u32_pattern(rank, words, 1000 + dst);
      send.insert(send.end(), block.begin(), block.end());
    }
    const auto recv = group.all_to_all(send, bytes);
    for (amt::Rank src = 0; src < n_ranks; ++src) {
      const auto expect = u32_pattern(src, words, 1000 + rank);
      if (std::memcmp(recv.data() + src * bytes, expect.data(), bytes) != 0) {
        wrong.fetch_add(1);
      }
    }
  });
}

}  // namespace

class Collectives : public ::testing::TestWithParam<const char*> {};

TEST_P(Collectives, AllreduceSumsContributions) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const double mine = static_cast<double>(amt::here().rank() + 1);
    const double sum = group.allreduce_sum(mine);
    if (sum != 1.0 + 2.0 + 3.0 + 4.0) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, BarrierSeparatesPhases) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 3;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> phase1{0};
  std::atomic<int> violations{0};
  on_all(*runtime, [&] {
    phase1.fetch_add(1);
    group.barrier();
    // After the barrier, every rank must observe all phase-1 increments.
    if (phase1.load() != 3) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, BroadcastDistributesRootValue) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const double got = group.broadcast_from_root(
        amt::here().rank() == 0 ? 12.5 : -1.0);
    if (got != 12.5) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

TEST_P(Collectives, ManyBackToBackRounds) {
  amtnet::StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 3;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);

  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    for (int round = 1; round <= 30; ++round) {
      const double sum = group.allreduce_sum(static_cast<double>(round));
      if (sum != 3.0 * round) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, Collectives,
                         ::testing::Values("lci_psr_cq_pin_i", "mpi_i",
                                           "tcp_i", "lci_sr_sy_mt"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

// Every algorithm family against the centralised references on
// non-power-of-two locality counts (the binomial/rd/ring non-pow2 special
// cases: vrank rotation, the pre/post fold of the 2*rem ranks, uneven ring
// chunks), across every parcelport variant. The family is forced through
// the same coll<ALGO> config token users would write.
TEST_P(Collectives, NonPowerOfTwoEveryAlgorithmFamily) {
  for (const amt::Rank n : {amt::Rank{3}, amt::Rank{5}, amt::Rank{9}}) {
    amtnet::StackOptions options;
    options.parcelport = GetParam();
    options.num_localities = n;
    options.threads_per_locality = 1;
    auto runtime = amtnet::make_runtime(options);
    for (const char* force : {"auto", "central", "tree", "rd", "ring"}) {
      SCOPED_TRACE(std::string(GetParam()) + " n=" + std::to_string(n) +
                   " force=" + force);
      ScopedEnv env("AMTNET_COLL_ALGO", force);
      CollectiveGroup group(*runtime);
      std::atomic<int> wrong{0};
      exercise_all_ops(*runtime, group, 16, wrong);
      EXPECT_EQ(wrong.load(), 0);
    }
    runtime->stop();
  }
}

// 33 localities (past the 32-rank binomial span boundary, non power of
// two): the auto-selected log-depth algorithms must agree with the
// references at a width no earlier test reaches.
TEST(CollectivesWide, ThirtyThreeLocalitiesAutoSelection) {
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.num_localities = 33;
  options.threads_per_locality = 1;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);
  std::atomic<int> wrong{0};
  exercise_all_ops(*runtime, group, 8, wrong);
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

// Payloads above AMTNET_COLL_LARGE_BYTES take the pipelined/segmented
// paths: segmented binomial broadcast (segment size forced small so many
// segments pipeline down the tree) and ring allreduce with uneven
// elem-aligned chunks. Byte-exact against the same references.
TEST(CollectivesLargePayload, SegmentedBroadcastAndRingAllreduce) {
  ScopedEnv seg("AMTNET_COLL_SEG_BYTES", "512");
  ScopedEnv large("AMTNET_COLL_LARGE_BYTES", "4096");
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.num_localities = 5;
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);
  ASSERT_EQ(group.tuning().seg_bytes, 512u);
  ASSERT_EQ(group.tuning().large_bytes, 4096u);
  std::atomic<int> wrong{0};
  // 5000 words = 20000 B: above the crossover, not segment-aligned, and not
  // divisible by the 5-rank ring (so chunks are uneven).
  exercise_all_ops(*runtime, group, 5000, wrong);
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

// Regression shape for the unbounded-round-state hazard of the former
// implementation (one SpinMutex'd map keyed by epoch, cleaned only when
// leavers drained): a 4-rail fabric reorders packets across rails, and a
// tight AMTNET_COLL_WINDOW=2 means an epoch-(e+2) arrival MUST park until
// slot (e % 2) recycles — if recycling or the out-of-order tagging were
// wrong, a stale arrival would corrupt a later round or trip the
// receipt-complete assert. Distinct payloads per epoch catch cross-epoch
// mixups byte-exactly.
TEST(CollectivesWindow, OutOfOrderEpochArrivalUnderRailReordering) {
  ScopedEnv window("AMTNET_COLL_WINDOW", "2");
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.num_localities = 4;
  options.threads_per_locality = 2;
  options.fabric_rails = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);
  ASSERT_EQ(group.tuning().window, 2u);
  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const amt::Rank rank = amt::here().rank();
    for (std::uint32_t round = 0; round < 60; ++round) {
      auto data = rank == round % 4
                      ? u32_pattern(99, 12, round)
                      : CollectiveGroup::Bytes{};
      group.broadcast(round % 4, data);
      if (data != u32_pattern(99, 12, round)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

// docs/collectives.md embeds the generated selection table between
// machine-readable markers; this cross-check keeps the documented model and
// select_algorithm() from drifting apart (the acceptance bar of the PR that
// introduced the log-depth families).
TEST(CollectiveSelectionDocs, TableMatchesImplementation) {
  const std::string path =
      std::string(AMTNET_REPO_ROOT) + "/docs/collectives.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  const std::string begin_marker = "<!-- selection-table:begin -->\n";
  const std::string end_marker = "<!-- selection-table:end -->";
  const std::size_t begin = doc.find(begin_marker);
  const std::size_t end = doc.find(end_marker);
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string embedded =
      doc.substr(begin + begin_marker.size(),
                 end - begin - begin_marker.size());
  EXPECT_EQ(embedded, amt::collective_selection_table_markdown())
      << "docs/collectives.md selection table is stale; regenerate from "
         "collective_selection_table_markdown():\n"
      << amt::collective_selection_table_markdown();
}

// Selection honours the forced family where the op has a member and falls
// back to auto where it does not (a forced ring changes allreduce but not
// broadcast); spot-check the documented auto crossovers too.
TEST(CollectiveSelection, ForcedFamiliesAndAutoCrossovers) {
  amt::CollTuning t;  // defaults: seg 8192, large 16384, auto
  using amt::CollAlgo;
  using amt::CollOp;
  EXPECT_EQ(amt::select_algorithm(CollOp::kAllreduce, 8, 2, t),
            CollAlgo::kCentral);  // n < 4: not worth the tree
  EXPECT_EQ(amt::select_algorithm(CollOp::kAllreduce, 8, 8, t),
            CollAlgo::kRecursiveDoubling);
  EXPECT_EQ(amt::select_algorithm(CollOp::kAllreduce, 65536, 8, t),
            CollAlgo::kRing);
  EXPECT_EQ(amt::select_algorithm(CollOp::kBroadcast, 8, 8, t),
            CollAlgo::kBinomial);
  EXPECT_EQ(amt::select_algorithm(CollOp::kBroadcast, 65536, 8, t),
            CollAlgo::kBinomialPipelined);
  EXPECT_EQ(amt::select_algorithm(CollOp::kBarrier, 0, 8, t),
            CollAlgo::kDissemination);
  t.force = "ring";
  EXPECT_EQ(amt::select_algorithm(CollOp::kAllreduce, 8, 8, t),
            CollAlgo::kRing);
  EXPECT_EQ(amt::select_algorithm(CollOp::kBroadcast, 8, 8, t),
            CollAlgo::kBinomial);  // ring has no broadcast member -> auto
  t.force = "central";
  EXPECT_EQ(amt::select_algorithm(CollOp::kAllreduce, 65536, 16, t),
            CollAlgo::kCentral);
  EXPECT_THROW(amt::coll_tuning_from_environment("bogus"),
               std::invalid_argument);
}

// ---- TSan-targetable stress floods (CI runs --gtest_filter=CollectiveStress.*)

// Mixed collective ops back to back on an mt-progress parcelport with four
// worker threads per locality: the round-slot sharding, inbox hand-off and
// counter updates all race with concurrent action delivery here, which is
// exactly what TSan needs to observe.
TEST(CollectiveStress, MixedOpsFloodManyWorkers) {
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_mt_i";
  options.num_localities = 4;
  options.threads_per_locality = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);
  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const amt::Rank rank = amt::here().rank();
    for (std::uint32_t round = 0; round < 40; ++round) {
      auto data = u32_pattern(rank, 8, round);
      group.allreduce(data, 4, &add_u32);
      CollectiveGroup::Bytes expect = u32_pattern(0, 8, round);
      for (amt::Rank r = 1; r < 4; ++r) {
        const auto c = u32_pattern(r, 8, round);
        add_u32(expect.data(), c.data(), expect.size());
      }
      if (data != expect) wrong.fetch_add(1);
      group.barrier();
      auto bc = rank == round % 4 ? u32_pattern(5, 4, round)
                                  : CollectiveGroup::Bytes{};
      group.broadcast(round % 4, bc);
      if (bc != u32_pattern(5, 4, round)) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}

// The segmented ring/pipelined paths under the same concurrency: large
// payloads cross the zero-copy threshold, so chunk hand-off also races
// with the rendezvous machinery.
TEST(CollectiveStress, SegmentedLargePayloadFlood) {
  ScopedEnv seg("AMTNET_COLL_SEG_BYTES", "1024");
  ScopedEnv large("AMTNET_COLL_LARGE_BYTES", "2048");
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_mt_i";
  options.num_localities = 3;
  options.threads_per_locality = 4;
  auto runtime = amtnet::make_runtime(options);
  CollectiveGroup group(*runtime);
  std::atomic<int> wrong{0};
  on_all(*runtime, [&] {
    const amt::Rank rank = amt::here().rank();
    for (std::uint32_t round = 0; round < 10; ++round) {
      auto data = u32_pattern(rank, 3000, round);
      group.allreduce(data, 4, &add_u32);
      CollectiveGroup::Bytes expect = u32_pattern(0, 3000, round);
      for (amt::Rank r = 1; r < 3; ++r) {
        const auto c = u32_pattern(r, 3000, round);
        add_u32(expect.data(), c.data(), expect.size());
      }
      if (data != expect) wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  runtime->stop();
}
