// Tests for the telemetry subsystem: counter/gauge exactness under
// concurrency, histogram bucket maths and percentile bounds, registry
// find-or-create and snapshot aggregation, exporters (CSV/JSON), and the
// Chrome trace recorder (emitted JSON must actually parse).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace {

// ---- minimal recursive-descent JSON validator -----------------------------
// Just enough JSON to verify well-formedness of the emitted documents; no
// value extraction. Returns false on any syntax error or trailing garbage.

class JsonValidator {
 public:
  explicit JsonValidator(std::string text) : text_(std::move(text)) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (peek() == '}') return consume('}');
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        consume(',');
        continue;
      }
      return consume('}');
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (peek() == ']') return consume(']');
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        consume(',');
        continue;
      }
      return consume(']');
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return consume('"');
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

#ifndef AMTNET_TELEMETRY_DISABLED

// ---------------- Counter / Gauge ----------------

TEST(Counter, ConcurrentAddsAreExact) {
  telemetry::Counter counter;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddN) {
  telemetry::Counter counter;
  counter.add(41);
  counter.add();
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, AddSubBalancesAcrossThreads) {
  telemetry::Gauge gauge;
  constexpr unsigned kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kIters; ++i) {
        gauge.add(3);
        gauge.sub(2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(kThreads) * kIters);
}

// ---------------- Histogram bucket maths ----------------

TEST(Histogram, SmallValuesBucketExactly) {
  for (std::uint64_t v = 0; v < telemetry::Histogram::kSub; ++v) {
    EXPECT_EQ(telemetry::Histogram::bucket_index(v), v);
    EXPECT_EQ(telemetry::Histogram::bucket_upper(
                  telemetry::Histogram::bucket_index(v)),
              v);
  }
}

TEST(Histogram, BucketUpperBoundsContainValue) {
  // bucket_upper(bucket_index(v)) must be >= v and within the ~1/32 relative
  // error HDR bucketing promises, across the whole 64-bit range.
  for (std::uint64_t v : {32ull, 33ull, 63ull, 64ull, 100ull, 1000ull,
                          4095ull, 4096ull, 65535ull, 1000000ull,
                          0x7fffffffffffffffull, 0xffffffffffffffffull}) {
    const unsigned index = telemetry::Histogram::bucket_index(v);
    ASSERT_LT(index, telemetry::Histogram::kBuckets);
    const std::uint64_t upper = telemetry::Histogram::bucket_upper(index);
    EXPECT_GE(upper, v) << "v=" << v;
    // upper < v + v/32 + 1 (one sub-bucket width above v).
    EXPECT_LE(upper - v, v / telemetry::Histogram::kSub + 1) << "v=" << v;
  }
}

TEST(Histogram, BucketEdgesRoundTrip) {
  // Every bucket's upper bound must map back to the same bucket.
  for (unsigned index = 0; index < telemetry::Histogram::kBuckets; ++index) {
    EXPECT_EQ(telemetry::Histogram::bucket_index(
                  telemetry::Histogram::bucket_upper(index)),
              index)
        << "index=" << index;
  }
}

TEST(Histogram, CountSumMax) {
  telemetry::Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.5), 0u);
  histogram.record(7);
  histogram.record(100);
  histogram.record(3);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 110u);
  EXPECT_EQ(histogram.max(), 100u);
}

TEST(Histogram, PercentileBounds) {
  telemetry::Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const std::uint64_t p50 = histogram.percentile(0.50);
  const std::uint64_t p90 = histogram.percentile(0.90);
  const std::uint64_t p99 = histogram.percentile(0.99);
  // Reported quantiles are bucket upper bounds: never below the true value,
  // never more than one sub-bucket (~3%) above it.
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 500u + 500u / 32 + 1);
  EXPECT_GE(p90, 900u);
  EXPECT_LE(p90, 900u + 900u / 32 + 1);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 990u + 990u / 32 + 1);
  // The top quantile is clamped to the observed maximum.
  EXPECT_EQ(histogram.percentile(1.0), 1000u);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(Histogram, PercentileAccuracyUniform) {
  // Dense uniform distribution over ~4 decades: every reported quantile must
  // sit within one sub-bucket (1/32 ~ 3.2%) above the true order statistic.
  telemetry::Histogram histogram;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t v = 1; v <= kN; ++v) histogram.record(v);
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const auto truth =
        static_cast<std::uint64_t>(q * static_cast<double>(kN));
    const std::uint64_t reported = histogram.percentile(q);
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_LE(reported, truth + truth / 32 + 1) << "q=" << q;
  }
}

TEST(Histogram, PercentileAccuracyHeavyTail) {
  // Three-mode latency-like mixture spanning four orders of magnitude
  // (1ms body, 100ms tail, one 10s outlier — in ns). The tail quantiles
  // must land on the right mode, not get smeared by the wide buckets
  // between modes.
  telemetry::Histogram histogram;
  constexpr std::uint64_t kBody = 1'000'000;
  constexpr std::uint64_t kTail = 100'000'000;
  constexpr std::uint64_t kOutlier = 10'000'000'000;
  for (int i = 0; i < 9900; ++i) histogram.record(kBody);
  for (int i = 0; i < 99; ++i) histogram.record(kTail);
  histogram.record(kOutlier);

  const std::uint64_t p50 = histogram.percentile(0.50);
  EXPECT_GE(p50, kBody);
  EXPECT_LE(p50, kBody + kBody / 32 + 1);
  // 9900 of 10000 samples are body: p99 still reports the body mode.
  const std::uint64_t p99 = histogram.percentile(0.99);
  EXPECT_GE(p99, kBody);
  EXPECT_LE(p99, kBody + kBody / 32 + 1);
  // p99.9 crosses into the 100ms tail mode.
  const std::uint64_t p999 = histogram.percentile(0.999);
  EXPECT_GE(p999, kTail);
  EXPECT_LE(p999, kTail + kTail / 32 + 1);
  // The top of the distribution is the exact observed outlier.
  EXPECT_EQ(histogram.percentile(1.0), kOutlier);
  EXPECT_EQ(histogram.max(), kOutlier);
}

TEST(Histogram, PercentilesSinglePassMatchesRepeatedQueries) {
  // The three-way percentiles() used by the load generator must agree with
  // the one-at-a-time API (same bucket walk, one pass).
  telemetry::Histogram histogram;
  std::uint64_t state = 2026;
  for (int i = 0; i < 20000; ++i) {
    // splitmix-style scramble: deterministic pseudo-uniform in [1, 2^20].
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    histogram.record((z ^ (z >> 31)) % (1u << 20) + 1);
  }
  const std::array<double, 3> qs = {0.5, 0.99, 0.999};
  std::array<std::uint64_t, 3> out = {0, 0, 0};
  histogram.percentiles(qs, out);
  EXPECT_EQ(out[0], histogram.percentile(0.5));
  EXPECT_EQ(out[1], histogram.percentile(0.99));
  EXPECT_EQ(out[2], histogram.percentile(0.999));
  EXPECT_LE(out[0], out[1]);
  EXPECT_LE(out[1], out[2]);
}

TEST(Histogram, ConcurrentRecordsKeepExactCount) {
  telemetry::Histogram histogram;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record(t * 1000 + (i & 255));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(ScopedTimer, RecordsIffTimingEnabled) {
  telemetry::Histogram histogram;
  { telemetry::ScopedTimer timer(histogram); }
  // AMTNET_TELEMETRY is read once per process; the timer must agree with it.
  EXPECT_EQ(histogram.count(), telemetry::timing_enabled() ? 1u : 0u);
}

// ---------------- Registry ----------------

TEST(Registry, FindOrCreateReturnsStableReferences) {
  telemetry::Registry registry;
  telemetry::Counter& a = registry.counter("layer/inst/events");
  telemetry::Counter& b = registry.counter("layer/inst/events");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(b.value(), 5u);
  telemetry::Histogram& h1 = registry.histogram("layer/inst/lat_ns");
  telemetry::Histogram& h2 = registry.histogram("layer/inst/lat_ns");
  EXPECT_EQ(&h1, &h2);
  telemetry::Gauge& g1 = registry.gauge("layer/inst/depth");
  telemetry::Gauge& g2 = registry.gauge("layer/inst/depth");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, SnapshotAggregatesAndFilters) {
  telemetry::Registry registry;
  registry.counter("fabric/nic0/packets_sent").add(10);
  registry.counter("fabric/nic1/packets_sent").add(32);
  registry.counter("fabric/nic0/bytes_sent").add(999);
  registry.gauge("minilci/dev0/cq_depth").add(4);
  telemetry::Histogram& histogram = registry.histogram("amt/loc0/ser_ns");
  for (std::uint64_t v = 1; v <= 100; ++v) histogram.record(v);

  const telemetry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("fabric/nic0/packets_sent"), 10u);
  EXPECT_EQ(snap.counter("no/such/metric"), 0u);
  EXPECT_EQ(snap.counter_sum("fabric/", "/packets_sent"), 42u);
  EXPECT_EQ(snap.gauge("minilci/dev0/cq_depth"), 4);
  const telemetry::HistogramSummary* summary =
      snap.histogram("amt/loc0/ser_ns");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count, 100u);
  EXPECT_EQ(summary->sum, 5050u);
  EXPECT_EQ(summary->max, 100u);
  EXPECT_LE(summary->p50, summary->p90);
  EXPECT_LE(summary->p90, summary->p99);
  EXPECT_LE(summary->p99, summary->max);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  telemetry::Registry registry;
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.counter("shared/hot/counter").add();
        registry.histogram("shared/hot/hist").record(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const telemetry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("shared/hot/counter"), kThreads * 1000u);
  ASSERT_NE(snap.histogram("shared/hot/hist"), nullptr);
  EXPECT_EQ(snap.histogram("shared/hot/hist")->count, kThreads * 1000u);
}

TEST(Registry, CsvExportHasHeaderAndRows) {
  telemetry::Registry registry;
  registry.counter("a/b/c").add(3);
  registry.histogram("a/b/h").record(10);
  const std::string csv = registry.snapshot().to_csv();
  EXPECT_NE(csv.find("name,kind,value,count,sum,max,p50,p90,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("a/b/c,counter,3"), std::string::npos);
  EXPECT_NE(csv.find("a/b/h,histogram"), std::string::npos);
}

TEST(Registry, JsonExportParses) {
  telemetry::Registry registry;
  registry.counter("a/b/c").add(3);
  registry.gauge("a/b/g").sub(7);
  registry.histogram("a/b/\"quoted\\name").record(10);  // exercises escaping
  const std::string json = registry.snapshot().to_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
}

// ---------------- Trace recorder ----------------

TEST(Trace, EmptyDumpIsValidJson) {
  telemetry::TraceRecorder recorder;
  const std::string json = recorder.dump_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(Trace, DisabledRecorderRecordsNothing) {
  telemetry::TraceRecorder recorder;
  recorder.record("cat", "name", 'I');
  EXPECT_EQ(recorder.dump_json().find("\"cat\""), std::string::npos);
}

TEST(Trace, MultiThreadedEventsProduceParseableJson) {
  telemetry::TraceRecorder recorder;
  recorder.set_enabled(true);
  constexpr unsigned kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kEvents; ++i) {
        recorder.record("test", "span", 'B');
        recorder.record("test", "span", 'E');
        recorder.record("test", "tick", 'I');
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::string json = recorder.dump_json();
  JsonValidator validator(json);
  ASSERT_TRUE(validator.valid());

  // All events fit in the rings (3*500 < 2^14), so nothing was dropped and
  // every recorded event must appear in the dump.
  EXPECT_EQ(recorder.dropped(), 0u);
  std::size_t begins = 0;
  for (std::size_t at = json.find("\"ph\":\"B\""); at != std::string::npos;
       at = json.find("\"ph\":\"B\"", at + 1)) {
    ++begins;
  }
  EXPECT_EQ(begins, static_cast<std::size_t>(kThreads) * kEvents);
}

TEST(Trace, DumpToFileRoundTrips) {
  telemetry::TraceRecorder recorder;
  recorder.set_enabled(true);
  {
    telemetry::TraceScope scope("test", "outer");
    recorder.record("test", "inner", 'I');
  }
  const std::string path = "test_telemetry_trace_out.json";
  ASSERT_TRUE(recorder.dump_json_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  // The TraceScope above targets the global recorder, not this one, so only
  // the explicit record() must be present here.
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(Trace, DumpsAccumulateAcrossCalls) {
  telemetry::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.record("test", "first", 'I');
  EXPECT_NE(recorder.dump_json().find("\"first\""), std::string::npos);
  recorder.record("test", "second", 'I');
  const std::string json = recorder.dump_json();
  // A later dump contains both the already-drained and the new events.
  EXPECT_NE(json.find("\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"second\""), std::string::npos);
}

#else  // AMTNET_TELEMETRY_DISABLED

// With telemetry compiled out, every primitive must exist, accept the full
// instrumented API, and observably do nothing.

TEST(TelemetryDisabled, PrimitivesAreNoOps) {
  telemetry::Counter counter;
  counter.add(42);
  EXPECT_EQ(counter.value(), 0u);
  telemetry::Gauge gauge;
  gauge.add(5);
  gauge.sub(1);
  EXPECT_EQ(gauge.value(), 0);
  telemetry::Histogram histogram;
  histogram.record(123);
  { telemetry::ScopedTimer timer(histogram); }
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.99), 0u);
}

TEST(TelemetryDisabled, RegistryHandsOutStubsAndEmptySnapshot) {
  telemetry::Registry registry;
  registry.counter("a/b/c").add(7);
  registry.histogram("a/b/h").record(9);
  registry.gauge("a/b/g").add(1);
  const telemetry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("a/b/c"), 0u);
  EXPECT_EQ(snap.histogram("a/b/h"), nullptr);
  JsonValidator validator(snap.to_json());
  EXPECT_TRUE(validator.valid());
  EXPECT_FALSE(snap.to_csv().empty());
}

TEST(TelemetryDisabled, TraceIsInertButValid) {
  telemetry::TraceRecorder& recorder = telemetry::TraceRecorder::instance();
  recorder.set_enabled(true);
  EXPECT_FALSE(recorder.enabled());
  AMTNET_TRACE_SCOPE("test", "scope");
  AMTNET_TRACE_INSTANT("test", "instant");
  const std::string json = recorder.dump_json();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.valid()) << json;
  EXPECT_EQ(recorder.dropped(), 0u);
}

#endif  // AMTNET_TELEMETRY_DISABLED
