// Tests for the simulated RDMA fabric: delivery, latency gating, bandwidth
// serialisation, rail ordering, SRQ back-pressure (RNR), TX-window retry,
// memory registration, and RDMA writes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "fabric/nic.hpp"
#include "test_util.hpp"

using fabric::Config;
using fabric::Fabric;
using fabric::Nic;
using fabric::Profile;
using fabric::RxEvent;

namespace {

std::vector<RxEvent> poll_all(Nic& nic, std::size_t expected,
                              std::chrono::milliseconds timeout =
                                  std::chrono::milliseconds(5000)) {
  std::vector<RxEvent> events;
  testutil::pump_until(
      [&] { return events.size() >= expected; },
      [&] {
        nic.poll_rx(64, [&](RxEvent&& e) { events.push_back(std::move(e)); });
      },
      timeout);
  return events;
}

}  // namespace

TEST(FabricProfiles, MatchPaperTables) {
  const auto expanse = Profile::expanse(2);
  EXPECT_DOUBLE_EQ(expanse.bandwidth_gbps, 100.0);  // HDR 2x50Gbps (Table 2)
  const auto rostam = Profile::rostam(2);
  EXPECT_DOUBLE_EQ(rostam.bandwidth_gbps, 56.0);  // FDR 4x14Gbps (Table 3)
  EXPECT_GT(rostam.latency_us, expanse.latency_us);
  const auto description = Profile::describe(expanse, "expanse");
  EXPECT_NE(description.find("bandwidth_gbps=100"), std::string::npos);
}

TEST(Fabric, SendDeliversPayloadAndImm) {
  Fabric fabric(Profile::loopback(2));
  const auto data = testutil::make_pattern(1, 100);
  ASSERT_EQ(fabric.nic(0).post_send(1, data.data(), data.size(), 0xabcd),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RxEvent::Kind::kRecv);
  EXPECT_EQ(events[0].src, 0u);
  EXPECT_EQ(events[0].imm, 0xabcdu);
  EXPECT_EQ(events[0].size, 100u);
  EXPECT_TRUE(testutil::check_pattern(events[0].data(), 1, 100));
  EXPECT_TRUE(events[0].credit.valid());  // the SRQ slot is held
}

TEST(Fabric, ZeroLengthSendHasNoBuffer) {
  Fabric fabric(Profile::loopback(2));
  ASSERT_EQ(fabric.nic(0).post_send(1, nullptr, 0, 7), common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].size, 0u);
  EXPECT_TRUE(events[0].payload.empty());
  EXPECT_FALSE(events[0].credit.valid());  // no SRQ slot consumed
}

TEST(Fabric, SendToInvalidRankErrors) {
  Fabric fabric(Profile::loopback(2));
  int x = 0;
  EXPECT_EQ(fabric.nic(0).post_send(7, &x, sizeof(x), 0),
            common::Status::kError);
}

TEST(Fabric, OversizedSendErrors) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> big(fabric.nic(0).srq_buffer_size() + 1);
  EXPECT_EQ(fabric.nic(0).post_send(1, big.data(), big.size(), 0),
            common::Status::kError);
}

TEST(Fabric, SingleRailPreservesOrder) {
  Config config = Profile::loopback(2);
  config.num_rails = 1;
  Fabric fabric(config);
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(fabric.nic(0).post_send(1, &i, sizeof(i), i),
              common::Status::kOk);
  }
  auto events = poll_all(fabric.nic(1), kCount);
  ASSERT_EQ(events.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(events[i].imm, i);
  }
}

TEST(Fabric, LatencyGatesDelivery) {
  Config config;
  config.num_ranks = 2;
  config.latency_us = 20000.0;  // 20 ms: far above scheduling noise
  config.num_rails = 1;
  Fabric fabric(config);
  int x = 42;
  const auto t0 = common::now_ns();
  ASSERT_EQ(fabric.nic(0).post_send(1, &x, sizeof(x), 0),
            common::Status::kOk);
  // Immediately after posting, nothing must be deliverable.
  std::size_t early = fabric.nic(1).poll_rx(8, [](RxEvent&&) {});
  EXPECT_EQ(early, 0u);
  auto events = poll_all(fabric.nic(1), 1);
  const auto elapsed = common::now_ns() - t0;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(elapsed, 20'000'000);  // at least the configured latency
}

TEST(Fabric, BandwidthSerialisesBackToBackPackets) {
  Config config;
  config.num_ranks = 2;
  config.latency_us = 0.0;
  config.bandwidth_gbps = 0.008;  // 1 KiB/ms: transmission time dominates
  config.num_rails = 1;
  Fabric fabric(config);
  std::vector<std::byte> payload(10240);  // ~10 ms of wire time each
  const auto t0 = common::now_ns();
  ASSERT_EQ(fabric.nic(0).post_send(1, payload.data(), payload.size(), 1),
            common::Status::kOk);
  ASSERT_EQ(fabric.nic(0).post_send(1, payload.data(), payload.size(), 2),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 2);
  const auto elapsed = common::now_ns() - t0;
  ASSERT_EQ(events.size(), 2u);
  // Two ~10 ms packets on one serial link: >= ~20 ms total.
  EXPECT_GE(elapsed, 18'000'000);
}

TEST(Fabric, PacketRateCapThrottles) {
  Config config;
  config.num_ranks = 2;
  config.latency_us = 0.0;
  config.pkt_rate_mpps = 0.0001;  // 100 packets/s -> 10 ms per packet
  config.num_rails = 1;
  Fabric fabric(config);
  int x = 0;
  const auto t0 = common::now_ns();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(fabric.nic(0).post_send(1, &x, sizeof(x), 0),
              common::Status::kOk);
  }
  auto events = poll_all(fabric.nic(1), 3);
  const auto elapsed = common::now_ns() - t0;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_GE(elapsed, 20'000'000);  // 3 packets at 10 ms spacing
}

TEST(Fabric, TxWindowRejectsWhenFull) {
  Config config = Profile::loopback(2);
  config.tx_window = 8;
  Fabric fabric(config);
  int x = 0;
  int accepted = 0;
  common::Status status = common::Status::kOk;
  for (int i = 0; i < 100 && status == common::Status::kOk; ++i) {
    status = fabric.nic(0).post_send(1, &x, sizeof(x), 0);
    if (status == common::Status::kOk) ++accepted;
  }
  EXPECT_EQ(status, common::Status::kRetry);
  EXPECT_EQ(accepted, 8);
  EXPECT_GE(fabric.nic(0).stats().sends_rejected_tx_window, 1u);

  // Draining the receiver restores credit.
  auto events = poll_all(fabric.nic(1), 8);
  ASSERT_EQ(events.size(), 8u);
  events.clear();  // release SRQ buffers
  EXPECT_EQ(fabric.nic(0).post_send(1, &x, sizeof(x), 0),
            common::Status::kOk);
}

TEST(Fabric, SrqExhaustionStallsThenRecovers) {
  Config config = Profile::loopback(2);
  config.srq_depth = 4;
  config.tx_window = 64;
  Fabric fabric(config);
  int x = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fabric.nic(0).post_send(1, &x, sizeof(x), i),
              common::Status::kOk);
  }
  // Hold the first four buffers: the rest must stall (RNR), not drop.
  std::vector<RxEvent> held;
  fabric.nic(1).poll_rx(64,
                        [&](RxEvent&& e) { held.push_back(std::move(e)); });
  EXPECT_EQ(held.size(), 4u);
  std::size_t more = fabric.nic(1).poll_rx(64, [](RxEvent&&) {});
  EXPECT_EQ(more, 0u);
  EXPECT_GE(fabric.nic(1).stats().rnr_stalls, 1u);

  held.clear();  // recycle SRQ buffers
  auto rest = poll_all(fabric.nic(1), 4);
  EXPECT_EQ(rest.size(), 4u);
}

TEST(Fabric, RdmaWriteLandsInRegisteredMemory) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> target(256, std::byte{0});
  const auto mr = fabric.nic(1).register_memory(target.data(), target.size());
  EXPECT_EQ(mr.rank, 1u);

  const auto data = testutil::make_pattern(9, 64);
  ASSERT_EQ(fabric.nic(0).post_write(1, mr, 32, data.data(), data.size()),
            common::Status::kOk);
  // Writes are invisible to the event stream; pump until the data lands.
  ASSERT_TRUE(testutil::pump_until(
      [&] { return testutil::check_pattern(target.data() + 32, 9, 64); },
      [&] { fabric.nic(1).poll_rx(8, [](RxEvent&&) {}); }));
  // Bytes around the window are untouched.
  EXPECT_EQ(target[31], std::byte{0});
  EXPECT_EQ(target[96], std::byte{0});
}

TEST(Fabric, RdmaWriteImmSignalsTarget) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> target(128);
  const auto mr = fabric.nic(1).register_memory(target.data(), target.size());
  const auto data = testutil::make_pattern(3, 128);
  ASSERT_EQ(fabric.nic(0).post_write_imm(1, mr, 0, data.data(), data.size(),
                                         0xfeed),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RxEvent::Kind::kWriteImm);
  EXPECT_EQ(events[0].imm, 0xfeedu);
  EXPECT_EQ(events[0].size, 128u);
  EXPECT_TRUE(testutil::check_pattern(target.data(), 3, 128));
}

TEST(Fabric, WriteToDeregisteredMrIsDroppedSafely) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> target(64, std::byte{7});
  const auto mr = fabric.nic(1).register_memory(target.data(), target.size());
  fabric.nic(1).deregister_memory(mr);
  const auto data = testutil::make_pattern(4, 64);
  ASSERT_EQ(fabric.nic(0).post_write_imm(1, mr, 0, data.data(), data.size(),
                                         1),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);  // the immediate still arrives...
  EXPECT_EQ(target[0], std::byte{7});  // ...but memory is untouched
}

TEST(Fabric, OutOfBoundsWriteIsDropped) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> target(64, std::byte{7});
  const auto mr = fabric.nic(1).register_memory(target.data(), target.size());
  const auto data = testutil::make_pattern(4, 64);
  // offset 32 + 64 bytes overruns the 64-byte region.
  ASSERT_EQ(fabric.nic(0).post_write_imm(1, mr, 32, data.data(), data.size(),
                                         1),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(target[32], std::byte{7});  // nothing was written
}

TEST(Fabric, RdmaReadFetchesRemoteMemory) {
  Fabric fabric(Profile::loopback(2));
  const auto remote_data = testutil::make_pattern(11, 256);
  std::vector<std::byte> remote(remote_data);
  const auto mr = fabric.nic(1).register_memory(remote.data(), remote.size());

  std::vector<std::byte> local(64, std::byte{0});
  ASSERT_EQ(fabric.nic(0).post_read(1, mr, 32, local.data(), local.size(),
                                    0xbeef),
            common::Status::kOk);
  // Completion arrives at the READER's poll loop; no target-side polling.
  auto events = poll_all(fabric.nic(0), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RxEvent::Kind::kReadDone);
  EXPECT_EQ(events[0].src, 1u);
  EXPECT_EQ(events[0].imm, 0xbeefu);
  EXPECT_EQ(events[0].size, 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(local[i], remote_data[32 + i]);
  }
}

TEST(Fabric, RdmaReadOutOfBoundsIsDroppedSafely) {
  Fabric fabric(Profile::loopback(2));
  std::vector<std::byte> remote(64);
  const auto mr = fabric.nic(1).register_memory(remote.data(), remote.size());
  std::vector<std::byte> local(64, std::byte{9});
  // offset 32 + 64 overruns the region: no copy, but completion still fires.
  ASSERT_EQ(fabric.nic(0).post_read(1, mr, 32, local.data(), local.size(), 1),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(0), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(local[0], std::byte{9});
}

TEST(Fabric, RdmaReadRoundTripLatency) {
  Config config;
  config.num_ranks = 2;
  config.latency_us = 10000.0;  // 10 ms one way -> ~20 ms round trip
  config.num_rails = 1;
  Fabric fabric(config);
  std::vector<std::byte> remote(8);
  const auto mr = fabric.nic(1).register_memory(remote.data(), remote.size());
  std::vector<std::byte> local(8);
  const auto t0 = common::now_ns();
  ASSERT_EQ(fabric.nic(0).post_read(1, mr, 0, local.data(), local.size(), 1),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(0), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(common::now_ns() - t0, 19'000'000);
}

TEST(Fabric, StatsCountTraffic) {
  Fabric fabric(Profile::loopback(2));
  int x = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(fabric.nic(0).post_send(1, &x, sizeof(x), 0),
              common::Status::kOk);
  }
  poll_all(fabric.nic(1), 5);
  const auto tx = fabric.nic(0).stats();
  const auto rx = fabric.nic(1).stats();
  EXPECT_EQ(tx.packets_sent, 5u);
  EXPECT_GT(tx.bytes_sent, 5 * sizeof(x));  // includes framing overhead
  EXPECT_EQ(rx.packets_received, 5u);
}

TEST(Fabric, ConcurrentSendersAndPollersDeliverEverything) {
  Config config = Profile::loopback(2);
  config.srq_depth = 256;
  config.tx_window = 1024;
  Fabric fabric(config);
  constexpr int kSenders = 4;
  constexpr int kPollers = 3;
  constexpr std::uint64_t kPerSender = 5000;
  constexpr std::uint64_t kTotal = kSenders * kPerSender;

  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> checksum{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (std::uint64_t i = 0; i < kPerSender; ++i) {
        const std::uint64_t imm = static_cast<std::uint64_t>(s) << 32 | i;
        while (fabric.nic(0).post_send(1, &imm, sizeof(imm), imm) !=
               common::Status::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kPollers; ++c) {
    threads.emplace_back([&] {
      while (received.load() < kTotal) {
        const std::size_t n = fabric.nic(1).poll_rx(32, [&](RxEvent&& e) {
          std::uint64_t value = 0;
          std::memcpy(&value, e.data(), sizeof(value));
          EXPECT_EQ(value, e.imm);
          checksum.fetch_add(e.imm + 1);
        });
        received.fetch_add(n);
        if (n == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t expected = 0;
  for (int s = 0; s < kSenders; ++s) {
    for (std::uint64_t i = 0; i < kPerSender; ++i) {
      expected += (static_cast<std::uint64_t>(s) << 32 | i) + 1;
    }
  }
  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(checksum.load(), expected);
}

// ---------------- deterministic fault injection ----------------

#include <set>

#include "fabric/reliable.hpp"

namespace {

fabric::Config chaos_config(fabric::Rank num_ranks) {
  fabric::Config config = Profile::loopback(num_ranks);
  config.num_rails = 1;
  return config;
}

/// Posts `count` 8-byte datagrams 0 -> 1, spinning through kRetry, and
/// returns the imm sequence the receiver observed once the fabric drained.
std::vector<std::uint64_t> run_lossy_exchange(const fabric::Config& config,
                                              std::uint64_t count) {
  Fabric fabric(config);
  for (std::uint64_t i = 0; i < count; ++i) {
    while (fabric.nic(0).post_send(1, &i, sizeof(i), i) !=
           common::Status::kOk) {
      fabric.nic(1).poll_rx(64, [](RxEvent&&) {});
    }
  }
  const auto sender = fabric.nic(0).stats();
  const std::uint64_t expected =
      count - sender.faults_dropped + sender.faults_duplicated;
  std::vector<std::uint64_t> received;
  testutil::pump_until(
      [&] { return received.size() >= expected; },
      [&] {
        fabric.nic(1).poll_rx(64,
                              [&](RxEvent&& e) { received.push_back(e.imm); });
      });
  return received;
}

}  // namespace

TEST(FaultInjection, ZeroProbabilitiesInjectNothing) {
  Fabric fabric(chaos_config(2));
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(fabric.nic(0).post_send(1, &i, sizeof(i), i),
              common::Status::kOk);
  }
  auto events = poll_all(fabric.nic(1), 100);
  EXPECT_EQ(events.size(), 100u);
  const auto stats = fabric.nic(0).stats();
  EXPECT_EQ(stats.faults_dropped, 0u);
  EXPECT_EQ(stats.faults_duplicated, 0u);
  EXPECT_EQ(stats.faults_corrupted, 0u);
  EXPECT_EQ(stats.faults_delayed, 0u);
  EXPECT_EQ(stats.brownout_rejects, 0u);
  EXPECT_EQ(stats.rnr_storms, 0u);
}

TEST(FaultInjection, DropAndDupPatternReplaysFromSeed) {
  fabric::Config config = chaos_config(2);
  config.faults.drop = 0.2;
  config.faults.duplicate = 0.1;
  config.faults.seed = 0xfeedULL;
  const auto first = run_lossy_exchange(config, 300);
  const auto second = run_lossy_exchange(config, 300);
  EXPECT_EQ(first, second) << "same seed must replay the same fault pattern";
  EXPECT_LT(first.size(), 330u);  // some datagrams really were dropped

  config.faults.seed = 0xbeefULL;
  const auto other = run_lossy_exchange(config, 300);
  EXPECT_NE(first, other) << "a different seed should reshuffle the faults";
}

TEST(FaultInjection, BrownoutSurfacesAsRetry) {
  fabric::Config config = chaos_config(2);
  config.faults.brownout = 1.0;
  config.faults.brownout_posts = 8;
  Fabric fabric(config);
  std::uint64_t value = 7;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fabric.nic(0).post_send(1, &value, sizeof(value), 0),
              common::Status::kRetry);
  }
  EXPECT_EQ(fabric.nic(0).stats().brownout_rejects, 10u);
}

TEST(FaultInjection, CorruptionFlipsOneBit) {
  fabric::Config config = chaos_config(2);
  config.faults.corrupt = 1.0;
  Fabric fabric(config);
  const auto data = testutil::make_pattern(3, 64);
  ASSERT_EQ(fabric.nic(0).post_send(1, data.data(), data.size(), 0),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].size, 64u);
  EXPECT_FALSE(testutil::check_pattern(events[0].data(), 3, 64));
  int flipped_bits = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    flipped_bits += __builtin_popcount(
        static_cast<unsigned>(events[0].data()[i] ^ data[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(fabric.nic(0).stats().faults_corrupted, 1u);
}

TEST(FaultInjection, CorruptMinSizeSparesSmallPayloads) {
  fabric::Config config = chaos_config(2);
  config.faults.corrupt = 1.0;
  config.faults.corrupt_min_size = 1024;
  Fabric fabric(config);
  const auto data = testutil::make_pattern(4, 64);  // below the floor
  ASSERT_EQ(fabric.nic(0).post_send(1, data.data(), data.size(), 0),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(testutil::check_pattern(events[0].data(), 4, 64));
  EXPECT_EQ(fabric.nic(0).stats().faults_corrupted, 0u);
}

TEST(FaultInjection, DelaySpikesAreCountedAndStillDelivered) {
  fabric::Config config = chaos_config(2);
  config.faults.delay = 1.0;
  config.faults.delay_us = 100.0;
  Fabric fabric(config);
  std::uint64_t value = 9;
  ASSERT_EQ(fabric.nic(0).post_send(1, &value, sizeof(value), 9),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].imm, 9u);
  EXPECT_EQ(fabric.nic(0).stats().faults_delayed, 1u);
}

TEST(FaultInjection, RnrStormRefusesBufferedDeliveries) {
  fabric::Config config = chaos_config(2);
  config.faults.rnr_storm = 0.5;
  config.faults.rnr_storm_polls = 4;
  Fabric fabric(config);
  // Burn poll indices until a storm has statistically certainly triggered.
  for (int i = 0; i < 64; ++i) fabric.nic(1).poll_rx(8, [](RxEvent&&) {});
  EXPECT_GE(fabric.nic(1).stats().rnr_storms, 1u);
  // A buffered datagram still gets through once a storm-free poll lands.
  std::uint64_t value = 5;
  ASSERT_EQ(fabric.nic(0).post_send(1, &value, sizeof(value), 5),
            common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].imm, 5u);
}

// ---------------- the reliability sublayer over a lossy fabric ----------

namespace {

/// Drives two ReliableEndpoints until `expected` distinct datagrams arrived
/// at rank 1 and the sender has nothing outstanding.
struct ReliablePair {
  Fabric fabric;
  fabric::ReliableEndpoint tx;
  fabric::ReliableEndpoint rx;
  std::vector<std::uint64_t> received;

  explicit ReliablePair(const fabric::Config& config)
      : fabric(config),
        tx(fabric, 0, "test"),
        rx(fabric, 1, "test") {}

  void pump() {
    tx.progress();
    rx.progress();
    fabric.nic(1).poll_rx(64, [&](RxEvent&& event) {
      if (!rx.on_recv(event)) return;
      EXPECT_TRUE(
          testutil::check_pattern(event.data(), event.imm, event.size));
      received.push_back(event.imm);
    });
    fabric.nic(0).poll_rx(64, [&](RxEvent&& event) {
      EXPECT_FALSE(tx.on_recv(event)) << "sender expects only acks";
    });
  }

  bool run(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto data = testutil::make_pattern(i, 32);
      while (tx.send(1, data.data(), data.size(), i) !=
             common::Status::kOk) {
        pump();
      }
    }
    return testutil::pump_until(
        [&] { return received.size() >= count && tx.pending() == 0; },
        [&] { pump(); }, std::chrono::milliseconds(20000));
  }
};

}  // namespace

TEST(ReliableEndpoint, RetransmitsThroughDrops) {
  fabric::Config config = chaos_config(2);
  config.faults.drop = 0.25;
  config.faults.seed = 41;
  ReliablePair pair(config);
  ASSERT_TRUE(pair.tx.enabled());
  constexpr std::uint64_t kCount = 60;
  ASSERT_TRUE(pair.run(kCount));
  std::set<std::uint64_t> unique(pair.received.begin(), pair.received.end());
  EXPECT_EQ(pair.received.size(), kCount) << "no duplicate deliveries";
  EXPECT_EQ(unique.size(), kCount) << "every message delivered exactly once";
  const auto snap = pair.fabric.telemetry().snapshot();
  EXPECT_GT(snap.counter("reliable/test0/retransmits"), 0u);
}

TEST(ReliableEndpoint, DedupsDuplicatedDatagrams) {
  fabric::Config config = chaos_config(2);
  config.faults.duplicate = 0.5;
  config.faults.seed = 42;
  ReliablePair pair(config);
  constexpr std::uint64_t kCount = 60;
  ASSERT_TRUE(pair.run(kCount));
  EXPECT_EQ(pair.received.size(), kCount);
  const auto snap = pair.fabric.telemetry().snapshot();
  EXPECT_GT(snap.counter("reliable/test1/dup_dropped"), 0u);
}

TEST(ReliableEndpoint, DropsCorruptDatagramsAndRecovers) {
  fabric::Config config = chaos_config(2);
  config.faults.corrupt = 0.3;
  config.faults.seed = 43;
  ReliablePair pair(config);
  constexpr std::uint64_t kCount = 60;
  ASSERT_TRUE(pair.run(kCount));
  EXPECT_EQ(pair.received.size(), kCount);
  const auto snap = pair.fabric.telemetry().snapshot();
  EXPECT_GT(snap.counter("reliable/test1/crc_dropped"), 0u);
}

TEST(ReliableEndpoint, PassthroughWhenFaultsOff) {
  Fabric fabric(chaos_config(2));
  fabric::ReliableEndpoint tx(fabric, 0, "test");
  EXPECT_FALSE(tx.enabled());
  std::uint64_t value = 11;
  ASSERT_EQ(tx.send(1, &value, sizeof(value), 11), common::Status::kOk);
  auto events = poll_all(fabric.nic(1), 1);
  ASSERT_EQ(events.size(), 1u);
  // Passthrough: no trailer appended, payload arrives byte-identical.
  EXPECT_EQ(events[0].size, sizeof(value));
  EXPECT_EQ(tx.pending(), 0u);
}
