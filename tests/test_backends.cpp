// Transport-backend tests: the shm ring primitive, backend selection
// plumbing, a {sim, shm} conformance sweep over the parcelport configs the
// main e2e suite covers (all 8 LCI variants, fastpath, aggregation, MPI),
// one chaos row on both backends, the ring-fallback path, and a real
// fork()-based two-process ping-pong over POSIX shared memory.
//
// Every shm case skips gracefully on platforms without POSIX shm.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define AMTNET_TEST_HAVE_FORK 1
#endif

#include "fabric/backend_shm.hpp"
#include "fabric/shm_ring.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::Latch;
using amtnet::StackOptions;
using fabric::detail::ShmRecord;
using fabric::detail::ShmRing;
using fabric::detail::ShmSlot;

// ---------------- ShmRing unit tests (plain heap memory) ----------------

namespace {

struct RingBox {
  std::vector<std::byte> mem;
  ShmRing* ring;

  RingBox(std::size_t depth, std::size_t payload_cap)
      : mem(ShmRing::footprint(depth, payload_cap), std::byte{0}),
        ring(reinterpret_cast<ShmRing*>(mem.data())) {
    ring->init(depth, payload_cap);
  }
};

bool push_one(ShmRing& ring, std::uint64_t value) {
  std::uint64_t pos = 0;
  ShmSlot* slot = ring.try_claim(pos);
  if (slot == nullptr) return false;
  slot->record = ShmRecord{};
  slot->record.kind = ShmRecord::kEager;
  slot->record.imm = value;
  slot->record.len = sizeof(value);
  std::memcpy(slot->payload(), &value, sizeof(value));
  ring.publish(slot, pos);
  return true;
}

bool pop_one(ShmRing& ring, std::uint64_t& value) {
  std::uint64_t pos = 0;
  ShmSlot* slot = ring.try_consume(pos);
  if (slot == nullptr) return false;
  EXPECT_EQ(slot->record.kind, ShmRecord::kEager);
  EXPECT_EQ(slot->record.len, sizeof(value));
  std::memcpy(&value, slot->payload(), sizeof(value));
  EXPECT_EQ(slot->record.imm, value);
  ring.release(slot, pos);
  return true;
}

}  // namespace

TEST(ShmRing, FifoAcrossManyWraps) {
  RingBox box(8, 64);  // 8 slots, pushed 100 values: 12+ wraps
  std::uint64_t next_push = 0, next_pop = 0;
  while (next_pop < 100) {
    while (next_push < 100 && push_one(*box.ring, next_push)) ++next_push;
    std::uint64_t value = 0;
    ASSERT_TRUE(pop_one(*box.ring, value));
    EXPECT_EQ(value, next_pop);
    ++next_pop;
  }
  EXPECT_FALSE(box.ring->looks_nonempty());
}

TEST(ShmRing, FullRingRejectsClaimUntilConsumed) {
  RingBox box(4, 32);
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(push_one(*box.ring, i));
  EXPECT_FALSE(push_one(*box.ring, 99));  // full
  std::uint64_t value = 0;
  ASSERT_TRUE(pop_one(*box.ring, value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(push_one(*box.ring, 4));  // one slot freed
  for (std::uint64_t expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(pop_one(*box.ring, value));
    EXPECT_EQ(value, expect);
  }
}

TEST(ShmRing, DepthRoundsUpToPowerOfTwo) {
  RingBox box(5, 32);
  EXPECT_EQ(box.ring->capacity, 8u);
  EXPECT_EQ(box.ring->slot_stride % 64, 0u);
}

// Two producers + two consumers hammer one ring; every value arrives exactly
// once. This is the test the TSan CI job leans on for the shm ring.
TEST(ShmRing, ConcurrentProducersConsumersDeliverExactly) {
  RingBox box(16, 64);
  constexpr std::uint64_t kPerProducer = 5000;
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::uint64_t> popped_count{0};
  auto producer = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < kPerProducer;) {
      if (push_one(*box.ring, base + i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  };
  auto consumer = [&] {
    while (popped_count.load() < 2 * kPerProducer) {
      std::uint64_t value = 0;
      if (pop_one(*box.ring, value)) {
        popped_sum.fetch_add(value);
        popped_count.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::thread p1(producer, 0), p2(producer, 1u << 20);
  std::thread c1(consumer), c2(consumer);
  p1.join();
  p2.join();
  c1.join();
  c2.join();
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < kPerProducer; ++i) {
    expected += i + ((1u << 20) + i);
  }
  EXPECT_EQ(popped_count.load(), 2 * kPerProducer);
  EXPECT_EQ(popped_sum.load(), expected);
}

// ---------------- backend selection plumbing ----------------

TEST(BackendSelection, ValidateRejectsUnknownNames) {
  EXPECT_NO_THROW(fabric::validate_backend_name("sim"));
  EXPECT_NO_THROW(fabric::validate_backend_name("shm"));
  EXPECT_THROW(fabric::validate_backend_name("ibv"), std::invalid_argument);
  EXPECT_THROW(fabric::validate_backend_name(""), std::invalid_argument);
}

TEST(BackendSelection, ParcelportTokenSelectsBackend) {
  const auto config =
      amt::ParcelportConfig::parse("lci_psr_cq_pin_i_backendshm");
  EXPECT_EQ(config.fabric_backend, "shm");
  // name() round-trips the token; sim (the default) stays unannotated so
  // every committed baseline keeps its historical name.
  EXPECT_NE(config.name().find("backendshm"), std::string::npos);
  const auto sim = amt::ParcelportConfig::parse("lci_psr_cq_pin_i");
  EXPECT_EQ(sim.fabric_backend, "sim");
  EXPECT_EQ(sim.name().find("backend"), std::string::npos);
  EXPECT_THROW(amt::ParcelportConfig::parse("mpi_backendibv"),
               std::invalid_argument);
}

TEST(BackendSelection, OptionsBeatTokenAndEnvBeatsBoth) {
  StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i_backendshm";
  options.backend = "sim";
  EXPECT_EQ(amtnet::make_runtime_config(options).fabric.backend, "sim");

  ::setenv("AMTNET_BACKEND", "shm", 1);
  EXPECT_EQ(amtnet::make_runtime_config(options).fabric.backend, "shm");
  ::unsetenv("AMTNET_BACKEND");
}

// ---------------- {sim, shm} conformance sweep ----------------

namespace conformance {

std::atomic<std::uint64_t> counter{0};

void bump(std::uint64_t amount) { counter.fetch_add(amount); }

std::uint64_t echo_add(std::uint64_t value) { return value + 1; }

double dot(std::vector<double> a, std::vector<double> b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

struct Param {
  const char* backend;
  const char* config;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(info.param.backend) + "_" + info.param.config;
}

/// The conformance body: a result round trip, a zero-copy round trip, and a
/// bidirectional small-parcel flood — the union of what the main e2e sweep
/// checks, condensed so the {sim, shm} product stays fast.
void run_conformance(const StackOptions& options) {
  auto runtime = amtnet::make_runtime(options);
  counter.store(0);

  std::uint64_t echoed = 0;
  double dotted = 0;
  Latch done(1);
  std::vector<double> a(4096, 2.0), b(4096, 3.0);  // 2 x 32 KiB zero-copy
  runtime->locality(0).spawn([&] {
    echoed = amt::here().async<&echo_add>(1, std::uint64_t{41}).get();
    dotted = amt::here().async<&dot>(1, a, b).get();
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_EQ(echoed, 42u);
  EXPECT_DOUBLE_EQ(dotted, 4096.0 * 6.0);

  constexpr int kParcels = 200;
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (int i = 1; i <= kParcels; ++i) {
        amt::here().apply<&bump>(1 - r, static_cast<std::uint64_t>(i));
      }
    });
  }
  const std::uint64_t expected = 2ull * kParcels * (kParcels + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return counter.load() == expected; },
      std::chrono::milliseconds(20000)))
      << "delivered sum " << counter.load() << "/" << expected;
  runtime->stop();
}

}  // namespace conformance

class BackendConformance
    : public ::testing::TestWithParam<conformance::Param> {};

TEST_P(BackendConformance, RoundTripsZeroCopyAndFloodDeliverExactly) {
  const conformance::Param param = GetParam();
  if (std::string(param.backend) == "shm" && !fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  StackOptions options;
  options.parcelport = param.config;
  options.backend = param.backend;
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  conformance::run_conformance(options);
}

INSTANTIATE_TEST_SUITE_P(
    SimAndShm, BackendConformance,
    ::testing::ValuesIn(std::vector<conformance::Param>{
        // Both backends x {all 8 LCI variants, fastpath, aggregation, MPI}.
        // The sim rows guard against the sweep itself regressing; the shm
        // rows are the acceptance matrix for the real-memory backend.
        {"sim", "lci_psr_cq_pin_i"},
        {"shm", "lci_psr_cq_pin_i"},
        {"shm", "lci_psr_cq_mt_i"},
        {"shm", "lci_psr_sy_pin_i"},
        {"shm", "lci_psr_sy_mt_i"},
        {"shm", "lci_sr_cq_pin_i"},
        {"shm", "lci_sr_cq_mt_i"},
        {"shm", "lci_sr_sy_pin_i"},
        {"shm", "lci_sr_sy_mt_i"},
        {"sim", "lci_psr_cq_pin_fp_i"},
        {"shm", "lci_psr_cq_pin_fp_i"},
        {"sim", "lci_psr_cq_mt_fp_agg2048_i_block16"},
        {"shm", "lci_psr_cq_mt_fp_agg2048_i_block16"},
        {"sim", "mpi_i"},
        {"shm", "mpi_i"},
    }),
    conformance::param_name);

// ---------------- chaos row on both backends ----------------

namespace chaosrow {

std::atomic<std::uint64_t> sum{0};
std::atomic<std::uint64_t> count{0};

void take(std::uint64_t value) {
  sum.fetch_add(value);
  count.fetch_add(1);
}

}  // namespace chaosrow

class BackendChaos : public ::testing::TestWithParam<const char*> {};

// drop+dup+corrupt are the faults both backends model (shm injects them in
// software on eager datagrams, with the same counter-indexed PRNG as sim);
// the reliability layer must deliver exactly once on either.
TEST_P(BackendChaos, DropDupCorruptStillDeliverExactlyOnce) {
  if (std::string(GetParam()) == "shm" && !fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.backend = GetParam();
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.faults.drop = 0.03;
  options.faults.duplicate = 0.03;
  options.faults.corrupt = 0.03;
  options.faults.seed = 0x5eed;
  auto runtime = amtnet::make_runtime(options);

  chaosrow::sum.store(0);
  chaosrow::count.store(0);
  constexpr std::uint64_t kPerSide = 60;
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (std::uint64_t i = 1; i <= kPerSide; ++i) {
        amt::here().apply<&chaosrow::take>(1 - r, i);
      }
    });
  }
  const std::uint64_t expected = 2 * kPerSide * (kPerSide + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] {
        return chaosrow::count.load() == 2 * kPerSide &&
               chaosrow::sum.load() == expected;
      },
      std::chrono::milliseconds(60000)))
      << "delivered " << chaosrow::count.load() << "/" << 2 * kPerSide
      << " parcels, sum=" << chaosrow::sum.load() << "/" << expected;
  EXPECT_EQ(chaosrow::count.load(), 2 * kPerSide);
  EXPECT_EQ(chaosrow::sum.load(), expected);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(SimAndShm, BackendChaos,
                         ::testing::Values("sim", "shm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

// ---------------- fallback (ring-segmented) data path ----------------

// AMTNET_SHM_FORCE_FALLBACK=1 disables the direct/CMA copy modes, pushing
// every put/get through segmented ring records — the path taken on
// platforms without process_vm_readv. A small ring depth forces fragments
// to wrap and backpressure the pending-out staging queue.
TEST(ShmFallback, ZeroCopyTrafficSurvivesSegmentedRings) {
  if (!fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  ::setenv("AMTNET_SHM_FORCE_FALLBACK", "1", 1);
  ::setenv("AMTNET_SHM_RING_DEPTH", "16", 1);
  StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.backend = "shm";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  conformance::run_conformance(options);
  ::unsetenv("AMTNET_SHM_FORCE_FALLBACK");
  ::unsetenv("AMTNET_SHM_RING_DEPTH");
}

// A fallback read whose MR was deregistered before the target served it
// must not pretend success: the requester's kReadDone carries size 0 (not
// the requested length) and the destination buffer stays untouched.
TEST(ShmFallback, RefusedReadCompletesWithZeroSize) {
  if (!fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  ::setenv("AMTNET_SHM_FORCE_FALLBACK", "1", 1);
  fabric::Config config;
  config.backend = "shm";
  config.num_ranks = 2;
  fabric::Fabric fab(config);
  fabric::Nic& requester = fab.nic(0);
  fabric::Nic& target = fab.nic(1);

  std::vector<std::byte> region(1024, std::byte{0x5a});
  const fabric::MrKey key =
      target.register_memory(region.data(), region.size());
  std::vector<std::byte> dst(1024, std::byte{0xee});
  ASSERT_EQ(requester.post_read(1, key, 0, dst.data(), dst.size(), 7),
            common::Status::kOk);
  // The request is in flight; deregistering now races it, exactly like a
  // receiver tearing down a rendezvous buffer.
  target.deregister_memory(key);

  target.poll_rx(64, [](fabric::RxEvent&&) {});  // serves (and refuses) it
  std::size_t done_events = 0;
  std::size_t done_size = ~std::size_t{0};
  std::uint64_t done_imm = 0;
  for (int i = 0; i < 100 && done_events == 0; ++i) {
    requester.poll_rx(64, [&](fabric::RxEvent&& event) {
      if (event.kind == fabric::RxEvent::Kind::kReadDone) {
        ++done_events;
        done_size = event.size;
        done_imm = event.imm;
      }
    });
  }
  EXPECT_EQ(done_events, 1u);
  EXPECT_EQ(done_size, 0u);  // NOT the 1024 bytes requested
  EXPECT_EQ(done_imm, 7u);
  const auto untouched = static_cast<std::size_t>(
      std::count(dst.begin(), dst.end(), std::byte{0xee}));
  EXPECT_EQ(untouched, dst.size());
  ::unsetenv("AMTNET_SHM_FORCE_FALLBACK");
}

// poll_rx may run on several threads at once (the Nic contract), so the
// fragments of one fallback write can be consumed concurrently. The
// kWriteImm completion must still only surface after EVERY fragment has
// landed in the MR; the sink verifies the whole region at the moment the
// event fires. Also pins the staged-record telemetry: with a tiny ring
// forcing fragments through the pending queue, each ring record is counted
// exactly once (sender packets_sent == target packets_received).
TEST(ShmFallback, WriteImmSurfacesOnlyAfterAllFragmentsUnderConcurrentPolls) {
  if (!fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  ::setenv("AMTNET_SHM_FORCE_FALLBACK", "1", 1);
  fabric::Config config;
  config.backend = "shm";
  config.num_ranks = 2;
  config.srq_buffer_size = 128;  // 4 KiB writes -> 32 fragments
  config.shm_ring_depth = 16;    // smaller than a write: staging engages
  fabric::Fabric fab(config);
  fabric::Nic& writer = fab.nic(0);
  fabric::Nic& target = fab.nic(1);

  constexpr std::size_t kLen = 4096;
  constexpr int kIters = 200;
  std::vector<std::byte> region(kLen, std::byte{0});
  const fabric::MrKey key =
      target.register_memory(region.data(), region.size());

  std::atomic<bool> stop{false};
  std::atomic<int> imm_seen{0};
  std::atomic<int> torn{0};
  auto sink = [&](fabric::RxEvent&& event) {
    if (event.kind != fabric::RxEvent::Kind::kWriteImm) return;
    const auto fill = static_cast<std::byte>(event.imm & 0xff);
    for (std::size_t i = 0; i < kLen; ++i) {
      if (region[i] != fill) {
        torn.fetch_add(1);
        break;
      }
    }
    imm_seen.fetch_add(1);
  };
  std::thread pollers[3];
  for (auto& t : pollers) {
    t = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        target.poll_rx(8, sink);
      }
    });
  }

  std::vector<std::byte> src(kLen);
  for (int iter = 1; iter <= kIters; ++iter) {
    const std::uint64_t imm = static_cast<std::uint64_t>(iter) & 0xff;
    std::fill(src.begin(), src.end(), static_cast<std::byte>(imm));
    common::Status status;
    do {
      status = writer.post_write_imm(1, key, 0, src.data(), kLen, imm);
    } while (status == common::Status::kRetry);
    ASSERT_EQ(status, common::Status::kOk);
    while (imm_seen.load() < iter) {
      // The writer's own poll flushes fragments staged on the full ring.
      writer.poll_rx(8, [](fabric::RxEvent&&) {});
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& t : pollers) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(imm_seen.load(), kIters);
  EXPECT_EQ(writer.stats().packets_sent, target.stats().packets_received);
  target.deregister_memory(key);
  ::unsetenv("AMTNET_SHM_FORCE_FALLBACK");
}

// ---------------- real two-process ping-pong ----------------

namespace twoprocess {

std::atomic<bool> stop_flag{false};
std::atomic<std::uint64_t> pings{0};

std::uint64_t echo_add(std::uint64_t value) {
  pings.fetch_add(1);
  return value + 1;
}

void request_stop() { stop_flag.store(true); }

}  // namespace twoprocess

// fork() two ranks that rendezvous over a named shm session — the same
// bootstrap amtnet_launch performs — and run request/response traffic
// across the process boundary. The parent hosts rank 0 and validates; the
// child hosts rank 1, serves until told to stop, and _exit()s.
TEST(ShmTwoProcess, CrossProcessRequestResponse) {
#if !defined(AMTNET_TEST_HAVE_FORK)
  GTEST_SKIP() << "no fork() on this platform";
#else
  if (!fabric::shm_available()) {
    GTEST_SKIP() << "POSIX shared memory unavailable on this platform";
  }
  const std::string session =
      "amtnet-test-" + std::to_string(static_cast<long long>(::getpid()));
  ::setenv("AMTNET_SHM_SESSION", session.c_str(), 1);

  // Action ids are assigned on first use per process; in multi-process mode
  // both ranks must mint them in the same order before any traffic flows.
  // (fork() would inherit a consistent registry anyway; being explicit keeps
  // the test robust under gtest filters and mirrors what SPMD mains do.)
  (void)amt::action_id<&twoprocess::echo_add>();
  (void)amt::action_id<&twoprocess::request_stop>();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";

  StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.backend = "shm";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";

  if (child == 0) {
    // Rank 1: serve until rank 0 sends request_stop, then exit without
    // running the parent's gtest machinery.
    ::setenv("AMTNET_SHM_RANK", "1", 1);
    int code = 1;
    try {
      auto runtime = amtnet::make_runtime(options);
      const bool stopped = testutil::spin_until(
          [] { return twoprocess::stop_flag.load(); },
          std::chrono::milliseconds(30000));
      code = stopped && twoprocess::pings.load() > 0 ? 0 : 2;
      runtime->stop();
    } catch (...) {
      code = 3;
    }
    ::_exit(code);
  }

  // Rank 0: drive the exchange and check every response.
  ::setenv("AMTNET_SHM_RANK", "0", 1);
  auto runtime = amtnet::make_runtime(options);
  bool all_ok = false;
  Latch done(1);
  runtime->local_locality().spawn([&] {
    bool ok = true;
    for (std::uint64_t i = 0; i < 32; ++i) {
      ok = ok && amt::here().async<&twoprocess::echo_add>(1, i).get() == i + 1;
    }
    amt::here().apply<&twoprocess::request_stop>(1);
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime->local_locality().scheduler());
  EXPECT_TRUE(all_ok);

  int status = -1;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child status " << status;
  runtime->stop();
  ::unsetenv("AMTNET_SHM_RANK");
  ::unsetenv("AMTNET_SHM_SESSION");
#endif
}
