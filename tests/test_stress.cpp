// Stress and failure-injection tests across the full stack:
//   * starved fabrics (tiny TX windows, tiny SRQs) must degrade to retries
//     and back-pressure, never to loss, for both parcelports,
//   * all-to-all bursts across many localities,
//   * randomized action-argument round trips (property-style, seeded),
//   * mixed small/large traffic under concurrent senders.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "loadgen/loadgen.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::Latch;
using amtnet::StackOptions;

namespace stress {

std::atomic<std::uint64_t> payload_checksum{0};
std::atomic<std::uint64_t> arrivals{0};

void sink(std::vector<std::uint8_t> data, std::uint64_t expected_sum) {
  std::uint64_t sum = 0;
  for (auto b : data) sum += b;
  EXPECT_EQ(sum, expected_sum);
  payload_checksum.fetch_add(sum);
  arrivals.fetch_add(1);
}

// Echo used by the randomized property test: returns a transformation the
// caller can verify.
std::vector<std::uint64_t> transform(std::vector<std::uint64_t> values,
                                     std::uint64_t mult,
                                     std::string tag) {
  for (auto& v : values) v = v * mult + tag.size();
  return values;
}

}  // namespace stress

namespace {

struct StarvedCase {
  const char* parcelport;
  std::size_t tx_window;
  std::size_t srq_depth;
};

class StarvedFabric : public ::testing::TestWithParam<StarvedCase> {};

TEST_P(StarvedFabric, BackpressureNeverLosesMessages) {
  const auto param = GetParam();
  amt::RuntimeConfig config;
  config.num_localities = 2;
  config.threads_per_locality = 2;
  config.parcelport = amt::ParcelportConfig::parse(param.parcelport);
  config.fabric = fabric::Profile::loopback(2);
  config.fabric.tx_window = param.tx_window;
  config.fabric.srq_depth = param.srq_depth;
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();

  stress::payload_checksum.store(0);
  stress::arrivals.store(0);
  constexpr int kMessages = 150;
  std::uint64_t expected_total = 0;
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kMessages; ++i) {
      // Mix sizes: some eager, some rendezvous (> 8 KiB threshold).
      const std::size_t size = (i % 5 == 0) ? 12000 : 64;
      std::vector<std::uint8_t> data(size,
                                     static_cast<std::uint8_t>(i & 0x7f));
      const std::uint64_t sum =
          static_cast<std::uint64_t>(size) * (i & 0x7f);
      amt::here().apply<&stress::sink>(1, std::move(data), sum);
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    const std::size_t size = (i % 5 == 0) ? 12000 : 64;
    expected_total += static_cast<std::uint64_t>(size) * (i & 0x7f);
  }
  ASSERT_TRUE(testutil::spin_until(
      [&] { return stress::arrivals.load() == kMessages; },
      std::chrono::milliseconds(30000)))
      << "only " << stress::arrivals.load() << "/" << kMessages;
  EXPECT_EQ(stress::payload_checksum.load(), expected_total);
  runtime.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StarvedFabric,
    ::testing::Values(StarvedCase{"mpi_i", 4, 8},
                      StarvedCase{"mpi", 8, 4},
                      StarvedCase{"lci_psr_cq_pin_i", 4, 8},
                      StarvedCase{"lci_psr_cq_pin_i", 16, 4},
                      StarvedCase{"lci_sr_sy_mt_i", 8, 8},
                      StarvedCase{"lci_psr_sy_pin", 4, 16}),
    [](const ::testing::TestParamInfo<StarvedCase>& info) {
      return std::string(info.param.parcelport) + "_w" +
             std::to_string(info.param.tx_window) + "_s" +
             std::to_string(info.param.srq_depth);
    });

TEST(AllToAll, SixLocalitiesBurst) {
  for (const char* name : {"mpi_i", "lci_psr_cq_pin_i", "lci_sr_cq_mt_i"}) {
    StackOptions options;
    options.parcelport = name;
    options.num_localities = 6;
    options.threads_per_locality = 1;
    auto runtime = amtnet::make_runtime(options);
    stress::arrivals.store(0);
    stress::payload_checksum.store(0);
    constexpr int kPerPair = 20;
    for (amt::Rank src = 0; src < 6; ++src) {
      runtime->locality(src).spawn([&] {
        for (amt::Rank dst = 0; dst < 6; ++dst) {
          for (int i = 0; i < kPerPair; ++i) {
            std::vector<std::uint8_t> data(100, 1);
            amt::here().apply<&stress::sink>(dst, std::move(data), 100);
          }
        }
      });
    }
    const std::uint64_t total = 6ull * 6 * kPerPair;
    ASSERT_TRUE(testutil::spin_until(
        [&] { return stress::arrivals.load() == total; },
        std::chrono::milliseconds(30000)))
        << name << ": " << stress::arrivals.load() << "/" << total;
    EXPECT_EQ(stress::payload_checksum.load(), total * 100);
    runtime->stop();
  }
}

class RandomizedArgs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedArgs, TransformRoundTripsExactly) {
  common::Xoshiro256 rng(GetParam());
  StackOptions options;
  options.parcelport =
      (GetParam() % 2 == 0) ? "lci_psr_cq_pin_i" : "mpi_i";
  options.num_localities = 2;
  auto runtime = amtnet::make_runtime(options);

  constexpr int kCalls = 25;
  Latch done(kCalls);
  std::atomic<int> mismatches{0};
  runtime->locality(0).spawn([&] {
    for (int call = 0; call < kCalls; ++call) {
      // Random length crossing the zero-copy threshold both ways.
      const std::size_t len = 1 + rng.next_below(4000);
      const std::uint64_t mult = 1 + rng.next_below(1000);
      std::string tag(rng.next_below(40), 'x');
      std::vector<std::uint64_t> values(len);
      for (auto& v : values) v = rng.next_below(1u << 20);

      auto expected = values;
      for (auto& v : expected) v = v * mult + tag.size();

      auto future =
          amt::here().async<&stress::transform>(1, values, mult, tag);
      future.then([future, expected = std::move(expected), &mismatches,
                   &done] {
        if (future.value() != expected) mismatches.fetch_add(1);
        done.count_down();
      });
    }
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_EQ(mismatches.load(), 0);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedArgs,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(ChaosFabric, RandomJitterNeverBreaksProtocols) {
  // Per-packet random delays up to 300us scramble cross-rail interleavings;
  // every protocol (rendezvous handshakes included) must still deliver
  // everything, for all three backends.
  for (const char* name : {"mpi_i", "lci_psr_cq_pin_i", "tcp_i"}) {
    amt::RuntimeConfig config;
    config.num_localities = 2;
    config.threads_per_locality = 2;
    config.parcelport = amt::ParcelportConfig::parse(name);
    config.fabric = fabric::Profile::loopback(2);
    config.fabric.zero_time = false;
    config.fabric.latency_us = 1.0;
    config.fabric.jitter_us = 300.0;
    config.fabric.num_rails = 4;
    amt::Runtime runtime(config, amtnet::default_parcelport_factory());
    runtime.start();

    stress::arrivals.store(0);
    stress::payload_checksum.store(0);
    constexpr int kMessages = 60;
    std::uint64_t expected_total = 0;
    runtime.locality(0).spawn([&] {
      for (int i = 0; i < kMessages; ++i) {
        const std::size_t size = (i % 3 == 0) ? 20000 : 128;
        amt::here().apply<&stress::sink>(
            1, std::vector<std::uint8_t>(size, 3),
            static_cast<std::uint64_t>(size) * 3);
      }
    });
    for (int i = 0; i < kMessages; ++i) {
      expected_total += ((i % 3 == 0) ? 20000ull : 128ull) * 3;
    }
    ASSERT_TRUE(testutil::spin_until(
        [&] { return stress::arrivals.load() == kMessages; },
        std::chrono::milliseconds(30000)))
        << name;
    EXPECT_EQ(stress::payload_checksum.load(), expected_total);
    runtime.stop();
  }
}

TEST(OpenLoopSoak, SheddingHoldsAtSustainedOverload) {
  // Long open-loop run at ~1.5x the shaped-fabric saturation with a bounded
  // shed window: the run must terminate (no admission deadlock), the
  // per-destination queue must never exceed its bound, and the request
  // accounting must balance exactly — generated == accepted + shed and
  // accepted == completed + deadline drops.
  loadgen::Params params;
  params.parcelport = "lci_psr_cq_pin_i_shed32";
  params.localities = 2;
  params.workers = 2;
  params.requests = 6000;  // ~1s of offered load at 6k req/s
  params.arrival.rate_rps = 6000.0;
  params.arrival.seed = 424242;
  params.size_mix = loadgen::parse_size_mix("4096");
  const loadgen::Result result = loadgen::run_open_loop(params);
  EXPECT_TRUE(result.conserved);
  EXPECT_EQ(result.generated, 6000u);
  EXPECT_EQ(result.generated, result.accepted + result.shed);
  EXPECT_EQ(result.accepted, result.completed + result.deadline_drops);
  EXPECT_GT(result.shed, 0u);          // sustained overload must shed
  EXPECT_LE(result.peak_queue_depth, 32);
  EXPECT_GT(result.goodput_kps, 0.0);
}

TEST(OpenLoopSoak, BurstyOverloadConservesUnderShed) {
  // Same soak with bunched (on/off) arrivals: within a burst the
  // instantaneous rate is 4x the long-run rate, so the window slams shut
  // and reopens repeatedly; the accounting must still balance.
  loadgen::Params params;
  params.parcelport = "lci_psr_cq_pin_i_shed16";
  params.localities = 2;
  params.workers = 2;
  params.requests = 4000;
  params.arrival.process = loadgen::ArrivalConfig::Process::kBurst;
  params.arrival.rate_rps = 6000.0;
  params.arrival.burst_duty = 0.25;
  params.arrival.burst_on_ms = 2.0;
  params.arrival.seed = 77;
  params.size_mix = loadgen::parse_size_mix("4096");
  const loadgen::Result result = loadgen::run_open_loop(params);
  EXPECT_TRUE(result.conserved);
  EXPECT_EQ(result.generated, result.accepted + result.shed);
  EXPECT_EQ(result.accepted, result.completed + result.deadline_drops);
  EXPECT_GT(result.shed, 0u);
  EXPECT_LE(result.peak_queue_depth, 16);
}

TEST(HighThreadCount, OversubscribedWorkersStillCorrect) {
  // More workers than hardware threads on both sides: the regime the paper
  // says MPI handles badly; correctness must be unaffected for everyone.
  for (const char* name : {"mpi", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i"}) {
    StackOptions options;
    options.parcelport = name;
    options.num_localities = 2;
    options.threads_per_locality = 8;
    auto runtime = amtnet::make_runtime(options);
    stress::arrivals.store(0);
    constexpr int kMessages = 300;
    for (int i = 0; i < kMessages; ++i) {
      runtime->locality(0).spawn([] {
        amt::here().apply<&stress::sink>(
            1, std::vector<std::uint8_t>(8, 2), 16);
      });
    }
    ASSERT_TRUE(testutil::spin_until(
        [&] { return stress::arrivals.load() == kMessages; },
        std::chrono::milliseconds(30000)))
        << name;
    runtime->stop();
  }
}

}  // namespace
