// End-to-end integration tests: action invocation over the real network
// stack (fabric -> minimpi/minilci -> parcelport -> runtime) for EVERY
// parcelport configuration in the paper's Table 1, plus the ablation
// variants (mpi_fine, mpi_orig). Also covers the wire-header encoding and
// cross-configuration message equivalence.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "amt/wire_header.hpp"
#include "common/crc32.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::Latch;
using amtnet::StackOptions;

// ---------------- wire header unit tests ----------------

namespace {

amt::OutMessage make_msg(std::size_t main_size,
                         std::vector<std::size_t> zsizes) {
  amt::OutMessage msg;
  msg.main_chunk.resize(main_size, std::byte{0x5a});
  for (std::size_t i = 0; i < zsizes.size(); ++i) {
    auto owned = std::make_shared<std::vector<std::byte>>(
        zsizes[i], static_cast<std::byte>(i + 1));
    msg.zchunks.push_back(
        amt::ZChunk{owned->data(), owned->size(), owned});
  }
  return msg;
}

}  // namespace

TEST(WireHeader, SmallMessageFullyPiggybacked) {
  const auto msg = make_msg(100, {});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  EXPECT_TRUE(plan.piggy_main);
  EXPECT_FALSE(plan.piggy_tchunk);
  EXPECT_EQ(plan.num_followups(msg), 0u);
}

TEST(WireHeader, LargeMainBecomesFollowup) {
  const auto msg = make_msg(10000, {});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  EXPECT_FALSE(plan.piggy_main);
  EXPECT_EQ(plan.num_followups(msg), 1u);
}

TEST(WireHeader, ZchunksAddFollowups) {
  const auto msg = make_msg(100, {20000, 30000});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  EXPECT_TRUE(plan.piggy_main);
  EXPECT_TRUE(plan.piggy_tchunk);
  EXPECT_EQ(plan.num_followups(msg), 2u);  // just the two zero-copy chunks
}

TEST(WireHeader, EncodeDecodeRoundTrip) {
  const auto msg = make_msg(64, {9000});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  std::vector<std::byte> wire;
  amt::encode_header(msg, plan, 1234, /*seq=*/7, wire);
  EXPECT_LE(wire.size(), 8192u);
  const auto decoded = amt::decode_header(wire.data(), wire.size());
  EXPECT_EQ(decoded.fields.tag, 1234u);
  EXPECT_EQ(decoded.fields.seq, 7u);
  EXPECT_EQ(decoded.fields.num_zchunks, 1u);
  EXPECT_EQ(decoded.fields.main_size, 64u);
  ASSERT_TRUE(decoded.fields.piggy_main);
  EXPECT_EQ(decoded.piggy_main.size(), 64u);
  ASSERT_TRUE(decoded.fields.piggy_tchunk);
  const auto sizes = amt::parse_tchunk(decoded.piggy_tchunk.data(),
                                       decoded.piggy_tchunk.size());
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 9000u);
}

TEST(WireHeader, OriginalPolicyFixed512NoTchunkPiggyback) {
  const auto small = make_msg(100, {20000});
  auto plan = amt::HeaderPlan::decide_original(small);
  EXPECT_TRUE(plan.piggy_main);
  EXPECT_FALSE(plan.piggy_tchunk);     // the original never piggybacks it
  EXPECT_EQ(plan.num_followups(small), 2u);  // tchunk + zchunk

  const auto big = make_msg(600, {});  // does not fit in 512 bytes
  plan = amt::HeaderPlan::decide_original(big);
  EXPECT_FALSE(plan.piggy_main);
}

// ---------------- whole-parcel fast-path frame ----------------

namespace {

// Recomputes and patches the CRC after a deliberate field edit, so the
// tests below exercise the *structural* validation rather than tripping
// over the checksum first.
void repatch_whole_parcel_crc(std::vector<std::byte>& frame) {
  const std::uint32_t zero = 0;
  std::memcpy(frame.data() + offsetof(amt::WholeParcelHeader, crc), &zero,
              sizeof(zero));
  const std::uint32_t crc = common::crc32(frame.data(), frame.size());
  std::memcpy(frame.data() + offsetof(amt::WholeParcelHeader, crc), &crc,
              sizeof(crc));
}

}  // namespace

TEST(WholeParcelFrame, RoundTripWithZchunksAndBufferReuse) {
  const auto msg = make_msg(64, {100, 200});
  const std::size_t frame_size = amt::whole_parcel_frame_size(msg);
  EXPECT_EQ(frame_size, 24u + 2 * 8 + 64 + 100 + 200);
  std::vector<std::byte> frame(frame_size);
  EXPECT_EQ(amt::encode_whole_parcel_to(msg, /*seq=*/42, frame.data(),
                                        frame.size()),
            frame_size);

  const auto view = amt::decode_whole_parcel(frame.data(), frame.size());
  EXPECT_EQ(view.fields.seq, 42u);
  EXPECT_EQ(view.fields.num_zchunks, 2u);
  EXPECT_EQ(view.fields.main_size, 64u);
  ASSERT_EQ(view.zsizes.size(), 2u);
  EXPECT_EQ(view.zsizes[0], 100u);
  EXPECT_EQ(view.zsizes[1], 200u);

  const auto in = amt::take_whole_parcel_body(std::move(frame), view, 7);
  EXPECT_EQ(in.source, 7);
  ASSERT_EQ(in.main_chunk.size(), 64u);
  EXPECT_EQ(in.main_chunk[63], std::byte{0x5a});
  ASSERT_EQ(in.zchunks.size(), 2u);
  ASSERT_EQ(in.zchunks[0].size(), 100u);
  EXPECT_EQ(in.zchunks[0][99], std::byte{1});
  ASSERT_EQ(in.zchunks[1].size(), 200u);
  EXPECT_EQ(in.zchunks[1][0], std::byte{2});
}

TEST(WholeParcelFrame, MainOnlyFrameIsHeaderPlusPayload) {
  const auto msg = make_msg(512, {});
  std::vector<std::byte> frame(amt::whole_parcel_frame_size(msg));
  EXPECT_EQ(frame.size(), sizeof(amt::WholeParcelHeader) + 512);
  amt::encode_whole_parcel_to(msg, /*seq=*/0, frame.data(), frame.size());
  const auto view = amt::decode_whole_parcel(frame.data(), frame.size());
  EXPECT_EQ(view.fields.num_zchunks, 0u);
  const auto in = amt::take_whole_parcel_body(std::move(frame), view, 1);
  EXPECT_EQ(in.main_chunk.size(), 512u);
  EXPECT_TRUE(in.zchunks.empty());
}

TEST(WholeParcelFrameDeathTest, CorruptedPayloadFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(64, {100});
  std::vector<std::byte> frame(amt::whole_parcel_frame_size(msg));
  amt::encode_whole_parcel_to(msg, /*seq=*/5, frame.data(), frame.size());
  frame[frame.size() - 3] ^= std::byte{0x04};
  EXPECT_DEATH(amt::decode_whole_parcel(frame.data(), frame.size()),
               "whole-parcel frame CRC mismatch");
}

TEST(WholeParcelFrameDeathTest, TruncatedFrameFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::byte> frame(8, std::byte{0});
  EXPECT_DEATH(amt::decode_whole_parcel(frame.data(), frame.size()),
               "whole-parcel frame truncated");
}

TEST(WholeParcelFrameDeathTest, ForeignFrameKindFailsFast) {
  // A regular wire header routed onto the fast-path tag must be rejected
  // by the magic check, not mis-parsed as a whole parcel.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(64, {});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  std::vector<std::byte> wire;
  amt::encode_header(msg, plan, 9, /*seq=*/0, wire);
  EXPECT_DEATH(amt::decode_whole_parcel(wire.data(), wire.size()),
               "whole-parcel frame bad magic");
}

TEST(WholeParcelFrameDeathTest, DeclaredSizesMustMatchFrameExactly) {
  // A frame whose CRC is valid but whose declared sizes do not add up to
  // the buffer (e.g. a maliciously re-checksummed truncation) still dies.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(64, {});
  std::vector<std::byte> frame(amt::whole_parcel_frame_size(msg));
  amt::encode_whole_parcel_to(msg, /*seq=*/0, frame.data(), frame.size());
  std::uint64_t bad_main = 63;
  std::memcpy(frame.data() + offsetof(amt::WholeParcelHeader, main_size),
              &bad_main, sizeof(bad_main));
  repatch_whole_parcel_crc(frame);
  EXPECT_DEATH(amt::decode_whole_parcel(frame.data(), frame.size()),
               "whole-parcel frame size mismatch");
}

// ---------------- multi-parcel batch frame (adaptive aggregation) --------

namespace {

// Same trick as repatch_whole_parcel_crc: re-checksum after a deliberate
// field edit so the structural validation is what trips, not the CRC.
void repatch_batch_crc(std::vector<std::byte>& frame) {
  const std::uint32_t zero = 0;
  std::memcpy(frame.data() + offsetof(amt::BatchHeader, crc), &zero,
              sizeof(zero));
  const std::uint32_t crc = common::crc32(frame.data(), frame.size());
  std::memcpy(frame.data() + offsetof(amt::BatchHeader, crc), &crc,
              sizeof(crc));
}

std::vector<std::byte> encode_batch(
    const std::vector<const amt::OutMessage*>& msgs, std::uint32_t seq) {
  std::vector<std::byte> frame(
      amt::batch_frame_size(msgs.data(), msgs.size()));
  EXPECT_EQ(amt::encode_batch_to(msgs.data(), msgs.size(), seq, frame.data(),
                                 frame.size()),
            frame.size());
  return frame;
}

}  // namespace

TEST(BatchFrame, RoundTripThreeParcelsWithZchunks) {
  const auto m0 = make_msg(8, {});
  const auto m1 = make_msg(64, {100, 200});
  const auto m2 = make_msg(0, {50});
  auto frame = encode_batch({&m0, &m1, &m2}, /*seq=*/9);

  EXPECT_EQ(amt::peek_frame_magic(frame.data(), frame.size()),
            amt::kBatchMagic);
  const auto view = amt::decode_batch(frame.data(), frame.size());
  EXPECT_EQ(view.fields.count, 3u);
  EXPECT_EQ(view.fields.seq, 9u);
  ASSERT_EQ(view.offsets.size(), 3u);
  ASSERT_EQ(view.lengths.size(), 3u);

  const auto in0 =
      amt::take_batch_entry(frame.data() + view.offsets[0], view.lengths[0],
                            /*source=*/5);
  EXPECT_EQ(in0.source, 5);
  ASSERT_EQ(in0.main_chunk.size(), 8u);
  EXPECT_EQ(in0.main_chunk[7], std::byte{0x5a});
  EXPECT_TRUE(in0.zchunks.empty());

  const auto in1 =
      amt::take_batch_entry(frame.data() + view.offsets[1], view.lengths[1],
                            /*source=*/5);
  ASSERT_EQ(in1.main_chunk.size(), 64u);
  EXPECT_EQ(in1.main_chunk[0], std::byte{0x5a});
  ASSERT_EQ(in1.zchunks.size(), 2u);
  ASSERT_EQ(in1.zchunks[0].size(), 100u);
  EXPECT_EQ(in1.zchunks[0][99], std::byte{1});
  ASSERT_EQ(in1.zchunks[1].size(), 200u);
  EXPECT_EQ(in1.zchunks[1][0], std::byte{2});

  const auto in2 =
      amt::take_batch_entry(frame.data() + view.offsets[2], view.lengths[2],
                            /*source=*/5);
  EXPECT_TRUE(in2.main_chunk.empty());
  ASSERT_EQ(in2.zchunks.size(), 1u);
  EXPECT_EQ(in2.zchunks[0].size(), 50u);
}

TEST(BatchFrame, MinimalOneParcelFrameMatchesTheParseFloor) {
  // The agg<BYTES> parse floor is exactly the smallest encodable frame: a
  // zero-payload single parcel. If the layout grows, the constant (and the
  // config error message) must follow.
  const auto msg = make_msg(0, {});
  const amt::OutMessage* msgs[] = {&msg};
  EXPECT_EQ(amt::batch_frame_size(msgs, 1), amt::kMinAggFrameBytes);
}

TEST(BatchFrameDeathTest, CorruptedPayloadFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto m0 = make_msg(32, {});
  const auto m1 = make_msg(16, {});
  auto frame = encode_batch({&m0, &m1}, /*seq=*/1);
  frame[frame.size() - 5] ^= std::byte{0x20};
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch frame CRC mismatch");
}

TEST(BatchFrameDeathTest, TruncatedFrameFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::byte> frame(8, std::byte{0});
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch frame truncated");
}

TEST(BatchFrameDeathTest, ForeignFrameKindFailsFast) {
  // A whole-parcel frame routed into the batch decoder (both frame kinds
  // share the fast-path tag) must be rejected by the magic check.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(64, {});
  std::vector<std::byte> frame(amt::whole_parcel_frame_size(msg));
  amt::encode_whole_parcel_to(msg, /*seq=*/0, frame.data(), frame.size());
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch frame bad magic");
}

TEST(BatchFrameDeathTest, ZeroCountFailsFastEvenWithValidCrc) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(16, {});
  auto frame = encode_batch({&msg}, /*seq=*/0);
  const std::uint32_t zero_count = 0;
  std::memcpy(frame.data() + offsetof(amt::BatchHeader, count), &zero_count,
              sizeof(zero_count));
  repatch_batch_crc(frame);
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch frame bad count");
}

TEST(BatchFrameDeathTest, OverdeclaredEntryLengthFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(16, {});
  auto frame = encode_batch({&msg}, /*seq=*/0);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + sizeof(amt::BatchHeader),
              sizeof(length));
  length += 8;
  std::memcpy(frame.data() + sizeof(amt::BatchHeader), &length,
              sizeof(length));
  repatch_batch_crc(frame);
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch entry 0 overruns frame");
}

TEST(BatchFrameDeathTest, DeclaredLengthsMustCoverFrameExactly) {
  // A re-checksummed frame whose length table leaves trailing bytes
  // unaccounted for still dies (e.g. a maliciously shortened entry).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto m0 = make_msg(32, {});
  const auto m1 = make_msg(16, {});
  auto frame = encode_batch({&m0, &m1}, /*seq=*/0);
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + sizeof(amt::BatchHeader),
              sizeof(length));
  length -= 1;
  std::memcpy(frame.data() + sizeof(amt::BatchHeader), &length,
              sizeof(length));
  repatch_batch_crc(frame);
  EXPECT_DEATH(amt::decode_batch(frame.data(), frame.size()),
               "batch frame size mismatch");
}

// ---------------- end-to-end over every configuration ----------------

namespace e2e {

std::atomic<std::uint64_t> counter{0};
std::atomic<std::uint64_t> large_checksum{0};

void bump(std::uint64_t amount) { counter.fetch_add(amount); }

std::uint64_t echo_add(std::uint64_t value) { return value + 1; }

double dot(std::vector<double> a, std::vector<double> b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void consume(std::vector<std::uint64_t> values) {
  std::uint64_t sum = 0;
  for (auto v : values) sum += v;
  large_checksum.fetch_add(sum);
}

std::vector<double> make_data(std::uint64_t n) {
  return std::vector<double>(n, 2.0);
}

}  // namespace e2e

class ParcelportE2E : public ::testing::TestWithParam<const char*> {
 protected:
  StackOptions options() const {
    StackOptions options;
    options.parcelport = GetParam();
    options.num_localities = 2;
    options.threads_per_locality = 2;
    options.platform = "loopback";
    return options;
  }
};

TEST_P(ParcelportE2E, SmallActionRoundTrip) {
  auto runtime = amtnet::make_runtime(options());
  std::uint64_t result = 0;
  Latch done(1);
  runtime->locality(0).spawn([&] {
    result = amt::here().async<&e2e::echo_add>(1, std::uint64_t{41}).get();
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_EQ(result, 42u);
  runtime->stop();
}

TEST_P(ParcelportE2E, LargeArgumentsUseZeroCopyPath) {
  auto runtime = amtnet::make_runtime(options());
  double result = 0;
  Latch done(1);
  // Two 32 KiB vectors: header + 2 zero-copy chunks over the wire.
  std::vector<double> a(4096, 2.0), b(4096, 3.0);
  runtime->locality(0).spawn([&] {
    result = amt::here().async<&e2e::dot>(1, a, b).get();
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_DOUBLE_EQ(result, 4096.0 * 6.0);
  runtime->stop();
}

TEST_P(ParcelportE2E, MediumMainChunkFollowup) {
  // A ~16 KiB inline payload: too big to piggyback, too small for a
  // zero-copy chunk with a huge threshold -> exercises the separate
  // non-zero-copy-chunk follow-up message.
  StackOptions opts = options();
  opts.zero_copy_threshold = 64 * 1024;
  auto runtime = amtnet::make_runtime(opts);
  e2e::large_checksum.store(0);
  std::vector<std::uint64_t> values(2000);
  std::iota(values.begin(), values.end(), 1ull);
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), 0ull);
  runtime->locality(0).spawn(
      [&] { amt::here().apply<&e2e::consume>(1, values); });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::large_checksum.load() == expected; },
      std::chrono::milliseconds(10000)));
  runtime->stop();
}

TEST_P(ParcelportE2E, ManyConcurrentParcels) {
  auto runtime = amtnet::make_runtime(options());
  e2e::counter.store(0);
  constexpr int kParcels = 400;
  // Fire from both localities at once, in both directions.
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (int i = 1; i <= kParcels; ++i) {
        amt::here().apply<&e2e::bump>(1 - r,
                                      static_cast<std::uint64_t>(i));
      }
    });
  }
  const std::uint64_t expected =
      2ull * kParcels * (kParcels + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::counter.load() == expected; },
      std::chrono::milliseconds(20000)));
  runtime->stop();
}

TEST_P(ParcelportE2E, ResultsComingBackLarge) {
  auto runtime = amtnet::make_runtime(options());
  std::vector<double> result;
  Latch done(1);
  runtime->locality(0).spawn([&] {
    result =
        amt::here().async<&e2e::make_data>(1, std::uint64_t{5000}).get();
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  ASSERT_EQ(result.size(), 5000u);
  EXPECT_DOUBLE_EQ(result[4999], 2.0);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ParcelportE2E,
    ::testing::Values(
        // MPI parcelport + ablations
        "mpi", "mpi_i", "mpi_fine_i", "mpi_orig", "mpi_orig_i",
        // LCI parcelport: all 8 variant combinations, with and without the
        // send-immediate optimisation for the baseline axes
        "lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
        "lci_psr_sy_pin_i", "lci_psr_sy_mt_i", "lci_sr_cq_pin_i",
        "lci_sr_cq_mt_i", "lci_sr_sy_pin_i", "lci_sr_sy_mt_i",
        "lci_sr_sy_mt"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// ---------------- pipelined follow-ups: out-of-order completions ----------

namespace e2e {

// Order-sensitive digest over four zero-copy chunks: any cross-chunk mixup
// or intra-chunk corruption changes the result.
std::uint64_t ordered_digest(std::vector<std::uint64_t> a,
                             std::vector<std::uint64_t> b,
                             std::vector<std::uint64_t> c,
                             std::vector<std::uint64_t> d) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const std::vector<std::uint64_t>& v) {
    h = h * 1099511628211ull + v.size();
    for (std::uint64_t x : v) h = h * 1099511628211ull + x;
  };
  mix(a);
  mix(b);
  mix(c);
  mix(d);
  return h;
}

std::vector<std::uint64_t> make_chunk(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = seed * 1000003ull + i;
  return v;
}

}  // namespace e2e

// Multi-zchunk parcels over a 4-rail fabric: the sender posts every piece
// eagerly, rails deliver them out of order, and the receiver must route each
// completion to the right buffer slot by tag. Covers all 8 LCI variant
// combinations plus pipeline-depth regression configs (pd1 = the old
// serialized walk must still work and stay reachable).
class LciPipelineE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(LciPipelineE2E, MultiZchunkIntegrityAcrossReorderingFabric) {
  StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.fabric_rails = 4;  // unordered delivery across pieces
  auto runtime = amtnet::make_runtime(options);
  Latch done(1);
  bool all_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t round = 0; round < 6; ++round) {
      // Four 16 KiB chunks (over the 8 KiB zero-copy threshold): header +
      // 4 zero-copy follow-ups, all in flight at once.
      auto a = e2e::make_chunk(2048, 4 * round + 1);
      auto b = e2e::make_chunk(2048, 4 * round + 2);
      auto c = e2e::make_chunk(2048, 4 * round + 3);
      auto d = e2e::make_chunk(2048, 4 * round + 4);
      const std::uint64_t expected = e2e::ordered_digest(a, b, c, d);
      const std::uint64_t got =
          amt::here().async<&e2e::ordered_digest>(1, a, b, c, d).get();
      ok = ok && got == expected;
    }
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_TRUE(all_ok);
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllLciVariants, LciPipelineE2E,
    ::testing::Values("lci_psr_cq_pin", "lci_psr_cq_mt", "lci_psr_sy_pin",
                      "lci_psr_sy_mt", "lci_sr_cq_pin", "lci_sr_cq_mt",
                      "lci_sr_sy_pin", "lci_sr_sy_mt",
                      // regression: bounded depths, incl. the old serialized
                      // behaviour (depth 1)
                      "lci_psr_cq_pin_pd1_i", "lci_sr_sy_mt_pd1",
                      "lci_psr_cq_mt_pd4_i"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// ---------------- small-parcel fast path, end to end ----------------

// Every LCI variant combination with the fast path pinned on, over a 4-rail
// reordering fabric: small parcels ride single whole-parcel frames (medium
// sends under sr, dynamic puts under psr) while oversized ones must fall
// back to the header + follow-up path mid-stream with no cross-talk. The
// fp512 and fpoff rows are regression configs for the cap-tuning and
// kill-switch tokens.
class LciFastpathE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(LciFastpathE2E, MixedSizeTrafficAcrossReorderingFabric) {
  StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.fabric_rails = 4;
  auto runtime = amtnet::make_runtime(options);
  e2e::counter.store(0);
  constexpr int kSmall = 200;
  // Small parcels in both directions at once...
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (int i = 1; i <= kSmall; ++i) {
        amt::here().apply<&e2e::bump>(1 - r, static_cast<std::uint64_t>(i));
      }
    });
  }
  // ...while zchunk-heavy round trips interleave on the fallback path.
  Latch done(1);
  bool large_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t round = 0; round < 3; ++round) {
      auto a = e2e::make_chunk(2048, round + 1);
      auto b = e2e::make_chunk(2048, round + 2);
      auto c = e2e::make_chunk(2048, round + 3);
      auto d = e2e::make_chunk(2048, round + 4);
      const std::uint64_t expected = e2e::ordered_digest(a, b, c, d);
      ok = ok &&
           amt::here().async<&e2e::ordered_digest>(1, a, b, c, d).get() ==
               expected;
    }
    large_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_TRUE(large_ok);
  const std::uint64_t expected_small = 2ull * kSmall * (kSmall + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::counter.load() == expected_small; },
      std::chrono::milliseconds(20000)));
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllLciVariants, LciFastpathE2E,
    ::testing::Values("lci_psr_cq_pin_fp_i", "lci_psr_cq_mt_fp_i",
                      "lci_psr_sy_pin_fp_i", "lci_psr_sy_mt_fp_i",
                      "lci_sr_cq_pin_fp_i", "lci_sr_cq_mt_fp_i",
                      "lci_sr_sy_pin_fp_i", "lci_sr_sy_mt_fp_i",
                      // regression rows: a tuned byte cap and the kill switch
                      "lci_psr_cq_mt_fp512_i", "lci_sr_sy_mt_fpoff_i"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// ---------------- adaptive aggregation, end to end ----------------

// Every LCI variant combination with aggregation on, under a block<N>
// admission window (the backpressure signal that activates coalescing),
// over a 4-rail reordering fabric. Small floods in both directions coalesce
// into batch frames while zchunk-heavy round trips ride the fallback path
// mid-stream; the exact sums catch any lost, duplicated, or misrouted
// sub-parcel. The aggoff row pins the kill switch to the bit-identical
// non-batching behaviour.
class LciAggregationE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(LciAggregationE2E, BackpressuredMixedTrafficDeliversExactly) {
  StackOptions options;
  options.parcelport = GetParam();
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.fabric_rails = 4;
  auto runtime = amtnet::make_runtime(options);
  e2e::counter.store(0);
  constexpr int kSmall = 300;
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (int i = 1; i <= kSmall; ++i) {
        amt::here().apply<&e2e::bump>(1 - r, static_cast<std::uint64_t>(i));
      }
    });
  }
  Latch done(1);
  bool large_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t round = 0; round < 2; ++round) {
      auto a = e2e::make_chunk(2048, round + 1);
      auto b = e2e::make_chunk(2048, round + 2);
      const std::uint64_t expected = e2e::ordered_digest(a, b, a, b);
      ok = ok &&
           amt::here().async<&e2e::ordered_digest>(1, a, b, a, b).get() ==
               expected;
    }
    large_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_TRUE(large_ok);
  const std::uint64_t expected_small = 2ull * kSmall * (kSmall + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::counter.load() == expected_small; },
      std::chrono::milliseconds(20000)));
  runtime->stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllLciVariants, LciAggregationE2E,
    ::testing::Values("lci_psr_cq_pin_fp_agg2048_i_block16",
                      "lci_psr_cq_mt_fp_agg2048_i_block16",
                      "lci_psr_sy_pin_fp_agg2048_i_block16",
                      "lci_psr_sy_mt_fp_agg2048_i_block16",
                      "lci_sr_cq_pin_fp_agg2048_i_block16",
                      "lci_sr_cq_mt_fp_agg2048_i_block16",
                      "lci_sr_sy_pin_fp_agg2048_i_block16",
                      "lci_sr_sy_mt_fp_agg2048_i_block16",
                      // regression rows: a tight age deadline, a small cap
                      // that evicts constantly, and the kill switch
                      "lci_psr_cq_mt_fp_agg1024_aggt50_i_block8",
                      "lci_psr_cq_mt_fp_agg128_aggt100_i_block16",
                      "lci_psr_cq_mt_fp_aggoff_i_block16"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

#ifndef AMTNET_TELEMETRY_DISABLED
TEST(LciAggregation, BackpressuredFloodActuallyBatches) {
  // The e2e sweep above proves delivery is exact; this pins that batching
  // *happened*: under a tight block window a one-way flood must coalesce
  // parcels into batch frames, and the flush-trigger counters must account
  // for every flush.
  StackOptions options;
  options.parcelport = "lci_psr_cq_mt_fp_agg2048_aggt100_i_block8";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  auto runtime = amtnet::make_runtime(options);
  e2e::counter.store(0);
  constexpr int kParcels = 600;
  runtime->locality(0).spawn([&] {
    for (int i = 1; i <= kParcels; ++i) {
      amt::here().apply<&e2e::bump>(1, static_cast<std::uint64_t>(i));
    }
  });
  const std::uint64_t expected = 1ull * kParcels * (kParcels + 1) / 2;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::counter.load() == expected; },
      std::chrono::milliseconds(20000)));
  const auto snap = runtime->telemetry().snapshot();
  const std::uint64_t batched = snap.counter("pplci/loc0/agg_batched");
  const std::uint64_t flushes = snap.counter("pplci/loc0/agg_flushes_size") +
                                snap.counter("pplci/loc0/agg_flushes_stall") +
                                snap.counter("pplci/loc0/agg_flushes_age") +
                                snap.counter("pplci/loc0/agg_flushes_idle");
  EXPECT_GT(batched, 0u) << "no parcel was ever coalesced under backpressure";
  EXPECT_GT(flushes, 0u);
  EXPECT_GE(batched, flushes) << "a flush carried zero parcels";
  runtime->stop();
}
#endif  // AMTNET_TELEMETRY_DISABLED

namespace e2e {

// Mirrors the bench harness ping signature (bench/harness.cpp lat_ping) so
// the threshold arithmetic below measures the same envelope fig7 sweeps.
void sized_sink(std::uint32_t, std::uint32_t, std::vector<std::uint8_t>) {
  counter.fetch_add(1);
}

}  // namespace e2e

#ifndef AMTNET_TELEMETRY_DISABLED
TEST(LciFastpathThreshold, Fig7StraddlePayloadsLandOnOppositeSides) {
  // fig7's straddle points assume frame = payload + 53 B (action id +
  // promise id + two u32 args + the inline-vector prefix + the 24 B frame
  // header) against the 8192 B cap: payload 8131 must ride the fast path,
  // payload 8147 must fall back. If the envelope or frame layout ever
  // changes size, this pins the drift so the bench comment gets fixed too.
  StackOptions options;
  options.parcelport = "lci_psr_cq_mt_fp_i";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  auto runtime = amtnet::make_runtime(options);

  const auto counters = [&] {
    const auto snap = runtime->telemetry().snapshot();
    return std::array<std::uint64_t, 2>{
        snap.counter("pplci/loc0/fastpath_hits"),
        snap.counter("pplci/loc0/fastpath_fallbacks")};
  };

  const auto send_sized = [&](std::size_t payload_size) {
    e2e::counter.store(0);
    runtime->locality(0).spawn([&, payload_size] {
      amt::here().apply<&e2e::sized_sink>(
          1, std::uint32_t{0}, std::uint32_t{0},
          std::vector<std::uint8_t>(payload_size, 0x7f));
    });
    ASSERT_TRUE(testutil::spin_until(
        [&] { return e2e::counter.load() == 1; }));
  };

  const auto before = counters();
  send_sized(8192 - 53 - 8);  // frame at threshold - 8: fast path
  const auto under = counters();
  EXPECT_EQ(under[0], before[0] + 1) << "sub-threshold payload missed the "
                                        "fast path — envelope size drifted";
  EXPECT_EQ(under[1], before[1]);
  send_sized(8192 - 53 + 8);  // frame at threshold + 8: fallback
  const auto over = counters();
  EXPECT_EQ(over[0], under[0]);
  EXPECT_EQ(over[1], under[1] + 1) << "over-threshold payload rode the "
                                      "fast path — envelope size drifted";
  runtime->stop();
}
#endif  // AMTNET_TELEMETRY_DISABLED

TEST(LciPipeline, OutOfOrderWithJitterChaos) {
  // Rails + per-packet jitter: aggressively shuffles piece arrival order.
  StackOptions options;
  options.parcelport = "lci_psr_cq_mt_i";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.fabric_rails = 4;
  amt::RuntimeConfig config = amtnet::make_runtime_config(options);
  config.fabric.jitter_us = 5.0;
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  Latch done(1);
  bool all_ok = false;
  runtime.locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t round = 0; round < 4; ++round) {
      auto a = e2e::make_chunk(3000, round + 11);
      auto b = e2e::make_chunk(1024, round + 22);
      auto c = e2e::make_chunk(4096, round + 33);
      auto d = e2e::make_chunk(2048, round + 44);
      const std::uint64_t expected = e2e::ordered_digest(a, b, c, d);
      const std::uint64_t got =
          amt::here().async<&e2e::ordered_digest>(1, a, b, c, d).get();
      ok = ok && got == expected;
    }
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_TRUE(all_ok);
  runtime.stop();
}

#ifndef AMTNET_TELEMETRY_DISABLED
TEST(LciPipeline, SteadyStateSendAllocatesNoConnectionsOrSyncs) {
  // The zero-allocation acceptance check: after a warm-up burst has stocked
  // the connection/synchronizer freelists, further sends must be served
  // entirely from the pools — the alloc counters stop moving while the
  // reuse counters keep climbing. fpoff: with the small-parcel fast path on
  // (the default) these pings would bypass connections entirely, which the
  // sibling test below pins down.
  StackOptions options;
  options.parcelport = "lci_psr_sy_mt_fpoff_i";  // sy: exercises the sync pool
  options.num_localities = 2;
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);

  const auto pools = [&] {
    const auto snap = runtime->telemetry().snapshot();
    const auto both = [&snap](const char* leaf) {
      return snap.counter(std::string("pplci/loc0/") + leaf) +
             snap.counter(std::string("pplci/loc1/") + leaf);
    };
    return std::array<std::uint64_t, 4>{
        both("conn_allocs"), both("conn_reuses"), both("sync_allocs"),
        both("sync_reuses")};
  };

  // Warm-up: a concurrent burst in both directions grows the pools past any
  // steady-state in-flight count.
  e2e::counter.store(0);
  constexpr int kBurst = 48;
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&] {
      for (int i = 0; i < kBurst; ++i) {
        amt::here().apply<&e2e::bump>(1 - amt::here().rank(), 1);
      }
    });
  }
  ASSERT_TRUE(testutil::spin_until(
      [&] { return e2e::counter.load() == 2 * kBurst; },
      std::chrono::milliseconds(10000)));

  const auto warm = pools();

  // Steady state: sequential request/response round trips.
  Latch done(1);
  bool all_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t i = 0; i < 128; ++i) {
      ok = ok && amt::here().async<&e2e::echo_add>(1, i).get() == i + 1;
    }
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  ASSERT_TRUE(all_ok);

  const auto after = pools();
  EXPECT_EQ(after[0], warm[0]) << "steady-state sends allocated connections";
  EXPECT_GT(after[1], warm[1]) << "connections were not recycled";
  EXPECT_EQ(after[2], warm[2]) << "steady-state sends allocated synchronizers";
  EXPECT_GT(after[3], warm[3]) << "synchronizers were not recycled";
  runtime->stop();
}

TEST(LciPipeline, FastpathSendsBypassConnectionsAndSyncs) {
  // With the fast path on (the default), small round trips never acquire a
  // ReceiverConnection or a synchronizer at all: every pool counter stays
  // frozen while the fastpath hit counter accounts for each parcel.
  StackOptions options;
  options.parcelport = "lci_psr_sy_mt_fp_i";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);

  const auto counters = [&] {
    const auto snap = runtime->telemetry().snapshot();
    const auto both = [&snap](const char* leaf) {
      return snap.counter(std::string("pplci/loc0/") + leaf) +
             snap.counter(std::string("pplci/loc1/") + leaf);
    };
    return std::array<std::uint64_t, 6>{
        both("conn_allocs"),     both("conn_reuses"),
        both("sync_allocs"),     both("sync_reuses"),
        both("fastpath_hits"),   both("fastpath_fallbacks")};
  };

  // One round trip first so startup traffic is out of the way.
  Latch warmed(1);
  runtime->locality(0).spawn([&] {
    (void)amt::here().async<&e2e::echo_add>(1, std::uint64_t{0}).get();
    warmed.count_down();
  });
  warmed.wait(runtime->locality(0).scheduler());
  const auto warm = counters();

  constexpr std::uint64_t kRounds = 128;
  Latch done(1);
  bool all_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    for (std::uint64_t i = 0; i < kRounds; ++i) {
      ok = ok && amt::here().async<&e2e::echo_add>(1, i).get() == i + 1;
    }
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  ASSERT_TRUE(all_ok);

  const auto after = counters();
  EXPECT_EQ(after[0], warm[0]) << "fast-path sends acquired connections";
  EXPECT_EQ(after[1], warm[1]) << "fast-path sends reused connections";
  EXPECT_EQ(after[2], warm[2]) << "fast-path sends allocated synchronizers";
  EXPECT_EQ(after[3], warm[3]) << "fast-path sends reused synchronizers";
  // Request + response per round, both small enough for the fast path.
  EXPECT_GE(after[4] - warm[4], 2 * kRounds) << "parcels missed the fast path";
  EXPECT_EQ(after[5], warm[5]) << "small parcels fell back off the fast path";
  runtime->stop();
}
#endif  // AMTNET_TELEMETRY_DISABLED

// ---------------- cross-locality scaling sanity ----------------

TEST(ParcelportScaling, FourLocalitiesAllToAll) {
  for (const char* name : {"mpi_i", "lci_psr_cq_pin_i"}) {
    StackOptions options;
    options.parcelport = name;
    options.num_localities = 4;
    options.threads_per_locality = 1;
    auto runtime = amtnet::make_runtime(options);
    e2e::counter.store(0);
    for (amt::Rank r = 0; r < 4; ++r) {
      runtime->locality(r).spawn([&] {
        for (amt::Rank dst = 0; dst < 4; ++dst) {
          amt::here().apply<&e2e::bump>(dst, 1);
        }
      });
    }
    ASSERT_TRUE(testutil::spin_until(
        [&] { return e2e::counter.load() == 16; },
        std::chrono::milliseconds(10000)))
        << name << " delivered " << e2e::counter.load() << "/16";
    runtime->stop();
  }
}

// ---------------- header integrity: CRC + generation tracking ----------

TEST(WireHeaderDeathTest, CorruptedHeaderFailsFastAtDecode) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto msg = make_msg(64, {9000});
  const auto plan = amt::HeaderPlan::decide(msg, 8192);
  std::vector<std::byte> wire;
  amt::encode_header(msg, plan, 77, /*seq=*/3, wire);
  // Flip one payload bit: the decode-time CRC must catch it and abort
  // rather than deserialize garbage sizes.
  wire[wire.size() / 2] ^= std::byte{0x10};
  EXPECT_DEATH(amt::decode_header(wire.data(), wire.size()),
               "wire header CRC mismatch");
}

TEST(WireHeaderDeathTest, TruncatedHeaderFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::byte> wire(8, std::byte{0});
  EXPECT_DEATH(amt::decode_header(wire.data(), wire.size()),
               "wire header truncated");
}

TEST(HeaderSeqTracker, AcceptsMonotonicRejectsDuplicates) {
  amt::HeaderSeqTracker tracker;
  for (std::uint16_t seq = 0; seq < 200; ++seq) {
    EXPECT_TRUE(tracker.accept(seq)) << "fresh seq " << seq;
  }
  EXPECT_FALSE(tracker.accept(199));
  EXPECT_FALSE(tracker.accept(180));
  EXPECT_TRUE(tracker.accept(200));
}

TEST(HeaderSeqTracker, ToleratesReorderingWithinWindow) {
  amt::HeaderSeqTracker tracker;
  // Multi-rail style arrival order: newest first, stragglers after.
  EXPECT_TRUE(tracker.accept(10));
  EXPECT_TRUE(tracker.accept(8));
  EXPECT_TRUE(tracker.accept(9));
  EXPECT_FALSE(tracker.accept(8));  // straggler arriving twice = duplicate
  EXPECT_TRUE(tracker.accept(11));
  EXPECT_FALSE(tracker.accept(10));
}

TEST(HeaderSeqTracker, LongFloodRejectsStaleDuplicateAtTheOldU16Wrap) {
  // Regression for the 16-bit tracker: after 2^16 generations, a stale
  // duplicate of an early seq aliased onto a small *forward* delta
  // ((2 - 0xFFFE) mod 2^16 = 4) and was accepted — a double dispatch on any
  // flood longer than 65536 parcels. The 32-bit tracker must classify it as
  // epoch-stale and reject, while the flood itself keeps flowing.
  amt::HeaderSeqTracker tracker;
  for (std::uint32_t seq = 0; seq <= 0xFFFEu; ++seq) {
    ASSERT_TRUE(tracker.accept(seq)) << "generation " << seq;
  }
  EXPECT_FALSE(tracker.accept(2));        // pre-fix: seen as 4 ahead, accepted
  EXPECT_FALSE(tracker.accept(0xFFFEu));  // plain in-window duplicate
  EXPECT_TRUE(tracker.accept(0xFFFFu));   // the counter no longer wraps here
  EXPECT_TRUE(tracker.accept(0x10000u));
  EXPECT_TRUE(tracker.accept(0x10001u));
}

TEST(HeaderSeqTracker, SurvivesTheFullU32Wraparound) {
  amt::HeaderSeqTracker tracker;
  // Walk highest_ to just below the 32-bit wrap (each jump lands inside the
  // forward half-range, so all three are "newer")...
  ASSERT_TRUE(tracker.accept(0x60000000u));
  ASSERT_TRUE(tracker.accept(0xC0000000u));
  ASSERT_TRUE(tracker.accept(0xFFFFFF00u));
  // ...then cross the wrap one generation at a time.
  for (std::uint32_t seq = 0xFFFFFF01u; seq != 8; ++seq) {
    ASSERT_TRUE(tracker.accept(seq)) << "generation " << seq;
  }
  EXPECT_FALSE(tracker.accept(0xFFFFFFFFu));  // duplicate from before the wrap
  EXPECT_FALSE(tracker.accept(4));            // duplicate from after it
  EXPECT_TRUE(tracker.accept(8));
}

// ---------------- LCI follow-up tag counter wraparound ----------------

#include "parcelport_lci/parcelport_lci.hpp"

TEST(LciTagWraparound, FollowupsSurviveThe32BitTagWrap) {
  // Position both tag counters just below 2^32 so follow-up tag ranges are
  // allocated across the wrap mid-test. A range that started at the reserved
  // header tag 0 — or wrapped through it — would collide follow-up pieces
  // with sr/psr headers; the receiver-side tag routing must also stay
  // consistent across the restart.
  StackOptions options;
  options.parcelport = "lci_psr_cq_mt_i";
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.zero_copy_threshold = 1024;  // 4 KiB vectors become zchunks
  auto runtime = amtnet::make_runtime(options);
  for (amt::Rank r = 0; r < 2; ++r) {
    auto* port = dynamic_cast<pplci::LciParcelport*>(
        runtime->locality(r).parcelport());
    ASSERT_NE(port, nullptr);
    port->set_next_tag((1ull << 32) - 25);
  }
  Latch done(1);
  bool all_ok = false;
  runtime->locality(0).spawn([&] {
    bool ok = true;
    // 2 zchunk tags per round trip: 30 rounds sweep the counter from
    // 2^32-25 through the wrap and out the other side.
    for (int round = 0; round < 30; ++round) {
      std::vector<double> a(512, double(round)), b(512, 2.0);
      const double got = amt::here().async<&e2e::dot>(1, a, b).get();
      ok = ok && got == 512.0 * 2.0 * round;
    }
    all_ok = ok;
    done.count_down();
  });
  done.wait(runtime->locality(0).scheduler());
  EXPECT_TRUE(all_ok) << "a parcel was lost or corrupted across the tag wrap";
  runtime->stop();
}
