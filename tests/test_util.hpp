// Shared helpers for the test suite.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace testutil {

/// Spins (with yields) until `pred` returns true or `timeout` elapses.
/// Returns whether the predicate became true.
template <typename Pred>
bool spin_until(Pred&& pred,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Like spin_until but calls `pump` (e.g. a progress function) each spin.
template <typename Pred, typename Pump>
bool pump_until(Pred&& pred, Pump&& pump,
                std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    pump();
    if (std::chrono::steady_clock::now() > deadline) return false;
  }
  return true;
}

/// Deterministic payload byte for (message id, offset): lets receivers verify
/// content without shipping expected buffers around.
inline std::byte pattern_byte(std::uint64_t msg_id, std::size_t offset) {
  return static_cast<std::byte>((msg_id * 131 + offset * 7 + 13) & 0xff);
}

inline std::vector<std::byte> make_pattern(std::uint64_t msg_id,
                                           std::size_t len) {
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) data[i] = pattern_byte(msg_id, i);
  return data;
}

inline bool check_pattern(const std::byte* data, std::uint64_t msg_id,
                          std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] != pattern_byte(msg_id, i)) return false;
  }
  return true;
}

}  // namespace testutil
