// Chaos harness: end-to-end parcel traffic over a misbehaving fabric.
//
// Sweeps (parcelport variant) x (fault mix) x (seed): every run injects
// deterministic drops / duplicates / corruption / brownouts / RNR storms
// (fabric/fault.hpp) and asserts the acceptance contract of the integrity
// layer — every parcel is delivered exactly once with intact bytes, the
// retransmit machinery visibly engaged whenever datagrams were dropped, and
// detected-but-unrecoverable corruption (a corrupted zero-copy RDMA payload)
// fail-fasts loudly instead of delivering garbage.
//
// Seeds come from AMTNET_CHAOS_SEEDS (comma-separated, default "1,2") so CI
// can sweep a wider set; any failure reproduces by exporting the seed it
// names. Runs are a pure function of (variant, mix, seed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "amt/collectives.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using amt::Latch;
using amtnet::StackOptions;

namespace {

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds;
  const char* env = std::getenv("AMTNET_CHAOS_SEEDS");
  std::string spec = env != nullptr ? env : "1,2";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (seeds.empty()) seeds = {1, 2};
  return seeds;
}

/// A named fault cocktail plus the traffic shape safe to run under it.
/// Mixes with corruption keep payloads below the zero-copy threshold: eager
/// corruption is recoverable (CRC trailer + retransmit), while a corrupted
/// zero-copy RDMA payload is *detected* but unrecoverable by design — that
/// path has its own death test below.
struct FaultMix {
  const char* name;
  fabric::FaultConfig faults;
  bool large_traffic;  // also exercise the zero-copy/rendezvous path
};

std::vector<FaultMix> fault_mixes() {
  std::vector<FaultMix> mixes;
  {
    FaultMix mix{"drop_dup", {}, true};
    mix.faults.drop = 0.03;
    mix.faults.duplicate = 0.03;
    mixes.push_back(mix);
  }
  {
    FaultMix mix{"brownout_rnr", {}, true};
    mix.faults.brownout = 0.02;
    mix.faults.brownout_posts = 8;
    mix.faults.rnr_storm = 0.02;
    mix.faults.rnr_storm_polls = 8;
    mixes.push_back(mix);
  }
  {
    FaultMix mix{"corrupt_eager", {}, false};
    mix.faults.corrupt = 0.03;
    mixes.push_back(mix);
  }
  {
    FaultMix mix{"storm", {}, false};
    mix.faults.drop = 0.02;
    mix.faults.duplicate = 0.02;
    mix.faults.corrupt = 0.02;
    mix.faults.delay = 0.05;
    mix.faults.delay_us = 30.0;
    mix.faults.brownout = 0.01;
    mix.faults.brownout_posts = 8;
    mix.faults.rnr_storm = 0.01;
    mix.faults.rnr_storm_polls = 8;
    mixes.push_back(mix);
  }
  return mixes;
}

std::atomic<std::uint64_t> small_sum{0};
std::atomic<std::uint64_t> small_count{0};
std::atomic<std::uint64_t> large_sum{0};

void take_small(std::uint64_t value) {
  small_sum.fetch_add(value);
  small_count.fetch_add(1);
}

void take_large(std::vector<std::uint64_t> values) {
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  large_sum.fetch_add(sum);
}

/// One chaos run: bidirectional small parcels (+ optional zero-copy rounds),
/// then exact-delivery and integrity-counter assertions.
void run_chaos(const char* variant, const FaultMix& mix, std::uint64_t seed) {
  SCOPED_TRACE(std::string(variant) + " mix=" + mix.name +
               " seed=" + std::to_string(seed));
  StackOptions options;
  options.parcelport = variant;
  options.num_localities = 2;
  options.threads_per_locality = 2;
  options.platform = "loopback";
  options.faults = mix.faults;
  options.faults.seed = seed;
  auto runtime = amtnet::make_runtime(options);

  small_sum.store(0);
  small_count.store(0);
  large_sum.store(0);

  constexpr std::uint64_t kSmallPerSide = 60;
  constexpr std::uint64_t kLargeRounds = 4;
  constexpr std::size_t kLargeLen = 3000;  // 24 KiB: over the 8 KiB threshold
  for (amt::Rank r = 0; r < 2; ++r) {
    runtime->locality(r).spawn([&, r] {
      for (std::uint64_t i = 1; i <= kSmallPerSide; ++i) {
        amt::here().apply<&take_small>(1 - r, i);
      }
      if (mix.large_traffic) {
        for (std::uint64_t round = 0; round < kLargeRounds; ++round) {
          std::vector<std::uint64_t> values(kLargeLen);
          std::iota(values.begin(), values.end(), round * kLargeLen);
          amt::here().apply<&take_large>(1 - r, values);
        }
      }
    });
  }

  const std::uint64_t expected_small =
      2 * kSmallPerSide * (kSmallPerSide + 1) / 2;
  std::uint64_t expected_large = 0;
  if (mix.large_traffic) {
    for (std::uint64_t round = 0; round < kLargeRounds; ++round) {
      for (std::size_t i = 0; i < kLargeLen; ++i) {
        expected_large += 2 * (round * kLargeLen + i);
      }
    }
  }
  // No hang, no loss: everything arrives despite the chaos.
  ASSERT_TRUE(testutil::spin_until(
      [&] {
        return small_count.load() == 2 * kSmallPerSide &&
               small_sum.load() == expected_small &&
               large_sum.load() == expected_large;
      },
      std::chrono::milliseconds(60000)))
      << "delivered " << small_count.load() << "/" << 2 * kSmallPerSide
      << " small parcels, small_sum=" << small_sum.load() << "/"
      << expected_small << ", large_sum=" << large_sum.load() << "/"
      << expected_large;
  // Exactly once: nothing else trickles in afterwards.
  EXPECT_EQ(small_count.load(), 2 * kSmallPerSide);
  EXPECT_EQ(small_sum.load(), expected_small);
  EXPECT_EQ(large_sum.load(), expected_large);

#ifndef AMTNET_TELEMETRY_DISABLED
  const auto snap = runtime->telemetry().snapshot();
  const auto sum_leaf = [&snap](const char* leaf) {
    std::uint64_t total = 0;
    const std::string suffix = std::string("/") + leaf;
    for (const auto& [name, value] : snap.counters) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        total += value;
      }
    }
    return total;
  };
  if (mix.faults.drop > 0.0 && sum_leaf("faults_dropped") > 0) {
    EXPECT_GT(sum_leaf("retransmits"), 0u)
        << "datagrams were dropped but nothing was retransmitted";
  }
  if (mix.faults.corrupt > 0.0 && sum_leaf("faults_corrupted") > 0) {
    EXPECT_GT(sum_leaf("crc_dropped"), 0u)
        << "payloads were corrupted but no CRC check fired";
  }
#endif
  runtime->stop();
}

}  // namespace

class ChaosSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosSweep, AllParcelsDeliveredIntactUnderEveryMix) {
  const auto seeds = chaos_seeds();
  for (const FaultMix& mix : fault_mixes()) {
    for (std::uint64_t seed : seeds) {
      run_chaos(GetParam(), mix, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, ChaosSweep,
    ::testing::Values(
        // All 8 LCI variant combinations.
        "lci_psr_cq_pin_i", "lci_psr_cq_mt_i", "lci_psr_sy_pin_i",
        "lci_psr_sy_mt_i", "lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
        "lci_sr_sy_pin_i", "lci_sr_sy_mt_i",
        // Small-parcel fast path pinned on: drop/dup/corrupt must land on
        // whole-parcel frames too, and the seq dedup must never let a
        // duplicated frame dispatch a parcel twice (the exact-sum check
        // above catches any double dispatch).
        "lci_psr_cq_mt_fp_i",
        // Adaptive aggregation under a blocking admission window: faults
        // must land on multi-parcel batch frames too — dropping one loses
        // (and retransmits) several parcels at once, and a duplicated batch
        // must not re-dispatch any of its sub-parcels.
        "lci_psr_cq_mt_fp_agg1024_aggt100_i_block32",
        // The MPI and TCP parcelports.
        "mpi_i", "tcp"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// ---------------- tree collectives over a lossy wire ----------------------

// The log-depth collectives relay payloads through intermediate ranks
// (binomial forwarding), so one dropped datagram stalls a whole subtree
// until the retransmit machinery recovers it. Forced-tree rounds under 1%
// drop + duplicates must still complete byte-exactly: duplicates must not
// double-apply a reduction contribution, and recovery must not reorder a
// round's segments.
TEST(ChaosCollectives, TreeRoundsCompleteExactlyUnderDrops) {
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    StackOptions options;
    options.parcelport = "lci_psr_cq_pin_i_colltree";
    options.num_localities = 5;
    options.threads_per_locality = 2;
    options.platform = "loopback";
    options.faults.drop = 0.01;
    options.faults.duplicate = 0.01;
    options.faults.seed = seed;
    auto runtime = amtnet::make_runtime(options);
    amt::CollectiveGroup group(*runtime);
    ASSERT_EQ(group.tuning().force, "tree");

    std::atomic<int> wrong{0};
    Latch done(5);
    for (amt::Rank r = 0; r < 5; ++r) {
      runtime->locality(r).spawn([&, r] {
        for (std::uint32_t round = 0; round < 20; ++round) {
          std::vector<std::uint8_t> data(64);
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::uint8_t>(r + i + round);
          }
          group.allreduce(
              data, 1,
              +[](std::uint8_t* acc, const std::uint8_t* in,
                  std::size_t bytes) {
                for (std::size_t i = 0; i < bytes; ++i) acc[i] += in[i];
              });
          for (std::size_t i = 0; i < data.size(); ++i) {
            // Sum over ranks 0..4 of (rank + i + round), mod 256.
            const std::uint8_t expect = static_cast<std::uint8_t>(
                10 + 5 * (i + round));
            if (data[i] != expect) {
              wrong.fetch_add(1);
              break;
            }
          }
        }
        done.count_down();
      });
    }
    done.wait(runtime->locality(0).scheduler());
    EXPECT_EQ(wrong.load(), 0);
    runtime->stop();
  }
}

// ---------------- unrecoverable corruption fail-fasts loudly --------------

TEST(ChaosDeathTest, CorruptedRdmaPayloadAbortsWithDiagnostics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // corrupt_min_size spares every eager datagram and control message; only
  // the 24 KiB zero-copy RDMA payload is hit. There is no retransmit path
  // for one-sided transfers, so the end-to-end CRC carried by the
  // rendezvous handshake must abort with a diagnostic dump — silent
  // delivery of the flipped bit would be a correctness disaster.
  EXPECT_DEATH(
      {
        StackOptions options;
        options.parcelport = "lci_psr_cq_mt_i";
        options.num_localities = 2;
        options.threads_per_locality = 2;
        options.faults.corrupt = 1.0;
        options.faults.corrupt_min_size = 4096;
        auto runtime = amtnet::make_runtime(options);
        runtime->locality(0).spawn([] {
          std::vector<std::uint64_t> values(3000, 7);
          amt::here().apply<&take_large>(1, values);
        });
        testutil::spin_until([] { return false; },
                             std::chrono::milliseconds(20000));
      },
      "INTEGRITY FAILURE");
}
