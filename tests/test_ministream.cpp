// Tests for the ministream byte-stream layer and the TCP parcelport built on
// it: ordered delivery across a reordering fabric, partial sends
// (EWOULDBLOCK semantics), incremental frame parsing, interleaved frames,
// and end-to-end actions over the "tcp" configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "ministream/stream_mux.hpp"
#include "stack/stack.hpp"
#include "test_util.hpp"

using ministream::StreamMux;

namespace {

fabric::Config reordering_loopback(fabric::Rank ranks = 2) {
  fabric::Config config = fabric::Profile::loopback(ranks);
  config.num_rails = 4;  // force segment reordering pressure
  return config;
}

}  // namespace

TEST(StreamMux, BytesArriveInOrder) {
  fabric::Fabric fabric(reordering_loopback());
  StreamMux a(fabric, 0), b(fabric, 1);

  const auto data = testutil::make_pattern(1, 100000);  // many segments
  std::size_t sent = 0;
  std::vector<std::byte> received;
  while (received.size() < data.size()) {
    if (sent < data.size()) {
      sent += a.send_some(1, data.data() + sent, data.size() - sent);
    }
    a.progress();
    b.progress();
    std::byte chunk[4096];
    const std::size_t got = b.recv_some(0, chunk, sizeof(chunk));
    received.insert(received.end(), chunk, chunk + got);
  }
  EXPECT_EQ(received, data);
  EXPECT_EQ(b.bytes_received(), data.size());
}

TEST(StreamMux, SendBufferBoundsAcceptance) {
  ministream::Config config;
  config.send_buffer = 1024;
  fabric::Config fab = fabric::Profile::loopback(2);
  fab.tx_window = 1;  // nothing drains without progress on the peer
  fabric::Fabric fabric(fab);
  StreamMux a(fabric, 0, config), b(fabric, 1, config);

  std::vector<std::byte> data(4096);
  std::size_t accepted = a.send_some(1, data.data(), data.size());
  EXPECT_LE(accepted, 1024u + 8192u);  // buffer + at most one wire segment
  // Saturated: now acceptance must hit zero until the peer drains.
  std::size_t more = a.send_some(1, data.data(), data.size());
  while (more > 0) more = a.send_some(1, data.data(), data.size());
  SUCCEED();
}

TEST(StreamMux, DuplexAndMultiplePeers) {
  fabric::Fabric fabric(reordering_loopback(3));
  StreamMux m0(fabric, 0), m1(fabric, 1), m2(fabric, 2);

  const auto to1 = testutil::make_pattern(1, 5000);
  const auto to2 = testutil::make_pattern(2, 7000);
  const auto back = testutil::make_pattern(3, 3000);
  std::size_t s1 = 0, s2 = 0, s3 = 0;
  std::vector<std::byte> r1, r2, r3;
  auto pump = [&] {
    m0.progress();
    m1.progress();
    m2.progress();
  };
  while (r1.size() < to1.size() || r2.size() < to2.size() ||
         r3.size() < back.size()) {
    if (s1 < to1.size()) s1 += m0.send_some(1, to1.data() + s1, to1.size() - s1);
    if (s2 < to2.size()) s2 += m0.send_some(2, to2.data() + s2, to2.size() - s2);
    if (s3 < back.size()) s3 += m1.send_some(0, back.data() + s3, back.size() - s3);
    pump();
    std::byte chunk[2048];
    std::size_t got = m1.recv_some(0, chunk, sizeof(chunk));
    r1.insert(r1.end(), chunk, chunk + got);
    got = m2.recv_some(0, chunk, sizeof(chunk));
    r2.insert(r2.end(), chunk, chunk + got);
    got = m0.recv_some(1, chunk, sizeof(chunk));
    r3.insert(r3.end(), chunk, chunk + got);
  }
  EXPECT_EQ(r1, to1);
  EXPECT_EQ(r2, to2);
  EXPECT_EQ(r3, back);
}

TEST(StreamMux, ConcurrentSendersOnePeer) {
  fabric::Fabric fabric(reordering_loopback());
  StreamMux a(fabric, 0), b(fabric, 1);
  // Two threads interleave send_some calls; the byte stream must still be a
  // valid interleaving at chunk granularity — we verify totals.
  constexpr std::size_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> block(100, static_cast<std::byte>(t + 1));
      std::size_t sent = 0;
      while (sent < kPerThread) {
        const std::size_t n =
            a.send_some(1, block.data(),
                        std::min(block.size(), kPerThread - sent));
        sent += n;
        if (n == 0) {
          a.progress();
          std::this_thread::yield();
        }
      }
    });
  }
  std::uint64_t ones = 0, twos = 0, total = 0;
  while (total < 2 * kPerThread) {
    a.progress();
    b.progress();
    std::byte chunk[4096];
    const std::size_t got = b.recv_some(0, chunk, sizeof(chunk));
    for (std::size_t i = 0; i < got; ++i) {
      if (chunk[i] == std::byte{1}) ++ones;
      if (chunk[i] == std::byte{2}) ++twos;
    }
    total += got;
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ones, kPerThread);
  EXPECT_EQ(twos, kPerThread);
}

// ---------------- TCP parcelport end-to-end ----------------

namespace tcp_e2e {

std::atomic<std::uint64_t> received{0};

void sink(std::vector<std::uint8_t> data) {
  received.fetch_add(data.size());
}

double sum(std::vector<double> values) {
  double s = 0;
  for (double v : values) s += v;
  return s;
}

}  // namespace tcp_e2e

TEST(TcpParcelport, ConfigParses) {
  const auto config = amt::ParcelportConfig::parse("tcp");
  EXPECT_EQ(config.kind, amt::ParcelportConfig::Kind::kTcp);
  EXPECT_EQ(config.name(), "tcp");
  EXPECT_EQ(amt::ParcelportConfig::parse("tcp_i").name(), "tcp_i");
}

TEST(TcpParcelport, SmallAndLargeActions) {
  for (const char* name : {"tcp", "tcp_i"}) {
    amtnet::StackOptions options;
    options.parcelport = name;
    options.num_localities = 2;
    auto runtime = amtnet::make_runtime(options);
    double result = 0;
    amt::Latch done(1);
    std::vector<double> values(8192, 0.25);  // 64 KiB zero-copy chunk
    runtime->locality(0).spawn([&] {
      result = amt::here().async<&tcp_e2e::sum>(1, values).get();
      done.count_down();
    });
    done.wait(runtime->locality(0).scheduler());
    EXPECT_DOUBLE_EQ(result, 2048.0) << name;
    runtime->stop();
  }
}

TEST(TcpParcelport, ManyInterleavedFrames) {
  amtnet::StackOptions options;
  options.parcelport = "tcp_i";
  options.num_localities = 3;
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);
  tcp_e2e::received.store(0);
  constexpr int kMessages = 100;
  std::uint64_t expected = 0;
  for (amt::Rank src : {0u, 2u}) {
    runtime->locality(src).spawn([&] {
      for (int i = 0; i < kMessages; ++i) {
        const std::size_t size = 64 + (i % 7) * 3000;  // mixed frame sizes
        amt::here().apply<&tcp_e2e::sink>(
            1, std::vector<std::uint8_t>(size, 1));
      }
    });
  }
  for (int i = 0; i < kMessages; ++i) {
    expected += 2 * (64 + (i % 7) * 3000);
  }
  ASSERT_TRUE(testutil::spin_until(
      [&] { return tcp_e2e::received.load() == expected; },
      std::chrono::milliseconds(30000)));
  runtime->stop();
}
