// Tests for the AMT runtime: serialization (incl. zero-copy thresholds and
// the transmission chunk), scheduler, futures/continuations/latches, the
// typed action layer over the loopback parcelport, parcel aggregation, the
// connection cache, and the send-immediate path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "amt/loopback_parcelport.hpp"
#include "amt/runtime.hpp"
#include "amt/serialization.hpp"
#include "amt/wire_header.hpp"
#include "test_util.hpp"

using amt::ConnectionCache;
using amt::Future;
using amt::InMessage;
using amt::InputArchive;
using amt::Latch;
using amt::Locality;
using amt::OutMessage;
using amt::OutputArchive;
using amt::Promise;
using amt::Runtime;
using amt::RuntimeConfig;
using amt::Scheduler;

// ---------------- serialization ----------------

namespace {

InMessage to_inmessage(OutMessage&& out, amt::Rank source = 0) {
  InMessage in;
  in.source = source;
  in.main_chunk = std::move(out.main_chunk);
  for (const auto& chunk : out.zchunks) {
    in.zchunks.emplace_back(chunk.data, chunk.data + chunk.size);
  }
  return in;
}

}  // namespace

TEST(Serialization, ScalarsRoundTrip) {
  OutputArchive out;
  out << 42 << 3.5 << std::uint8_t{7} << std::int64_t{-9};
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  int a = 0;
  double b = 0;
  std::uint8_t c = 0;
  std::int64_t d = 0;
  in >> a >> b >> c >> d;
  EXPECT_EQ(a, 42);
  EXPECT_DOUBLE_EQ(b, 3.5);
  EXPECT_EQ(c, 7);
  EXPECT_EQ(d, -9);
  EXPECT_TRUE(in.exhausted());
}

TEST(Serialization, StringsRoundTrip) {
  OutputArchive out;
  out << std::string("hello") << std::string("") << std::string("worlds");
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  std::string a, b, c;
  in >> a >> b >> c;
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, "worlds");
}

TEST(Serialization, SmallVectorStaysInline) {
  OutputArchive out(/*zero_copy_threshold=*/64);
  std::vector<std::uint32_t> v(8);
  std::iota(v.begin(), v.end(), 0u);  // 32 bytes < 64
  out << v;
  EXPECT_EQ(out.num_zchunks(), 0u);
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  std::vector<std::uint32_t> got;
  in >> got;
  EXPECT_EQ(got, v);
}

TEST(Serialization, LargeVectorBecomesZeroCopyChunk) {
  OutputArchive out(/*zero_copy_threshold=*/64);
  std::vector<std::uint32_t> v(100);
  std::iota(v.begin(), v.end(), 5u);  // 400 bytes > 64
  out << v;
  EXPECT_EQ(out.num_zchunks(), 1u);
  const auto msg = to_inmessage(out.finish());
  ASSERT_EQ(msg.zchunks.size(), 1u);
  EXPECT_EQ(msg.zchunks[0].size(), 400u);
  InputArchive in(msg);
  std::vector<std::uint32_t> got;
  in >> got;
  EXPECT_EQ(got, v);
}

TEST(Serialization, ThresholdBoundaryIsExclusive) {
  // Exactly threshold bytes stays inline; threshold+1 goes zero-copy.
  OutputArchive out(/*zero_copy_threshold=*/16);
  std::vector<std::uint8_t> at(16), over(17);
  out << at << over;
  EXPECT_EQ(out.num_zchunks(), 1u);
}

TEST(Serialization, RvalueVectorMovesIntoKeepalive) {
  OutputArchive out(/*zero_copy_threshold=*/8);
  std::vector<double> v(100, 1.5);
  const double* storage = v.data();
  out << std::move(v);
  auto msg = out.finish();
  ASSERT_EQ(msg.zchunks.size(), 1u);
  // Zero-copy: the chunk points at the original storage.
  EXPECT_EQ(static_cast<const void*>(msg.zchunks[0].data),
            static_cast<const void*>(storage));
}

TEST(Serialization, MixedPayloadWithMultipleChunks) {
  OutputArchive out(/*zero_copy_threshold=*/32);
  std::vector<float> big1(64, 2.0f);
  std::vector<float> big2(64, 3.0f);
  std::vector<float> small(2, 4.0f);
  out << 7 << big1 << std::string("mid") << small << big2;
  EXPECT_EQ(out.num_zchunks(), 2u);
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  int x;
  std::vector<float> a, b, c;
  std::string s;
  in >> x >> a >> s >> b >> c;
  EXPECT_EQ(x, 7);
  EXPECT_EQ(a, big1);
  EXPECT_EQ(s, "mid");
  EXPECT_EQ(b, small);
  EXPECT_EQ(c, big2);
}

TEST(Serialization, NestedContainers) {
  OutputArchive out;
  std::vector<std::string> names{"a", "bb", "ccc"};
  std::vector<std::vector<int>> nested{{1, 2}, {}, {3}};
  out << names << nested;
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  std::vector<std::string> got_names;
  std::vector<std::vector<int>> got_nested;
  in >> got_names >> got_nested;
  EXPECT_EQ(got_names, names);
  EXPECT_EQ(got_nested, nested);
}

TEST(Serialization, TransmissionChunkEncodesSizes) {
  OutputArchive out(/*zero_copy_threshold=*/8);
  out << std::vector<std::uint8_t>(100) << std::vector<std::uint8_t>(200);
  const auto msg = out.finish();
  const auto tchunk = msg.make_tchunk();
  const auto sizes = amt::parse_tchunk(tchunk.data(), tchunk.size());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 200u);
}

TEST(Serialization, OptionalRoundTrip) {
  OutputArchive out;
  std::optional<std::string> some("abc"), none;
  out << some << none;
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  std::optional<std::string> a, b("junk");
  in >> a >> b;
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "abc");
  EXPECT_FALSE(b.has_value());
}

TEST(Serialization, MapsRoundTrip) {
  OutputArchive out;
  std::map<std::string, int> ordered{{"a", 1}, {"b", 2}};
  std::unordered_map<int, std::vector<int>> unordered{{1, {2, 3}}, {4, {}}};
  out << ordered << unordered;
  const auto msg = to_inmessage(out.finish());
  InputArchive in(msg);
  std::map<std::string, int> got_ordered;
  std::unordered_map<int, std::vector<int>> got_unordered;
  in >> got_ordered >> got_unordered;
  EXPECT_EQ(got_ordered, ordered);
  EXPECT_EQ(got_unordered, unordered);
  EXPECT_TRUE(in.exhausted());
}

// ---------------- scheduler ----------------

TEST(SchedulerTest, ExecutesSpawnedTasks) {
  Scheduler scheduler(2, "t");
  scheduler.start();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    scheduler.spawn([&] { count.fetch_add(1); });
  }
  ASSERT_TRUE(testutil::spin_until([&] { return count.load() == 100; }));
  scheduler.stop();
}

TEST(SchedulerTest, TasksSpawnTasks) {
  Scheduler scheduler(2, "t");
  scheduler.start();
  std::atomic<int> count{0};
  scheduler.spawn([&] {
    for (int i = 0; i < 50; ++i) {
      scheduler.spawn([&] { count.fetch_add(1); });
    }
  });
  ASSERT_TRUE(testutil::spin_until([&] { return count.load() == 50; }));
  scheduler.stop();
}

TEST(SchedulerTest, BackgroundHookRunsWhenIdle) {
  Scheduler scheduler(1, "t");
  std::atomic<int> background_calls{0};
  scheduler.set_background([&](unsigned) {
    background_calls.fetch_add(1);
    return false;
  });
  scheduler.start();
  ASSERT_TRUE(
      testutil::spin_until([&] { return background_calls.load() > 10; }));
  scheduler.stop();
}

TEST(SchedulerTest, WaitUntilHelpsExecuteTasks) {
  Scheduler scheduler(1, "t");
  scheduler.start();
  std::atomic<bool> flag{false};
  Latch done(1);
  scheduler.spawn([&] {
    // This task waits for a later task: wait_until must run it nested.
    scheduler.spawn([&] { flag.store(true); });
    scheduler.wait_until([&] { return flag.load(); });
    done.count_down();
  });
  done.wait(scheduler);
  EXPECT_TRUE(flag.load());
  scheduler.stop();
}

TEST(SchedulerTest, StealingBalancesAcrossWorkers) {
  Scheduler scheduler(4, "t");
  scheduler.start();
  std::atomic<int> count{0};
  Latch latch(1);
  // One task fans out 200 subtasks from a single worker queue; the others
  // must steal to finish quickly.
  scheduler.spawn([&] {
    for (int i = 0; i < 200; ++i) {
      scheduler.spawn([&] { count.fetch_add(1); });
    }
    latch.count_down();
  });
  latch.wait(scheduler);
  ASSERT_TRUE(testutil::spin_until([&] { return count.load() == 200; }));
  EXPECT_GE(scheduler.tasks_executed(), 201u);
  scheduler.stop();
}

// ---------------- futures ----------------

TEST(FutureTest, SetThenGet) {
  Promise<int> promise;
  auto future = promise.get_future();
  EXPECT_FALSE(future.ready());
  promise.set_value(5);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get(), 5);
  EXPECT_EQ(future.value(), 5);
}

TEST(FutureTest, VoidFuture) {
  Promise<void> promise;
  auto future = promise.get_future();
  EXPECT_FALSE(future.ready());
  promise.set_value();
  future.get();
  EXPECT_TRUE(future.ready());
}

TEST(FutureTest, ContinuationAfterAndBeforeReady) {
  Promise<int> promise;
  auto future = promise.get_future();
  std::atomic<int> fired{0};
  future.then([&] { fired.fetch_add(1); });
  promise.set_value(1);
  future.then([&] { fired.fetch_add(1); });  // already ready: runs inline
  EXPECT_EQ(fired.load(), 2);
}

TEST(FutureTest, GetBlocksUntilOtherThreadSets) {
  Promise<std::string> promise;
  auto future = promise.get_future();
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    promise.set_value("done");
  });
  EXPECT_EQ(future.get(), "done");
  setter.join();
}

TEST(FutureTest, ContinuationRunsOnScheduler) {
  Scheduler scheduler(1, "t");
  scheduler.start();
  Promise<int> promise(&scheduler);
  auto future = promise.get_future();
  std::atomic<bool> ran_on_worker{false};
  future.then([&] { ran_on_worker.store(scheduler.on_worker()); });
  promise.set_value(3);
  ASSERT_TRUE(testutil::spin_until([&] { return future.ready(); }));
  ASSERT_TRUE(testutil::spin_until([&] { return ran_on_worker.load(); }));
  scheduler.stop();
}

TEST(FutureTest, WhenAllWaitsForEveryInput) {
  std::vector<Promise<int>> promises;
  std::vector<Future<int>> futures;
  for (int i = 0; i < 5; ++i) {
    promises.emplace_back();
    futures.push_back(promises.back().get_future());
  }
  auto all = amt::when_all(futures);
  for (int i = 0; i < 4; ++i) {
    promises[static_cast<size_t>(i)].set_value(i);
    EXPECT_FALSE(all.ready());
  }
  promises[4].set_value(4);
  EXPECT_TRUE(all.ready());
  // Inputs stay readable after when_all fires.
  EXPECT_EQ(futures[2].value(), 2);
}

TEST(FutureTest, WhenAllOfNothingIsReady) {
  std::vector<Future<int>> futures;
  EXPECT_TRUE(amt::when_all(futures).ready());
}

// ---------------- connection cache ----------------

TEST(ConnectionCacheTest, CapsConcurrentConnections) {
  ConnectionCache cache(2);
  EXPECT_TRUE(cache.try_acquire());
  EXPECT_TRUE(cache.try_acquire());
  EXPECT_FALSE(cache.try_acquire());
  EXPECT_EQ(cache.acquire_failures(), 1u);
  cache.release();
  EXPECT_TRUE(cache.try_acquire());
  EXPECT_EQ(cache.in_use(), 2u);
  cache.release();
  cache.release();
  EXPECT_EQ(cache.in_use(), 0u);
}

TEST(ConnectionCacheTest, ContendedAcquireNeverOvershootsOrStarves) {
  // Regression for the optimistic fetch_add reserve: N concurrent losers
  // could push in_use() past the cap transiently, and with a cap of 1 two
  // acquirers could both fail even though a slot was free the whole time.
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 20000;
  ConnectionCache cache(1);
  std::atomic<std::size_t> max_observed{0};
  std::atomic<std::uint64_t> acquired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if (cache.try_acquire()) {
          const std::size_t seen = cache.in_use();
          std::size_t prev = max_observed.load();
          while (seen > prev && !max_observed.compare_exchange_weak(prev, seen)) {
          }
          acquired.fetch_add(1);
          cache.release();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.in_use(), 0u);
  EXPECT_LE(max_observed.load(), 1u) << "in_use() overshot the cap";
  EXPECT_GT(acquired.load(), 0u);
}

TEST(ConnectionCacheTest, CapOneTwoThreadsOneMustWin) {
  // The sharpest form of the race: with a free slot and exactly two
  // acquirers, at least one must succeed on every round.
  ConnectionCache cache(1);
  for (int round = 0; round < 5000; ++round) {
    std::atomic<int> wins{0};
    std::thread a([&] {
      if (cache.try_acquire()) wins.fetch_add(1);
    });
    std::thread b([&] {
      if (cache.try_acquire()) wins.fetch_add(1);
    });
    a.join();
    b.join();
    ASSERT_GE(wins.load(), 1) << "both acquirers failed with a free slot";
    ASSERT_LE(wins.load(), 1) << "cap of one admitted two connections";
    for (int i = 0; i < wins.load(); ++i) cache.release();
  }
}

// ---------------- actions over the loopback parcelport ----------------

namespace actions {

std::atomic<int> ping_count{0};
std::atomic<std::uint64_t> sum_received{0};

void ping() { ping_count.fetch_add(1); }

// Deliberately slow handler: holds the admission window open long enough
// that an unpaced sender reliably overruns a small bound.
void slow_ping() {
  std::this_thread::sleep_for(std::chrono::microseconds(100));
  ping_count.fetch_add(1);
}

int add(int a, int b) { return a + b; }

double vector_sum(std::vector<double> values) {
  double sum = 0;
  for (double v : values) sum += v;
  return sum;
}

std::string greet(std::string name, int times) {
  std::string out;
  for (int i = 0; i < times; ++i) out += name;
  return out;
}

void consume_large(std::vector<std::uint64_t> values) {
  std::uint64_t sum = 0;
  for (auto v : values) sum += v;
  sum_received.fetch_add(sum);
}

amt::Rank where_am_i() { return amt::here().rank(); }

}  // namespace actions

namespace {

RuntimeConfig loopback_config(amt::Rank localities = 2,
                              bool send_immediate = false) {
  RuntimeConfig config;
  config.num_localities = localities;
  config.threads_per_locality = 2;
  config.fabric = fabric::Profile::loopback(localities);
  config.parcelport.send_immediate = send_immediate;
  return config;
}

}  // namespace

class RuntimeActions : public ::testing::TestWithParam<bool> {};

TEST_P(RuntimeActions, FireAndForgetAction) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  runtime.locality(0).spawn(
      [&] { amt::here().apply<&actions::ping>(1); });
  ASSERT_TRUE(
      testutil::spin_until([&] { return actions::ping_count.load() == 1; }));
  runtime.stop();
}

TEST_P(RuntimeActions, AsyncActionReturnsValue) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  std::atomic<int> result{0};
  Latch done(1);
  runtime.locality(0).spawn([&] {
    auto future = amt::here().async<&actions::add>(1, 20, 22);
    result.store(future.get());
    done.count_down();
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_EQ(result.load(), 42);
  runtime.stop();
}

TEST_P(RuntimeActions, StringsAndMultipleArgs) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  std::string result;
  Latch done(1);
  runtime.locality(0).spawn([&] {
    result = amt::here().async<&actions::greet>(1, std::string("ab"), 3).get();
    done.count_down();
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_EQ(result, "ababab");
  runtime.stop();
}

TEST_P(RuntimeActions, LargeVectorArgumentGoesZeroCopy) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  std::vector<double> values(4096, 0.5);  // 32 KiB > 8 KiB threshold
  double result = 0;
  Latch done(1);
  runtime.locality(0).spawn([&] {
    result = amt::here().async<&actions::vector_sum>(1, values).get();
    done.count_down();
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_DOUBLE_EQ(result, 2048.0);
  runtime.stop();
}

TEST_P(RuntimeActions, SelfSendWorks) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  int result = 0;
  Latch done(1);
  runtime.locality(1).spawn([&] {
    result = amt::here().async<&actions::add>(1, 1, 2).get();
    done.count_down();
  });
  done.wait(runtime.locality(1).scheduler());
  EXPECT_EQ(result, 3);
  runtime.stop();
}

TEST_P(RuntimeActions, HereReportsDestination) {
  Runtime runtime(loopback_config(3, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  amt::Rank result = 99;
  Latch done(1);
  runtime.locality(0).spawn([&] {
    result = amt::here().async<&actions::where_am_i>(2).get();
    done.count_down();
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_EQ(result, 2u);
  runtime.stop();
}

TEST_P(RuntimeActions, ManyConcurrentAsyncs) {
  Runtime runtime(loopback_config(2, GetParam()),
                  amt::loopback_parcelport_factory());
  runtime.start();
  constexpr int kCount = 500;
  std::atomic<std::int64_t> total{0};
  Latch done(kCount);
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kCount; ++i) {
      auto future = amt::here().async<&actions::add>(1, i, 1);
      future.then([&, future] {
        total.fetch_add(future.value());
        done.count_down();
      });
    }
  });
  done.wait(runtime.locality(0).scheduler());
  // sum of (i + 1) for i in [0, kCount)
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kCount) * (kCount + 1) / 2);
  runtime.stop();
}

INSTANTIATE_TEST_SUITE_P(SendModes, RuntimeActions,
                         ::testing::Values(false, true));

TEST(RuntimeAggregation, QueuedParcelsAggregateUnderConnectionPressure) {
  // With one connection allowed, every flush after the first must aggregate
  // multiple parcels into a single HPX message.
  RuntimeConfig config = loopback_config(2, /*send_immediate=*/false);
  config.max_connections = 1;
  Runtime runtime(config, amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 200;
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) amt::here().apply<&actions::ping>(1);
  });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kParcels; }));
  const auto stats = runtime.locality(0).stats();
  EXPECT_EQ(stats.parcels_sent, static_cast<std::uint64_t>(kParcels));
  // Aggregation must have batched at least some messages (loopback delivery
  // is synchronous, so this is conservative).
  EXPECT_LE(stats.messages_sent, stats.parcels_sent);
  runtime.stop();
}

TEST(RuntimeSendImmediate, OneMessagePerParcel) {
  Runtime runtime(loopback_config(2, /*send_immediate=*/true),
                  amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 50;
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) amt::here().apply<&actions::ping>(1);
  });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kParcels; }));
  const auto stats = runtime.locality(0).stats();
  EXPECT_EQ(stats.messages_sent, stats.parcels_sent);
  runtime.stop();
}

TEST(RuntimeLargeArgs, SumArrivesIntact) {
  Runtime runtime(loopback_config(2), amt::loopback_parcelport_factory());
  runtime.start();
  actions::sum_received.store(0);
  std::vector<std::uint64_t> values(10000);
  std::iota(values.begin(), values.end(), 1ull);
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), 0ull);
  runtime.locality(0).spawn(
      [&] { amt::here().apply<&actions::consume_large>(1, values); });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::sum_received.load() == expected; }));
  runtime.stop();
}

// ---------------- parcelport config names (Table 1) ----------------

TEST(ParcelportConfigTest, ParsesPaperNames) {
  using amt::ParcelportConfig;
  const auto baseline = ParcelportConfig::parse("lci_psr_cq_pin_i");
  EXPECT_EQ(baseline.kind, ParcelportConfig::Kind::kLci);
  EXPECT_EQ(baseline.protocol, ParcelportConfig::Protocol::kPutSendRecv);
  EXPECT_EQ(baseline.completion, ParcelportConfig::CompType::kQueue);
  EXPECT_EQ(baseline.progress, ParcelportConfig::ProgressType::kPinned);
  EXPECT_TRUE(baseline.send_immediate);
  EXPECT_EQ(baseline.name(), "lci_psr_cq_pin_i");

  const auto mpi = ParcelportConfig::parse("mpi");
  EXPECT_EQ(mpi.kind, ParcelportConfig::Kind::kMpi);
  EXPECT_FALSE(mpi.send_immediate);
  EXPECT_EQ(mpi.name(), "mpi");

  const auto variant = ParcelportConfig::parse("lci_sr_sy_mt");
  EXPECT_EQ(variant.protocol, ParcelportConfig::Protocol::kSendRecv);
  EXPECT_EQ(variant.completion, ParcelportConfig::CompType::kSync);
  EXPECT_EQ(variant.progress, ParcelportConfig::ProgressType::kWorker);
  EXPECT_EQ(variant.name(), "lci_sr_sy_mt");

  // rp is the paper's alias for the pinned progress thread.
  EXPECT_EQ(ParcelportConfig::parse("lci_psr_cq_rp_i").name(),
            "lci_psr_cq_pin_i");
}

TEST(ParcelportConfigTest, PipelineDepthToken) {
  using amt::ParcelportConfig;
  const auto bounded = ParcelportConfig::parse("lci_psr_cq_pin_pd4_i");
  EXPECT_EQ(bounded.lci_pipeline_depth, 4u);
  EXPECT_TRUE(bounded.send_immediate);
  EXPECT_EQ(bounded.name(), "lci_psr_cq_pin_pd4_i");

  // Unbounded is the default and stays out of the canonical name; pdinf is
  // an accepted explicit spelling.
  EXPECT_EQ(ParcelportConfig::parse("lci_psr_cq_pin").lci_pipeline_depth, 0u);
  EXPECT_EQ(ParcelportConfig::parse("lci_psr_cq_pin_pdinf").name(),
            "lci_psr_cq_pin");

  EXPECT_EQ(ParcelportConfig::parse("lci_sr_sy_mt_pd16").name(),
            "lci_sr_sy_mt_pd16");
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_pd0"),
               std::invalid_argument);
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_pdx"),
               std::invalid_argument);
}

TEST(ParcelportConfigTest, AblationNames) {
  using amt::ParcelportConfig;
  const auto fine = ParcelportConfig::parse("mpi_fine_i");
  EXPECT_FALSE(fine.mpi_coarse_lock);
  EXPECT_TRUE(fine.send_immediate);
  const auto orig = ParcelportConfig::parse("mpi_orig");
  EXPECT_TRUE(orig.mpi_original);
}

TEST(ParcelportConfigTest, RejectsUnknownTokens) {
  EXPECT_THROW(amt::ParcelportConfig::parse("lci_bogus"),
               std::invalid_argument);
  EXPECT_THROW(amt::ParcelportConfig::parse("psr_cq"),
               std::invalid_argument);
}

TEST(ParcelportConfigTest, AdmissionTokens) {
  using amt::AdmissionConfig;
  using amt::ParcelportConfig;
  const auto shed = ParcelportConfig::parse("lci_psr_cq_pin_i_shed32");
  EXPECT_EQ(shed.admission.policy, AdmissionConfig::Policy::kShed);
  EXPECT_EQ(shed.admission.queue_bound, 32u);
  EXPECT_TRUE(shed.admission.on());
  EXPECT_EQ(shed.name(), "lci_psr_cq_pin_i_shed32");

  const auto block = ParcelportConfig::parse("lci_psr_cq_pin_i_block16");
  EXPECT_EQ(block.admission.policy, AdmissionConfig::Policy::kBlock);
  EXPECT_EQ(block.admission.queue_bound, 16u);
  EXPECT_EQ(block.name(), "lci_psr_cq_pin_i_block16");

  const auto deadline = ParcelportConfig::parse("lci_psr_cq_pin_dl512");
  EXPECT_EQ(deadline.admission.policy, AdmissionConfig::Policy::kDeadline);
  EXPECT_EQ(deadline.admission.queue_bound, 512u);
  EXPECT_EQ(deadline.name(), "lci_psr_cq_pin_dl512");

  // The tokens compose with every parcelport kind, not just lci.
  EXPECT_EQ(ParcelportConfig::parse("mpi_i_shed8").admission.queue_bound, 8u);
  EXPECT_EQ(ParcelportConfig::parse("mpi_i_shed8").name(), "mpi_i_shed8");

  // Admission off is the default and stays out of the canonical name.
  EXPECT_FALSE(ParcelportConfig::parse("lci_psr_cq_pin_i").admission.on());

  // A zero bound would admit nothing and wedge forever: reject it loudly.
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_i_shed0"),
               std::invalid_argument);
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_i_shedx"),
               std::invalid_argument);
}

TEST(ParcelportConfigTest, AggregationTokens) {
  using amt::ParcelportConfig;
  const auto agg = ParcelportConfig::parse("lci_psr_cq_pin_agg2048_i");
  EXPECT_EQ(agg.lci_agg, 2048);
  EXPECT_EQ(agg.lci_agg_age_us, -1);  // age unset: env / default decides
  EXPECT_EQ(agg.name(), "lci_psr_cq_pin_agg2048_i");

  const auto aged = ParcelportConfig::parse("lci_sr_sy_mt_agg1024_aggt100_i");
  EXPECT_EQ(aged.lci_agg, 1024);
  EXPECT_EQ(aged.lci_agg_age_us, 100);
  EXPECT_EQ(aged.name(), "lci_sr_sy_mt_agg1024_aggt100_i");

  const auto off = ParcelportConfig::parse("lci_psr_cq_pin_aggoff_i");
  EXPECT_EQ(off.lci_agg, 0);
  EXPECT_EQ(off.name(), "lci_psr_cq_pin_aggoff_i");

  // Unset stays out of the canonical name (the env knobs decide at start).
  const auto unset = ParcelportConfig::parse("lci_psr_cq_pin_i");
  EXPECT_EQ(unset.lci_agg, -1);
  EXPECT_EQ(unset.name(), "lci_psr_cq_pin_i");

  // The tokens compose with the fast-path and admission tokens.
  const auto full =
      ParcelportConfig::parse("lci_psr_cq_mt_fp_agg2048_aggt50_i_block8");
  EXPECT_EQ(full.lci_fastpath, 1);
  EXPECT_EQ(full.lci_agg, 2048);
  EXPECT_EQ(full.lci_agg_age_us, 50);
  EXPECT_EQ(full.name(), "lci_psr_cq_mt_fp_agg2048_aggt50_i_block8");

  // A cap below the minimum one-parcel frame could never flush anything:
  // reject it at parse rather than wedging the aggregator at runtime.
  static_assert(amt::kMinAggFrameBytes == 32);
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_agg31_i"),
               std::invalid_argument);
  EXPECT_THROW(ParcelportConfig::parse("lci_psr_cq_pin_agg16_i"),
               std::invalid_argument);
  EXPECT_NO_THROW(ParcelportConfig::parse("lci_psr_cq_pin_agg32_i"));
}

// ---------------- admission control over the loopback parcelport ----------

namespace {

RuntimeConfig admission_config(amt::AdmissionConfig::Policy policy,
                               std::uint32_t bound,
                               amt::Rank localities = 2) {
  RuntimeConfig config = loopback_config(localities);
  config.parcelport.admission.policy = policy;
  config.parcelport.admission.queue_bound = bound;
  return config;
}

}  // namespace

TEST(AdmissionTest, ShedRefusesAtBoundAndConserves) {
  // A tight window and a tight injection loop: the sender outruns the
  // destination's handler execution, so some try_apply calls must be
  // refused at the bound — and at quiescence every admitted parcel has
  // executed (credits return from the destination, not from send
  // completion).
  Runtime runtime(
      admission_config(amt::AdmissionConfig::Policy::kShed, 4),
      amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 400;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<bool> sender_done{false};
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) {
      if (amt::here().try_apply<&actions::slow_ping>(1)) {
        accepted.fetch_add(1);
      } else {
        shed.fetch_add(1);
      }
    }
    sender_done.store(true);
  });
  ASSERT_TRUE(testutil::spin_until([&] {
    return sender_done.load() &&
           actions::ping_count.load() == accepted.load();
  }));
  EXPECT_EQ(accepted.load() + shed.load(), kParcels);
  EXPECT_GT(accepted.load(), 0);
  EXPECT_GT(shed.load(), 0);

  const auto stats = runtime.locality(0).admission_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(stats.deadline_drops, 0u);
  EXPECT_LE(stats.peak_queue_depth, 4);
  runtime.stop();
}

TEST(AdmissionTest, BlockPolicyDelaysButDeliversEverything) {
  Runtime runtime(
      admission_config(amt::AdmissionConfig::Policy::kBlock, 2),
      amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 100;
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) amt::here().apply<&actions::ping>(1);
  });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kParcels; }));
  const auto stats = runtime.locality(0).admission_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kParcels));
  EXPECT_EQ(stats.shed, 0u);  // block never refuses
  EXPECT_LE(stats.peak_queue_depth, 2);
  runtime.stop();
}

TEST(AdmissionTest, ResponseTrafficIsExemptFromShedding) {
  // async actions carry a promise: they are request/response pairs the
  // caller is already throttling, so the admission window counts them but
  // must never refuse them — a shed response would strand a future forever.
  Runtime runtime(
      admission_config(amt::AdmissionConfig::Policy::kShed, 1),
      amt::loopback_parcelport_factory());
  runtime.start();
  std::atomic<std::int64_t> total{0};
  constexpr int kCount = 50;
  Latch done(kCount);
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kCount; ++i) {
      auto future = amt::here().async<&actions::add>(1, i, 1);
      future.then([&, future] {
        total.fetch_add(future.value());
        done.count_down();
      });
    }
  });
  done.wait(runtime.locality(0).scheduler());
  EXPECT_EQ(total.load(),
            static_cast<std::int64_t>(kCount) * (kCount + 1) / 2);
  runtime.stop();
}

TEST(AdmissionTest, DeadlineDropsStaleQueuedParcelsAndConserves) {
  // Aggregation path (no send-immediate) with a single cached connection:
  // parcels queue behind in-flight flushes. A zero deadline makes every
  // queued parcel stale at its flush, so drops are guaranteed — and every
  // accepted parcel must still be accounted for: executed or dropped.
  RuntimeConfig config =
      admission_config(amt::AdmissionConfig::Policy::kDeadline, 1u << 20);
  config.parcelport.admission.deadline_us = 0.0;
  config.parcelport.send_immediate = false;
  config.max_connections = 1;
  Runtime runtime(config, amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 300;
  std::atomic<bool> sender_done{false};
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) amt::here().apply<&actions::ping>(1);
    sender_done.store(true);
  });
  ASSERT_TRUE(testutil::spin_until([&] {
    if (!sender_done.load()) return false;
    const auto stats = runtime.locality(0).admission_stats();
    return stats.accepted ==
           static_cast<std::uint64_t>(actions::ping_count.load()) +
               stats.deadline_drops;
  }));
  const auto stats = runtime.locality(0).admission_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kParcels));
  EXPECT_GT(stats.deadline_drops, 0u);
  runtime.stop();
}

TEST(AdmissionTest, MultiThreadedBoundedQueueStress) {
  // TSan target: concurrent senders on every locality hammer overlapping
  // destinations through tight shed windows. The per-destination window
  // bookkeeping (outstanding counters, peak CAS, credit release from the
  // destination's handler task) must stay exact under contention:
  // generated == accepted + shed and accepted == executed at quiescence.
  constexpr amt::Rank kLocalities = 3;
  constexpr int kSenders = 4;     // spawned tasks per locality
  constexpr int kPerSender = 150;
  Runtime runtime(
      admission_config(amt::AdmissionConfig::Policy::kShed, 8, kLocalities),
      amt::loopback_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> senders_done{0};
  for (amt::Rank loc = 0; loc < kLocalities; ++loc) {
    for (int s = 0; s < kSenders; ++s) {
      runtime.locality(loc).spawn([&, loc, s] {
        for (int i = 0; i < kPerSender; ++i) {
          const amt::Rank dst =
              (loc + 1 + static_cast<amt::Rank>((s + i) % (kLocalities - 1))) %
              kLocalities;
          if (amt::here().try_apply<&actions::ping>(dst)) {
            accepted.fetch_add(1);
          } else {
            shed.fetch_add(1);
          }
        }
        senders_done.fetch_add(1);
      });
    }
  }
  ASSERT_TRUE(testutil::spin_until([&] {
    return senders_done.load() == kLocalities * kSenders &&
           actions::ping_count.load() == accepted.load();
  }));
  EXPECT_EQ(accepted.load() + shed.load(),
            kLocalities * kSenders * kPerSender);
  std::uint64_t total_accepted = 0;
  std::uint64_t total_shed = 0;
  for (amt::Rank loc = 0; loc < kLocalities; ++loc) {
    const auto stats = runtime.locality(loc).admission_stats();
    total_accepted += stats.accepted;
    total_shed += stats.shed;
    EXPECT_LE(stats.peak_queue_depth, 8);
  }
  EXPECT_EQ(total_accepted, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(total_shed, static_cast<std::uint64_t>(shed.load()));
  runtime.stop();
}

// -------- LCI small-parcel fast path: credit return + TSan flood ----------
//
// These run over the REAL network stack (fabric -> minilci -> LCI
// parcelport), not the loopback: the fast path delivers parcels from a
// handler completion fired in progress context, and both the admission
// window bookkeeping and the handler delivery itself must stay exact under
// concurrency (the LciFastpath* filter is part of the CI tsan job).

#include "parcelport_lci/parcelport_lci.hpp"
#include "stack/stack.hpp"

namespace {

amt::RuntimeConfig lci_fastpath_config(const char* parcelport,
                                       amt::Rank localities,
                                       unsigned workers) {
  amtnet::StackOptions options;
  options.parcelport = parcelport;
  options.num_localities = localities;
  options.threads_per_locality = workers;
  options.platform = "loopback";
  return amtnet::make_runtime_config(options);
}

std::uint64_t fastpath_hits(amt::Runtime& runtime, amt::Rank localities) {
  std::uint64_t hits = 0;
  const auto snap = runtime.telemetry().snapshot();
  for (amt::Rank r = 0; r < localities; ++r) {
    hits += snap.counter("pplci/loc" + std::to_string(r) + "/fastpath_hits");
  }
  return hits;
}

}  // namespace

TEST(AdmissionTest, FastpathParcelsReturnCreditsAndConserve) {
  // Fast-path parcels never touch a ReceiverConnection, so the admission
  // credit must come back from the destination's handler task — the same
  // on_message -> admission_release path as every other parcel. A tight
  // shed window with a slow handler: if fast-path delivery leaked credits
  // the window would wedge and the executed count could never catch up
  // with `accepted`; conservation must hold exactly at quiescence.
  amt::RuntimeConfig config = lci_fastpath_config("lci_psr_cq_mt_fp_i", 2, 2);
  config.parcelport.admission.policy = amt::AdmissionConfig::Policy::kShed;
  config.parcelport.admission.queue_bound = 4;
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  constexpr int kParcels = 300;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<bool> sender_done{false};
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) {
      if (amt::here().try_apply<&actions::slow_ping>(1)) {
        accepted.fetch_add(1);
      } else {
        shed.fetch_add(1);
      }
    }
    sender_done.store(true);
  });
  ASSERT_TRUE(testutil::spin_until([&] {
    return sender_done.load() &&
           actions::ping_count.load() == accepted.load();
  }));
  EXPECT_EQ(accepted.load() + shed.load(), kParcels);
  EXPECT_GT(accepted.load(), 0);

  const auto stats = runtime.locality(0).admission_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_LE(stats.peak_queue_depth, 4);
#ifndef AMTNET_TELEMETRY_DISABLED
  // Every accepted ping is tiny and must have travelled the fast path.
  EXPECT_GE(fastpath_hits(runtime, 2),
            static_cast<std::uint64_t>(accepted.load()));
#endif
  runtime.stop();
}

TEST(LciFastpathFlood, MultiThreadedSendersTsanClean) {
  // TSan target: concurrent sender tasks on both localities flood small
  // parcels through the fast path while mt-mode workers race over the
  // progress engine — the handler completion (and the per-source seq
  // tracker behind it) fires from whichever thread holds the NIC. Every
  // parcel must be dispatched exactly once.
  constexpr int kSenders = 3;
  constexpr int kPerSender = 120;
  amt::RuntimeConfig config = lci_fastpath_config("lci_psr_cq_mt_fp_i", 2, 4);
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  for (amt::Rank loc = 0; loc < 2; ++loc) {
    for (int s = 0; s < kSenders; ++s) {
      runtime.locality(loc).spawn([&, loc] {
        for (int i = 0; i < kPerSender; ++i) {
          amt::here().apply<&actions::ping>(1 - loc);
        }
      });
    }
  }
  constexpr int kTotal = 2 * kSenders * kPerSender;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kTotal; },
      std::chrono::milliseconds(20000)));
#ifndef AMTNET_TELEMETRY_DISABLED
  EXPECT_EQ(fastpath_hits(runtime, 2), static_cast<std::uint64_t>(kTotal));
#endif
  runtime.stop();
}

TEST(AdmissionTest, PoolExhaustedFastpathFallsBackAndConserves) {
  // Forces packet-pool exhaustion (a one-packet pool) under a concurrent
  // small-parcel flood: fast-path sends whose bounded alloc loop comes up
  // empty must fall back to the connection path with exactly one fallback
  // count and NO credit skew — pre-fix, the exhausted branch could
  // double-count the parcel against the admission window, so `accepted ==
  // executed` never converged. A deep block window keeps injection retries
  // holding the lone packet while other senders' allocs fail.
  setenv("AMTNET_LCI_PACKET_POOL", "1", 1);
  amt::RuntimeConfig config = lci_fastpath_config("lci_psr_cq_mt_fp_i", 2, 4);
  config.parcelport.admission.policy = amt::AdmissionConfig::Policy::kBlock;
  config.parcelport.admission.queue_bound = 64;
  // A tiny TX window under a 64-deep flood: injections spend most of their
  // time in kRetry, and the retrying sender holds the pool's only packet
  // across the full wire latency — so concurrent senders reliably find the
  // pool empty.
  config.fabric.tx_window = 8;
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  unsetenv("AMTNET_LCI_PACKET_POOL");
  actions::ping_count.store(0);
  constexpr int kSenders = 4;
  constexpr int kPerSender = 200;
  std::atomic<int> senders_done{0};
  for (int s = 0; s < kSenders; ++s) {
    runtime.locality(0).spawn([&] {
      for (int i = 0; i < kPerSender; ++i) {
        amt::here().apply<&actions::ping>(1);
      }
      senders_done.fetch_add(1);
    });
  }
  constexpr int kTotal = kSenders * kPerSender;
  const bool converged = testutil::spin_until(
      [&] {
        return senders_done.load() == kSenders &&
               actions::ping_count.load() == kTotal;
      },
      std::chrono::milliseconds(20000));
  if (!converged) {
    const auto snap0 = runtime.telemetry().snapshot();
    std::fprintf(stderr,
                 "DEBUG senders_done=%d ping_count=%d hits=%llu fb=%llu "
                 "outstanding_peak=%llu accepted=%llu\n",
                 senders_done.load(), actions::ping_count.load(),
                 (unsigned long long)snap0.counter("pplci/loc0/fastpath_hits"),
                 (unsigned long long)snap0.counter(
                     "pplci/loc0/fastpath_fallbacks"),
                 (unsigned long long)runtime.locality(0)
                     .admission_stats()
                     .peak_queue_depth,
                 (unsigned long long)runtime.locality(0)
                     .admission_stats()
                     .accepted);
  }
  ASSERT_TRUE(converged);
  const auto stats = runtime.locality(0).admission_stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.shed, 0u);  // block never refuses
#ifndef AMTNET_TELEMETRY_DISABLED
  const auto snap = runtime.telemetry().snapshot();
  const std::uint64_t hits = snap.counter("pplci/loc0/fastpath_hits");
  const std::uint64_t fallbacks =
      snap.counter("pplci/loc0/fastpath_fallbacks");
  EXPECT_GT(fallbacks, 0u)
      << "a one-packet pool never exhausted under a 4-thread flood";
  // Single-count: every small parcel left the send path exactly once,
  // either as a fast-path frame or as one counted fallback.
  EXPECT_EQ(hits + fallbacks, static_cast<std::uint64_t>(kTotal));
#endif
  runtime.stop();
}

TEST(LciFastpathFlood, SendRecvVariantDeliversThroughHandler) {
  // Same flood over the sr protocol (fast-path frames ride tag-reserved
  // medium sends instead of dynamic puts) with the sy completion flavour.
  constexpr int kParcels = 200;
  amt::RuntimeConfig config = lci_fastpath_config("lci_sr_sy_mt_fp_i", 2, 2);
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  runtime.locality(0).spawn([&] {
    for (int i = 0; i < kParcels; ++i) amt::here().apply<&actions::ping>(1);
  });
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kParcels; },
      std::chrono::milliseconds(20000)));
#ifndef AMTNET_TELEMETRY_DISABLED
  EXPECT_GE(fastpath_hits(runtime, 2), static_cast<std::uint64_t>(kParcels));
#endif
  runtime.stop();
}

// -------- LCI adaptive aggregation: flush-race TSan stress ----------------
//
// The aggregator's lifecycle has three racing flush triggers: a sender whose
// enqueue tips the buffer over the size cap, idle workers running
// background_work (age poll + idle drain), and stop()'s final flush_all.
// These floods make all three fire concurrently from different threads (the
// LciAggregationFlood filter is part of the CI tsan job); the exact dispatch
// count catches any lost, duplicated, or double-flushed sub-parcel.

TEST(LciAggregationFlood, MultiThreadedSendersTsanClean) {
  constexpr int kSenders = 3;
  constexpr int kPerSender = 150;
  amt::RuntimeConfig config =
      lci_fastpath_config("lci_psr_cq_mt_fp_agg2048_aggt50_i_block8", 2, 4);
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  for (amt::Rank loc = 0; loc < 2; ++loc) {
    for (int s = 0; s < kSenders; ++s) {
      runtime.locality(loc).spawn([&, loc] {
        for (int i = 0; i < kPerSender; ++i) {
          amt::here().apply<&actions::ping>(1 - loc);
        }
      });
    }
  }
  constexpr int kTotal = 2 * kSenders * kPerSender;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kTotal; },
      std::chrono::milliseconds(20000)));
  runtime.stop();
}

TEST(LciAggregationFlood, TinyCapEvictionChurnTsanClean) {
  // A cap barely above one entry: nearly every enqueue evicts the previous
  // occupant, maximizing contention on the swap-under-lock/flush-outside
  // handoff between senders and the background flusher.
  constexpr int kSenders = 3;
  constexpr int kPerSender = 100;
  amt::RuntimeConfig config =
      lci_fastpath_config("lci_sr_cq_mt_fp_agg128_aggt50_i_block8", 2, 4);
  amt::Runtime runtime(config, amtnet::default_parcelport_factory());
  runtime.start();
  actions::ping_count.store(0);
  for (int s = 0; s < kSenders; ++s) {
    runtime.locality(0).spawn([&] {
      for (int i = 0; i < kPerSender; ++i) {
        amt::here().apply<&actions::ping>(1);
      }
    });
  }
  constexpr int kTotal = kSenders * kPerSender;
  ASSERT_TRUE(testutil::spin_until(
      [&] { return actions::ping_count.load() == kTotal; },
      std::chrono::milliseconds(20000)));
  runtime.stop();
}
