// Tests for the open-loop serving subsystem: arrival-schedule determinism,
// request-count conservation, and the latency knee the admission policies
// are supposed to flatten.
#include "loadgen/loadgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/clock.hpp"

namespace {

using loadgen::ArrivalConfig;
using loadgen::Params;
using loadgen::Result;

// ---- arrival schedules -------------------------------------------------

TEST(Schedule, PoissonDeterministicFromSeed) {
  ArrivalConfig config;
  config.rate_rps = 5000.0;
  config.seed = 42;
  const auto a = loadgen::build_schedule(config, 2000);
  const auto b = loadgen::build_schedule(config, 2000);
  ASSERT_EQ(a.size(), 2000u);
  EXPECT_EQ(a, b);  // bit-for-bit reproducible

  config.seed = 43;
  const auto c = loadgen::build_schedule(config, 2000);
  EXPECT_NE(a, c);

  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Long-run rate within 10% of the target (2000 samples).
  const double span_s = static_cast<double>(a.back()) / 1e9;
  const double rate = 2000.0 / span_s;
  EXPECT_NEAR(rate, 5000.0, 500.0);
}

TEST(Schedule, BurstKeepsLongRunRateButConcentratesArrivals) {
  ArrivalConfig config;
  config.process = ArrivalConfig::Process::kBurst;
  config.rate_rps = 5000.0;
  config.burst_duty = 0.25;
  config.burst_on_ms = 2.0;
  config.seed = 7;
  const auto schedule = loadgen::build_schedule(config, 4000);
  ASSERT_EQ(schedule.size(), 4000u);
  EXPECT_TRUE(std::is_sorted(schedule.begin(), schedule.end()));
  EXPECT_EQ(schedule, loadgen::build_schedule(config, 4000));

  // Long-run rate stays near the target...
  const double span_s = static_cast<double>(schedule.back()) / 1e9;
  EXPECT_NEAR(4000.0 / span_s, 5000.0, 1250.0);

  // ...but arrivals bunch up: the median gap is far below the mean gap
  // (within a burst the instantaneous rate is rate/duty = 4x).
  std::vector<std::uint64_t> gaps;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    gaps.push_back(schedule[i] - schedule[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  const double median = static_cast<double>(gaps[gaps.size() / 2]);
  const double mean =
      static_cast<double>(std::accumulate(gaps.begin(), gaps.end(),
                                          std::uint64_t{0})) /
      static_cast<double>(gaps.size());
  EXPECT_LT(median, 0.5 * mean);
}

TEST(Schedule, RejectsNonPositiveRate) {
  ArrivalConfig config;
  config.rate_rps = 0.0;
  EXPECT_THROW(loadgen::build_schedule(config, 10), std::invalid_argument);
}

TEST(SizeMix, ParsesAndValidates) {
  const auto mix = loadgen::parse_size_mix("64:9,4096:1");
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_EQ(mix[0].bytes, 64u);
  EXPECT_DOUBLE_EQ(mix[0].weight, 9.0);
  EXPECT_EQ(mix[1].bytes, 4096u);
  EXPECT_DOUBLE_EQ(mix[1].weight, 1.0);

  const auto bare = loadgen::parse_size_mix("128");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0].bytes, 128u);
  EXPECT_DOUBLE_EQ(bare[0].weight, 1.0);

  EXPECT_THROW(loadgen::parse_size_mix("0:1"), std::invalid_argument);
  EXPECT_THROW(loadgen::parse_size_mix("64:0"), std::invalid_argument);
}

// ---- end-to-end runs ---------------------------------------------------

// Shared shape for the run tests: 2 localities over the shaped fabric.
// Capacity ~ bandwidth / request size ~ 0.13 Gbps / 4 KiB ~ 4k requests/s.
Params base_params() {
  Params params;
  params.parcelport = "lci_psr_cq_pin_i";
  params.localities = 2;
  params.workers = 2;
  params.requests = 1200;
  params.arrival.rate_rps = 2400.0;  // ~0.6x saturation
  params.arrival.seed = 2026;
  params.size_mix = loadgen::parse_size_mix("4096");
  return params;
}

TEST(OpenLoop, ConservesCountsWithAdmissionOff) {
  Params params = base_params();
  params.requests = 600;
  const Result result = loadgen::run_open_loop(params);
  EXPECT_TRUE(result.conserved);
  EXPECT_EQ(result.generated, 600u);
  EXPECT_EQ(result.accepted, 600u);  // admission off: nothing refused
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.completed, 600u);
}

TEST(OpenLoop, ScheduleHashReproducibleAcrossRuns) {
  Params params = base_params();
  params.requests = 400;
  const Result a = loadgen::run_open_loop(params);
  const Result b = loadgen::run_open_loop(params);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_NE(a.schedule_hash, 0u);

  // AMTNET_LOADGEN_SEED overrides the configured seed.
  ::setenv("AMTNET_LOADGEN_SEED", "99991", 1);
  const Result c = loadgen::run_open_loop(params);
  ::unsetenv("AMTNET_LOADGEN_SEED");
  EXPECT_NE(c.schedule_hash, a.schedule_hash);
}

TEST(OpenLoop, ShedPolicyConservesAndRespectsBound) {
  Params params = base_params();
  params.parcelport = "lci_psr_cq_pin_i_shed32";
  params.requests = 1500;
  params.arrival.rate_rps = 6000.0;  // ~1.5x saturation: must shed
  const Result result = loadgen::run_open_loop(params);
  EXPECT_TRUE(result.conserved);
  EXPECT_EQ(result.generated, result.accepted + result.shed);
  EXPECT_EQ(result.accepted, result.completed + result.deadline_drops);
  EXPECT_GT(result.shed, 0u);
  EXPECT_LE(result.peak_queue_depth, 32);
}

TEST(OpenLoop, BlockPolicyNeverSheds) {
  Params params = base_params();
  params.parcelport = "lci_psr_cq_pin_i_block16";
  params.requests = 800;
  params.arrival.rate_rps = 6000.0;
  const Result result = loadgen::run_open_loop(params);
  EXPECT_TRUE(result.conserved);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.completed, result.generated);
  EXPECT_GT(result.block_waits, 0u);
  EXPECT_LE(result.peak_queue_depth, 16);
}

TEST(OpenLoop, DeadlinePolicyDropsStaleParcels) {
  Params params = base_params();
  // Deadline needs queued parcels: disable send-immediate and keep the
  // connection cache tiny so the per-destination queue actually holds. The
  // bound must be generous (a whole in-flight aggregate counts against it)
  // and the deadline shorter than one aggregate's send time, so parcels
  // queued behind a flush go stale before the next flush picks them up.
  // Pin fpoff: the small-parcel fast path drains an aggregate in a single
  // frame, fast enough that nothing queued behind it ever goes stale.
  params.parcelport = "lci_psr_cq_pin_fpoff_dl512";
  params.max_connections = 1;
  params.requests = 1500;
  params.arrival.rate_rps = 6000.0;
  ::setenv("AMTNET_ADMIT_DEADLINE_US", "500", 1);
  const Result result = loadgen::run_open_loop(params);
  ::unsetenv("AMTNET_ADMIT_DEADLINE_US");
  EXPECT_TRUE(result.conserved);
  EXPECT_GT(result.deadline_drops, 0u);
  EXPECT_EQ(result.accepted, result.completed + result.deadline_drops);
}

#ifndef AMTNET_TELEMETRY_DISABLED
// The acceptance knee: past saturation an uncontrolled open-loop tail
// explodes (queueing grows with the run), while a bounded shed policy keeps
// the tail within a small factor of the sub-saturation tail. Wall-clock
// based, so allow a few retries against OS noise; the *ratios* involved are
// order-of-magnitude, not marginal.
TEST(OpenLoop, AdmissionFlattensTheLatencyKnee) {
  Params sub = base_params();
  sub.requests = 1200;
  sub.arrival.rate_rps = 2400.0;  // ~0.6x saturation

  Params over = sub;
  over.requests = 2400;
  over.arrival.rate_rps = 6000.0;  // ~1.5x saturation

  Params shed = over;
  shed.parcelport = "lci_psr_cq_pin_i_shed16";

  for (int attempt = 0; attempt < 3; ++attempt) {
    const Result r_sub = loadgen::run_open_loop(sub);
    const Result r_over = loadgen::run_open_loop(over);
    const Result r_shed = loadgen::run_open_loop(shed);
    ASSERT_TRUE(r_sub.conserved);
    ASSERT_TRUE(r_over.conserved);
    ASSERT_TRUE(r_shed.conserved);
    ASSERT_GT(r_sub.p999_us, 0.0);

    const bool knee = r_over.p999_us >= 10.0 * r_sub.p999_us;
    const bool flat = r_shed.p999_us <= 3.0 * r_sub.p999_us;
    if (knee && flat) {
      SUCCEED();
      return;
    }
    if (attempt == 2) {
      EXPECT_TRUE(knee) << "saturated p99.9 " << r_over.p999_us
                        << "us vs sub-saturation " << r_sub.p999_us << "us";
      EXPECT_TRUE(flat) << "shed p99.9 " << r_shed.p999_us
                        << "us vs sub-saturation " << r_sub.p999_us << "us";
    }
  }
}
#endif  // AMTNET_TELEMETRY_DISABLED

}  // namespace
