// Tests for minimpi: matching semantics (FIFO, ANY_SOURCE, tags), eager and
// rendezvous protocols, ordering across the reordering fabric, truncation,
// multithreaded stress under both lock modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "minimpi/minimpi.hpp"
#include "test_util.hpp"

using minimpi::Comm;
using minimpi::Config;
using minimpi::kAnySource;
using minimpi::LockMode;
using minimpi::Request;
using minimpi::World;

namespace {

fabric::Config loopback(fabric::Rank ranks = 2) {
  return fabric::Profile::loopback(ranks);
}

/// Drives both sides until the request completes.
bool wait_req(World& world, Request& request,
              std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(5000)) {
  return testutil::pump_until([&] { return request.done(); },
                              [&] {
                                for (fabric::Rank r = 0; r < world.size();
                                     ++r) {
                                  world.comm(r).progress();
                                }
                              },
                              timeout);
}

}  // namespace

TEST(MiniMpi, EagerSendRecvRoundtrip) {
  World world(loopback());
  const auto data = testutil::make_pattern(1, 64);
  std::vector<std::byte> recv(64);

  auto rreq = world.comm(1).irecv(recv.data(), recv.size(), 0, 5);
  auto sreq = world.comm(0).isend(data.data(), data.size(), 1, 5);
  ASSERT_TRUE(wait_req(world, rreq));
  ASSERT_TRUE(wait_req(world, sreq));
  EXPECT_EQ(rreq.source(), 0);
  EXPECT_EQ(rreq.tag(), 5);
  EXPECT_EQ(rreq.size(), 64u);
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 1, 64));
}

TEST(MiniMpi, EagerSendCompletesImmediately) {
  World world(loopback());
  int x = 7;
  auto sreq = world.comm(0).isend(&x, sizeof(x), 1, 0);
  EXPECT_TRUE(sreq.done());  // fabric copies: eager send is done at post
}

TEST(MiniMpi, UnexpectedMessageMatchesLaterRecv) {
  World world(loopback());
  const auto data = testutil::make_pattern(2, 32);
  auto sreq = world.comm(0).isend(data.data(), data.size(), 1, 9);
  // Let the message arrive unexpected.
  ASSERT_TRUE(testutil::pump_until(
      [&] { return world.comm(1).completed_ops() > 0 || true; },
      [&] { world.comm(1).progress(); }, std::chrono::milliseconds(50)));
  std::vector<std::byte> recv(32);
  auto rreq = world.comm(1).irecv(recv.data(), recv.size(), kAnySource, 9);
  ASSERT_TRUE(wait_req(world, rreq));
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 2, 32));
  EXPECT_TRUE(wait_req(world, sreq));
}

TEST(MiniMpi, AnySourceReportsActualSender) {
  World world(loopback(3));
  int payload = 123;
  std::vector<int> recv(1);
  auto rreq = world.comm(0).irecv(recv.data(), sizeof(int), kAnySource, 4);
  auto sreq = world.comm(2).isend(&payload, sizeof(payload), 0, 4);
  ASSERT_TRUE(wait_req(world, rreq));
  EXPECT_EQ(rreq.source(), 2);
  EXPECT_EQ(recv[0], 123);
  (void)sreq;
}

TEST(MiniMpi, TagsSegregateMessages) {
  World world(loopback());
  int a = 1, b = 2;
  int recv_a = 0, recv_b = 0;
  auto rb = world.comm(1).irecv(&recv_b, sizeof(int), 0, 20);
  auto ra = world.comm(1).irecv(&recv_a, sizeof(int), 0, 10);
  world.comm(0).isend(&a, sizeof(a), 1, 10);
  world.comm(0).isend(&b, sizeof(b), 1, 20);
  ASSERT_TRUE(wait_req(world, ra));
  ASSERT_TRUE(wait_req(world, rb));
  EXPECT_EQ(recv_a, 1);
  EXPECT_EQ(recv_b, 2);
}

TEST(MiniMpi, FifoOrderWithinSameTag) {
  // MPI non-overtaking: two sends with the same (src, tag) must match the
  // two receives in posting order, even across a multi-rail fabric.
  fabric::Config config = loopback();
  config.num_rails = 4;  // encourage reordering pressure
  World world(config);
  constexpr int kCount = 200;
  std::vector<std::uint32_t> recv(kCount, 0);
  std::vector<Request> rreqs;
  for (int i = 0; i < kCount; ++i) {
    rreqs.push_back(
        world.comm(1).irecv(&recv[static_cast<size_t>(i)],
                            sizeof(std::uint32_t), 0, 3));
  }
  for (std::uint32_t i = 0; i < kCount; ++i) {
    world.comm(0).isend(&i, sizeof(i), 1, 3);
  }
  for (auto& request : rreqs) ASSERT_TRUE(wait_req(world, request));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(recv[static_cast<size_t>(i)], static_cast<std::uint32_t>(i));
  }
}

TEST(MiniMpi, RendezvousLargeMessage) {
  World world(loopback());
  const std::size_t size = 100 * 1024;  // far above the eager threshold
  const auto data = testutil::make_pattern(7, size);
  std::vector<std::byte> recv(size);
  auto rreq = world.comm(1).irecv(recv.data(), recv.size(), 0, 2);
  auto sreq = world.comm(0).isend(data.data(), data.size(), 1, 2);
  EXPECT_FALSE(sreq.done());  // rendezvous cannot complete at post time
  ASSERT_TRUE(wait_req(world, rreq));
  ASSERT_TRUE(wait_req(world, sreq));
  EXPECT_EQ(rreq.size(), size);
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 7, size));
}

TEST(MiniMpi, RendezvousUnexpectedRts) {
  World world(loopback());
  const std::size_t size = 64 * 1024;
  const auto data = testutil::make_pattern(8, size);
  auto sreq = world.comm(0).isend(data.data(), data.size(), 1, 6);
  // Deliver the RTS before any recv is posted.
  for (int i = 0; i < 10; ++i) world.comm(1).progress();
  std::vector<std::byte> recv(size);
  auto rreq = world.comm(1).irecv(recv.data(), recv.size(), 0, 6);
  ASSERT_TRUE(wait_req(world, rreq));
  ASSERT_TRUE(wait_req(world, sreq));
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 8, size));
}

TEST(MiniMpi, TruncationClampsToBuffer) {
  World world(loopback());
  const auto data = testutil::make_pattern(3, 128);
  std::vector<std::byte> recv(64);
  auto rreq = world.comm(1).irecv(recv.data(), recv.size(), 0, 1);
  world.comm(0).isend(data.data(), data.size(), 1, 1);
  ASSERT_TRUE(wait_req(world, rreq));
  EXPECT_EQ(rreq.size(), 64u);
  EXPECT_TRUE(testutil::check_pattern(recv.data(), 3, 64));
}

TEST(MiniMpi, EagerThresholdBoundary) {
  Config comm_config;
  comm_config.eager_threshold = 256;
  World world(loopback(), comm_config);
  for (const std::size_t size : {255u, 256u, 257u}) {
    const auto data = testutil::make_pattern(size, size);
    std::vector<std::byte> recv(size);
    auto rreq = world.comm(1).irecv(recv.data(), recv.size(), 0, 11);
    auto sreq = world.comm(0).isend(data.data(), data.size(), 1, 11);
    ASSERT_TRUE(wait_req(world, rreq)) << "size=" << size;
    ASSERT_TRUE(wait_req(world, sreq)) << "size=" << size;
    EXPECT_TRUE(testutil::check_pattern(recv.data(), size, size));
  }
}

TEST(MiniMpi, ZeroByteMessage) {
  World world(loopback());
  auto rreq = world.comm(1).irecv(nullptr, 0, 0, 15);
  auto sreq = world.comm(0).isend(nullptr, 0, 1, 15);
  ASSERT_TRUE(wait_req(world, rreq));
  ASSERT_TRUE(wait_req(world, sreq));
  EXPECT_EQ(rreq.size(), 0u);
}

TEST(MiniMpi, ManyConcurrentRendezvous) {
  World world(loopback());
  constexpr int kCount = 32;
  const std::size_t size = 32 * 1024;
  std::vector<std::vector<std::byte>> recvs(kCount);
  std::vector<std::vector<std::byte>> sends(kCount);
  std::vector<Request> rreqs, sreqs;
  for (int i = 0; i < kCount; ++i) {
    recvs[static_cast<size_t>(i)].resize(size);
    sends[static_cast<size_t>(i)] =
        testutil::make_pattern(static_cast<std::uint64_t>(i), size);
    rreqs.push_back(world.comm(1).irecv(recvs[static_cast<size_t>(i)].data(),
                                        size, 0, 100 + i));
  }
  for (int i = 0; i < kCount; ++i) {
    sreqs.push_back(world.comm(0).isend(sends[static_cast<size_t>(i)].data(),
                                        size, 1, 100 + i));
  }
  for (auto& request : rreqs) ASSERT_TRUE(wait_req(world, request));
  for (auto& request : sreqs) ASSERT_TRUE(wait_req(world, request));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_TRUE(testutil::check_pattern(recvs[static_cast<size_t>(i)].data(),
                                        static_cast<std::uint64_t>(i), size));
  }
}

class MiniMpiLockModes : public ::testing::TestWithParam<LockMode> {};

TEST_P(MiniMpiLockModes, MultithreadedStressAllMessagesArrive) {
  Config comm_config;
  comm_config.lock_mode = GetParam();
  fabric::Config fab = loopback();
  fab.srq_depth = 512;
  World world(fab, comm_config);

  constexpr int kSenderThreads = 3;
  constexpr int kPerThread = 300;
  constexpr int kTotal = kSenderThreads * kPerThread;

  std::vector<std::vector<std::byte>> recvs(kTotal);
  std::vector<Request> rreqs(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    recvs[static_cast<size_t>(i)].resize(512);
    rreqs[static_cast<size_t>(i)] = world.comm(1).irecv(
        recvs[static_cast<size_t>(i)].data(), 512, kAnySource, i);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kSenderThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int tag = t * kPerThread + i;
        const auto data =
            testutil::make_pattern(static_cast<std::uint64_t>(tag), 512);
        auto req = world.comm(0).isend(data.data(), data.size(), 1, tag);
        while (!world.comm(0).test(req)) std::this_thread::yield();
      }
    });
  }
  // A receiver-side progress thread, as HPX worker threads would do.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load()) world.comm(1).progress();
  });

  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(wait_req(world, rreqs[static_cast<size_t>(i)]))
        << "message " << i << " lost";
    EXPECT_TRUE(testutil::check_pattern(recvs[static_cast<size_t>(i)].data(),
                                        static_cast<std::uint64_t>(i), 512));
  }
  stop.store(true);
  pump.join();
}

INSTANTIATE_TEST_SUITE_P(LockModes, MiniMpiLockModes,
                         ::testing::Values(LockMode::kCoarseBlocking,
                                           LockMode::kFineGrained));

TEST(MiniMpi, TxWindowBackpressureIsAbsorbed) {
  // A tiny TX window forces the deferred-send path; nothing may be lost.
  fabric::Config fab = loopback();
  fab.tx_window = 4;
  World world(fab);
  constexpr int kCount = 64;
  std::vector<std::uint32_t> recv(kCount);
  std::vector<Request> rreqs, sreqs;
  for (std::uint32_t i = 0; i < kCount; ++i) {
    rreqs.push_back(world.comm(1).irecv(&recv[i], sizeof(std::uint32_t), 0,
                                        static_cast<int>(i)));
  }
  for (std::uint32_t i = 0; i < kCount; ++i) {
    sreqs.push_back(
        world.comm(0).isend(&i, sizeof(i), 1, static_cast<int>(i)));
  }
  for (auto& request : rreqs) ASSERT_TRUE(wait_req(world, request));
  for (auto& request : sreqs) ASSERT_TRUE(wait_req(world, request));
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(recv[i], i);
}
