// Unit tests for src/common: config parsing, RNG determinism, spin locks,
// clock, and cache-padding invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/cache.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/status.hpp"

TEST(KvConfig, ParsesKeyValuePairs) {
  const auto config = common::KvConfig::parse("a=1, b = two ,c=3.5");
  EXPECT_EQ(config.get_int_or("a", -1), 1);
  EXPECT_EQ(config.get_or("b", ""), "two");
  EXPECT_DOUBLE_EQ(config.get_double_or("c", 0.0), 3.5);
}

TEST(KvConfig, MissingKeysFallBack) {
  const auto config = common::KvConfig::parse("x=1");
  EXPECT_EQ(config.get_int_or("y", 42), 42);
  EXPECT_EQ(config.get_or("z", "dflt"), "dflt");
  EXPECT_FALSE(config.get("y").has_value());
}

TEST(KvConfig, BareKeyIsBooleanFlag) {
  const auto config = common::KvConfig::parse("verbose,count=2");
  EXPECT_TRUE(config.get_bool_or("verbose", false));
  EXPECT_FALSE(config.get_bool_or("quiet", false));
  EXPECT_EQ(config.get_int_or("count", 0), 2);
}

TEST(KvConfig, BoolSpellings) {
  const auto config =
      common::KvConfig::parse("a=true,b=yes,c=on,d=1,e=0,f=false");
  EXPECT_TRUE(config.get_bool_or("a", false));
  EXPECT_TRUE(config.get_bool_or("b", false));
  EXPECT_TRUE(config.get_bool_or("c", false));
  EXPECT_TRUE(config.get_bool_or("d", false));
  EXPECT_FALSE(config.get_bool_or("e", true));
  EXPECT_FALSE(config.get_bool_or("f", true));
}

TEST(KvConfig, EmptyString) {
  const auto config = common::KvConfig::parse("");
  EXPECT_TRUE(config.entries().empty());
}

TEST(KvConfig, SetOverridesParsed) {
  auto config = common::KvConfig::parse("a=1");
  config.set("a", "2");
  EXPECT_EQ(config.get_int_or("a", 0), 2);
}

TEST(SplitTrim, SplitsAndTrims) {
  const auto parts = common::split_trim(" a , b,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Rng, DeterministicFromSeed) {
  common::Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowRespectsBound) {
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  common::Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialDeterministicFromSeed) {
  common::Xoshiro256 a(2026), b(2026);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.next_exponential(50.0), b.next_exponential(50.0));
  }
}

TEST(Rng, ExponentialFromBitsIsPure) {
  // The free function carries no state: same bits + same mean -> same value,
  // which is what lets counter-indexed fault streams replay from a seed.
  std::uint64_t s1 = 7, s2 = 7;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t bits1 = common::splitmix64(s1);
    const std::uint64_t bits2 = common::splitmix64(s2);
    EXPECT_EQ(bits1, bits2);
    EXPECT_EQ(common::exponential_from_bits(bits1, 123.0),
              common::exponential_from_bits(bits2, 123.0));
  }
}

TEST(Rng, ExponentialMomentsMatchMean) {
  common::Xoshiro256 rng(11);
  const double mean = 250.0;
  double sum = 0.0;
  double min = 1e300, max = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
    min = std::min(min, x);
    max = std::max(max, x);
  }
  // Sample mean of 200k exponentials: stderr = mean/sqrt(n) ~ 0.56; 5 sigma.
  EXPECT_NEAR(sum / kSamples, mean, 5.0 * mean / std::sqrt(double(kSamples)));
  EXPECT_LT(min, mean * 0.01);  // the distribution reaches near zero
  EXPECT_GT(max, mean * 5.0);   // ... and has a heavy tail
  EXPECT_EQ(rng.next_exponential(0.0), 0.0);
  EXPECT_EQ(common::exponential_from_bits(42, -1.0), 0.0);
}

TEST(Rng, PoissonDeterministicAndMatchesMoments) {
  common::Xoshiro256 a(77), b(77);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.next_poisson(3.5), b.next_poisson(3.5));
  }
  common::Xoshiro256 rng(78);
  const double mean = 4.0;
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = static_cast<double>(rng.next_poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / kSamples;
  const double sample_var = sum_sq / kSamples - sample_mean * sample_mean;
  // Poisson: mean == variance == lambda. stderr(mean) = sqrt(l/n) ~ 0.0063.
  EXPECT_NEAR(sample_mean, mean, 0.05);
  EXPECT_NEAR(sample_var, mean, 0.15);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
}

TEST(SpinMutex, MutualExclusionUnderContention) {
  common::SpinMutex mutex;
  int counter = 0;  // intentionally non-atomic: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<common::SpinMutex> guard(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinMutex, TryLockFailsWhenHeld) {
  common::SpinMutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.try_lock());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Clock, MonotonicAndTimerSane) {
  const auto t0 = common::now_ns();
  const auto t1 = common::now_ns();
  EXPECT_GE(t1, t0);
  common::Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(timer.elapsed_ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(common::ns_to_us(2000), 2.0);
  EXPECT_DOUBLE_EQ(common::ns_to_s(2'000'000'000), 2.0);
}

TEST(CachePadded, OccupiesFullLines) {
  static_assert(sizeof(common::CachePadded<int>) >= common::kCacheLineSize);
  static_assert(alignof(common::CachePadded<int>) == common::kCacheLineSize);
  common::CachePadded<int> x(7);
  EXPECT_EQ(*x, 7);
}

TEST(Status, ToStringCoversAll) {
  EXPECT_STREQ(common::to_string(common::Status::kOk), "ok");
  EXPECT_STREQ(common::to_string(common::Status::kRetry), "retry");
  EXPECT_STREQ(common::to_string(common::Status::kError), "error");
}

// ---------------- UniqueFunction ----------------

#include "common/unique_function.hpp"

TEST(UniqueFunction, HoldsMoveOnlyCaptures) {
  auto data = std::make_unique<int>(41);
  common::UniqueFunction<int()> fn =
      [data = std::move(data)] { return *data + 1; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int calls = 0;
  common::UniqueFunction<void()> a = [&calls] { ++calls; };
  common::UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, ForwardsArgumentsAndReturns) {
  common::UniqueFunction<std::string(std::string, int)> fn =
      [](std::string s, int n) {
        std::string out;
        for (int i = 0; i < n; ++i) out += s;
        return out;
      };
  EXPECT_EQ(fn("ab", 2), "abab");
}

TEST(UniqueFunction, DefaultIsEmpty) {
  common::UniqueFunction<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(BasicSpinMutex, UcxStyleVariantStillMutuallyExcludes) {
  common::UcxStyleSpinMutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        std::lock_guard<common::UcxStyleSpinMutex> guard(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 15000);
}

TEST(Affinity, BestEffortNeverCrashes) {
  EXPECT_GE(common::hardware_core_count(), 1u);
  common::pin_current_thread(0);  // result is advisory
  common::set_current_thread_name("amtnet-test");
}
