// Unit + property tests for the lock-free queues: FIFO per producer, no
// loss, no duplication, capacity behaviour, and predicate-gated pops.
// Thread-count sweeps use parameterized tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "queues/mpmc_queue.hpp"
#include "queues/mpsc_queue.hpp"
#include "queues/spsc_ring.hpp"

namespace {

// Encode (producer, sequence) in one value so consumers can verify
// per-producer FIFO order.
std::uint64_t encode(std::uint32_t producer, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(producer) << 32) | seq;
}
std::uint32_t producer_of(std::uint64_t v) {
  return static_cast<std::uint32_t>(v >> 32);
}
std::uint32_t seq_of(std::uint64_t v) {
  return static_cast<std::uint32_t>(v);
}

}  // namespace

// ---------------- SpscRing ----------------

TEST(SpscRing, PushPopSingleThread) {
  queues::SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.empty());
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRejectsPush) {
  queues::SpscRing<int> ring(4);
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);  // capacity is rounded up to a power of two
  EXPECT_FALSE(ring.try_push(999));
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(999));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
  queues::SpscRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRing, TwoThreadsPreserveFifoAndLoseNothing) {
  queues::SpscRing<std::uint64_t> ring(64);
  constexpr std::uint32_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint32_t expected = 0;
  while (expected < kCount) {
    auto v = ring.try_pop();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------- MpscQueue ----------------

TEST(MpscQueue, PushPopSingleThread) {
  queues::MpscQueue<int> queue;
  EXPECT_TRUE(queue.looks_empty());
  queue.push(1);
  queue.push(2);
  EXPECT_FALSE(queue.looks_empty());
  EXPECT_EQ(queue.try_pop().value(), 1);
  EXPECT_EQ(queue.try_pop().value(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpscQueue, TryPopIfGatesOnPredicate) {
  queues::MpscQueue<int> queue;
  queue.push(5);
  EXPECT_FALSE(queue.try_pop_if([](const int& v) { return v > 10; }));
  auto v = queue.try_pop_if([](const int& v) { return v == 5; });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

struct MpscParam {
  int producers;
  std::uint32_t per_producer;
};

class MpscQueueProperty : public ::testing::TestWithParam<MpscParam> {};

TEST_P(MpscQueueProperty, NoLossNoDupPerProducerFifo) {
  const auto param = GetParam();
  queues::MpscQueue<std::uint64_t> queue;
  std::vector<std::thread> producers;
  for (int p = 0; p < param.producers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < param.per_producer; ++i) {
        queue.push(encode(static_cast<std::uint32_t>(p), i));
      }
    });
  }
  std::map<std::uint32_t, std::uint32_t> next_seq;
  std::uint64_t received = 0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(param.producers) * param.per_producer;
  while (received < total) {
    auto v = queue.try_pop();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    const auto producer = producer_of(*v);
    ASSERT_EQ(seq_of(*v), next_seq[producer]) << "per-producer FIFO violated";
    ++next_seq[producer];
    ++received;
  }
  for (auto& thread : producers) thread.join();
  EXPECT_FALSE(queue.try_pop().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpscQueueProperty,
    ::testing::Values(MpscParam{1, 50000}, MpscParam{2, 25000},
                      MpscParam{4, 10000}, MpscParam{8, 5000}));

// ---------------- TryMpmcQueue ----------------

TEST(TryMpmcQueue, BasicPushPop) {
  queues::TryMpmcQueue<int> queue;
  queue.push(7);
  bool contended = true;
  auto v = queue.try_pop(&contended);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(contended);
}

TEST(TryMpmcQueue, DrainBatches) {
  queues::TryMpmcQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(i);
  std::vector<int> got;
  EXPECT_EQ(queue.try_drain(4, [&](int v) { got.push_back(v); }), 4u);
  EXPECT_EQ(queue.try_drain(100, [&](int v) { got.push_back(v); }), 6u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(TryMpmcQueue, DrainWhileStopsAtPredicate) {
  queues::TryMpmcQueue<int> queue;
  for (int i = 0; i < 6; ++i) queue.push(i);
  std::vector<int> got;
  const auto n = queue.try_drain_while(
      100, [](const int& v) { return v < 3; },
      [&](int v) { got.push_back(v); });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2], 2);
  // Head now fails the predicate; remaining elements stay queued in order.
  auto v = queue.try_pop_if([](const int&) { return true; });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(TryMpmcQueue, MultiConsumerExactlyOnce) {
  queues::TryMpmcQueue<std::uint64_t> queue;
  constexpr std::uint32_t kCount = 100000;
  constexpr int kConsumers = 4;
  for (std::uint32_t i = 0; i < kCount; ++i) queue.push(i);

  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (popped.load() < kCount) {
        auto v = queue.try_pop();
        if (v) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(popped.load(), kCount);
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(kCount - 1) * kCount / 2);
}

// ---------------- MpmcQueue ----------------

TEST(MpmcQueue, PushPopSingleThread) {
  queues::MpmcQueue<int> queue(8);
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(8));  // full
  for (int i = 0; i < 8; ++i) EXPECT_EQ(queue.try_pop().value(), i);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  queues::MpmcQueue<int> queue(5);
  EXPECT_EQ(queue.capacity(), 8u);
}

struct MpmcParam {
  int producers;
  int consumers;
  std::uint32_t per_producer;
};

class MpmcQueueProperty : public ::testing::TestWithParam<MpmcParam> {};

TEST_P(MpmcQueueProperty, NoLossNoDupUnderThreads) {
  const auto param = GetParam();
  queues::MpmcQueue<std::uint64_t> queue(128);
  const std::uint64_t total =
      static_cast<std::uint64_t>(param.producers) * param.per_producer;

  std::vector<std::thread> threads;
  for (int p = 0; p < param.producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < param.per_producer; ++i) {
        while (!queue.try_push(encode(static_cast<std::uint32_t>(p), i))) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> checksum{0};
  for (int c = 0; c < param.consumers; ++c) {
    threads.emplace_back([&] {
      while (received.load() < total) {
        auto v = queue.try_pop();
        if (v) {
          checksum.fetch_add(*v + 1);  // +1 so value 0 still counts
          received.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t expected = 0;
  for (int p = 0; p < param.producers; ++p) {
    for (std::uint32_t i = 0; i < param.per_producer; ++i) {
      expected += encode(static_cast<std::uint32_t>(p), i) + 1;
    }
  }
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(checksum.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpmcQueueProperty,
    ::testing::Values(MpmcParam{1, 1, 30000}, MpmcParam{2, 2, 15000},
                      MpmcParam{4, 2, 8000}, MpmcParam{2, 4, 8000},
                      MpmcParam{4, 4, 5000}));
