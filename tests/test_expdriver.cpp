// Tests for the experiment driver (src/expdriver/) and its binding to the
// bench suite registry (bench/suites.cpp):
//   * the declarative registry matches the benchmark binaries that actually
//     exist on disk (no phantom suites, no unregistered benchmarks),
//   * the schema-versioned results JSON round-trips byte-for-byte,
//   * the baseline comparator flags real regressions and tolerates noise,
//     in the right direction per metric,
//   * the docs renderer is idempotent (byte-identical on unchanged input),
//   * the driver applies the uniform warmup/median-of-N policy,
//   * the knob registry covers every AMTNET_* environment variable read
//     anywhere in the tree (docs/tuning.md cannot silently go stale).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "expdriver/compare.hpp"
#include "expdriver/driver.hpp"
#include "expdriver/json.hpp"
#include "expdriver/registry.hpp"
#include "expdriver/render.hpp"
#include "expdriver/results.hpp"
#include "suites.hpp"

namespace {

using expdriver::CompareOptions;
using expdriver::CompareReport;
using expdriver::Json;
using expdriver::Labels;
using expdriver::MetricSpec;
using expdriver::PointKind;
using expdriver::PointSpec;
using expdriver::RunEnv;
using expdriver::Sample;
using expdriver::SuiteRegistry;
using expdriver::SuiteResult;
using expdriver::SuiteSpec;

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- suite registry vs on-disk benchmarks ---------------------------------

/// Binary names declared via amtnet_add_bench(...) in bench/CMakeLists.txt
/// that belong to the registry (figure/ablation/extra benches; standalone
/// tools like bench_profile are exempt).
std::set<std::string> registry_binaries_from_cmake() {
  const std::string cmake =
      read_all(std::string(AMTNET_REPO_ROOT) + "/bench/CMakeLists.txt");
  std::set<std::string> names;
  const std::string needle = "amtnet_add_bench(";
  for (std::size_t pos = cmake.find(needle); pos != std::string::npos;
       pos = cmake.find(needle, pos + 1)) {
    const std::size_t begin = pos + needle.size();
    const std::size_t end = cmake.find(')', begin);
    if (end == std::string::npos) break;
    const std::string name = cmake.substr(begin, end - begin);
    if (name.rfind("bench_fig", 0) == 0 ||
        name.rfind("bench_ablation_", 0) == 0 ||
        name.rfind("bench_extra_", 0) == 0 ||
        name.rfind("bench_openloop", 0) == 0 ||
        name.rfind("bench_fft", 0) == 0) {
      names.insert(name);
    }
  }
  return names;
}

TEST(SuiteRegistry, MatchesOnDiskBenchmarks) {
  bench::suites::register_all();
  const std::set<std::string> on_disk = registry_binaries_from_cmake();
  ASSERT_FALSE(on_disk.empty()) << "failed to parse bench/CMakeLists.txt";

  std::set<std::string> registered;
  for (const SuiteSpec* spec : SuiteRegistry::instance().all()) {
    EXPECT_TRUE(registered.insert(spec->binary).second)
        << "duplicate binary " << spec->binary;
    // The wrapper source must exist and actually reference the suite.
    const std::string source = read_all(std::string(AMTNET_REPO_ROOT) +
                                        "/bench/" + spec->binary + ".cpp");
    ASSERT_FALSE(source.empty()) << "missing source for " << spec->binary;
    EXPECT_NE(source.find("\"" + spec->name + "\""), std::string::npos)
        << spec->binary << ".cpp does not run suite " << spec->name;
  }
  EXPECT_EQ(registered, on_disk)
      << "suite registry and bench/CMakeLists.txt disagree";
}

TEST(SuiteRegistry, PointLabelsAreUniqueWithinEachSuite) {
  bench::suites::register_all();
  for (const SuiteSpec* spec : SuiteRegistry::instance().all()) {
    std::set<std::string> seen;
    for (const PointSpec& point : spec->points) {
      std::string key = expdriver::point_kind_name(point.kind);
      for (const auto& [k, v] : point.labels) key += "|" + k + "=" + v;
      EXPECT_TRUE(seen.insert(key).second)
          << spec->name << ": duplicate point identity " << key;
    }
  }
}

TEST(SuiteRegistry, SmokeSubsetIsNonEmptyAndRegistered) {
  bench::suites::register_all();
  const auto smoke = SuiteRegistry::instance().smoke();
  ASSERT_FALSE(smoke.empty());
  for (const SuiteSpec* spec : smoke) {
    EXPECT_NE(SuiteRegistry::instance().find(spec->name), nullptr);
  }
}

TEST(SuiteRegistry, FindUnknownReturnsNull) {
  bench::suites::register_all();
  EXPECT_EQ(SuiteRegistry::instance().find("no_such_suite"), nullptr);
}

// ---- driver policy --------------------------------------------------------

SuiteSpec stub_suite() {
  SuiteSpec spec;
  spec.name = "stub";
  spec.binary = "bench_stub";
  spec.figure = "Figure 0";
  spec.title = "stub";
  PointSpec a;
  a.kind = PointKind::kRate;
  a.labels = {{"config", "a"}};
  PointSpec b;
  b.kind = PointKind::kRate;
  b.labels = {{"config", "b"}};
  spec.points = {a, b};
  return spec;
}

TEST(Driver, WarmupRunsAreDiscardedAndMedianIsComputed) {
  const SuiteSpec spec = stub_suite();
  RunEnv env;
  env.repetitions = 3;
  env.warmup = 2;
  int calls = 0;
  // Values per call: 100, 200, ... The two warmup calls per point must not
  // contaminate the samples.
  const auto runner = [&calls](const PointSpec&, const RunEnv&) -> Sample {
    ++calls;
    return {{"rate_kps", 100.0 * calls}};
  };
  expdriver::DriveOptions options;
  options.print_csv = false;
  const SuiteResult result =
      expdriver::run_suite(spec, env, runner, options);
  EXPECT_EQ(calls, 2 * (2 + 3));
  ASSERT_EQ(result.points.size(), 2u);
  const auto* metric = result.points[0].metric("rate_kps");
  ASSERT_NE(metric, nullptr);
  // Point 0: calls 1,2 are warmup; samples are 300,400,500 -> median 400.
  EXPECT_DOUBLE_EQ(metric->median, 400.0);
  EXPECT_DOUBLE_EQ(metric->mean, 400.0);
  ASSERT_EQ(metric->samples.size(), 3u);
  // The driver stamps every point with its benchmark shape.
  EXPECT_EQ(result.points[0].labels.at("kind"), "rate");
}

TEST(Driver, EvenSampleCountMedianAveragesTheMiddlePair) {
  const SuiteSpec spec = stub_suite();
  RunEnv env;
  env.repetitions = 4;
  env.warmup = 0;
  int calls = 0;
  const double values[] = {10.0, 40.0, 20.0, 30.0};
  const auto runner = [&](const PointSpec&, const RunEnv&) -> Sample {
    return {{"rate_kps", values[calls++ % 4]}};
  };
  expdriver::DriveOptions options;
  options.print_csv = false;
  const SuiteResult result =
      expdriver::run_suite(spec, env, runner, options);
  EXPECT_DOUBLE_EQ(result.points[0].metric("rate_kps")->median, 25.0);
}

TEST(Driver, ScaledCountClampsToOne) {
  EXPECT_EQ(expdriver::scaled_count(6000, 1.0), 6000u);
  EXPECT_EQ(expdriver::scaled_count(6000, 0.5), 3000u);
  EXPECT_EQ(expdriver::scaled_count(2, 0.01), 1u);   // would round to 0
  EXPECT_EQ(expdriver::scaled_count(0, 1.0), 1u);    // degenerate base
}

// ---- metric gate policy ---------------------------------------------------

TEST(MetricPolicy, PerKindDefaultsAndOverrides) {
  SuiteSpec spec = stub_suite();
  const MetricSpec rate = expdriver::metric_spec_for(spec, "rate_kps");
  EXPECT_FALSE(rate.lower_is_better);
  EXPECT_TRUE(rate.gate);
  const MetricSpec latency = expdriver::metric_spec_for(spec, "latency_us");
  EXPECT_TRUE(latency.lower_is_better);
  EXPECT_TRUE(latency.gate);
  const MetricSpec injection =
      expdriver::metric_spec_for(spec, "injection_kps");
  EXPECT_FALSE(injection.gate);
  // Unknown (telemetry-probe) metrics are recorded but never gated.
  const MetricSpec probe = expdriver::metric_spec_for(spec, "send_retries");
  EXPECT_FALSE(probe.gate);

  MetricSpec tighter;
  tighter.name = "rate_kps";
  tighter.rel_tolerance = 0.05;
  spec.metric_overrides = {tighter};
  EXPECT_DOUBLE_EQ(expdriver::metric_spec_for(spec, "rate_kps").rel_tolerance,
                   0.05);
}

// ---- results JSON ---------------------------------------------------------

SuiteResult sample_result() {
  const SuiteSpec spec = stub_suite();
  RunEnv env;
  env.scale = 0.25;
  env.repetitions = 3;
  env.warmup = 1;
  env.workers = 2;
  int calls = 0;
  const auto runner = [&calls](const PointSpec&, const RunEnv&) -> Sample {
    ++calls;
    return {{"rate_kps", 123.456789 + calls}, {"injection_kps", 7.0 / 3.0}};
  };
  expdriver::DriveOptions options;
  options.print_csv = false;
  return expdriver::run_suite(spec, env, runner, options);
}

TEST(Results, JsonRoundTripsByteForByte) {
  const SuiteResult result = sample_result();
  const std::string text = expdriver::results_to_json(result);
  const auto parsed = expdriver::results_from_json(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->schema, expdriver::kResultSchema);
  EXPECT_EQ(parsed->suite, "stub");
  ASSERT_EQ(parsed->points.size(), result.points.size());
  EXPECT_EQ(expdriver::results_to_json(*parsed), text);
}

TEST(Results, UnknownSchemaIsRejected) {
  const SuiteResult result = sample_result();
  std::string text = expdriver::results_to_json(result);
  const std::string from = expdriver::kResultSchema;
  text.replace(text.find(from), from.size(), "amtnet-bench-v999");
  EXPECT_FALSE(expdriver::results_from_json(text).has_value());
  EXPECT_FALSE(expdriver::results_from_json("not json").has_value());
  EXPECT_FALSE(expdriver::results_from_json("{}").has_value());
}

TEST(Results, FileNameIsCanonical) {
  EXPECT_EQ(expdriver::results_file_name("fig1_msgrate_8b"),
            "BENCH_fig1_msgrate_8b.json");
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-3],"b":{"nested":"va\"lue"},"c":true,"d":null})";
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("[1,2,]").has_value());
  EXPECT_FALSE(Json::parse("[1] trailing").has_value());
}

// ---- comparator -----------------------------------------------------------

SuiteResult result_with(const std::string& metric, double median,
                        bool latency_kind = false) {
  SuiteResult result;
  result.suite = "stub";
  result.figure = "Figure 0";
  expdriver::PointResult point;
  point.labels = {{"config", "a"},
                  {"kind", latency_kind ? "latency" : "rate"}};
  expdriver::MetricResult value;
  value.median = median;
  value.mean = median;
  value.samples = {median};
  point.metrics.emplace_back(metric, value);
  result.points.push_back(point);
  return result;
}

TEST(Compare, FlagsThirtyPercentRateDrop) {
  const SuiteResult baseline = result_with("rate_kps", 100.0);
  const SuiteResult regressed = result_with("rate_kps", 65.0);
  const CompareReport report =
      expdriver::compare_results(nullptr, baseline, regressed);
  EXPECT_TRUE(report.failed());
  ASSERT_FALSE(report.regressions.empty());
  EXPECT_NE(report.regressions[0].find("rate_kps"), std::string::npos);
}

TEST(Compare, PassesWithinToleranceJitter) {
  const SuiteResult baseline = result_with("rate_kps", 100.0);
  const CompareReport worse =
      expdriver::compare_results(nullptr, baseline, result_with("rate_kps", 97.0));
  EXPECT_FALSE(worse.failed());
  const CompareReport better =
      expdriver::compare_results(nullptr, baseline, result_with("rate_kps", 103.0));
  EXPECT_FALSE(better.failed());
}

TEST(Compare, DirectionAwareForLatency) {
  const SuiteResult baseline = result_with("latency_us", 100.0, true);
  // Latency *increase* beyond tolerance regresses...
  EXPECT_TRUE(expdriver::compare_results(
                  nullptr, baseline, result_with("latency_us", 140.0, true))
                  .failed());
  // ...a large *decrease* is an improvement note, never a failure.
  const CompareReport faster = expdriver::compare_results(
      nullptr, baseline, result_with("latency_us", 50.0, true));
  EXPECT_FALSE(faster.failed());
  EXPECT_FALSE(faster.notes.empty());
}

TEST(Compare, ToleranceScaleWidensTheBand) {
  const SuiteResult baseline = result_with("rate_kps", 100.0);
  const SuiteResult regressed = result_with("rate_kps", 55.0);
  EXPECT_TRUE(
      expdriver::compare_results(nullptr, baseline, regressed).failed());
  CompareOptions wide;
  wide.tolerance_scale = 2.0;  // 30% band -> 60%
  EXPECT_FALSE(
      expdriver::compare_results(nullptr, baseline, regressed, wide).failed());
}

TEST(Compare, MissingPointAndMissingMetricAreRegressions) {
  const SuiteResult baseline = result_with("rate_kps", 100.0);
  SuiteResult empty;
  empty.suite = "stub";
  EXPECT_TRUE(expdriver::compare_results(nullptr, baseline, empty).failed());

  SuiteResult no_metric = result_with("other_metric", 5.0);
  EXPECT_TRUE(
      expdriver::compare_results(nullptr, baseline, no_metric).failed());
}

TEST(Compare, UngatedMetricsNeverFail) {
  const SuiteResult baseline = result_with("injection_kps", 100.0);
  const SuiteResult regressed = result_with("injection_kps", 10.0);
  EXPECT_FALSE(
      expdriver::compare_results(nullptr, baseline, regressed).failed());
}

TEST(Compare, EnvironmentMismatchIsAHardFailure) {
  const SuiteResult baseline = result_with("rate_kps", 100.0);
  SuiteResult other = result_with("rate_kps", 100.0);
  other.env.scale = 0.5;
  EXPECT_TRUE(expdriver::compare_results(nullptr, baseline, other).failed());
  SuiteResult other_suite = result_with("rate_kps", 100.0);
  other_suite.suite = "different";
  EXPECT_TRUE(
      expdriver::compare_results(nullptr, baseline, other_suite).failed());
}

// ---- docs renderer --------------------------------------------------------

TEST(Render, FiguresMdIsDeterministicAndIdempotent) {
  bench::suites::register_all();
  const auto suites = SuiteRegistry::instance().all();
  expdriver::ResultsBySuite results;
  SuiteResult r = sample_result();
  r.suite = suites[0]->name;
  results.emplace(r.suite, r);

  const std::string once = expdriver::render_figures_md(suites, results);
  const std::string twice = expdriver::render_figures_md(suites, results);
  EXPECT_EQ(once, twice);
  // Rendering from the *parsed* serialization must also be identical —
  // otherwise `--render` after `--run` vs after a fresh checkout differ.
  const auto reparsed =
      expdriver::results_from_json(expdriver::results_to_json(r));
  ASSERT_TRUE(reparsed.has_value());
  expdriver::ResultsBySuite results2;
  results2.emplace(reparsed->suite, *reparsed);
  EXPECT_EQ(expdriver::render_figures_md(suites, results2), once);
  // Every suite appears in the map table.
  for (const SuiteSpec* spec : suites) {
    EXPECT_NE(once.find(spec->name), std::string::npos) << spec->name;
  }
}

TEST(Render, ReplaceBetweenKeepsMarkersAndRejectsMissingOnes) {
  const std::string content = "head\nBEGIN\nold\nEND\ntail\n";
  const auto replaced =
      expdriver::replace_between(content, "BEGIN", "END", "new\n");
  ASSERT_TRUE(replaced.has_value());
  EXPECT_EQ(*replaced, "head\nBEGIN\nnew\nEND\ntail\n");
  // Idempotent: replacing again with the same payload changes nothing.
  EXPECT_EQ(expdriver::replace_between(*replaced, "BEGIN", "END", "new\n"),
            *replaced);
  EXPECT_FALSE(
      expdriver::replace_between(content, "MISSING", "END", "x").has_value());
  EXPECT_FALSE(
      expdriver::replace_between(content, "END", "BEGIN", "x").has_value());
}

TEST(Render, CommittedDocsCarryTheMarkers) {
  const std::string root = AMTNET_REPO_ROOT;
  const std::string experiments = read_all(root + "/EXPERIMENTS.md");
  EXPECT_NE(experiments.find(expdriver::kExperimentsBegin),
            std::string::npos);
  EXPECT_NE(experiments.find(expdriver::kExperimentsEnd), std::string::npos);
  const std::string tuning = read_all(root + "/docs/tuning.md");
  EXPECT_NE(tuning.find(expdriver::kKnobsBegin), std::string::npos);
  EXPECT_NE(tuning.find(expdriver::kKnobsEnd), std::string::npos);
}

// ---- knob registry vs the tree --------------------------------------------

TEST(KnobRegistry, CoversEveryEnvironmentVariableReadInTheTree) {
  std::set<std::string> known;
  for (const common::Knob& knob : common::knob_registry()) {
    if (knob.kind == common::Knob::Kind::kEnv) known.insert(knob.name);
  }
  ASSERT_FALSE(known.empty());

  // Scan every source file for getenv("AMTNET_...") reads.
  std::set<std::string> used;
  const std::string root = AMTNET_REPO_ROOT;
  for (const char* dir : {"/src", "/bench", "/tools"}) {
    const std::string base = root + dir;
    if (!std::filesystem::exists(base)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      const std::string path = entry.path().string();
      if (path.size() < 4) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string text = read_all(path);
      const std::string needle = "getenv(\"AMTNET_";
      for (std::size_t pos = text.find(needle); pos != std::string::npos;
           pos = text.find(needle, pos + 1)) {
        const std::size_t begin = pos + std::string("getenv(\"").size();
        const std::size_t end = text.find('"', begin);
        if (end != std::string::npos) used.insert(text.substr(begin, end - begin));
      }
      // Composite reads (env_double("AMTNET_FAULT_" + name)) are listed in
      // the registry individually; cover the direct string literals here.
    }
  }
  ASSERT_FALSE(used.empty());
  std::vector<std::string> missing;
  for (const std::string& name : used) {
    if (known.count(name) == 0) missing.push_back(name);
  }
  EXPECT_TRUE(missing.empty())
      << "environment variables read in the tree but absent from "
         "common::knob_registry() (docs/tuning.md would go stale): "
      << [&] {
           std::string joined;
           for (const auto& name : missing) joined += name + " ";
           return joined;
         }();
}

TEST(KnobRegistry, NamesAreUniqueAndDescribed) {
  std::set<std::string> seen;
  for (const common::Knob& knob : common::knob_registry()) {
    EXPECT_TRUE(seen.insert(knob.name).second)
        << "duplicate knob " << knob.name;
    EXPECT_FALSE(knob.description.empty()) << knob.name;
  }
}

}  // namespace
