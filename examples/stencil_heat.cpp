// 1-D heat equation with ghost-zone exchange over actions — the classic
// domain-decomposition workload the paper's introduction motivates,
// expressed in AMT style: each locality owns a slab of the rod, exchanges
// boundary cells with its neighbours through actions each step, and the
// runtime overlaps communication with the interior update.
//
// Validates itself against a serial solve of the same discretisation.
//
// Usage: stencil_heat [parcelport=lci_psr_cq_pin_i] [localities=4]
//                     [cells=4096] [steps=200]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "stack/stack.hpp"

namespace {

constexpr double kAlpha = 0.4;  // stable for alpha <= 0.5

struct Slab {
  std::vector<double> u;  // my cells
  // Ghost values per side, double-buffered by step parity: a neighbour can
  // run at most one step ahead (its step s+1 needs our step s boundary), so
  // two slots suffice. seq_* counts arrivals per side; the value for step s
  // is readable once seq >= s + 1 and lives in slot s % 2.
  double ghost_left[2] = {0.0, 0.0};
  double ghost_right[2] = {0.0, 0.0};
  std::atomic<std::uint64_t> seq_left{0};
  std::atomic<std::uint64_t> seq_right{0};
};

Slab slabs[64];
std::atomic<int> finished_localities{0};

void recv_ghost(std::uint32_t step, std::uint8_t from_left, double value) {
  Slab& slab = slabs[amt::here().rank()];
  if (from_left) {
    slab.ghost_left[step % 2] = value;
    slab.seq_left.fetch_add(1, std::memory_order_release);
  } else {
    slab.ghost_right[step % 2] = value;
    slab.seq_right.fetch_add(1, std::memory_order_release);
  }
}

void signal_done() { finished_localities.fetch_add(1); }

void run_slab(std::uint32_t steps) {
  amt::Locality& here = amt::here();
  const amt::Rank rank = here.rank();
  const amt::Rank nloc = here.num_localities();
  Slab& slab = slabs[rank];

  for (std::uint32_t step = 0; step < steps; ++step) {
    // Send boundary values to neighbours; fixed 0-temperature at the ends.
    if (rank > 0) {
      here.apply<&recv_ghost>(rank - 1, step, std::uint8_t{0},
                              slab.u.front());
    }
    if (rank + 1 < nloc) {
      here.apply<&recv_ghost>(rank + 1, step, std::uint8_t{1},
                              slab.u.back());
    }
    here.scheduler().wait_until([&] {
      const std::uint64_t want = step + 1;
      return (rank == 0 ||
              slab.seq_left.load(std::memory_order_acquire) >= want) &&
             (rank + 1 == nloc ||
              slab.seq_right.load(std::memory_order_acquire) >= want);
    });

    const double left = rank > 0 ? slab.ghost_left[step % 2] : 0.0;
    const double right = rank + 1 < nloc ? slab.ghost_right[step % 2] : 0.0;
    std::vector<double> next(slab.u.size());
    for (std::size_t i = 0; i < slab.u.size(); ++i) {
      const double ul = i == 0 ? left : slab.u[i - 1];
      const double ur = i + 1 == slab.u.size() ? right : slab.u[i + 1];
      next[i] = slab.u[i] + kAlpha * (ul - 2 * slab.u[i] + ur);
    }
    slab.u.swap(next);
  }
  here.apply<&signal_done>(0);
}

std::vector<double> initial_rod(std::size_t cells) {
  std::vector<double> u(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    u[i] = std::sin(3.14159265358979 * static_cast<double>(i) /
                    static_cast<double>(cells - 1));
  }
  return u;
}

std::vector<double> serial_solve(std::size_t cells, std::uint32_t steps) {
  auto u = initial_rod(cells);
  for (std::uint32_t step = 0; step < steps; ++step) {
    std::vector<double> next(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      const double ul = i == 0 ? 0.0 : u[i - 1];
      const double ur = i + 1 == cells ? 0.0 : u[i + 1];
      next[i] = u[i] + kAlpha * (ul - 2 * u[i] + ur);
    }
    u.swap(next);
  }
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  amtnet::StackOptions options;
  options.num_localities = 4;
  if (argc > 1) options.parcelport = argv[1];
  if (argc > 2) options.num_localities =
      static_cast<amt::Rank>(std::stoul(argv[2]));
  const std::size_t cells = argc > 3 ? std::stoul(argv[3]) : 4096;
  const std::uint32_t steps =
      argc > 4 ? static_cast<std::uint32_t>(std::stoul(argv[4])) : 200;
  const amt::Rank nloc = options.num_localities;

  std::printf("heat: %zu cells, %u steps, %u localities, %s\n", cells, steps,
              nloc, options.parcelport.c_str());

  auto runtime = amtnet::make_runtime(options);

  // Decompose the rod into contiguous slabs.
  const auto full = initial_rod(cells);
  for (amt::Rank r = 0; r < nloc; ++r) {
    const std::size_t lo = cells * r / nloc;
    const std::size_t hi = cells * (r + 1) / nloc;
    slabs[r].u.assign(full.begin() + static_cast<std::ptrdiff_t>(lo),
                      full.begin() + static_cast<std::ptrdiff_t>(hi));
    slabs[r].seq_left.store(0);
    slabs[r].seq_right.store(0);
  }

  finished_localities.store(0);
  for (amt::Rank r = 0; r < nloc; ++r) {
    runtime->locality(r).spawn([steps] { run_slab(steps); });
  }
  runtime->locality(0).scheduler().wait_until(
      [&] { return finished_localities.load() == static_cast<int>(nloc); });

  // Stitch the distributed result together and compare with serial.
  const auto expected = serial_solve(cells, steps);
  double max_err = 0.0;
  std::size_t offset = 0;
  for (amt::Rank r = 0; r < nloc; ++r) {
    for (double v : slabs[r].u) {
      max_err = std::max(max_err, std::abs(v - expected[offset++]));
    }
  }
  runtime->stop();

  std::printf("max |distributed - serial| = %.3e %s\n", max_err,
              max_err < 1e-12 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-12 ? 0 : 1;
}
