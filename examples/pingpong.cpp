// Ping-pong latency demo across parcelport configurations.
//
// Runs a small ping-pong exchange (one chain, like the paper's latency
// microbenchmark with window size 1) over several Table-1 configurations
// and prints the measured one-way latency per message size — a minimal,
// human-readable version of what bench_fig7_latency_size measures in full.
//
// Usage: pingpong [rounds=200]
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "stack/stack.hpp"

namespace {

std::atomic<int> remaining{0};
std::atomic<bool> done{false};

void pong(std::vector<std::uint8_t> payload);

void ping(std::vector<std::uint8_t> payload) {
  // Runs on locality 1: bounce the payload back.
  amt::here().apply<&pong>(0, std::move(payload));
}

void pong(std::vector<std::uint8_t> payload) {
  // Runs on locality 0: keep the rally going or finish.
  if (remaining.fetch_sub(1) > 1) {
    amt::here().apply<&ping>(1, std::move(payload));
  } else {
    done.store(true);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::stoi(argv[1]) : 200;
  std::printf("%-20s %10s %14s\n", "config", "size(B)", "latency(us)");

  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    amtnet::StackOptions options;
    options.parcelport = config;
    options.num_localities = 2;
    options.threads_per_locality = 2;
    auto runtime = amtnet::make_runtime(options);

    for (const std::size_t size : {8u, 1024u, 16384u}) {
      remaining.store(rounds);
      done.store(false);
      common::Timer timer;
      runtime->locality(0).spawn([size] {
        amt::here().apply<&ping>(1, std::vector<std::uint8_t>(size, 7));
      });
      runtime->locality(0).scheduler().wait_until(
          [] { return done.load(); });
      const double one_way_us =
          timer.elapsed_us() / (2.0 * rounds);
      std::printf("%-20s %10zu %14.2f\n", config, size, one_way_us);
    }
    runtime->stop();
  }
  return 0;
}
