// Ping-pong latency demo across parcelport configurations.
//
// Runs a small ping-pong exchange (one chain, like the paper's latency
// microbenchmark with window size 1) over several Table-1 configurations
// and prints the measured one-way latency per message size — a minimal,
// human-readable version of what bench_fig7_latency_size measures in full.
//
// Usage: pingpong [rounds=200]
//
// Under `amtnet_launch -n 2 -- pingpong` (shm backend, one process per
// locality) the program runs SPMD: rank 0 drives the rally over one
// configuration while rank 1 serves pings until told to stop.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "stack/stack.hpp"

namespace {

std::atomic<int> remaining{0};
std::atomic<bool> done{false};
std::atomic<bool> stop_serving{false};

void pong(std::vector<std::uint8_t> payload);

void ping(std::vector<std::uint8_t> payload) {
  // Runs on locality 1: bounce the payload back.
  amt::here().apply<&pong>(0, std::move(payload));
}

void pong(std::vector<std::uint8_t> payload) {
  // Runs on locality 0: keep the rally going or finish.
  if (remaining.fetch_sub(1) > 1) {
    amt::here().apply<&ping>(1, std::move(payload));
  } else {
    done.store(true);
  }
}

void request_stop() { stop_serving.store(true); }

/// One rank's role of the rally, for multi-process launches. Action ids
/// are minted on first use per process, so every rank registers them in
/// the same order before any traffic flows.
int run_spmd(int rank, int rounds) {
  (void)amt::action_id<&ping>();
  (void)amt::action_id<&pong>();
  (void)amt::action_id<&request_stop>();
  amtnet::StackOptions options;
  options.parcelport = "lci_psr_cq_pin_i";
  options.num_localities = 2;  // AMTNET_SHM_RANKS (from the launcher) wins
  options.threads_per_locality = 2;
  auto runtime = amtnet::make_runtime(options);
  amt::Locality& self = runtime->local_locality();

  if (rank == 0) {
    std::printf("%-20s %10s %14s\n", "config", "size(B)", "latency(us)");
    for (const std::size_t size : {8u, 1024u, 16384u}) {
      remaining.store(rounds);
      done.store(false);
      common::Timer timer;
      self.spawn([size] {
        amt::here().apply<&ping>(1, std::vector<std::uint8_t>(size, 7));
      });
      self.scheduler().wait_until([] { return done.load(); });
      std::printf("%-20s %10zu %14.2f\n", "lci_psr_cq_pin_i (shm)", size,
                  timer.elapsed_us() / (2.0 * rounds));
    }
    for (amt::Rank r = 1; r < self.num_localities(); ++r) {
      self.spawn([r] { amt::here().apply<&request_stop>(r); });
    }
    // Keep progressing briefly so the stop parcels drain before teardown.
    const common::Nanos deadline = common::now_ns() + 200'000'000;
    self.scheduler().wait_until(
        [deadline] { return common::now_ns() > deadline; });
  } else {
    self.scheduler().wait_until([] { return stop_serving.load(); });
  }
  runtime->stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::stoi(argv[1]) : 200;
  // Launched as one-process-per-locality (amtnet_launch sets the rank)?
  if (const char* rank_env = std::getenv("AMTNET_SHM_RANK")) {
    return run_spmd(std::atoi(rank_env), rounds);
  }
  std::printf("%-20s %10s %14s\n", "config", "size(B)", "latency(us)");

  for (const char* config :
       {"mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"}) {
    amtnet::StackOptions options;
    options.parcelport = config;
    options.num_localities = 2;
    options.threads_per_locality = 2;
    auto runtime = amtnet::make_runtime(options);

    for (const std::size_t size : {8u, 1024u, 16384u}) {
      remaining.store(rounds);
      done.store(false);
      common::Timer timer;
      runtime->locality(0).spawn([size] {
        amt::here().apply<&ping>(1, std::vector<std::uint8_t>(size, 7));
      });
      runtime->locality(0).scheduler().wait_until(
          [] { return done.load(); });
      const double one_way_us =
          timer.elapsed_us() / (2.0 * rounds);
      std::printf("%-20s %10zu %14.2f\n", config, size, one_way_us);
    }
    runtime->stop();
  }
  return 0;
}
