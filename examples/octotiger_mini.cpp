// The Octo-Tiger proxy as a standalone application: an FMM-style octree
// simulation (ghost exchange + multipole sweeps) distributed over localities
// by space-filling curve, validated bit-exactly against the serial
// reference — the workload behind the paper's Figures 10 and 11.
//
// Usage: octotiger_mini [parcelport=lci_psr_cq_pin_i] [localities=2]
//                       [level=3] [steps=5]
#include <cstdio>
#include <string>

#include "octoproxy/simulation.hpp"
#include "stack/stack.hpp"

int main(int argc, char** argv) {
  amtnet::StackOptions options;
  options.platform = "expanse";  // HDR-InfiniBand-like latency/bandwidth
  if (argc > 1) options.parcelport = argv[1];
  if (argc > 2) options.num_localities =
      static_cast<amt::Rank>(std::stoul(argv[2]));

  octo::Params params;
  if (argc > 3) params.level = std::stoi(argv[3]);
  if (argc > 4) params.steps = std::stoi(argv[4]);

  std::printf(
      "octotiger_mini: level=%d (%llu leaves of %d^3 cells), steps=%d, "
      "%u localities, parcelport=%s\n",
      params.level, 1ull << (3 * params.level), params.nx, params.steps,
      options.num_localities, options.parcelport.c_str());

  auto runtime = amtnet::make_runtime(options);
  const auto report = octo::run_simulation(*runtime, params);
  runtime->stop();

  std::printf("steps/s            : %.3f\n", report.steps_per_second);
  std::printf("total time         : %.3f s\n", report.seconds);
  std::printf("mass conservation  : initial=%.6f final=%.6f (drift %.2e)\n",
              report.initial_mass, report.final_mass,
              std::abs(report.final_mass - report.initial_mass) /
                  report.initial_mass);

  const auto expected = octo::run_reference(params);
  const bool exact = expected.checksum == report.checksum;
  std::printf("vs serial reference: checksum %016llx %s\n",
              static_cast<unsigned long long>(report.checksum),
              exact ? "(bit-exact match)" : "(MISMATCH!)");
  return exact ? 0 : 1;
}
