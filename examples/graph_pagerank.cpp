// Distributed PageRank over actions — the irregular, fine-grained
// communication pattern the paper's introduction motivates (graph analytics
// was LCI's first application domain). Vertices are block-partitioned;
// each iteration ships per-destination batches of (vertex, contribution)
// pairs as actions, then synchronises with the action-based collectives.
//
// Validates against a serial PageRank of the same graph.
//
// Usage: graph_pagerank [parcelport=lci_psr_cq_pin_i] [localities=4]
//                       [vertices=2000] [iters=10]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "amt/collectives.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "stack/stack.hpp"

namespace {

constexpr double kDamping = 0.85;

struct Partition {
  std::size_t lo = 0, hi = 0;           // my vertex range
  std::vector<std::vector<std::uint32_t>> out_edges;  // per local vertex
  std::vector<double> rank;             // per local vertex
  std::vector<double> incoming;         // accumulated contributions
  common::SpinMutex incoming_mutex;     // batches may be applied concurrently
  // One batch per (iteration, source locality); counted to detect
  // iteration completion.
  std::atomic<std::uint64_t> batches_received{0};
};

Partition parts[64];

/// Deterministic skewed random graph: vertex v gets 1..16 out-edges, biased
/// toward low-numbered vertices (hubs) — power-law-ish in-degree.
std::vector<std::vector<std::uint32_t>> build_graph(std::size_t n,
                                                    std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> edges(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t degree = 1 + rng.next_below(16);
    for (std::size_t e = 0; e < degree; ++e) {
      // Square the uniform draw to bias toward hubs.
      const double u = rng.next_double();
      edges[v].push_back(
          static_cast<std::uint32_t>(u * u * static_cast<double>(n)));
    }
  }
  return edges;
}

void recv_contributions(std::vector<std::uint32_t> vertices,
                        std::vector<double> values) {
  Partition& part = parts[amt::here().rank()];
  {
    // Batches from different peers may be handled on different workers
    // concurrently; the accumulation needs a lock.
    std::lock_guard<common::SpinMutex> guard(part.incoming_mutex);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      part.incoming[vertices[i] - part.lo] += values[i];
    }
  }
  part.batches_received.fetch_add(1, std::memory_order_release);
}

void run_rank(amt::CollectiveGroup& group, std::uint32_t iters,
              std::size_t n_vertices) {
  amt::Locality& here = amt::here();
  const amt::Rank rank = here.rank();
  const amt::Rank nloc = here.num_localities();
  Partition& part = parts[rank];
  const auto owner = [&](std::uint32_t v) {
    return static_cast<amt::Rank>(static_cast<std::uint64_t>(v) * nloc /
                                  n_vertices);
  };

  for (std::uint32_t iter = 0; iter < iters; ++iter) {
    // Scatter contributions, batched per destination locality.
    std::vector<std::vector<std::uint32_t>> batch_v(nloc);
    std::vector<std::vector<double>> batch_c(nloc);
    for (std::size_t v = 0; v < part.out_edges.size(); ++v) {
      const auto& outs = part.out_edges[v];
      if (outs.empty()) continue;
      const double share =
          part.rank[v] / static_cast<double>(outs.size());
      for (const std::uint32_t dst_vertex : outs) {
        const amt::Rank dst = owner(dst_vertex);
        batch_v[dst].push_back(dst_vertex);
        batch_c[dst].push_back(share);
      }
    }
    for (amt::Rank dst = 0; dst < nloc; ++dst) {
      // Send even empty batches: the receiver counts one per peer.
      here.apply<&recv_contributions>(dst, std::move(batch_v[dst]),
                                      std::move(batch_c[dst]));
    }

    // Wait for every peer's batch for this iteration (cumulative count).
    const std::uint64_t want =
        static_cast<std::uint64_t>(iter + 1) * nloc;
    here.scheduler().wait_until([&] {
      return part.batches_received.load(std::memory_order_acquire) >= want;
    });

    for (std::size_t v = 0; v < part.rank.size(); ++v) {
      part.rank[v] = (1.0 - kDamping) + kDamping * part.incoming[v];
      part.incoming[v] = 0.0;
    }
    // Iteration barrier: nobody starts scattering iteration i+1 until all
    // ranks consumed iteration i (keeps `incoming` unambiguous).
    group.barrier();
  }
}

std::vector<double> serial_pagerank(
    const std::vector<std::vector<std::uint32_t>>& edges,
    std::uint32_t iters) {
  const std::size_t n = edges.size();
  std::vector<double> rank(n, 1.0), incoming(n, 0.0);
  for (std::uint32_t iter = 0; iter < iters; ++iter) {
    for (std::size_t v = 0; v < n; ++v) {
      if (edges[v].empty()) continue;
      const double share = rank[v] / static_cast<double>(edges[v].size());
      for (const std::uint32_t dst : edges[v]) incoming[dst] += share;
    }
    for (std::size_t v = 0; v < n; ++v) {
      rank[v] = (1.0 - kDamping) + kDamping * incoming[v];
      incoming[v] = 0.0;
    }
  }
  return rank;
}

}  // namespace

int main(int argc, char** argv) {
  amtnet::StackOptions options;
  options.num_localities = 4;
  if (argc > 1) options.parcelport = argv[1];
  if (argc > 2) options.num_localities =
      static_cast<amt::Rank>(std::stoul(argv[2]));
  const std::size_t n_vertices = argc > 3 ? std::stoul(argv[3]) : 2000;
  const std::uint32_t iters =
      argc > 4 ? static_cast<std::uint32_t>(std::stoul(argv[4])) : 10;
  const amt::Rank nloc = options.num_localities;

  std::printf("pagerank: %zu vertices, %u iterations, %u localities, %s\n",
              n_vertices, iters, nloc, options.parcelport.c_str());

  const auto edges = build_graph(n_vertices, 2026);
  auto runtime = amtnet::make_runtime(options);
  amt::CollectiveGroup group(*runtime);

  for (amt::Rank r = 0; r < nloc; ++r) {
    Partition& part = parts[r];
    // Must be the exact inverse of owner(): the first vertex v with
    // v * nloc / n_vertices == r is ceil(r * n_vertices / nloc).
    part.lo = (static_cast<std::size_t>(r) * n_vertices + nloc - 1) / nloc;
    part.hi =
        (static_cast<std::size_t>(r + 1) * n_vertices + nloc - 1) / nloc;
    part.out_edges.assign(edges.begin() + static_cast<std::ptrdiff_t>(part.lo),
                          edges.begin() + static_cast<std::ptrdiff_t>(part.hi));
    part.rank.assign(part.hi - part.lo, 1.0);
    part.incoming.assign(part.hi - part.lo, 0.0);
    part.batches_received.store(0);
  }

  amt::Latch done(nloc);
  for (amt::Rank r = 0; r < nloc; ++r) {
    runtime->locality(r).spawn([&group, iters, n_vertices, &done] {
      run_rank(group, iters, n_vertices);
      done.count_down();
    });
  }
  done.wait(runtime->locality(0).scheduler());

  const auto expected = serial_pagerank(edges, iters);
  double max_err = 0.0, total = 0.0;
  for (amt::Rank r = 0; r < nloc; ++r) {
    for (std::size_t v = 0; v < parts[r].rank.size(); ++v) {
      max_err = std::max(max_err,
                         std::abs(parts[r].rank[v] -
                                  expected[parts[r].lo + v]));
      total += parts[r].rank[v];
    }
  }
  runtime->stop();

  std::printf("sum of ranks = %.3f, max |distributed - serial| = %.3e %s\n",
              total, max_err, max_err < 1e-9 ? "(OK)" : "(MISMATCH!)");
  return max_err < 1e-9 ? 0 : 1;
}
