// Quickstart: the smallest complete program on the stack.
//
// Builds a two-locality runtime over the simulated fabric with the LCI
// parcelport (the paper's default lci_psr_cq_pin_i), registers a couple of
// actions, and shows the three core idioms: fire-and-forget apply<>, async<>
// with a future result, and a large argument travelling the zero-copy path.
//
// Usage: quickstart [parcelport=lci_psr_cq_pin_i] [localities=2]
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "stack/stack.hpp"

namespace {

// Any free function is an action; the runtime derives serialization from
// the signature. Actions run on the destination locality.
void say_hello(std::string who) {
  std::printf("[locality %u] hello from %s!\n", amt::here().rank(),
              who.c_str());
}

int add(int a, int b) { return a + b; }

double norm2(std::vector<double> values) {  // 64 KiB arg -> zero-copy chunk
  double sum = 0;
  for (double v : values) sum += v * v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  amtnet::StackOptions options;
  if (argc > 1) options.parcelport = argv[1];
  if (argc > 2) options.num_localities =
      static_cast<amt::Rank>(std::stoul(argv[2]));
  std::printf("parcelport=%s localities=%u\n", options.parcelport.c_str(),
              options.num_localities);

  auto runtime = amtnet::make_runtime(options);

  runtime->run_on_root([&] {
    amt::Locality& here = amt::here();

    // 1. Fire-and-forget: runs say_hello on locality 1.
    here.apply<&say_hello>(1, std::string("locality 0"));

    // 2. Async with result: a future that a waiting task can get().
    auto sum = here.async<&add>(1, 40, 2);
    std::printf("40 + 2 computed on locality 1 = %d\n", sum.get());

    // 3. Large argument: 8192 doubles (64 KiB) exceed the zero-copy
    //    serialization threshold (8 KiB), so the vector travels as a
    //    zero-copy chunk after the header message.
    std::vector<double> data(8192, 0.5);
    auto result = here.async<&norm2>(1, std::move(data));
    std::printf("norm2 of 64 KiB vector = %.1f\n", result.get());
  });

  runtime->stop();
  std::printf("done.\n");
  return 0;
}
