// Deterministic fault injection for the simulated fabric.
//
// The paper's parcelport is built around adversarial network behaviour —
// explicit-retry sends, RNR back-pressure, out-of-order multi-rail delivery
// (§3.2, §4) — but a simulator that never misbehaves cannot exercise those
// paths. This config seeds a reproducible chaos layer inside the NIC model:
//
//   drop / duplicate   two-sided datagrams (Packet::Kind::kSend) are lost or
//                      delivered twice. One-sided RDMA writes/reads are never
//                      dropped: real RC InfiniBand retransmits them below
//                      software, and no software-visible detection point
//                      exists for a silently missing write, so dropping them
//                      could only model an unrecoverable link failure.
//   corrupt            a single bit flip in a packet payload (any kind with
//                      a payload, i.e. sends AND RDMA writes — bit rot in
//                      flight is detectable by software via checksums).
//   delay              a latency spike added to any packet; magnitudes are
//                      exponentially distributed with mean delay_us (heavy
//                      tails, like real network hiccups), drawn from the
//                      same deterministic stream as the decision itself.
//   brownout           post_send returns Status::kRetry for a window of
//                      posts (NIC send-queue stall / adapter brownout).
//   rnr_storm          the receiving NIC refuses buffer-consuming deliveries
//                      for a window of poll_rx calls (RNR NAK storm).
//
// All decisions are drawn from counter-indexed splitmix64 streams keyed by
// `seed`, so a run's fault pattern is a pure function of (seed, per-NIC
// operation order) and any failure reproduces from its logged seed. Every
// injected fault is counted in telemetry (fabric/nic<rank>/faults_*).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fabric {

struct FaultConfig {
  double drop = 0.0;       // P(two-sided datagram silently lost)
  double duplicate = 0.0;  // P(two-sided datagram delivered twice)
  double corrupt = 0.0;    // P(single payload bit flip)
  std::size_t corrupt_min_size = 0;  // only payloads >= this many bytes
  double delay = 0.0;      // P(latency spike on a packet)
  double delay_us = 50.0;  // mean spike magnitude (exponential tail)
  double brownout = 0.0;   // P(a post starts a brownout window)
  std::uint64_t brownout_posts = 64;  // window length, in posts
  double rnr_storm = 0.0;  // P(a poll_rx call starts an RNR storm)
  std::uint64_t rnr_storm_polls = 32;  // window length, in poll_rx calls
  std::uint64_t seed = 0x6b73a1f29d04c857ULL;
  /// Force the end-to-end integrity machinery (CRC trailers, acks,
  /// retransmit state) on even with all probabilities at zero — for
  /// overhead measurement and tests of the clean-path protocol.
  bool integrity = false;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || corrupt > 0.0 || delay > 0.0 ||
           brownout > 0.0 || rnr_storm > 0.0;
  }
  /// Whether the software stack should run its integrity/retransmit layer.
  bool integrity_on() const { return integrity || any(); }

  std::string describe() const;
};

/// Overrides fields from AMTNET_FAULT_* environment variables (unset
/// variables leave the passed-in value untouched):
///   AMTNET_FAULT_DROP, AMTNET_FAULT_DUP, AMTNET_FAULT_CORRUPT,
///   AMTNET_FAULT_DELAY, AMTNET_FAULT_BROWNOUT, AMTNET_FAULT_RNR
///       — probabilities in [0, 1]
///   AMTNET_FAULT_DELAY_US          — latency-spike size (microseconds)
///   AMTNET_FAULT_BROWNOUT_POSTS    — brownout window length (posts)
///   AMTNET_FAULT_RNR_POLLS         — RNR storm length (poll_rx calls)
///   AMTNET_FAULT_CORRUPT_MIN       — min payload size eligible for bit flips
///   AMTNET_FAULT_SEED              — the deterministic seed
///   AMTNET_FAULT_INTEGRITY         — 1: force integrity machinery on
void apply_fault_env(FaultConfig& config);

}  // namespace fabric
