// Shared-receive-queue buffer pool. A fixed set of fixed-size buffers is
// pre-allocated at NIC construction (modelling pre-posted, registered receive
// buffers). Acquire/release go through a lock-free MPMC free-list so any
// worker thread can recycle buffers without a global lock.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "queues/mpmc_queue.hpp"

namespace fabric {

class SrqPool;

/// Owning handle to one SRQ buffer; returns it to the pool on destruction.
/// `size` is the valid payload length, `capacity()` the buffer size.
class RecvBuffer {
 public:
  RecvBuffer() = default;
  RecvBuffer(SrqPool* pool, std::byte* data, std::size_t size)
      : pool_(pool), data_(data), size_(size) {}

  RecvBuffer(RecvBuffer&& other) noexcept { move_from(other); }
  RecvBuffer& operator=(RecvBuffer&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  RecvBuffer(const RecvBuffer&) = delete;
  RecvBuffer& operator=(const RecvBuffer&) = delete;
  ~RecvBuffer() { release(); }

  std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  void release();

 private:
  void move_from(RecvBuffer& other) {
    pool_ = other.pool_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  SrqPool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class SrqPool {
 public:
  SrqPool(std::size_t depth, std::size_t buffer_size)
      : buffer_size_(buffer_size),
        storage_(depth * buffer_size),
        free_list_(depth) {
    for (std::size_t i = 0; i < depth; ++i) {
      const bool pushed = free_list_.try_push(storage_.data() + i * buffer_size);
      assert(pushed);
      (void)pushed;
    }
  }

  /// Returns nullptr when the SRQ is exhausted (RNR condition).
  std::byte* try_acquire() {
    auto buf = free_list_.try_pop();
    return buf ? *buf : nullptr;
  }

  void release(std::byte* buffer) {
    const bool pushed = free_list_.try_push(buffer);
    assert(pushed);  // cannot overflow: we only recycle our own buffers
    (void)pushed;
  }

  std::size_t buffer_size() const { return buffer_size_; }

 private:
  std::size_t buffer_size_;
  std::vector<std::byte> storage_;
  queues::MpmcQueue<std::byte*> free_list_;
};

inline void RecvBuffer::release() {
  if (pool_ != nullptr && data_ != nullptr) pool_->release(data_);
  pool_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

}  // namespace fabric
