// Backend #2: the real POSIX shared-memory fabric ("shm"). One process per
// rank (amtnet_launch), or every rank in one process for conformance tests
// (Config::local_rank == -1); either way the wire is real memory, so the
// sim's latency/bandwidth/window modelling does not apply.
//
// Topology:
//   * one shm segment per unordered locality pair, holding two directed
//     ShmRings (shm_ring.hpp) for eager datagrams and control records;
//   * one shm segment per rank, holding its pid, a CMA probe address, and
//     the MR slot table that peers consult for one-sided access.
//
// One-sided data paths, fastest applicable chosen per peer at first use:
//   * direct   — peer is this process (single-process mode): plain memcpy;
//   * CMA      — cross-memory attach (process_vm_readv/writev): true
//                zero-copy between private address spaces;
//   * fallback — no CMA (blocked or unsupported): writes/reads are
//                segmented into ring records and served by the TARGET's
//                poll loop. This is the one semantic deviation from the sim
//                backend: a fallback-mode post_read needs the target to
//                poll before it can complete. AMTNET_SHM_FORCE_FALLBACK=1
//                forces this path for testing.
//
// Fault injection on shm is limited to the software-visible subset — drop,
// duplicate, corrupt, applied to eager datagrams at post time with the same
// counter-indexed splitmix64 streams as the sim backend. Latency faults
// (delay/brownout/RNR storm) model NIC hardware and are sim-only; their
// probabilities are ignored here.
//
// Rendezvous: segment names derive from Config::shm_session; the lower rank
// of a pair creates each pair segment, the other attaches with a bounded
// retry (Config::shm_bootstrap_timeout_s). amtnet_launch generates the
// session name and exports it as AMTNET_SHM_SESSION.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/spinlock.hpp"
#include "fabric/nic.hpp"
#include "fabric/shm_ring.hpp"
#include "queues/mpsc_queue.hpp"

namespace fabric {

/// True when POSIX shared memory is usable on this system (probed once by
/// creating and unlinking a tiny segment). Tests use this to skip the shm
/// conformance rows gracefully.
bool shm_available();

namespace detail {

/// MR slot table entry in a rank segment. `vaddr` is the region's address
/// in the OWNER's address space (meaningful to peers only via CMA).
struct ShmMrSlot {
  std::atomic<std::uint64_t> id;
  std::atomic<std::uint64_t> vaddr;
  std::atomic<std::uint64_t> len;
};

struct ShmRankHeader {
  std::atomic<std::uint64_t> magic;  // kShmReadyMagic once initialised
  std::atomic<std::int64_t> pid;
  std::atomic<std::uint64_t> probe_addr;   // &probe word in the owner
  std::atomic<std::uint64_t> probe_value;  // expected contents of that word
  std::uint64_t mr_slots = 0;              // power of two
  ShmMrSlot* table() { return reinterpret_cast<ShmMrSlot*>(this + 1); }
};

struct ShmPairHeader {
  std::atomic<std::uint64_t> magic;
  std::uint64_t ring_offset[2];  // [0]: lo->hi, [1]: hi->lo
};

/// Owns every shared segment this fabric maps: creation/attachment,
/// rendezvous waits, the CMA capability probe, and unlink-at-exit for the
/// segments this process created.
class ShmDomain {
 public:
  enum class PeerMode : std::uint8_t { kUnknown, kDirect, kCma, kFallback };

  explicit ShmDomain(const Config& config);
  ~ShmDomain();
  ShmDomain(const ShmDomain&) = delete;
  ShmDomain& operator=(const ShmDomain&) = delete;

  const Config& config() const { return config_; }

  /// The directed ring carrying records from `from` to `to`. Both segments
  /// of every relevant pair are mapped during construction.
  ShmRing* ring(Rank from, Rank to);

  /// The rank segment of `r`, attaching (with a bounded wait) on first use.
  ShmRankHeader* rank_header(Rank r);

  /// How one-sided data moves to/from `r` (cached probe; never kUnknown).
  PeerMode peer_mode(Rank r);

  /// Resolves MR `id` in `r`'s slot table. Returns false for a stale or
  /// unknown key. `vaddr` is in the owner's address space.
  bool lookup_mr(Rank r, std::uint64_t id, std::uint64_t& vaddr,
                 std::uint64_t& len);

 private:
  struct Segment {
    std::string name;
    void* base = nullptr;
    std::size_t size = 0;
    bool created = false;
  };

  Segment open_segment(const std::string& name, std::size_t size, bool create);
  void map_pair(Rank lo, Rank hi);

  Config config_;
  std::string session_;
  bool force_fallback_ = false;
  std::uint64_t probe_word_ = 0;  // peers CMA-read this to prove access

  std::size_t ring_bytes_ = 0;      // one directed ring's footprint
  std::size_t pair_bytes_ = 0;      // whole pair segment
  std::size_t rank_bytes_ = 0;      // whole rank segment

  std::vector<Segment> pair_segments_;      // indexed by pair_index()
  std::vector<ShmPairHeader*> pair_bases_;  // null until mapped
  std::vector<Segment> rank_segments_;      // indexed by rank
  std::unique_ptr<std::atomic<ShmRankHeader*>[]> rank_bases_;
  common::SpinMutex attach_mutex_;  // serialises lazy rank attaches
  std::unique_ptr<std::atomic<std::uint8_t>[]> peer_modes_;

  std::size_t pair_index(Rank a, Rank b) const;
};

}  // namespace detail

class ShmNic final : public Nic {
 public:
  ShmNic(Fabric& fabric, Rank rank, const Config& config,
         detail::ShmDomain& domain);
  ~ShmNic() override;

  Rank rank() const override { return rank_; }

  common::Status post_send(Rank dst, const void* data, std::size_t len,
                           std::uint64_t imm) override;
  common::Status post_write(Rank dst, const MrKey& rkey, std::size_t offset,
                            const void* data, std::size_t len) override;
  common::Status post_write_imm(Rank dst, const MrKey& rkey,
                                std::size_t offset, const void* data,
                                std::size_t len, std::uint64_t imm) override;
  common::Status post_read(Rank dst, const MrKey& rkey, std::size_t offset,
                           void* local, std::size_t len,
                           std::uint64_t imm) override;

  MrKey register_memory(void* base, std::size_t len) override;
  void deregister_memory(const MrKey& key) override;

  bool rx_looks_nonempty() const override;
  NicStats stats() const override;
  std::size_t srq_buffer_size() const override {
    return config_.srq_buffer_size;
  }

 protected:
  std::size_t poll_rx_sink(std::size_t max_packets, RxSink sink) override;

 private:
  /// One outgoing ring record, staged in private memory when its ring is
  /// momentarily full (mid-write fragments and read-service responses must
  /// not be dropped once their operation is committed).
  struct OutRecord {
    detail::ShmRecord header;
    std::vector<std::byte> payload;
  };

  /// Per-peer TX state. All pushes to one peer's ring serialise on `mutex`
  /// so staged records keep FIFO order with fresh ones.
  struct PeerTx {
    common::SpinMutex mutex;
    std::deque<OutRecord> pending;
  };

  struct PendingRead {
    PendingRead() = default;
    PendingRead(std::byte* d, std::uint64_t i, std::size_t t)
        : dst(d), imm(i), total(t) {}
    std::byte* dst = nullptr;
    std::uint64_t imm = 0;
    std::size_t total = 0;   // bytes requested
    std::size_t received = 0;
    std::size_t served = 0;  // bytes the target actually streamed
    bool got_last = false;
  };

  /// Target-side state of one in-flight fallback write (keyed by sender rank
  /// + the sender-allocated write id). poll_rx may run on several threads, so
  /// fragments of one write can be consumed concurrently; tracking received
  /// bytes here keeps the kWriteImm completion from being surfaced before
  /// every fragment has actually landed in the MR.
  struct PendingWrite {
    std::uint64_t imm = 0;
    std::size_t total = 0;
    std::size_t received = 0;
    bool got_last = false;
    bool has_imm = false;
  };

  /// Pushes under the peer lock; false when the ring is full AND `stash` is
  /// false (caller sees kRetry). With `stash`, a full ring queues the
  /// record in `pending` and the push always succeeds logically.
  bool push_record(Rank dst, OutRecord&& rec, bool stash);
  bool push_now_locked(detail::ShmRing& ring, const OutRecord& rec);
  void flush_pending(Rank dst);

  common::Status write_common(Rank dst, const MrKey& rkey, std::size_t offset,
                              const void* data, std::size_t len, bool has_imm,
                              std::uint64_t imm);
  void deliver_self(RxEvent&& event);
  void serve_read_request(Rank requester, const detail::ShmRecord& rec);
  void handle_record(Rank src, const detail::ShmRecord& rec,
                     const std::byte* payload, RxSink& sink);

  // Eager-path fault injection (drop/dup/corrupt only; see file comment).
  // Returns true when the datagram should be dropped; may flip a payload
  // bit in place and/or request duplication.
  bool inject_faults(std::vector<std::byte>& payload, bool& duplicate);
  // Converts a probability to a splitmix64-comparable threshold.
  static std::uint64_t fault_threshold(double p);

  Fabric& fabric_;
  const Rank rank_;
  const Config& config_;
  detail::ShmDomain& domain_;

  const bool faults_on_;
  const std::uint64_t thr_drop_;
  const std::uint64_t thr_dup_;
  const std::uint64_t thr_corrupt_;
  std::atomic<std::uint64_t> tx_post_counter_{0};

  std::vector<std::unique_ptr<PeerTx>> peers_;

  // Completions that never touch a ring: self-sends, and kReadDone for
  // direct/CMA reads (surfaced at this NIC's next poll, like the sim).
  queues::TryMpmcQueue<RxEvent> self_events_;

  common::SpinMutex reads_mutex_;
  std::unordered_map<std::uint64_t, PendingRead> pending_reads_;
  common::SpinMutex writes_mutex_;
  std::unordered_map<std::uint64_t, PendingWrite> pending_writes_;
  std::atomic<std::uint64_t> next_read_id_{1};
  std::atomic<std::uint64_t> next_write_id_{1};
  std::atomic<std::uint64_t> next_mr_id_{1};
  std::atomic<std::uint64_t> poll_rr_{0};

  telemetry::Counter& ctr_packets_sent_;
  telemetry::Counter& ctr_bytes_sent_;
  telemetry::Counter& ctr_packets_received_;
  telemetry::Counter& ctr_tx_window_rejects_;
  telemetry::Counter& ctr_faults_dropped_;
  telemetry::Counter& ctr_faults_duplicated_;
  telemetry::Counter& ctr_faults_corrupted_;
};

}  // namespace fabric
