// Core types of the simulated RDMA fabric.
//
// The fabric stands in for the InfiniBand networks of the paper's testbeds
// (SDSC Expanse: HDR, Rostam: FDR). It models, per NIC:
//   - wire latency (constant, per packet),
//   - bandwidth serialisation per rail (a packet occupies the link for
//     size/bandwidth before the next can start),
//   - an optional packet-rate cap (models the NIC's message-rate limit),
//   - a bounded in-flight window (models QP/SQ depth; exceeding it returns
//     Status::kRetry, the verbs "queue full" condition),
//   - shared receive queues (SRQ) of pre-posted buffers; exhaustion stalls
//     the channel like an RC RNR NAK until buffers are recycled,
//   - multiple rails per directed pair: packets are in-order within one rail
//     and unordered across rails (like multi-QP striping on real NICs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fabric/fault.hpp"

namespace fabric {

using Rank = std::uint32_t;

/// Remote-key for a registered memory region, exchanged out of band (in our
/// stack: inside rendezvous control messages).
struct MrKey {
  Rank rank = 0;
  std::uint64_t id = 0;
};

struct Config {
  /// Transport backend: "sim" (the in-process simulated fabric, the default
  /// — all modelling knobs below apply) or "shm" (the real multi-process
  /// POSIX shared-memory fabric; latency/bandwidth/fault-window modelling
  /// does not apply, the wire is real hardware).
  std::string backend = "sim";
  /// shm backend: the rank hosted by THIS process. -1 = single-process mode
  /// (every rank's endpoint is constructed in this process — the mode the
  /// conformance tests use). Ranks other than local_rank have no NIC here;
  /// amtnet_launch sets AMTNET_SHM_RANK per process.
  int local_rank = -1;
  /// shm backend: rendezvous namespace shared by all processes of one run
  /// (segment names and bootstrap files derive from it). "" = a per-fabric
  /// unique session, which is what single-process mode wants.
  std::string shm_session;
  /// shm backend: slots per directed per-pair ring (rounded up to a power
  /// of two). Each slot holds one eager datagram of up to srq_buffer_size.
  std::size_t shm_ring_depth = 256;
  /// shm backend: seconds to wait for peer processes during bootstrap.
  double shm_bootstrap_timeout_s = 20.0;

  Rank num_ranks = 2;
  double latency_us = 1.1;       // one-way wire latency per packet
  double bandwidth_gbps = 100.0; // per-NIC line rate, split across rails
  double pkt_rate_mpps = 0.0;    // NIC message-rate cap; 0 = unlimited
  unsigned num_rails = 2;        // parallel ordered channels per direction
  std::size_t srq_buffer_size = 16 * 1024;  // max datagram payload
  std::size_t srq_depth = 4096;  // pre-posted receive buffers per NIC
  std::size_t tx_window = 4096;  // max in-flight packets per NIC
  bool zero_time = false;        // tests: disable latency/bandwidth gating
  // Chaos testing: adds a seeded-random extra delay in [0, jitter_us] to
  // every packet. Within a rail FIFO order is preserved (delays only defer
  // the head), but cross-rail interleavings become highly irregular.
  double jitter_us = 0.0;
  std::uint64_t jitter_seed = 0x7b9f1d3a5c8e2461ULL;
  // Deterministic fault injection (drops/dups/corruption/brownouts/RNR
  // storms); see fabric/fault.hpp. All-zero probabilities = polite network.
  FaultConfig faults;

  double bytes_per_ns() const { return bandwidth_gbps / 8.0; }

  bool is_shm() const { return backend == "shm"; }
  /// True when every rank's endpoint lives in this process.
  bool single_process() const { return !is_shm() || local_rank < 0; }
  /// True when `rank`'s endpoint lives in this process.
  bool rank_is_local(Rank rank) const {
    return single_process() || rank == static_cast<Rank>(local_rank);
  }
};

/// Overrides backend-selection fields from the environment (unset variables
/// leave the passed-in value untouched):
///   AMTNET_BACKEND          sim | shm
///   AMTNET_SHM_RANK         rank hosted by this process (multi-process mode)
///   AMTNET_SHM_SESSION      rendezvous namespace (set by amtnet_launch)
///   AMTNET_SHM_RING_DEPTH   slots per directed per-pair ring
/// (AMTNET_SHM_RANKS is consumed one level up, by amt::make_runtime_config,
/// because it overrides the locality count, not a fabric field.)
void apply_backend_env(Config& config);

/// Throws std::invalid_argument unless name is "sim" or "shm".
void validate_backend_name(const std::string& name);

/// Named platform profiles mirroring the paper's Table 2 and Table 3.
struct Profile {
  /// SDSC Expanse: ConnectX-6, HDR InfiniBand (2x50 Gbps).
  static Config expanse(Rank num_ranks);
  /// Rostam: ConnectX-3, FDR InfiniBand (4x14 Gbps).
  static Config rostam(Rank num_ranks);
  /// Zero-latency loopback for unit tests.
  static Config loopback(Rank num_ranks);

  static std::string describe(const Config& config, const std::string& name);
};

/// Counters exposed for tests and benchmark sanity checks. All monotonic.
struct NicStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t sends_rejected_tx_window = 0;  // post returned kRetry
  std::uint64_t rnr_stalls = 0;  // delivery deferred: SRQ empty
  // Injected-fault tallies (all zero unless Config::faults enables chaos).
  std::uint64_t faults_dropped = 0;     // datagrams eaten by the wire
  std::uint64_t faults_duplicated = 0;  // datagrams delivered twice
  std::uint64_t faults_corrupted = 0;   // payloads with a flipped bit
  std::uint64_t faults_delayed = 0;     // packets given a latency spike
  std::uint64_t brownout_rejects = 0;   // posts refused during a brownout
  std::uint64_t rnr_storms = 0;         // injected RNR storm windows
};

}  // namespace fabric
