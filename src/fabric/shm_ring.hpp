// Process-shared bounded ring for the shm backend: Vyukov's bounded MPMC
// queue laid out flat in a shared-memory segment (offsets only, no pointers;
// per-slot sequence numbers carry the full/empty state). One ring per
// directed locality pair carries fixed-size records — an eager datagram, a
// write/read fragment, or a control notice — each with an inline payload
// area sized for Config::srq_buffer_size.
//
// Producers and consumers may live in different processes and on any number
// of threads on each side: claim/publish (producer) and claim/release
// (consumer) are independent CAS hand-offs on the shared positions. All
// atomics are std::atomic<std::uint64_t>, which is address-free and
// lock-free on every platform we target (statically asserted below).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/cache.hpp"

namespace fabric::detail {

/// Fixed header of one ring record; the slot's payload area follows the
/// containing ShmSlot. Which fields are meaningful depends on `kind`.
struct ShmRecord {
  enum Kind : std::uint8_t {
    kEager = 1,      // post_send datagram: payload + imm
    kWriteNotice,    // CMA/direct write already landed; total_len (+imm)
    kWriteFrag,      // fallback write fragment into (mr_id, offset) of op_id
    kReadReq,        // fallback read request: mr_id/offset/total_len/op_id
    kReadFrag,       // fallback read response fragment at `offset` of op_id
  };
  enum Flags : std::uint8_t {
    kFlagLast = 1,  // final fragment of its write/read
    kFlagImm = 2,   // surface an event with `imm` when the last frag lands
  };

  std::uint8_t kind = 0;
  std::uint8_t flags = 0;
  std::uint32_t len = 0;        // payload bytes stored in this slot
  std::uint64_t imm = 0;
  std::uint64_t mr_id = 0;      // kWriteFrag / kReadReq
  std::uint64_t offset = 0;     // kWriteFrag: MR offset; kReadFrag: dst offset
  std::uint64_t total_len = 0;  // whole-operation size (kReadReq: read size)
  std::uint64_t op_id = 0;      // kReadReq / kReadFrag: read id; kWriteFrag:
                                // write id (unique per sender NIC)
};

struct ShmSlot {
  std::atomic<std::uint64_t> sequence;
  ShmRecord record;
  // payload_cap bytes follow, aligned up to the ring's slot stride.
  std::byte* payload() { return reinterpret_cast<std::byte*>(this + 1); }
  const std::byte* payload() const {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings require lock-free 64-bit atomics");

/// The ring control block, placed at a fixed offset inside a shared segment
/// with its slot array immediately after. Never constructed with `new` —
/// init() is called once by the segment's creator on zeroed memory.
struct ShmRing {
  common::CachePadded<std::atomic<std::uint64_t>> enqueue_pos;
  common::CachePadded<std::atomic<std::uint64_t>> dequeue_pos;
  std::uint64_t capacity = 0;     // slots, power of two
  std::uint64_t slot_stride = 0;  // bytes per slot, 64-aligned
  std::uint64_t payload_cap = 0;  // payload bytes per slot

  static std::uint64_t round_up_pow2(std::uint64_t v) {
    std::uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  static std::size_t stride_for(std::size_t payload_cap) {
    return (sizeof(ShmSlot) + payload_cap + 63) & ~std::size_t{63};
  }

  /// Total bytes the ring occupies (control block + slots).
  static std::size_t footprint(std::size_t capacity_hint,
                               std::size_t payload_cap) {
    return sizeof(ShmRing) +
           round_up_pow2(capacity_hint) * stride_for(payload_cap);
  }

  /// Creator-side one-time initialisation on zeroed shared memory.
  void init(std::size_t capacity_hint, std::size_t payload_capacity) {
    capacity = round_up_pow2(capacity_hint);
    slot_stride = stride_for(payload_capacity);
    payload_cap = payload_capacity;
    for (std::uint64_t i = 0; i < capacity; ++i) {
      slot(i)->sequence.store(i, std::memory_order_relaxed);
    }
    enqueue_pos.value.store(0, std::memory_order_relaxed);
    dequeue_pos.value.store(0, std::memory_order_release);
  }

  ShmSlot* slot(std::uint64_t i) {
    return reinterpret_cast<ShmSlot*>(reinterpret_cast<std::byte*>(this + 1) +
                                      i * slot_stride);
  }

  /// Producer: claims a slot to fill, or nullptr when the ring is full.
  /// Fill record + payload, then call publish(slot, pos).
  ShmSlot* try_claim(std::uint64_t& pos_out) {
    std::uint64_t pos = enqueue_pos.value.load(std::memory_order_relaxed);
    for (;;) {
      ShmSlot* s = slot(pos & (capacity - 1));
      const std::uint64_t seq = s->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq - pos);
      if (diff == 0) {
        if (enqueue_pos.value.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          pos_out = pos;
          return s;
        }
      } else if (diff < 0) {
        return nullptr;  // full
      } else {
        pos = enqueue_pos.value.load(std::memory_order_relaxed);
      }
    }
  }

  void publish(ShmSlot* s, std::uint64_t pos) {
    s->sequence.store(pos + 1, std::memory_order_release);
  }

  /// Consumer: claims the next filled slot, or nullptr when empty. Read the
  /// record + payload, then call release(slot, pos).
  ShmSlot* try_consume(std::uint64_t& pos_out) {
    std::uint64_t pos = dequeue_pos.value.load(std::memory_order_relaxed);
    for (;;) {
      ShmSlot* s = slot(pos & (capacity - 1));
      const std::uint64_t seq = s->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq - (pos + 1));
      if (diff == 0) {
        if (dequeue_pos.value.compare_exchange_weak(
                pos, pos + 1, std::memory_order_relaxed)) {
          pos_out = pos;
          return s;
        }
      } else if (diff < 0) {
        return nullptr;  // empty
      } else {
        pos = dequeue_pos.value.load(std::memory_order_relaxed);
      }
    }
  }

  void release(ShmSlot* s, std::uint64_t pos) {
    s->sequence.store(pos + capacity, std::memory_order_release);
  }

  /// Racy emptiness hint for idle checks.
  bool looks_nonempty() const {
    return enqueue_pos.value.load(std::memory_order_acquire) !=
           dequeue_pos.value.load(std::memory_order_acquire);
  }
};

}  // namespace fabric::detail
