// Backend #1: the simulated RDMA NIC ("sim", the default). See types.hpp
// for the modelling contract (latency, per-rail bandwidth serialisation,
// message-rate cap, TX window, SRQ/RNR, multi-rail reordering, deterministic
// fault injection).
//
// Threading: post_send / post_write may be called from any thread; poll_rx
// may be called from any number of threads concurrently (each incoming
// channel is drained under a consumer try-lock, so concurrent pollers skip
// channels another poller holds — the same discipline real LCI uses for its
// receive path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/cache.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "fabric/nic.hpp"
#include "queues/mpsc_queue.hpp"

namespace fabric {

namespace detail {

struct Packet {
  enum class Kind : std::uint8_t { kSend, kWrite, kReadResp };
  Kind kind = Kind::kSend;
  Rank src = 0;        // rank shown to the receiver (the remote peer)
  Rank tx_owner = 0;   // rank whose TX window this packet occupies
  std::uint64_t imm = 0;
  bool has_imm = false;
  std::uint64_t mr_id = 0;       // kWrite / kReadResp
  std::size_t mr_offset = 0;     // kWrite / kReadResp
  std::byte* read_dst = nullptr;   // kReadResp: reader-local destination
  std::size_t read_len = 0;        // kReadResp
  common::Nanos extra_latency = 0;  // reads: the request's one-way trip
  std::vector<std::byte> payload;
  common::Nanos deliver_time = 0;
};

/// One ordered rail of a directed link. busy_until carries the bandwidth
/// serialisation state for the rail and is advanced by senders with CAS.
struct Channel {
  queues::TryMpmcQueue<Packet> queue;
  common::CachePadded<std::atomic<common::Nanos>> busy_until{0};
};

}  // namespace detail

class SimNic final : public Nic {
 public:
  SimNic(Fabric& fabric, Rank rank, const Config& config);

  Rank rank() const override { return rank_; }

  common::Status post_send(Rank dst, const void* data, std::size_t len,
                           std::uint64_t imm) override;
  common::Status post_write(Rank dst, const MrKey& rkey, std::size_t offset,
                            const void* data, std::size_t len) override;
  common::Status post_write_imm(Rank dst, const MrKey& rkey,
                                std::size_t offset, const void* data,
                                std::size_t len, std::uint64_t imm) override;
  common::Status post_read(Rank dst, const MrKey& rkey, std::size_t offset,
                           void* local, std::size_t len,
                           std::uint64_t imm) override;

  MrKey register_memory(void* base, std::size_t len) override;
  void deregister_memory(const MrKey& key) override;

  bool rx_looks_nonempty() const override;
  NicStats stats() const override;
  std::size_t srq_buffer_size() const override { return srq_.buffer_size(); }

 protected:
  std::size_t poll_rx_sink(std::size_t max_packets, RxSink sink) override;

 private:
  struct MrEntry {
    std::byte* base = nullptr;
    std::size_t len = 0;
  };

  /// The peer's simulated NIC. Valid because the sim backend always hosts
  /// every rank in this process.
  SimNic& peer(Rank rank);

  common::Status post_packet(Rank dst, detail::Packet packet,
                             std::size_t wire_len);
  // Converts a probability to a splitmix64-comparable threshold.
  static std::uint64_t fault_threshold(double p);
  // True while poll_rx should refuse buffer-consuming deliveries, possibly
  // starting a new injected RNR storm window for this call.
  bool rnr_storm_active();
  // Resolves a registered region; nullopt when the key is stale/bogus.
  std::optional<MrEntry> lookup_mr(std::uint64_t id) const;
  // Credits the sender's TX window back when one of its packets lands here.
  void on_packet_delivered(Rank src);

  // Advances `busy` to cover [start, start+duration) and returns start,
  // where start = max(now, old busy). Lock-free CAS loop.
  static common::Nanos advance_busy(std::atomic<common::Nanos>& busy,
                                    common::Nanos now, common::Nanos duration);

  Fabric& fabric_;
  const Rank rank_;
  const Config& config_;
  const common::Nanos latency_ns_;
  const double rail_bytes_per_ns_;
  const common::Nanos pkt_gap_ns_;  // 0 when unlimited
  const common::Nanos jitter_ns_;   // 0 when chaos mode is off
  std::atomic<std::uint64_t> jitter_counter_{0};

  // Fault injection (see fabric/fault.hpp). Thresholds are precomputed so
  // the disabled case costs one branch on faults_on_.
  const bool faults_on_;
  const std::uint64_t thr_drop_;
  const std::uint64_t thr_dup_;
  const std::uint64_t thr_corrupt_;
  const std::uint64_t thr_delay_;
  const std::uint64_t thr_brownout_;
  const std::uint64_t thr_rnr_storm_;
  const common::Nanos fault_delay_ns_;
  // Post/poll indices drive both the deterministic RNG streams and the
  // brownout / RNR-storm windows (windows are measured in operations, so
  // they behave identically under zero_time fabrics).
  std::atomic<std::uint64_t> tx_post_counter_{0};
  std::atomic<std::uint64_t> brownout_until_post_{0};
  std::atomic<std::uint64_t> rx_poll_counter_{0};
  std::atomic<std::uint64_t> rnr_storm_until_poll_{0};

  SrqPool srq_;

  // Incoming channels, one per (source rank, rail); index src*rails + rail.
  std::vector<std::unique_ptr<detail::Channel>> rx_channels_;

  // Senders' NIC-level message-rate gate.
  common::CachePadded<std::atomic<common::Nanos>> tx_pkt_busy_{0};
  // In-flight window (incremented at post, decremented at delivery).
  common::CachePadded<std::atomic<std::int64_t>> tx_in_flight_{0};
  // Rail selector for outgoing packets.
  common::CachePadded<std::atomic<std::uint64_t>> tx_rail_rr_{0};
  // Rotating start index for poll fairness.
  common::CachePadded<std::atomic<std::uint64_t>> poll_rr_{0};

  mutable common::SpinMutex mr_mutex_;
  std::unordered_map<std::uint64_t, MrEntry> mr_table_;
  std::atomic<std::uint64_t> next_mr_id_{1};

  // Stats live in the Fabric's telemetry registry under fabric/nic<rank>/...
  // (sharded relaxed counters; stats() aggregates them in one pass).
  telemetry::Counter& ctr_packets_sent_;
  telemetry::Counter& ctr_bytes_sent_;
  telemetry::Counter& ctr_packets_received_;
  telemetry::Counter& ctr_tx_window_rejects_;
  telemetry::Counter& ctr_rnr_stalls_;
  telemetry::Counter& ctr_faults_dropped_;
  telemetry::Counter& ctr_faults_duplicated_;
  telemetry::Counter& ctr_faults_corrupted_;
  telemetry::Counter& ctr_faults_delayed_;
  telemetry::Counter& ctr_brownout_rejects_;
  telemetry::Counter& ctr_rnr_storms_;
  // One-way wire latency charged to each packet (post -> deliver_time), the
  // per-rail send-latency distribution. Not recorded in zero_time mode.
  telemetry::Histogram& hist_wire_latency_ns_;
};

}  // namespace fabric
