// Simulated RDMA NIC. See types.hpp for the modelling contract.
//
// Threading: post_send / post_write may be called from any thread; poll_rx
// may be called from any number of threads concurrently (each incoming
// channel is drained under a consumer try-lock, so concurrent pollers skip
// channels another poller holds — the same discipline real LCI uses for its
// receive path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/cache.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/status.hpp"
#include "fabric/srq_pool.hpp"
#include "fabric/types.hpp"
#include "queues/mpsc_queue.hpp"
#include "telemetry/telemetry.hpp"

namespace fabric {

class Fabric;

/// An event produced by poll_rx.
struct RxEvent {
  enum class Kind : std::uint8_t {
    kRecv,      // a post_send arrived; payload in `payload` (if size > 0)
    kWriteImm,  // an RDMA write-with-immediate landed; data already in place
    kReadDone,  // an RDMA read this NIC posted has completed locally
  };
  Kind kind = Kind::kRecv;
  Rank src = 0;
  std::uint64_t imm = 0;
  std::size_t size = 0;
  /// kRecv: the datagram contents, moved (not copied) off the wire. The
  /// consumer owns it and may move it onward.
  std::vector<std::byte> payload;
  /// The SRQ slot this datagram consumed; held until the event (or whoever
  /// the consumer hands it to) is destroyed, so receive-buffer back-pressure
  /// (RNR) behaves exactly as if the payload had been copied into the slot.
  RecvBuffer credit;

  const std::byte* data() const { return payload.data(); }
};

namespace detail {

struct Packet {
  enum class Kind : std::uint8_t { kSend, kWrite, kReadResp };
  Kind kind = Kind::kSend;
  Rank src = 0;        // rank shown to the receiver (the remote peer)
  Rank tx_owner = 0;   // rank whose TX window this packet occupies
  std::uint64_t imm = 0;
  bool has_imm = false;
  std::uint64_t mr_id = 0;       // kWrite / kReadResp
  std::size_t mr_offset = 0;     // kWrite / kReadResp
  std::byte* read_dst = nullptr;   // kReadResp: reader-local destination
  std::size_t read_len = 0;        // kReadResp
  common::Nanos extra_latency = 0;  // reads: the request's one-way trip
  std::vector<std::byte> payload;
  common::Nanos deliver_time = 0;
};

/// One ordered rail of a directed link. busy_until carries the bandwidth
/// serialisation state for the rail and is advanced by senders with CAS.
struct Channel {
  queues::TryMpmcQueue<Packet> queue;
  common::CachePadded<std::atomic<common::Nanos>> busy_until{0};
};

}  // namespace detail

class Nic {
 public:
  Nic(Fabric& fabric, Rank rank, const Config& config);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  Rank rank() const { return rank_; }

  /// Two-sided-style datagram: `len` bytes (<= srq_buffer_size) plus a 64-bit
  /// immediate. The payload is copied before return; the caller's buffer is
  /// immediately reusable. Returns kRetry when the TX window is full.
  common::Status post_send(Rank dst, const void* data, std::size_t len,
                           std::uint64_t imm);

  /// One-sided RDMA write into (rkey, offset) at the target, invisible to the
  /// target's poll loop (completion must be signalled by a follow-up message
  /// or by using post_write_imm).
  common::Status post_write(Rank dst, const MrKey& rkey, std::size_t offset,
                            const void* data, std::size_t len);

  /// RDMA write with immediate: like post_write but additionally produces a
  /// kWriteImm event at the target once the data has landed.
  common::Status post_write_imm(Rank dst, const MrKey& rkey,
                                std::size_t offset, const void* data,
                                std::size_t len, std::uint64_t imm);

  /// One-sided RDMA read: fetches `len` bytes from (rkey, offset) at `dst`
  /// into `local`, entirely without target-side software involvement (the
  /// target NIC serves it). Completion surfaces at THIS NIC's poll loop as a
  /// kReadDone event carrying `imm`. The remote memory is snapshotted at
  /// completion time. Round-trip latency plus payload bandwidth are charged.
  common::Status post_read(Rank dst, const MrKey& rkey, std::size_t offset,
                           void* local, std::size_t len, std::uint64_t imm);

  /// Registers [base, base+len) for remote writes. Cheap, never fails.
  MrKey register_memory(void* base, std::size_t len);
  void deregister_memory(const MrKey& key);

  /// Drains deliverable packets from all incoming channels, invoking
  /// `sink(RxEvent&&)` for each visible event. Returns the number of packets
  /// processed (including writes without immediates, which produce no event).
  template <typename Sink>
  std::size_t poll_rx(std::size_t max_packets, Sink&& sink);

  /// True if any incoming channel looks non-empty (racy; for idle checks).
  bool rx_looks_nonempty() const;

  NicStats stats() const;

  std::size_t srq_buffer_size() const { return srq_.buffer_size(); }

 private:
  friend class Fabric;

  struct MrEntry {
    std::byte* base = nullptr;
    std::size_t len = 0;
  };

  common::Status post_packet(Rank dst, detail::Packet packet,
                             std::size_t wire_len);
  // Converts a probability to a splitmix64-comparable threshold.
  static std::uint64_t fault_threshold(double p);
  // True while poll_rx should refuse buffer-consuming deliveries, possibly
  // starting a new injected RNR storm window for this call.
  bool rnr_storm_active();
  // Resolves a registered region; nullopt when the key is stale/bogus.
  std::optional<MrEntry> lookup_mr(std::uint64_t id) const;
  // Credits the sender's TX window back when one of its packets lands here.
  void on_packet_delivered(Rank src);

  // Advances `busy` to cover [start, start+duration) and returns start,
  // where start = max(now, old busy). Lock-free CAS loop.
  static common::Nanos advance_busy(std::atomic<common::Nanos>& busy,
                                    common::Nanos now, common::Nanos duration);

  Fabric& fabric_;
  const Rank rank_;
  const Config& config_;
  const common::Nanos latency_ns_;
  const double rail_bytes_per_ns_;
  const common::Nanos pkt_gap_ns_;  // 0 when unlimited
  const common::Nanos jitter_ns_;   // 0 when chaos mode is off
  std::atomic<std::uint64_t> jitter_counter_{0};

  // Fault injection (see fabric/fault.hpp). Thresholds are precomputed so
  // the disabled case costs one branch on faults_on_.
  const bool faults_on_;
  const std::uint64_t thr_drop_;
  const std::uint64_t thr_dup_;
  const std::uint64_t thr_corrupt_;
  const std::uint64_t thr_delay_;
  const std::uint64_t thr_brownout_;
  const std::uint64_t thr_rnr_storm_;
  const common::Nanos fault_delay_ns_;
  // Post/poll indices drive both the deterministic RNG streams and the
  // brownout / RNR-storm windows (windows are measured in operations, so
  // they behave identically under zero_time fabrics).
  std::atomic<std::uint64_t> tx_post_counter_{0};
  std::atomic<std::uint64_t> brownout_until_post_{0};
  std::atomic<std::uint64_t> rx_poll_counter_{0};
  std::atomic<std::uint64_t> rnr_storm_until_poll_{0};

  SrqPool srq_;

  // Incoming channels, one per (source rank, rail); index src*rails + rail.
  std::vector<std::unique_ptr<detail::Channel>> rx_channels_;

  // Senders' NIC-level message-rate gate.
  common::CachePadded<std::atomic<common::Nanos>> tx_pkt_busy_{0};
  // In-flight window (incremented at post, decremented at delivery).
  common::CachePadded<std::atomic<std::int64_t>> tx_in_flight_{0};
  // Rail selector for outgoing packets.
  common::CachePadded<std::atomic<std::uint64_t>> tx_rail_rr_{0};
  // Rotating start index for poll fairness.
  common::CachePadded<std::atomic<std::uint64_t>> poll_rr_{0};

  mutable common::SpinMutex mr_mutex_;
  std::unordered_map<std::uint64_t, MrEntry> mr_table_;
  std::atomic<std::uint64_t> next_mr_id_{1};

  // Stats live in the Fabric's telemetry registry under fabric/nic<rank>/...
  // (sharded relaxed counters; stats() aggregates them in one pass).
  telemetry::Counter& ctr_packets_sent_;
  telemetry::Counter& ctr_bytes_sent_;
  telemetry::Counter& ctr_packets_received_;
  telemetry::Counter& ctr_tx_window_rejects_;
  telemetry::Counter& ctr_rnr_stalls_;
  telemetry::Counter& ctr_faults_dropped_;
  telemetry::Counter& ctr_faults_duplicated_;
  telemetry::Counter& ctr_faults_corrupted_;
  telemetry::Counter& ctr_faults_delayed_;
  telemetry::Counter& ctr_brownout_rejects_;
  telemetry::Counter& ctr_rnr_storms_;
  // One-way wire latency charged to each packet (post -> deliver_time), the
  // per-rail send-latency distribution. Not recorded in zero_time mode.
  telemetry::Histogram& hist_wire_latency_ns_;
};

/// The collection of NICs for all simulated ranks (localities) in this
/// process, plus the shared configuration.
class Fabric {
 public:
  /// `registry` scopes all metrics for this fabric and every layer stacked on
  /// it. Null (the default) gives the Fabric a private registry, so each
  /// Fabric's counters start at zero — tests and sequential bench runs in one
  /// process stay independent.
  explicit Fabric(const Config& config,
                  telemetry::Registry* registry = nullptr);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Nic& nic(Rank rank) { return *nics_[rank]; }
  const Nic& nic(Rank rank) const { return *nics_[rank]; }
  Rank num_ranks() const { return config_.num_ranks; }
  const Config& config() const { return config_; }

  /// The metrics registry for this fabric and the layers built on it.
  telemetry::Registry& telemetry() const { return *registry_; }

 private:
  std::unique_ptr<telemetry::Registry> owned_registry_;  // when not injected
  telemetry::Registry* registry_;
  Config config_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

// ---- template implementation -------------------------------------------

inline void Nic::on_packet_delivered(Rank src) {
  fabric_.nic(src).tx_in_flight_.value.fetch_sub(1,
                                                 std::memory_order_relaxed);
}

template <typename Sink>
std::size_t Nic::poll_rx(std::size_t max_packets, Sink&& sink) {
  const std::size_t n_channels = rx_channels_.size();
  if (n_channels == 0 || max_packets == 0) return 0;
  const common::Nanos now =
      config_.zero_time ? 0 : common::now_ns();
  const std::uint64_t start =
      poll_rr_.value.fetch_add(1, std::memory_order_relaxed);
  // Injected RNR storm: refuse every buffer-consuming delivery for this
  // call, exactly as if the SRQ had drained (senders see stalled channels
  // and eventually retransmit / back off).
  const bool rnr_storm = faults_on_ && rnr_storm_active();

  std::size_t processed = 0;
  for (std::size_t i = 0; i < n_channels && processed < max_packets; ++i) {
    detail::Channel& channel =
        *rx_channels_[(start + i) % n_channels];
    std::byte* reserved = nullptr;  // SRQ buffer pre-acquired by the predicate

    auto deliverable = [&](const detail::Packet& p) {
      if (!config_.zero_time && p.deliver_time > now) return false;
      if (p.kind == detail::Packet::Kind::kSend && !p.payload.empty() &&
          reserved == nullptr) {
        if (rnr_storm) {
          ctr_rnr_stalls_.add();
          return false;
        }
        reserved = srq_.try_acquire();
        if (reserved == nullptr) {
          // RNR: stall this channel until buffers are recycled.
          ctr_rnr_stalls_.add();
          AMTNET_TRACE_INSTANT("fabric", "rnr_stall");
          return false;
        }
      }
      return true;
    };

    auto consume = [&](detail::Packet&& p) {
      ctr_packets_received_.add();
      on_packet_delivered(p.tx_owner);
      if (p.kind == detail::Packet::Kind::kReadResp) {
        // Serve the read: snapshot the remote registered region now and
        // land it in the reader's buffer, then surface completion.
        const auto entry = fabric_.nic(p.src).lookup_mr(p.mr_id);
        if (entry && p.mr_offset + p.read_len <= entry->len) {
          std::memcpy(p.read_dst, entry->base + p.mr_offset, p.read_len);
        }
        RxEvent event;
        event.kind = RxEvent::Kind::kReadDone;
        event.src = p.src;
        event.imm = p.imm;
        event.size = p.read_len;
        sink(std::move(event));
      } else if (p.kind == detail::Packet::Kind::kSend) {
        RxEvent event;
        event.kind = RxEvent::Kind::kRecv;
        event.src = p.src;
        event.imm = p.imm;
        event.size = p.payload.size();
        if (!p.payload.empty()) {
          event.payload = std::move(p.payload);
          event.credit = RecvBuffer(&srq_, reserved, event.size);
          reserved = nullptr;
        }
        sink(std::move(event));
      } else {
        // RDMA write: land the data, then surface the immediate if any.
        const auto entry = lookup_mr(p.mr_id);
        if (entry && p.mr_offset + p.payload.size() <= entry->len) {
          std::memcpy(entry->base + p.mr_offset, p.payload.data(),
                      p.payload.size());
        }
        if (p.has_imm) {
          RxEvent event;
          event.kind = RxEvent::Kind::kWriteImm;
          event.src = p.src;
          event.imm = p.imm;
          event.size = p.payload.size();
          sink(std::move(event));
        }
      }
    };

    processed += channel.queue.try_drain_while(max_packets - processed,
                                               deliverable, consume);
    if (reserved != nullptr) srq_.release(reserved);
  }
  return processed;
}

}  // namespace fabric
