// The fabric's NIC/endpoint surface, as an explicit backend interface.
//
// A `Nic` is one locality's network endpoint; which transport sits behind it
// is a per-fabric choice (Config::backend):
//   * "sim"  — the in-process simulated RDMA fabric (backend_sim.hpp): wire
//              latency / bandwidth / rails / SRQ / fault modelling, every
//              rank's NIC in this process. The default; all modelling
//              semantics documented in types.hpp apply.
//   * "shm"  — the real POSIX shared-memory fabric (backend_shm.hpp):
//              per-pair shm ring buffers + an MR window table, one process
//              per rank (or all ranks in-process for conformance tests).
//
// Threading contract (all backends): post_send / post_write / post_read may
// be called from any thread; poll_rx may be called from any number of
// threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/function_ref.hpp"
#include "common/status.hpp"
#include "fabric/srq_pool.hpp"
#include "fabric/types.hpp"
#include "telemetry/telemetry.hpp"

namespace fabric {

/// An event produced by poll_rx.
struct RxEvent {
  enum class Kind : std::uint8_t {
    kRecv,      // a post_send arrived; payload in `payload` (if size > 0)
    kWriteImm,  // an RDMA write-with-immediate landed; data already in place
    kReadDone,  // an RDMA read this NIC posted has completed locally
  };
  Kind kind = Kind::kRecv;
  Rank src = 0;
  std::uint64_t imm = 0;
  std::size_t size = 0;
  /// kRecv: the datagram contents, moved (not copied) off the wire. The
  /// consumer owns it and may move it onward.
  std::vector<std::byte> payload;
  /// The SRQ slot this datagram consumed; held until the event (or whoever
  /// the consumer hands it to) is destroyed, so receive-buffer back-pressure
  /// (RNR) behaves exactly as if the payload had been copied into the slot.
  /// Backends without SRQ modelling (shm) leave it empty.
  RecvBuffer credit;

  const std::byte* data() const { return payload.data(); }
};

/// The backend interface: one locality's network endpoint. poll_rx is the
/// only templated entry point; it forwards through a non-owning FunctionRef
/// so implementations stay virtual (one indirect call per event).
class Nic {
 public:
  using RxSink = common::FunctionRef<void(RxEvent&&)>;

  Nic() = default;
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;
  virtual ~Nic() = default;

  virtual Rank rank() const = 0;

  /// Two-sided-style datagram: `len` bytes (<= srq_buffer_size) plus a 64-bit
  /// immediate. The payload is copied before return; the caller's buffer is
  /// immediately reusable. Returns kRetry when the TX window is full.
  virtual common::Status post_send(Rank dst, const void* data, std::size_t len,
                                   std::uint64_t imm) = 0;

  /// One-sided RDMA write into (rkey, offset) at the target, invisible to the
  /// target's event stream (completion must be signalled by a follow-up
  /// message or by using post_write_imm). The data lands in the target's
  /// registered region no later than the target's next poll_rx call.
  virtual common::Status post_write(Rank dst, const MrKey& rkey,
                                    std::size_t offset, const void* data,
                                    std::size_t len) = 0;

  /// RDMA write with immediate: like post_write but additionally produces a
  /// kWriteImm event at the target once the data has landed.
  virtual common::Status post_write_imm(Rank dst, const MrKey& rkey,
                                        std::size_t offset, const void* data,
                                        std::size_t len,
                                        std::uint64_t imm) = 0;

  /// One-sided RDMA read: fetches `len` bytes from (rkey, offset) at `dst`
  /// into `local`. Completion surfaces at THIS NIC's poll loop as a
  /// kReadDone event carrying `imm`. The remote memory is snapshotted at
  /// completion time.
  virtual common::Status post_read(Rank dst, const MrKey& rkey,
                                   std::size_t offset, void* local,
                                   std::size_t len, std::uint64_t imm) = 0;

  /// Registers [base, base+len) for one-sided access by peers. Cheap; never
  /// fails on the simulator, may abort on the shm backend when its window
  /// is exhausted (see backend_shm.hpp).
  virtual MrKey register_memory(void* base, std::size_t len) = 0;
  virtual void deregister_memory(const MrKey& key) = 0;

  /// Drains deliverable packets, invoking `sink(RxEvent&&)` for each visible
  /// event. Returns the number of packets processed (including writes
  /// without immediates, which produce no event).
  template <typename Sink>
  std::size_t poll_rx(std::size_t max_packets, Sink&& sink) {
    return poll_rx_sink(max_packets, RxSink(sink));
  }

  /// True if anything looks deliverable (racy; for idle checks).
  virtual bool rx_looks_nonempty() const = 0;

  virtual NicStats stats() const = 0;

  /// Max datagram payload of post_send on this backend.
  virtual std::size_t srq_buffer_size() const = 0;

 protected:
  virtual std::size_t poll_rx_sink(std::size_t max_packets, RxSink sink) = 0;
};

namespace detail {
class ShmDomain;  // backend_shm-internal bootstrap/segment state
}

/// The collection of NICs for the simulated/real ranks (localities) hosted
/// by this process, plus the shared configuration. With the "sim" backend
/// every rank's NIC lives here; with the "shm" backend in multi-process
/// mode only Config::local_rank's does (nic() aborts for the others).
class Fabric {
 public:
  /// `registry` scopes all metrics for this fabric and every layer stacked on
  /// it. Null (the default) gives the Fabric a private registry, so each
  /// Fabric's counters start at zero — tests and sequential bench runs in one
  /// process stay independent.
  explicit Fabric(const Config& config,
                  telemetry::Registry* registry = nullptr);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  /// The endpoint of `rank`. Aborts (with a pointer at AMTNET_SHM_RANK)
  /// when that rank is hosted by another process.
  Nic& nic(Rank rank);
  const Nic& nic(Rank rank) const;

  /// True when `rank`'s endpoint lives in this process.
  bool nic_is_local(Rank rank) const {
    return rank < nics_.size() && nics_[rank] != nullptr;
  }

  Rank num_ranks() const { return config_.num_ranks; }
  const Config& config() const { return config_; }

  /// The metrics registry for this fabric and the layers built on it.
  telemetry::Registry& telemetry() const { return *registry_; }

 private:
  std::unique_ptr<telemetry::Registry> owned_registry_;  // when not injected
  telemetry::Registry* registry_;
  Config config_;
  std::unique_ptr<detail::ShmDomain> shm_domain_;  // shm backend only
  std::vector<std::unique_ptr<Nic>> nics_;  // null for non-local ranks
};

}  // namespace fabric
