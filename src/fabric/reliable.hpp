// ReliableEndpoint: a bounded retransmit-with-timeout sublayer for two-sided
// datagrams, shared by minilci, minimpi, and ministream.
//
// The simulated fabric under fault injection (fabric/fault.hpp) can drop,
// duplicate, and corrupt two-sided sends. Real RC InfiniBand hides those
// failures below verbs with link-level CRC + go-back-N; this class plays
// that role in software so the upper protocols keep their clean-network
// assumptions (minimpi's in-order reorder stage and ministream's sequence
// reassembly would otherwise hang forever on one lost datagram):
//
//   * send() appends an 8-byte trailer {seq, crc32(payload, seq, imm)} and
//     tracks the wire image until the receiver acks it.
//   * on_recv() filters incoming events: verifies and strips the trailer
//     (corrupt datagrams are dropped — equivalent to a wire drop), dedups
//     by per-source sequence number, and acks every surviving datagram with
//     a zero-payload send (needs no SRQ buffer, so acks pierce RNR storms).
//   * progress() retransmits unacked sends past their timeout with
//     exponential backoff; exhausting the bounded retry budget is an
//     unrecoverable link failure and fail-fasts via common::integrity_fail.
//
// Sequence numbers are allocated per destination and *burned* when the NIC
// refuses a post (Status::kRetry): loss detection is sender-timeout based,
// never gap based — multi-rail delivery reorders freely, so gaps carry no
// information. Timeouts are measured in progress() calls ("ticks"), which
// works identically under zero_time fabrics, plus a wall-clock floor on
// timed fabrics so retransmits don't race genuine in-flight packets.
//
// When the fabric's fault config is clean (integrity_on() == false) every
// call is a passthrough: send() forwards to Nic::post_send untouched and
// on_recv() accepts everything, so the layer is free when chaos is off.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "common/status.hpp"
#include "fabric/nic.hpp"
#include "telemetry/telemetry.hpp"

namespace fabric {

/// The immediate-kind byte ([63:56]) reserved for reliability acks. Upper
/// layers stacked on a ReliableEndpoint must never use it for data.
inline constexpr std::uint8_t kReliableAckKind = 0x7F;

class ReliableEndpoint {
 public:
  /// Enabled iff fabric.config().faults.integrity_on(). `layer` scopes the
  /// telemetry names (reliable/<layer><rank>/...).
  ReliableEndpoint(Fabric& fabric, Rank rank, const char* layer);
  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  bool enabled() const { return enabled_; }

  /// Drop-in replacement for Nic::post_send. kRetry means nothing was sent
  /// (the caller retries exactly as before); kOk means delivery is now this
  /// layer's responsibility.
  common::Status send(Rank dst, const void* data, std::size_t len,
                      std::uint64_t imm);

  /// Filters one incoming event. Returns true when the event is for the
  /// upper layer (trailer already stripped); false when it was consumed
  /// here (an ack, a duplicate, or a corrupt datagram that was dropped).
  /// Non-kRecv events (write-imm, read-done) always pass through.
  bool on_recv(RxEvent& event);

  /// Drives acks and retransmits; call from the owning layer's progress.
  /// The retransmit scan (walking every per-peer TX map under its lock) is
  /// time-gated: it runs at most once per scan quantum of progress ticks
  /// (AMTNET_REL_SCAN_QUANTUM, default kRtoBaseTicks/8), with one caller
  /// elected per quantum — nothing can time out between quanta, so the
  /// other progress threads skip the walk entirely.
  void progress();

  /// Unacked datagrams currently tracked (diagnostics / drain checks).
  std::size_t pending() const;

 private:
  static constexpr std::size_t kTrailerSize = 8;  // u32 seq + u32 crc
  static constexpr unsigned kMaxAttempts = 50;
  // Retransmit timeout in progress ticks, doubling per attempt. Ticks are
  // cheap (every idle worker loop calls progress), so the base is generous.
  static constexpr std::uint64_t kRtoBaseTicks = 512;
  // How many out-of-order arrivals each source tracks before presuming the
  // oldest gap is a burned sequence number (see file comment).
  static constexpr std::size_t kMaxSeenWindow = 4096;

  struct Pending {
    std::uint64_t imm = 0;
    std::vector<std::byte> wire;  // payload + trailer, reposted verbatim
    std::uint64_t post_tick = 0;
    common::Nanos post_ns = 0;
    unsigned attempts = 1;
  };

  struct TxState {
    common::SpinMutex mutex;
    std::unordered_map<std::uint32_t, Pending> pending;
  };

  struct RxState {
    common::SpinMutex mutex;
    std::uint32_t base = 0;          // every seq < base already delivered
    std::set<std::uint32_t> seen;    // delivered seqs >= base
  };

  std::uint64_t rto_ticks(unsigned attempts) const {
    return kRtoBaseTicks << (attempts < 7 ? attempts - 1 : 6);
  }
  common::Nanos rto_ns(unsigned attempts) const {
    return rto_ns_base_ << (attempts < 7 ? attempts - 1 : 6);
  }
  void send_ack(Rank src, std::uint32_t seq);

  Nic& nic_;
  const Rank rank_;
  const bool enabled_;
  const bool zero_time_;
  const common::Nanos rto_ns_base_;

  std::vector<common::CachePadded<std::atomic<std::uint32_t>>> tx_seq_;
  std::vector<std::unique_ptr<TxState>> tx_;
  std::vector<std::unique_ptr<RxState>> rx_;

  std::atomic<std::uint64_t> tick_{0};
  const std::uint64_t scan_quantum_;  // ticks between retransmit scans
                                      // (0 = scan on every progress call)
  std::atomic<std::uint64_t> next_scan_tick_{0};

  common::SpinMutex ack_backlog_mutex_;
  std::vector<std::pair<Rank, std::uint32_t>> ack_backlog_;
  std::atomic<std::size_t> ack_backlog_count_{0};

  telemetry::Counter& ctr_data_sent_;
  telemetry::Counter& ctr_acked_;
  telemetry::Counter& ctr_retransmits_;
  telemetry::Counter& ctr_crc_dropped_;
  telemetry::Counter& ctr_dup_dropped_;
  telemetry::Counter& ctr_retransmit_scans_;
};

}  // namespace fabric
