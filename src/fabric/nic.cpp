#include "fabric/nic.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/logging.hpp"
#include "fabric/backend_shm.hpp"
#include "fabric/backend_sim.hpp"

namespace fabric {

Config Profile::expanse(Rank num_ranks) {
  Config config;
  config.num_ranks = num_ranks;
  config.latency_us = 1.1;        // HDR-class small-message latency
  config.bandwidth_gbps = 100.0;  // HDR InfiniBand (2x50 Gbps)
  config.pkt_rate_mpps = 0.0;
  config.num_rails = 2;
  return config;
}

Config Profile::rostam(Rank num_ranks) {
  Config config;
  config.num_ranks = num_ranks;
  config.latency_us = 1.6;       // FDR-class small-message latency
  config.bandwidth_gbps = 56.0;  // FDR InfiniBand (4x14 Gbps)
  config.pkt_rate_mpps = 0.0;
  config.num_rails = 2;
  return config;
}

Config Profile::loopback(Rank num_ranks) {
  Config config;
  config.num_ranks = num_ranks;
  config.zero_time = true;
  config.num_rails = 1;
  return config;
}

std::string Profile::describe(const Config& config, const std::string& name) {
  std::ostringstream oss;
  oss << "profile=" << name << " backend=" << config.backend
      << " ranks=" << config.num_ranks;
  if (config.is_shm()) {
    oss << " local_rank=" << config.local_rank
        << " ring_depth=" << config.shm_ring_depth;
  } else {
    oss << " latency_us=" << config.latency_us
        << " bandwidth_gbps=" << config.bandwidth_gbps
        << " pkt_rate_mpps=" << config.pkt_rate_mpps
        << " rails=" << config.num_rails << " srq_depth=" << config.srq_depth
        << " tx_window=" << config.tx_window;
  }
  if (config.faults.any() || config.faults.integrity) {
    oss << " faults[" << config.faults.describe() << "]";
  }
  return oss.str();
}

void validate_backend_name(const std::string& name) {
  if (name != "sim" && name != "shm") {
    throw std::invalid_argument("unknown fabric backend \"" + name +
                                "\" (expected sim or shm)");
  }
}

void apply_backend_env(Config& config) {
  if (const char* v = std::getenv("AMTNET_BACKEND"); v != nullptr && *v) {
    validate_backend_name(v);
    config.backend = v;
  }
  if (const char* v = std::getenv("AMTNET_SHM_RANK"); v != nullptr && *v) {
    config.local_rank = std::atoi(v);
  }
  if (const char* v = std::getenv("AMTNET_SHM_SESSION"); v != nullptr && *v) {
    config.shm_session = v;
  }
  if (const char* v = std::getenv("AMTNET_SHM_RING_DEPTH");
      v != nullptr && *v) {
    config.shm_ring_depth = static_cast<std::size_t>(std::atoll(v));
  }
}

Fabric::Fabric(const Config& config, telemetry::Registry* registry)
    : owned_registry_(registry == nullptr
                          ? std::make_unique<telemetry::Registry>()
                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      config_(config) {
  validate_backend_name(config_.backend);
  if (config_.is_shm()) {
    if (config_.local_rank >= static_cast<int>(config_.num_ranks)) {
      throw std::invalid_argument("shm local_rank out of range");
    }
    shm_domain_ = std::make_unique<detail::ShmDomain>(config_);
    // Stamp snapshot identity so a telemetry export from an shm (or
    // multi-process) run can never be mistaken for a sim baseline. Sim runs
    // stay tag-free, keeping their historical exports byte-identical.
    registry_->set_tag("backend", config_.backend);
    if (!config_.single_process()) {
      registry_->set_tag("locality_rank",
                         std::to_string(config_.local_rank));
    }
  }
  nics_.resize(config_.num_ranks);
  for (Rank r = 0; r < config_.num_ranks; ++r) {
    if (!config_.rank_is_local(r)) continue;  // hosted by another process
    if (config_.is_shm()) {
      nics_[r] = std::make_unique<ShmNic>(*this, r, config_, *shm_domain_);
    } else {
      nics_[r] = std::make_unique<SimNic>(*this, r, config_);
    }
  }
}

Fabric::~Fabric() = default;

Nic& Fabric::nic(Rank rank) {
  if (!nic_is_local(rank)) {
    AMTNET_LOG_ERROR("fabric: rank ", rank,
                     " has no endpoint in this process (multi-process shm "
                     "mode hosts only AMTNET_SHM_RANK=",
                     config_.local_rank, " here)");
    std::abort();
  }
  return *nics_[rank];
}

const Nic& Fabric::nic(Rank rank) const {
  return const_cast<Fabric*>(this)->nic(rank);
}

}  // namespace fabric
