#include "fabric/reliable.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/crc32.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace fabric {

namespace {

std::string ep_metric(const char* layer, Rank rank, const char* leaf) {
  return std::string("reliable/") + layer + std::to_string(rank) + "/" + leaf;
}

std::uint64_t resolve_scan_quantum() {
  if (const char* s = std::getenv("AMTNET_REL_SCAN_QUANTUM")) {
    return std::strtoull(s, nullptr, 10);
  }
  return 64;  // kRtoBaseTicks / 8: worst case adds 12.5% to the base RTO
}

std::uint32_t trailer_crc(const void* data, std::size_t len,
                          std::uint32_t seq, std::uint64_t imm) {
  std::uint32_t c = common::crc32(data, len);
  c = common::crc32(&seq, sizeof(seq), c);
  c = common::crc32(&imm, sizeof(imm), c);
  return c;
}

}  // namespace

ReliableEndpoint::ReliableEndpoint(Fabric& fabric, Rank rank,
                                   const char* layer)
    : nic_(fabric.nic(rank)),
      rank_(rank),
      enabled_(fabric.config().faults.integrity_on()),
      zero_time_(fabric.config().zero_time),
      // Wall-clock RTO floor: comfortably above a loaded round trip so
      // retransmits don't race packets that are merely queued.
      rto_ns_base_(static_cast<common::Nanos>(
                       fabric.config().latency_us * 1000.0 * 32.0) +
                   20 * 1000),
      scan_quantum_(resolve_scan_quantum()),
      ctr_data_sent_(fabric.telemetry().counter(
          ep_metric(layer, rank, "data_sent"))),
      ctr_acked_(fabric.telemetry().counter(ep_metric(layer, rank, "acked"))),
      ctr_retransmits_(fabric.telemetry().counter(
          ep_metric(layer, rank, "retransmits"))),
      ctr_crc_dropped_(fabric.telemetry().counter(
          ep_metric(layer, rank, "crc_dropped"))),
      ctr_dup_dropped_(fabric.telemetry().counter(
          ep_metric(layer, rank, "dup_dropped"))),
      ctr_retransmit_scans_(fabric.telemetry().counter(
          ep_metric(layer, rank, "retransmit_scans"))) {
  if (enabled_) {
    const std::size_t n = fabric.num_ranks();
    tx_seq_ = std::vector<common::CachePadded<std::atomic<std::uint32_t>>>(n);
    tx_.reserve(n);
    rx_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tx_.push_back(std::make_unique<TxState>());
      rx_.push_back(std::make_unique<RxState>());
    }
  }
}

common::Status ReliableEndpoint::send(Rank dst, const void* data,
                                      std::size_t len, std::uint64_t imm) {
  if (!enabled_) return nic_.post_send(dst, data, len, imm);
  assert((imm >> 56) != kReliableAckKind);
  assert(len + kTrailerSize <= nic_.srq_buffer_size());

  const std::uint32_t seq =
      tx_seq_[dst].value.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::byte> wire(len + kTrailerSize);
  if (len > 0) std::memcpy(wire.data(), data, len);
  const std::uint32_t crc = trailer_crc(data, len, seq, imm);
  std::memcpy(wire.data() + len, &seq, sizeof(seq));
  std::memcpy(wire.data() + len + sizeof(seq), &crc, sizeof(crc));

  const common::Status status =
      nic_.post_send(dst, wire.data(), wire.size(), imm);
  // kRetry burns the seq; the receiver never gap-detects, so that's fine.
  if (status != common::Status::kOk) return status;

  Pending pending;
  pending.imm = imm;
  pending.wire = std::move(wire);
  pending.post_tick = tick_.load(std::memory_order_relaxed);
  pending.post_ns = zero_time_ ? 0 : common::now_ns();
  TxState& tx = *tx_[dst];
  {
    std::lock_guard<common::SpinMutex> guard(tx.mutex);
    tx.pending.emplace(seq, std::move(pending));
  }
  ctr_data_sent_.add();
  return common::Status::kOk;
}

void ReliableEndpoint::send_ack(Rank src, std::uint32_t seq) {
  const std::uint64_t imm =
      (static_cast<std::uint64_t>(kReliableAckKind) << 56) | seq;
  // Zero-payload sends consume no SRQ buffer at the peer, so acks still
  // flow while the peer's receive side is RNR-stalled.
  if (nic_.post_send(src, nullptr, 0, imm) == common::Status::kRetry) {
    {
      std::lock_guard<common::SpinMutex> guard(ack_backlog_mutex_);
      ack_backlog_.emplace_back(src, seq);
    }
    ack_backlog_count_.fetch_add(1, std::memory_order_release);
  }
}

bool ReliableEndpoint::on_recv(RxEvent& event) {
  if (event.kind != RxEvent::Kind::kRecv) return true;
  const std::uint8_t kind = static_cast<std::uint8_t>(event.imm >> 56);
  if (kind == kReliableAckKind) {
    const std::uint32_t seq = static_cast<std::uint32_t>(event.imm);
    if (enabled_) {
      TxState& tx = *tx_[event.src];
      std::size_t erased;
      {
        std::lock_guard<common::SpinMutex> guard(tx.mutex);
        erased = tx.pending.erase(seq);
      }
      if (erased > 0) ctr_acked_.add();
    }
    return false;
  }
  if (!enabled_) return true;

  if (event.payload.size() < kTrailerSize) {
    // A truncating corruption of the framing itself; drop like a wire loss.
    ctr_crc_dropped_.add();
    return false;
  }
  const std::size_t body = event.payload.size() - kTrailerSize;
  std::uint32_t seq = 0;
  std::uint32_t crc = 0;
  std::memcpy(&seq, event.payload.data() + body, sizeof(seq));
  std::memcpy(&crc, event.payload.data() + body + sizeof(seq), sizeof(crc));
  if (trailer_crc(event.payload.data(), body, seq, event.imm) != crc) {
    // Corrupt in flight. No ack: the sender times out and retransmits.
    ctr_crc_dropped_.add();
    AMTNET_LOG_DEBUG("reliable: dropped corrupt datagram src=", event.src,
                     " seq=", seq);
    return false;
  }

  bool duplicate = false;
  {
    RxState& rx = *rx_[event.src];
    std::lock_guard<common::SpinMutex> guard(rx.mutex);
    if (seq < rx.base || rx.seen.count(seq) != 0) {
      duplicate = true;
    } else {
      rx.seen.insert(seq);
      while (!rx.seen.empty() && *rx.seen.begin() == rx.base) {
        rx.seen.erase(rx.seen.begin());
        ++rx.base;
      }
      if (rx.seen.size() > kMaxSeenWindow) {
        // The oldest gaps are burned sequence numbers (posts the NIC
        // refused); presume everything below the oldest arrival delivered.
        rx.base = *rx.seen.begin();
      }
    }
  }
  // Ack fresh arrivals AND duplicates — a duplicate usually means our
  // previous ack died on the wire.
  send_ack(event.src, seq);
  if (duplicate) {
    ctr_dup_dropped_.add();
    return false;
  }
  event.payload.resize(body);
  event.size = body;
  return true;
}

std::size_t ReliableEndpoint::pending() const {
  std::size_t n = 0;
  for (const auto& tx : tx_) {
    std::lock_guard<common::SpinMutex> guard(tx->mutex);
    n += tx->pending.size();
  }
  return n;
}

void ReliableEndpoint::progress() {
  if (!enabled_) return;
  const std::uint64_t tick =
      tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Flush acks that hit TX back-pressure when first posted; the count keeps
  // the common (empty-backlog) case to one atomic load, no lock.
  if (ack_backlog_count_.load(std::memory_order_acquire) > 0) {
    std::vector<std::pair<Rank, std::uint32_t>> backlog;
    {
      std::lock_guard<common::SpinMutex> guard(ack_backlog_mutex_);
      backlog.swap(ack_backlog_);
    }
    ack_backlog_count_.fetch_sub(backlog.size(), std::memory_order_relaxed);
    for (const auto& [src, seq] : backlog) send_ack(src, seq);
  }

  // Time-gate the retransmit scan: nothing can newly time out within a scan
  // quantum, so at most one caller per quantum walks the TX maps; everyone
  // else returns after the two atomics above.
  std::uint64_t next = next_scan_tick_.load(std::memory_order_relaxed);
  if (tick < next) return;
  if (!next_scan_tick_.compare_exchange_strong(next, tick + scan_quantum_,
                                               std::memory_order_acq_rel)) {
    return;  // a concurrent caller won this quantum's scan
  }
  ctr_retransmit_scans_.add();

  const common::Nanos now = zero_time_ ? 0 : common::now_ns();
  for (std::size_t dst = 0; dst < tx_.size(); ++dst) {
    TxState& tx = *tx_[dst];
    std::lock_guard<common::SpinMutex> guard(tx.mutex);
    for (auto& [seq, p] : tx.pending) {
      if (tick - p.post_tick < rto_ticks(p.attempts)) continue;
      if (!zero_time_ && now - p.post_ns < rto_ns(p.attempts)) continue;
      if (p.attempts >= kMaxAttempts) {
        common::integrity_fail(
            "reliable: retransmit budget exhausted rank=", rank_,
            " dst=", dst, " seq=", seq, " imm_kind=", (p.imm >> 56),
            " size=", p.wire.size(), " attempts=", p.attempts,
            " — link presumed dead (seed-reproducible; see "
            "AMTNET_FAULT_* settings)");
      }
      if (nic_.post_send(static_cast<Rank>(dst), p.wire.data(),
                         p.wire.size(), p.imm) == common::Status::kOk) {
        p.post_tick = tick;
        p.post_ns = now;
        ++p.attempts;
        ctr_retransmits_.add();
      } else {
        // NIC is backed up (TX window / brownout): rearm the clock and stop
        // hammering this destination until the next timeout.
        p.post_tick = tick;
        p.post_ns = now;
        break;
      }
    }
  }
}

}  // namespace fabric
