#include "fabric/backend_sim.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "telemetry/trace.hpp"

namespace fabric {

namespace {

std::string nic_metric(Rank rank, const char* leaf) {
  return "fabric/nic" + std::to_string(rank) + "/" + leaf;
}

}  // namespace

SimNic::SimNic(Fabric& fabric, Rank rank, const Config& config)
    : fabric_(fabric),
      rank_(rank),
      config_(config),
      latency_ns_(static_cast<common::Nanos>(config.latency_us * 1000.0)),
      rail_bytes_per_ns_(config.bytes_per_ns() /
                         std::max(1u, config.num_rails)),
      pkt_gap_ns_(config.pkt_rate_mpps > 0.0
                      ? static_cast<common::Nanos>(1000.0 /
                                                   config.pkt_rate_mpps)
                      : 0),
      jitter_ns_(static_cast<common::Nanos>(config.jitter_us * 1000.0)),
      faults_on_(config.faults.any()),
      thr_drop_(fault_threshold(config.faults.drop)),
      thr_dup_(fault_threshold(config.faults.duplicate)),
      thr_corrupt_(fault_threshold(config.faults.corrupt)),
      thr_delay_(fault_threshold(config.faults.delay)),
      thr_brownout_(fault_threshold(config.faults.brownout)),
      thr_rnr_storm_(fault_threshold(config.faults.rnr_storm)),
      fault_delay_ns_(
          static_cast<common::Nanos>(config.faults.delay_us * 1000.0)),
      srq_(config.srq_depth, config.srq_buffer_size),
      ctr_packets_sent_(
          fabric.telemetry().counter(nic_metric(rank, "packets_sent"))),
      ctr_bytes_sent_(
          fabric.telemetry().counter(nic_metric(rank, "bytes_sent"))),
      ctr_packets_received_(
          fabric.telemetry().counter(nic_metric(rank, "packets_received"))),
      ctr_tx_window_rejects_(
          fabric.telemetry().counter(nic_metric(rank, "tx_window_rejects"))),
      ctr_rnr_stalls_(
          fabric.telemetry().counter(nic_metric(rank, "rnr_stalls"))),
      ctr_faults_dropped_(
          fabric.telemetry().counter(nic_metric(rank, "faults_dropped"))),
      ctr_faults_duplicated_(
          fabric.telemetry().counter(nic_metric(rank, "faults_duplicated"))),
      ctr_faults_corrupted_(
          fabric.telemetry().counter(nic_metric(rank, "faults_corrupted"))),
      ctr_faults_delayed_(
          fabric.telemetry().counter(nic_metric(rank, "faults_delayed"))),
      ctr_brownout_rejects_(
          fabric.telemetry().counter(nic_metric(rank, "brownout_rejects"))),
      ctr_rnr_storms_(
          fabric.telemetry().counter(nic_metric(rank, "rnr_storms"))),
      hist_wire_latency_ns_(
          fabric.telemetry().histogram(nic_metric(rank, "wire_latency_ns"))) {
  const std::size_t n = static_cast<std::size_t>(config.num_ranks) *
                        std::max(1u, config.num_rails);
  rx_channels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rx_channels_.push_back(std::make_unique<detail::Channel>());
  }
}

SimNic& SimNic::peer(Rank rank) {
  // The sim backend always hosts every rank in this process.
  return static_cast<SimNic&>(fabric_.nic(rank));
}

void SimNic::on_packet_delivered(Rank src) {
  peer(src).tx_in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
}

common::Nanos SimNic::advance_busy(std::atomic<common::Nanos>& busy,
                                   common::Nanos now, common::Nanos duration) {
  common::Nanos old_busy = busy.load(std::memory_order_relaxed);
  for (;;) {
    const common::Nanos start = std::max(now, old_busy);
    if (busy.compare_exchange_weak(old_busy, start + duration,
                                   std::memory_order_relaxed)) {
      return start;
    }
  }
}

common::Status SimNic::post_packet(Rank dst, detail::Packet packet,
                                   std::size_t wire_len) {
  if (dst >= config_.num_ranks) return common::Status::kError;

  // TX window back-pressure (QP send-queue depth).
  const auto in_flight =
      tx_in_flight_.value.fetch_add(1, std::memory_order_relaxed);
  if (in_flight >= static_cast<std::int64_t>(config_.tx_window)) {
    tx_in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
    ctr_tx_window_rejects_.add();
    return common::Status::kRetry;
  }
  packet.tx_owner = rank_;

  // Deterministic fault injection (fabric/fault.hpp). Each post gets an
  // index that keys its splitmix64 decision stream and positions it against
  // the brownout window, so the whole fault pattern replays from the seed.
  bool fault_duplicate = false;
  if (faults_on_) {
    const std::uint64_t post_idx =
        tx_post_counter_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t rng = config_.faults.seed ^
                        (0x9e3779b97f4a7c15ULL * (post_idx + 1)) ^
                        (static_cast<std::uint64_t>(rank_) << 48);
    if (packet.kind == detail::Packet::Kind::kSend) {
      // Brownout: the send queue refuses posts for a window, surfacing the
      // verbs "queue full" condition to software as Status::kRetry.
      if (post_idx < brownout_until_post_.load(std::memory_order_relaxed)) {
        tx_in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
        ctr_brownout_rejects_.add();
        return common::Status::kRetry;
      }
      if (thr_brownout_ != 0 && common::splitmix64(rng) < thr_brownout_) {
        brownout_until_post_.store(post_idx + config_.faults.brownout_posts,
                                   std::memory_order_relaxed);
        tx_in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
        ctr_brownout_rejects_.add();
        return common::Status::kRetry;
      }
      // Drop: the wire eats the datagram. The TX slot is credited back as
      // if it had been delivered; the receiver simply never sees it. Only
      // two-sided sends drop — one-sided RDMA is link-level reliable in the
      // modelled RC hardware (no software detection point exists for it).
      if (thr_drop_ != 0 && common::splitmix64(rng) < thr_drop_) {
        tx_in_flight_.value.fetch_sub(1, std::memory_order_relaxed);
        ctr_faults_dropped_.add();
        ctr_packets_sent_.add();
        ctr_bytes_sent_.add(wire_len);
        return common::Status::kOk;
      }
      if (thr_dup_ != 0 && common::splitmix64(rng) < thr_dup_) {
        fault_duplicate = true;
      }
    }
    // Corruption: a single bit flip anywhere in the payload — sends and
    // RDMA writes alike; checksums downstream must catch it.
    if (thr_corrupt_ != 0 && !packet.payload.empty() &&
        packet.payload.size() >= config_.faults.corrupt_min_size &&
        common::splitmix64(rng) < thr_corrupt_) {
      const std::uint64_t bit =
          common::splitmix64(rng) % (packet.payload.size() * 8);
      packet.payload[bit / 8] ^=
          static_cast<std::byte>(1u << (bit % 8));
      ctr_faults_corrupted_.add();
    }
    if (thr_delay_ != 0 && common::splitmix64(rng) < thr_delay_) {
      // Spike magnitudes are exponential with mean delay_us (real latency
      // spikes are heavy-tailed, not a fixed step), drawn from the same
      // counter-indexed stream so the whole pattern replays from the seed.
      packet.extra_latency += static_cast<common::Nanos>(
          common::exponential_from_bits(common::splitmix64(rng),
                                        static_cast<double>(fault_delay_ns_)));
      ctr_faults_delayed_.add();
    }
  }

  // Read responses are delivered back to THIS NIC (they only traverse the
  // remote NIC in hardware); everything else goes to the destination.
  SimNic& target =
      packet.kind == detail::Packet::Kind::kReadResp ? *this : peer(dst);
  const unsigned rails = std::max(1u, config_.num_rails);
  const unsigned rail = static_cast<unsigned>(
      tx_rail_rr_.value.fetch_add(1, std::memory_order_relaxed) % rails);
  detail::Channel& channel =
      *target.rx_channels_[static_cast<std::size_t>(packet.src) * rails +
                           rail];

  if (config_.zero_time) {
    packet.deliver_time = 0;
  } else {
    const common::Nanos now = common::now_ns();
    common::Nanos start = now;
    if (pkt_gap_ns_ > 0) {
      start = advance_busy(tx_pkt_busy_.value, now, pkt_gap_ns_);
    }
    const common::Nanos tx_ns = static_cast<common::Nanos>(
        static_cast<double>(wire_len) / rail_bytes_per_ns_);
    start = advance_busy(channel.busy_until.value, start, tx_ns);
    packet.deliver_time = start + tx_ns + latency_ns_ + packet.extra_latency;
    if (jitter_ns_ > 0) {
      std::uint64_t state =
          config_.jitter_seed ^
          (jitter_counter_.fetch_add(1, std::memory_order_relaxed) +
           (static_cast<std::uint64_t>(rank_) << 32));
      packet.deliver_time += static_cast<common::Nanos>(
          common::splitmix64(state) % static_cast<std::uint64_t>(jitter_ns_));
    }
    // The per-rail send latency charged to this packet: queueing behind the
    // rail's busy window + serialisation + propagation (+jitter).
    if (telemetry::timing_enabled()) {
      hist_wire_latency_ns_.record(
          static_cast<std::uint64_t>(packet.deliver_time - now));
    }
  }

  ctr_packets_sent_.add();
  ctr_bytes_sent_.add(wire_len);
  if (fault_duplicate) {
    // Deliver a second copy on an independently chosen rail, so the twin
    // can overtake the original. Each delivered copy credits one TX slot
    // back, so the window is charged for both.
    detail::Packet copy = packet;
    tx_in_flight_.value.fetch_add(1, std::memory_order_relaxed);
    const unsigned rail2 = static_cast<unsigned>(
        tx_rail_rr_.value.fetch_add(1, std::memory_order_relaxed) % rails);
    detail::Channel& channel2 =
        *target.rx_channels_[static_cast<std::size_t>(copy.src) * rails +
                             rail2];
    ctr_faults_duplicated_.add();
    ctr_packets_sent_.add();
    ctr_bytes_sent_.add(wire_len);
    channel2.queue.push(std::move(copy));
  }
  channel.queue.push(std::move(packet));
  return common::Status::kOk;
}

std::uint64_t SimNic::fault_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ull;
  // Compare against the top 32 bits shifted up: exact for our purposes and
  // immune to double->u64 overflow near 1.0.
  return static_cast<std::uint64_t>(p * 4294967296.0) << 32;
}

bool SimNic::rnr_storm_active() {
  if (thr_rnr_storm_ == 0) return false;
  const std::uint64_t poll_idx =
      rx_poll_counter_.fetch_add(1, std::memory_order_relaxed);
  if (poll_idx < rnr_storm_until_poll_.load(std::memory_order_relaxed)) {
    return true;
  }
  std::uint64_t rng = config_.faults.seed ^ 0x2545f4914f6cdd1dULL ^
                      (0x9e3779b97f4a7c15ULL * (poll_idx + 1)) ^
                      (static_cast<std::uint64_t>(rank_) << 48);
  if (common::splitmix64(rng) < thr_rnr_storm_) {
    rnr_storm_until_poll_.store(poll_idx + config_.faults.rnr_storm_polls,
                                std::memory_order_relaxed);
    ctr_rnr_storms_.add();
    return true;
  }
  return false;
}

common::Status SimNic::post_send(Rank dst, const void* data, std::size_t len,
                                 std::uint64_t imm) {
  if (len > srq_.buffer_size()) {
    AMTNET_LOG_ERROR("post_send: payload ", len, " exceeds SRQ buffer size ",
                     srq_.buffer_size());
    return common::Status::kError;
  }
  detail::Packet packet;
  packet.kind = detail::Packet::Kind::kSend;
  packet.src = rank_;
  packet.imm = imm;
  if (len > 0) {
    packet.payload.assign(static_cast<const std::byte*>(data),
                          static_cast<const std::byte*>(data) + len);
  }
  // Headers-on-the-wire: count a small fixed framing overhead plus payload.
  return post_packet(dst, std::move(packet), len + 32);
}

common::Status SimNic::post_read(Rank dst, const MrKey& rkey,
                                 std::size_t offset, void* local,
                                 std::size_t len, std::uint64_t imm) {
  detail::Packet packet;
  packet.kind = detail::Packet::Kind::kReadResp;
  packet.src = dst;  // the event appears to come from the remote peer
  packet.imm = imm;
  packet.mr_id = rkey.id;
  packet.mr_offset = offset;
  packet.read_dst = static_cast<std::byte*>(local);
  packet.read_len = len;
  packet.extra_latency = latency_ns_;  // the request's one-way trip
  // Round trip: request one way, payload back the other.
  return post_packet(dst, std::move(packet),
                     len + 64 /*request + response framing*/);
}

common::Status SimNic::post_write(Rank dst, const MrKey& rkey,
                                  std::size_t offset, const void* data,
                                  std::size_t len) {
  detail::Packet packet;
  packet.kind = detail::Packet::Kind::kWrite;
  packet.src = rank_;
  packet.mr_id = rkey.id;
  packet.mr_offset = offset;
  packet.payload.assign(static_cast<const std::byte*>(data),
                        static_cast<const std::byte*>(data) + len);
  return post_packet(dst, std::move(packet), len + 32);
}

common::Status SimNic::post_write_imm(Rank dst, const MrKey& rkey,
                                      std::size_t offset, const void* data,
                                      std::size_t len, std::uint64_t imm) {
  detail::Packet packet;
  packet.kind = detail::Packet::Kind::kWrite;
  packet.src = rank_;
  packet.mr_id = rkey.id;
  packet.mr_offset = offset;
  packet.imm = imm;
  packet.has_imm = true;
  packet.payload.assign(static_cast<const std::byte*>(data),
                        static_cast<const std::byte*>(data) + len);
  return post_packet(dst, std::move(packet), len + 32);
}

MrKey SimNic::register_memory(void* base, std::size_t len) {
  const std::uint64_t id =
      next_mr_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<common::SpinMutex> guard(mr_mutex_);
    mr_table_[id] = MrEntry{static_cast<std::byte*>(base), len};
  }
  return MrKey{rank_, id};
}

void SimNic::deregister_memory(const MrKey& key) {
  std::lock_guard<common::SpinMutex> guard(mr_mutex_);
  mr_table_.erase(key.id);
}

std::optional<SimNic::MrEntry> SimNic::lookup_mr(std::uint64_t id) const {
  std::lock_guard<common::SpinMutex> guard(mr_mutex_);
  const auto it = mr_table_.find(id);
  if (it == mr_table_.end()) {
    AMTNET_LOG_ERROR("RDMA write to unregistered MR id ", id, " on rank ",
                     rank_);
    return std::nullopt;
  }
  return it->second;
}

bool SimNic::rx_looks_nonempty() const {
  for (const auto& channel : rx_channels_) {
    if (!channel->queue.looks_empty()) return true;
  }
  return false;
}

std::size_t SimNic::poll_rx_sink(std::size_t max_packets, RxSink sink) {
  const std::size_t n_channels = rx_channels_.size();
  if (n_channels == 0 || max_packets == 0) return 0;
  const common::Nanos now =
      config_.zero_time ? 0 : common::now_ns();
  const std::uint64_t start =
      poll_rr_.value.fetch_add(1, std::memory_order_relaxed);
  // Injected RNR storm: refuse every buffer-consuming delivery for this
  // call, exactly as if the SRQ had drained (senders see stalled channels
  // and eventually retransmit / back off).
  const bool rnr_storm = faults_on_ && rnr_storm_active();

  std::size_t processed = 0;
  for (std::size_t i = 0; i < n_channels && processed < max_packets; ++i) {
    detail::Channel& channel =
        *rx_channels_[(start + i) % n_channels];
    std::byte* reserved = nullptr;  // SRQ buffer pre-acquired by the predicate

    auto deliverable = [&](const detail::Packet& p) {
      if (!config_.zero_time && p.deliver_time > now) return false;
      if (p.kind == detail::Packet::Kind::kSend && !p.payload.empty() &&
          reserved == nullptr) {
        if (rnr_storm) {
          ctr_rnr_stalls_.add();
          return false;
        }
        reserved = srq_.try_acquire();
        if (reserved == nullptr) {
          // RNR: stall this channel until buffers are recycled.
          ctr_rnr_stalls_.add();
          AMTNET_TRACE_INSTANT("fabric", "rnr_stall");
          return false;
        }
      }
      return true;
    };

    auto consume = [&](detail::Packet&& p) {
      ctr_packets_received_.add();
      on_packet_delivered(p.tx_owner);
      if (p.kind == detail::Packet::Kind::kReadResp) {
        // Serve the read: snapshot the remote registered region now and
        // land it in the reader's buffer, then surface completion.
        const auto entry = peer(p.src).lookup_mr(p.mr_id);
        if (entry && p.mr_offset + p.read_len <= entry->len) {
          std::memcpy(p.read_dst, entry->base + p.mr_offset, p.read_len);
        }
        RxEvent event;
        event.kind = RxEvent::Kind::kReadDone;
        event.src = p.src;
        event.imm = p.imm;
        event.size = p.read_len;
        sink(std::move(event));
      } else if (p.kind == detail::Packet::Kind::kSend) {
        RxEvent event;
        event.kind = RxEvent::Kind::kRecv;
        event.src = p.src;
        event.imm = p.imm;
        event.size = p.payload.size();
        if (!p.payload.empty()) {
          event.payload = std::move(p.payload);
          event.credit = RecvBuffer(&srq_, reserved, event.size);
          reserved = nullptr;
        }
        sink(std::move(event));
      } else {
        // RDMA write: land the data, then surface the immediate if any.
        const auto entry = lookup_mr(p.mr_id);
        if (entry && p.mr_offset + p.payload.size() <= entry->len) {
          std::memcpy(entry->base + p.mr_offset, p.payload.data(),
                      p.payload.size());
        }
        if (p.has_imm) {
          RxEvent event;
          event.kind = RxEvent::Kind::kWriteImm;
          event.src = p.src;
          event.imm = p.imm;
          event.size = p.payload.size();
          sink(std::move(event));
        }
      }
    };

    processed += channel.queue.try_drain_while(max_packets - processed,
                                               deliverable, consume);
    if (reserved != nullptr) srq_.release(reserved);
  }
  return processed;
}

NicStats SimNic::stats() const {
  // Single aggregation pass over the registry counters. Relaxed-read
  // semantics: each field is a coherent monotonic value sampled during this
  // call; the fields are not a cross-counter atomic cut (a concurrent send
  // may appear in bytes_sent but not yet in packets_sent, or vice versa).
  NicStats stats;
  stats.packets_sent = ctr_packets_sent_.value();
  stats.bytes_sent = ctr_bytes_sent_.value();
  stats.packets_received = ctr_packets_received_.value();
  stats.sends_rejected_tx_window = ctr_tx_window_rejects_.value();
  stats.rnr_stalls = ctr_rnr_stalls_.value();
  stats.faults_dropped = ctr_faults_dropped_.value();
  stats.faults_duplicated = ctr_faults_duplicated_.value();
  stats.faults_corrupted = ctr_faults_corrupted_.value();
  stats.faults_delayed = ctr_faults_delayed_.value();
  stats.brownout_rejects = ctr_brownout_rejects_.value();
  stats.rnr_storms = ctr_rnr_storms_.value();
  return stats;
}

}  // namespace fabric
