#include "fabric/fault.hpp"

#include <cstdlib>
#include <sstream>

namespace fabric {

namespace {

void env_double(const char* name, double& out) {
  if (const char* value = std::getenv(name)) out = std::atof(value);
}

void env_u64(const char* name, std::uint64_t& out) {
  if (const char* value = std::getenv(name)) {
    out = std::strtoull(value, nullptr, 0);
  }
}

void env_size(const char* name, std::size_t& out) {
  std::uint64_t v = out;
  env_u64(name, v);
  out = static_cast<std::size_t>(v);
}

}  // namespace

std::string FaultConfig::describe() const {
  std::ostringstream oss;
  oss << "drop=" << drop << " dup=" << duplicate << " corrupt=" << corrupt
      << " corrupt_min=" << corrupt_min_size << " delay=" << delay << "@"
      << delay_us << "us brownout=" << brownout << "x" << brownout_posts
      << " rnr_storm=" << rnr_storm << "x" << rnr_storm_polls
      << " seed=" << seed << " integrity=" << (integrity_on() ? 1 : 0);
  return oss.str();
}

void apply_fault_env(FaultConfig& config) {
  env_double("AMTNET_FAULT_DROP", config.drop);
  env_double("AMTNET_FAULT_DUP", config.duplicate);
  env_double("AMTNET_FAULT_CORRUPT", config.corrupt);
  env_size("AMTNET_FAULT_CORRUPT_MIN", config.corrupt_min_size);
  env_double("AMTNET_FAULT_DELAY", config.delay);
  env_double("AMTNET_FAULT_DELAY_US", config.delay_us);
  env_double("AMTNET_FAULT_BROWNOUT", config.brownout);
  env_u64("AMTNET_FAULT_BROWNOUT_POSTS", config.brownout_posts);
  env_double("AMTNET_FAULT_RNR", config.rnr_storm);
  env_u64("AMTNET_FAULT_RNR_POLLS", config.rnr_storm_polls);
  env_u64("AMTNET_FAULT_SEED", config.seed);
  if (const char* value = std::getenv("AMTNET_FAULT_INTEGRITY")) {
    config.integrity = std::atoi(value) != 0;
  }
}

}  // namespace fabric
