#include "fabric/backend_shm.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/logging.hpp"
#include "common/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define AMTNET_HAVE_POSIX_SHM 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define AMTNET_HAVE_POSIX_SHM 0
#endif

#if defined(__linux__)
#include <sys/uio.h>  // process_vm_readv / process_vm_writev (CMA)
#endif

namespace fabric {

namespace {

constexpr std::uint64_t kShmReadyMagic = 0x414d544e45543031ULL;  // "AMTNET01"
constexpr std::size_t kMrSlots = 4096;  // power of two

std::string nic_metric(Rank rank, const char* leaf) {
  return "fabric/nic" + std::to_string(rank) + "/" + leaf;
}

std::size_t align64(std::size_t v) { return (v + 63) & ~std::size_t{63}; }

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("shm backend: " + what + ": " +
                           std::strerror(errno));
}

#if defined(__linux__)
bool cma_copy(pid_t pid, void* local, std::uint64_t remote, std::size_t len,
              bool write) {
  std::size_t done = 0;
  while (done < len) {
    iovec liov{static_cast<std::byte*>(local) + done, len - done};
    iovec riov{reinterpret_cast<void*>(remote + done), len - done};
    const ssize_t n = write ? process_vm_writev(pid, &liov, 1, &riov, 1, 0)
                            : process_vm_readv(pid, &liov, 1, &riov, 1, 0);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}
#endif

}  // namespace

bool shm_available() {
#if AMTNET_HAVE_POSIX_SHM
  static const bool available = [] {
    const std::string name =
        "/amtnet-probe-" + std::to_string(::getpid());
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) return false;
    ::close(fd);
    ::shm_unlink(name.c_str());
    return true;
  }();
  return available;
#else
  return false;
#endif
}

namespace detail {

#if AMTNET_HAVE_POSIX_SHM

ShmDomain::ShmDomain(const Config& config) : config_(config) {
  if (!shm_available()) {
    throw std::runtime_error("shm backend: POSIX shared memory unavailable");
  }
  if (config_.shm_session.empty()) {
    static std::atomic<std::uint64_t> counter{0};
    session_ = "amtnet-" + std::to_string(::getpid()) + "-" +
               std::to_string(counter.fetch_add(1));
  } else {
    session_ = config_.shm_session;
  }
  const char* ff = std::getenv("AMTNET_SHM_FORCE_FALLBACK");
  force_fallback_ = ff != nullptr && ff[0] != '\0' && ff[0] != '0';
  std::uint64_t seed = static_cast<std::uint64_t>(::getpid()) ^
                       0x5bd1e995u;
  probe_word_ = common::splitmix64(seed);

  ring_bytes_ = ShmRing::footprint(config_.shm_ring_depth,
                                   config_.srq_buffer_size);
  pair_bytes_ = align64(sizeof(ShmPairHeader)) + 2 * ring_bytes_;
  rank_bytes_ = align64(sizeof(ShmRankHeader) + kMrSlots * sizeof(ShmMrSlot));

  const std::size_t n = config_.num_ranks;
  pair_segments_.resize(n * (n - 1) / 2 + 1);
  pair_bases_.resize(pair_segments_.size(), nullptr);
  rank_segments_.resize(n);
  rank_bases_ = std::make_unique<std::atomic<ShmRankHeader*>[]>(n);
  peer_modes_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank_bases_[i].store(nullptr, std::memory_order_relaxed);
    peer_modes_[i].store(static_cast<std::uint8_t>(PeerMode::kUnknown),
                         std::memory_order_relaxed);
  }

  // Rank segments first (pid + MR table + CMA probe word), so that by the
  // time any peer can see our pair rings it can also resolve us.
  for (Rank r = 0; r < config_.num_ranks; ++r) {
    if (!config_.rank_is_local(r)) continue;
    Segment seg = open_segment(session_ + "-r" + std::to_string(r),
                               rank_bytes_, /*create=*/true);
    auto* header = static_cast<ShmRankHeader*>(seg.base);
    header->pid.store(::getpid(), std::memory_order_relaxed);
    header->probe_addr.store(reinterpret_cast<std::uint64_t>(&probe_word_),
                             std::memory_order_relaxed);
    header->probe_value.store(probe_word_, std::memory_order_relaxed);
    header->mr_slots = kMrSlots;
    header->magic.store(kShmReadyMagic, std::memory_order_release);
    rank_segments_[r] = seg;
    rank_bases_[r].store(header, std::memory_order_release);
  }

  // Pair segments for every pair that touches a local rank. The lower rank
  // creates; the higher attaches with a bounded wait, so in multi-process
  // mode construction doubles as the bootstrap rendezvous.
  for (Rank a = 0; a < config_.num_ranks; ++a) {
    for (Rank b = a + 1; b < config_.num_ranks; ++b) {
      if (config_.rank_is_local(a) || config_.rank_is_local(b)) {
        map_pair(a, b);
      }
    }
  }
}

ShmDomain::~ShmDomain() {
  auto drop = [](Segment& seg) {
    if (seg.base != nullptr) ::munmap(seg.base, seg.size);
    if (seg.created) ::shm_unlink(seg.name.c_str());
    seg.base = nullptr;
  };
  for (auto& seg : pair_segments_) drop(seg);
  for (auto& seg : rank_segments_) drop(seg);
}

std::size_t ShmDomain::pair_index(Rank a, Rank b) const {
  const std::size_t lo = std::min(a, b);
  const std::size_t hi = std::max(a, b);
  const std::size_t n = config_.num_ranks;
  return lo * n - lo * (lo + 1) / 2 + (hi - lo - 1);
}

ShmDomain::Segment ShmDomain::open_segment(const std::string& short_name,
                                           std::size_t size, bool create) {
  const std::string name = "/" + short_name;
  Segment seg;
  seg.name = name;
  seg.size = size;
  seg.created = create;
  int fd = -1;
  if (create) {
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0 && errno == EEXIST) {
      // Stale segment from a crashed run reusing the session name.
      ::shm_unlink(name.c_str());
      fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    }
    if (fd < 0) throw_errno("shm_open(create " + name + ")");
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw_errno("ftruncate(" + name + ")");
    }
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(config_.shm_bootstrap_timeout_s);
    for (;;) {
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd >= 0) {
        // The creator may not have sized the segment yet.
        struct stat st {};
        if (::fstat(fd, &st) == 0 &&
            static_cast<std::size_t>(st.st_size) >= size) {
          break;
        }
        ::close(fd);
        fd = -1;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error("shm backend: timed out waiting for peer "
                                 "segment " + name +
                                 " (is every rank launched?)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (create) ::shm_unlink(name.c_str());
    throw_errno("mmap(" + name + ")");
  }
  seg.base = base;
  return seg;
}

void ShmDomain::map_pair(Rank lo, Rank hi) {
  const bool i_create = config_.rank_is_local(lo);
  Segment seg = open_segment(
      session_ + "-p" + std::to_string(lo) + "x" + std::to_string(hi),
      pair_bytes_, i_create);
  auto* header = static_cast<ShmPairHeader*>(seg.base);
  if (i_create) {
    header->ring_offset[0] = align64(sizeof(ShmPairHeader));
    header->ring_offset[1] = header->ring_offset[0] + ring_bytes_;
    for (int dir = 0; dir < 2; ++dir) {
      auto* ring = reinterpret_cast<ShmRing*>(
          static_cast<std::byte*>(seg.base) + header->ring_offset[dir]);
      ring->init(config_.shm_ring_depth, config_.srq_buffer_size);
    }
    header->magic.store(kShmReadyMagic, std::memory_order_release);
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(config_.shm_bootstrap_timeout_s);
    while (header->magic.load(std::memory_order_acquire) != kShmReadyMagic) {
      if (std::chrono::steady_clock::now() >= deadline) {
        throw std::runtime_error(
            "shm backend: timed out waiting for pair segment init " +
            seg.name);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const std::size_t idx = pair_index(lo, hi);
  pair_segments_[idx] = seg;
  pair_bases_[idx] = header;
}

ShmRing* ShmDomain::ring(Rank from, Rank to) {
  ShmPairHeader* header = pair_bases_[pair_index(from, to)];
  if (header == nullptr) {
    AMTNET_LOG_ERROR("shm backend: ring ", from, "->", to,
                     " is not mapped in this process");
    std::abort();
  }
  const int dir = from < to ? 0 : 1;
  return reinterpret_cast<ShmRing*>(reinterpret_cast<std::byte*>(header) +
                                    header->ring_offset[dir]);
}

ShmRankHeader* ShmDomain::rank_header(Rank r) {
  ShmRankHeader* cached = rank_bases_[r].load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  std::lock_guard<common::SpinMutex> guard(attach_mutex_);
  cached = rank_bases_[r].load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  Segment seg = open_segment(session_ + "-r" + std::to_string(r), rank_bytes_,
                             /*create=*/false);
  auto* header = static_cast<ShmRankHeader*>(seg.base);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(config_.shm_bootstrap_timeout_s);
  while (header->magic.load(std::memory_order_acquire) != kShmReadyMagic) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error(
          "shm backend: timed out waiting for rank segment init " + seg.name);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rank_segments_[r] = seg;
  rank_bases_[r].store(header, std::memory_order_release);
  return header;
}

ShmDomain::PeerMode ShmDomain::peer_mode(Rank r) {
  const auto cached =
      static_cast<PeerMode>(peer_modes_[r].load(std::memory_order_acquire));
  if (cached != PeerMode::kUnknown) return cached;
  ShmRankHeader* header = rank_header(r);
  PeerMode mode = PeerMode::kFallback;
  const auto pid =
      static_cast<pid_t>(header->pid.load(std::memory_order_relaxed));
  if (force_fallback_) {
    // Forced before the same-process check, so single-process tests reach
    // the segmented-ring path too.
  } else if (pid == ::getpid()) {
    mode = PeerMode::kDirect;
  } else {
#if defined(__linux__)
    // Prove cross-memory attach works by reading the peer's published probe
    // word out of its private memory.
    std::uint64_t value = 0;
    if (cma_copy(pid, &value,
                 header->probe_addr.load(std::memory_order_relaxed),
                 sizeof(value), /*write=*/false) &&
        value == header->probe_value.load(std::memory_order_relaxed)) {
      mode = PeerMode::kCma;
    }
#endif
  }
  peer_modes_[r].store(static_cast<std::uint8_t>(mode),
                       std::memory_order_release);
  return mode;
}

bool ShmDomain::lookup_mr(Rank r, std::uint64_t id, std::uint64_t& vaddr,
                          std::uint64_t& len) {
  ShmRankHeader* header = rank_header(r);
  ShmMrSlot& slot = header->table()[id & (header->mr_slots - 1)];
  if (slot.id.load(std::memory_order_acquire) != id) return false;
  vaddr = slot.vaddr.load(std::memory_order_relaxed);
  len = slot.len.load(std::memory_order_relaxed);
  // Re-check: a concurrent dereg+re-register of the slot would have changed
  // the id before we read a torn vaddr/len pair.
  return slot.id.load(std::memory_order_acquire) == id;
}

#else  // !AMTNET_HAVE_POSIX_SHM

ShmDomain::ShmDomain(const Config& config) : config_(config) {
  throw std::runtime_error(
      "shm backend: POSIX shared memory is not available on this platform");
}
ShmDomain::~ShmDomain() = default;
std::size_t ShmDomain::pair_index(Rank, Rank) const { return 0; }
ShmDomain::Segment ShmDomain::open_segment(const std::string&, std::size_t,
                                           bool) {
  return {};
}
void ShmDomain::map_pair(Rank, Rank) {}
ShmRing* ShmDomain::ring(Rank, Rank) { return nullptr; }
ShmRankHeader* ShmDomain::rank_header(Rank) { return nullptr; }
ShmDomain::PeerMode ShmDomain::peer_mode(Rank) { return PeerMode::kFallback; }
bool ShmDomain::lookup_mr(Rank, std::uint64_t, std::uint64_t&,
                          std::uint64_t&) {
  return false;
}

#endif  // AMTNET_HAVE_POSIX_SHM

}  // namespace detail

// ---------------------------------------------------------------------------
// ShmNic

ShmNic::ShmNic(Fabric& fabric, Rank rank, const Config& config,
               detail::ShmDomain& domain)
    : fabric_(fabric),
      rank_(rank),
      config_(config),
      domain_(domain),
      faults_on_(config.faults.drop > 0.0 || config.faults.duplicate > 0.0 ||
                 config.faults.corrupt > 0.0),
      thr_drop_(fault_threshold(config.faults.drop)),
      thr_dup_(fault_threshold(config.faults.duplicate)),
      thr_corrupt_(fault_threshold(config.faults.corrupt)),
      ctr_packets_sent_(
          fabric.telemetry().counter(nic_metric(rank, "packets_sent"))),
      ctr_bytes_sent_(
          fabric.telemetry().counter(nic_metric(rank, "bytes_sent"))),
      ctr_packets_received_(
          fabric.telemetry().counter(nic_metric(rank, "packets_received"))),
      ctr_tx_window_rejects_(
          fabric.telemetry().counter(nic_metric(rank, "tx_window_rejects"))),
      ctr_faults_dropped_(
          fabric.telemetry().counter(nic_metric(rank, "faults_dropped"))),
      ctr_faults_duplicated_(
          fabric.telemetry().counter(nic_metric(rank, "faults_duplicated"))),
      ctr_faults_corrupted_(
          fabric.telemetry().counter(nic_metric(rank, "faults_corrupted"))) {
  peers_.reserve(config.num_ranks);
  for (Rank r = 0; r < config.num_ranks; ++r) {
    peers_.push_back(std::make_unique<PeerTx>());
  }
}

ShmNic::~ShmNic() = default;

std::uint64_t ShmNic::fault_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ull;
  return static_cast<std::uint64_t>(p * 4294967296.0) << 32;
}

bool ShmNic::inject_faults(std::vector<std::byte>& payload, bool& duplicate) {
  if (!faults_on_) return false;
  const std::uint64_t post_idx =
      tx_post_counter_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t rng = config_.faults.seed ^
                      (0x9e3779b97f4a7c15ULL * (post_idx + 1)) ^
                      (static_cast<std::uint64_t>(rank_) << 48);
  if (thr_drop_ != 0 && common::splitmix64(rng) < thr_drop_) {
    ctr_faults_dropped_.add();
    return true;
  }
  if (thr_dup_ != 0 && common::splitmix64(rng) < thr_dup_) {
    duplicate = true;
  }
  if (thr_corrupt_ != 0 && !payload.empty() &&
      payload.size() >= config_.faults.corrupt_min_size &&
      common::splitmix64(rng) < thr_corrupt_) {
    const std::uint64_t bit =
        common::splitmix64(rng) % (payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    ctr_faults_corrupted_.add();
  }
  return false;
}

bool ShmNic::push_now_locked(detail::ShmRing& ring, const OutRecord& rec) {
  std::uint64_t pos = 0;
  detail::ShmSlot* slot = ring.try_claim(pos);
  if (slot == nullptr) return false;
  slot->record = rec.header;
  if (!rec.payload.empty()) {
    std::memcpy(slot->payload(), rec.payload.data(), rec.payload.size());
  }
  ring.publish(slot, pos);
  ctr_packets_sent_.add();
  ctr_bytes_sent_.add(rec.header.len + 32);
  return true;
}

void ShmNic::flush_pending(Rank dst) {
  PeerTx& peer = *peers_[dst];
  if (peer.pending.empty()) return;  // racy fast-out; rechecked under lock
  std::lock_guard<common::SpinMutex> guard(peer.mutex);
  detail::ShmRing& ring = *domain_.ring(rank_, dst);
  while (!peer.pending.empty()) {
    if (!push_now_locked(ring, peer.pending.front())) return;
    peer.pending.pop_front();
  }
}

bool ShmNic::push_record(Rank dst, OutRecord&& rec, bool stash) {
  PeerTx& peer = *peers_[dst];
  std::lock_guard<common::SpinMutex> guard(peer.mutex);
  detail::ShmRing& ring = *domain_.ring(rank_, dst);
  while (!peer.pending.empty()) {
    if (!push_now_locked(ring, peer.pending.front())) break;
    peer.pending.pop_front();
  }
  if (peer.pending.empty() && push_now_locked(ring, rec)) return true;
  if (stash) {
    // Committed mid-operation records queue behind whatever is already
    // staged, preserving FIFO order on the ring. Telemetry counts at actual
    // ring insertion (push_now_locked), so nothing is counted here.
    peer.pending.push_back(std::move(rec));
    return true;
  }
  return false;
}

void ShmNic::deliver_self(RxEvent&& event) {
  ctr_packets_sent_.add();
  ctr_bytes_sent_.add(event.size + 32);
  self_events_.push(std::move(event));
}

common::Status ShmNic::post_send(Rank dst, const void* data, std::size_t len,
                                 std::uint64_t imm) {
  if (dst >= config_.num_ranks) return common::Status::kError;
  if (len > config_.srq_buffer_size) {
    AMTNET_LOG_ERROR("post_send: payload ", len,
                     " exceeds shm ring slot size ", config_.srq_buffer_size);
    return common::Status::kError;
  }
  std::vector<std::byte> payload;
  if (len > 0) {
    payload.assign(static_cast<const std::byte*>(data),
                   static_cast<const std::byte*>(data) + len);
  }
  bool duplicate = false;
  if (inject_faults(payload, duplicate)) {
    // Dropped "on the wire": pretend success, the receiver never sees it.
    ctr_packets_sent_.add();
    ctr_bytes_sent_.add(len + 32);
    return common::Status::kOk;
  }

  if (dst == rank_) {
    RxEvent event;
    event.kind = RxEvent::Kind::kRecv;
    event.src = rank_;
    event.imm = imm;
    event.size = payload.size();
    if (duplicate) {
      RxEvent copy;
      copy.kind = event.kind;
      copy.src = event.src;
      copy.imm = event.imm;
      copy.size = event.size;
      copy.payload = payload;
      ctr_faults_duplicated_.add();
      deliver_self(std::move(copy));
    }
    event.payload = std::move(payload);
    deliver_self(std::move(event));
    return common::Status::kOk;
  }

  OutRecord rec;
  rec.header.kind = detail::ShmRecord::kEager;
  rec.header.len = static_cast<std::uint32_t>(payload.size());
  rec.header.imm = imm;
  rec.payload = std::move(payload);
  OutRecord dup_rec;
  if (duplicate) {
    dup_rec.header = rec.header;
    dup_rec.payload = rec.payload;
  }
  if (!push_record(dst, std::move(rec), /*stash=*/false)) {
    ctr_tx_window_rejects_.add();
    return common::Status::kRetry;
  }
  if (duplicate && push_record(dst, std::move(dup_rec), /*stash=*/false)) {
    ctr_faults_duplicated_.add();
  }
  return common::Status::kOk;
}

common::Status ShmNic::write_common(Rank dst, const MrKey& rkey,
                                    std::size_t offset, const void* data,
                                    std::size_t len, bool has_imm,
                                    std::uint64_t imm) {
  if (dst >= config_.num_ranks) return common::Status::kError;
  std::uint64_t vaddr = 0;
  std::uint64_t mr_len = 0;
  if (!domain_.lookup_mr(dst, rkey.id, vaddr, mr_len)) {
    AMTNET_LOG_ERROR("RDMA write to unregistered MR id ", rkey.id,
                     " on rank ", dst);
    return common::Status::kError;
  }
  if (offset + len > mr_len) {
    AMTNET_LOG_ERROR("RDMA write overruns MR id ", rkey.id, ": offset ",
                     offset, " + len ", len, " > ", mr_len);
    return common::Status::kError;
  }

  if (dst == rank_) {
    std::memcpy(reinterpret_cast<std::byte*>(vaddr) + offset, data, len);
    if (has_imm) {
      RxEvent event;
      event.kind = RxEvent::Kind::kWriteImm;
      event.src = rank_;
      event.imm = imm;
      event.size = len;
      deliver_self(std::move(event));
    } else {
      ctr_packets_sent_.add();
      ctr_bytes_sent_.add(len + 32);
    }
    return common::Status::kOk;
  }

  const auto mode = domain_.peer_mode(dst);
  if (mode != detail::ShmDomain::PeerMode::kFallback) {
    if (mode == detail::ShmDomain::PeerMode::kDirect) {
      std::memcpy(reinterpret_cast<std::byte*>(vaddr) + offset, data, len);
    } else {
#if defined(__linux__)
      const auto pid = static_cast<pid_t>(
          domain_.rank_header(dst)->pid.load(std::memory_order_relaxed));
      if (!cma_copy(pid, const_cast<void*>(data), vaddr + offset, len,
                    /*write=*/true)) {
        AMTNET_LOG_ERROR("CMA write to rank ", dst, " failed: ",
                         std::strerror(errno));
        return common::Status::kError;
      }
#else
      return common::Status::kError;
#endif
    }
    ctr_bytes_sent_.add(len);
    // The data has already landed; the notice only carries the completion
    // event, so a momentarily full ring stages it rather than failing the
    // (unrepeatable) operation.
    OutRecord rec;
    rec.header.kind = detail::ShmRecord::kWriteNotice;
    rec.header.flags = detail::ShmRecord::kFlagLast |
                       (has_imm ? detail::ShmRecord::kFlagImm : 0);
    rec.header.imm = imm;
    rec.header.total_len = len;
    push_record(dst, std::move(rec), /*stash=*/true);
    return common::Status::kOk;
  }

  // Fallback: segment the payload into ring records; the target's poll loop
  // lands them in its registered region. The first fragment may refuse with
  // kRetry (TX-window semantics); once any fragment is in, the rest are
  // committed and stage on a full ring instead.
  const std::size_t cap = config_.srq_buffer_size;
  const std::uint64_t write_id =
      next_write_id_.fetch_add(1, std::memory_order_relaxed);
  std::size_t off = 0;
  bool first = true;
  do {
    const std::size_t n = std::min(cap, len - off);
    OutRecord rec;
    rec.header.kind = detail::ShmRecord::kWriteFrag;
    rec.header.len = static_cast<std::uint32_t>(n);
    rec.header.mr_id = rkey.id;
    rec.header.offset = offset + off;
    rec.header.op_id = write_id;
    if (n > 0) {
      rec.payload.assign(static_cast<const std::byte*>(data) + off,
                         static_cast<const std::byte*>(data) + off + n);
    }
    off += n;
    if (off >= len) {
      rec.header.flags = detail::ShmRecord::kFlagLast |
                         (has_imm ? detail::ShmRecord::kFlagImm : 0);
      rec.header.imm = imm;
      rec.header.total_len = len;
    }
    if (!push_record(dst, std::move(rec), /*stash=*/!first)) {
      ctr_tx_window_rejects_.add();
      return common::Status::kRetry;
    }
    first = false;
  } while (off < len);
  return common::Status::kOk;
}

common::Status ShmNic::post_write(Rank dst, const MrKey& rkey,
                                  std::size_t offset, const void* data,
                                  std::size_t len) {
  return write_common(dst, rkey, offset, data, len, /*has_imm=*/false, 0);
}

common::Status ShmNic::post_write_imm(Rank dst, const MrKey& rkey,
                                      std::size_t offset, const void* data,
                                      std::size_t len, std::uint64_t imm) {
  return write_common(dst, rkey, offset, data, len, /*has_imm=*/true, imm);
}

common::Status ShmNic::post_read(Rank dst, const MrKey& rkey,
                                 std::size_t offset, void* local,
                                 std::size_t len, std::uint64_t imm) {
  if (dst >= config_.num_ranks) return common::Status::kError;
  std::uint64_t vaddr = 0;
  std::uint64_t mr_len = 0;
  if (!domain_.lookup_mr(dst, rkey.id, vaddr, mr_len) ||
      offset + len > mr_len) {
    AMTNET_LOG_ERROR("RDMA read of invalid MR id ", rkey.id, " on rank ",
                     dst);
    return common::Status::kError;
  }

  const auto mode =
      dst == rank_ ? detail::ShmDomain::PeerMode::kDirect
                   : domain_.peer_mode(dst);
  if (mode != detail::ShmDomain::PeerMode::kFallback) {
    if (mode == detail::ShmDomain::PeerMode::kDirect) {
      std::memcpy(local, reinterpret_cast<std::byte*>(vaddr) + offset, len);
    } else {
#if defined(__linux__)
      const auto pid = static_cast<pid_t>(
          domain_.rank_header(dst)->pid.load(std::memory_order_relaxed));
      if (!cma_copy(pid, local, vaddr + offset, len, /*write=*/false)) {
        AMTNET_LOG_ERROR("CMA read from rank ", dst, " failed: ",
                         std::strerror(errno));
        return common::Status::kError;
      }
#else
      return common::Status::kError;
#endif
    }
    RxEvent event;
    event.kind = RxEvent::Kind::kReadDone;
    event.src = dst;
    event.imm = imm;
    event.size = len;
    deliver_self(std::move(event));
    return common::Status::kOk;
  }

  // Fallback: ask the target's poll loop to stream the region back.
  const std::uint64_t read_id =
      next_read_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<common::SpinMutex> guard(reads_mutex_);
    pending_reads_[read_id] =
        PendingRead{static_cast<std::byte*>(local), imm, len};
  }
  OutRecord rec;
  rec.header.kind = detail::ShmRecord::kReadReq;
  rec.header.mr_id = rkey.id;
  rec.header.offset = offset;
  rec.header.total_len = len;
  rec.header.op_id = read_id;
  if (!push_record(dst, std::move(rec), /*stash=*/false)) {
    std::lock_guard<common::SpinMutex> guard(reads_mutex_);
    pending_reads_.erase(read_id);
    ctr_tx_window_rejects_.add();
    return common::Status::kRetry;
  }
  return common::Status::kOk;
}

MrKey ShmNic::register_memory(void* base, std::size_t len) {
  detail::ShmRankHeader* header = domain_.rank_header(rank_);
  const std::uint64_t id =
      next_mr_id_.fetch_add(1, std::memory_order_relaxed);
  detail::ShmMrSlot& slot = header->table()[id & (header->mr_slots - 1)];
  if (slot.id.load(std::memory_order_acquire) != 0) {
    AMTNET_LOG_ERROR("shm MR window exhausted: slot for id ", id,
                     " still holds a live registration (", header->mr_slots,
                     " concurrent regions max)");
    std::abort();
  }
  slot.vaddr.store(reinterpret_cast<std::uint64_t>(base),
                   std::memory_order_relaxed);
  slot.len.store(len, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_release);
  return MrKey{rank_, id};
}

void ShmNic::deregister_memory(const MrKey& key) {
  detail::ShmRankHeader* header = domain_.rank_header(rank_);
  detail::ShmMrSlot& slot =
      header->table()[key.id & (header->mr_slots - 1)];
  if (slot.id.load(std::memory_order_acquire) == key.id) {
    slot.id.store(0, std::memory_order_release);
  }
}

void ShmNic::serve_read_request(Rank requester, const detail::ShmRecord& req) {
  std::uint64_t vaddr = 0;
  std::uint64_t mr_len = 0;
  const bool valid = domain_.lookup_mr(rank_, req.mr_id, vaddr, mr_len) &&
                     req.offset + req.total_len <= mr_len;
  if (!valid) {
    AMTNET_LOG_ERROR("shm read request for invalid MR id ", req.mr_id);
  }
  const std::size_t total = valid ? req.total_len : 0;
  const std::size_t cap = config_.srq_buffer_size;
  const auto* src = reinterpret_cast<const std::byte*>(vaddr) + req.offset;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(cap, total - off);
    OutRecord rec;
    rec.header.kind = detail::ShmRecord::kReadFrag;
    rec.header.len = static_cast<std::uint32_t>(n);
    rec.header.offset = off;
    rec.header.op_id = req.op_id;
    if (n > 0) rec.payload.assign(src + off, src + off + n);
    off += n;
    if (off >= total) {
      rec.header.flags = detail::ShmRecord::kFlagLast;
      rec.header.total_len = total;  // 0 signals "invalid MR" to the reader
    }
    // Service responses are committed; a full ring stages them (they drain
    // on the requester's subsequent polls of our shared ring).
    push_record(requester, std::move(rec), /*stash=*/true);
  } while (off < total);
}

void ShmNic::handle_record(Rank src, const detail::ShmRecord& rec,
                           const std::byte* payload, RxSink& sink) {
  switch (rec.kind) {
    case detail::ShmRecord::kEager: {
      RxEvent event;
      event.kind = RxEvent::Kind::kRecv;
      event.src = src;
      event.imm = rec.imm;
      event.size = rec.len;
      if (rec.len > 0) {
        event.payload.assign(payload, payload + rec.len);
      }
      sink(std::move(event));
      break;
    }
    case detail::ShmRecord::kWriteNotice: {
      if ((rec.flags & detail::ShmRecord::kFlagImm) != 0) {
        RxEvent event;
        event.kind = RxEvent::Kind::kWriteImm;
        event.src = src;
        event.imm = rec.imm;
        event.size = rec.total_len;
        sink(std::move(event));
      }
      break;
    }
    case detail::ShmRecord::kWriteFrag: {
      // Fragments of one write may be consumed by several concurrent
      // pollers, so both the MR copy and the progress accounting happen
      // under writes_mutex_: whichever thread lands the final byte (not
      // necessarily the one holding the kFlagLast fragment) surfaces the
      // kWriteImm, and only after every fragment is in place.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(src) << 48) ^ rec.op_id;
      RxEvent done;
      bool complete = false;
      bool has_imm = false;
      {
        std::lock_guard<common::SpinMutex> guard(writes_mutex_);
        PendingWrite& pending = pending_writes_[key];
        std::uint64_t vaddr = 0;
        std::uint64_t mr_len = 0;
        if (domain_.lookup_mr(rank_, rec.mr_id, vaddr, mr_len) &&
            rec.offset + rec.len <= mr_len) {
          if (rec.len > 0) {
            std::memcpy(reinterpret_cast<std::byte*>(vaddr) + rec.offset,
                        payload, rec.len);
          }
        } else {
          AMTNET_LOG_ERROR("shm write fragment for invalid MR id ",
                           rec.mr_id);
        }
        pending.received += rec.len;
        if ((rec.flags & detail::ShmRecord::kFlagLast) != 0) {
          pending.got_last = true;
          pending.total = rec.total_len;
          pending.has_imm = (rec.flags & detail::ShmRecord::kFlagImm) != 0;
          pending.imm = rec.imm;
        }
        if (pending.got_last && pending.received >= pending.total) {
          done.kind = RxEvent::Kind::kWriteImm;
          done.src = src;
          done.imm = pending.imm;
          done.size = pending.total;
          has_imm = pending.has_imm;
          complete = true;
          pending_writes_.erase(key);
        }
      }
      if (complete && has_imm) sink(std::move(done));
      break;
    }
    case detail::ShmRecord::kReadReq: {
      serve_read_request(src, rec);
      break;
    }
    case detail::ShmRecord::kReadFrag: {
      RxEvent done;
      bool complete = false;
      {
        std::lock_guard<common::SpinMutex> guard(reads_mutex_);
        auto it = pending_reads_.find(rec.op_id);
        if (it == pending_reads_.end()) break;  // duplicate/stale
        PendingRead& pending = it->second;
        if (rec.len > 0) {
          // Copy under the lock so a concurrent poller processing the last
          // fragment cannot complete the read before this lands.
          std::memcpy(pending.dst + rec.offset, payload, rec.len);
        }
        pending.received += rec.len;
        if ((rec.flags & detail::ShmRecord::kFlagLast) != 0) {
          pending.got_last = true;
          pending.served = rec.total_len;
        }
        if (pending.got_last && pending.received >= pending.served) {
          // served < total means the target refused the request (stale or
          // deregistered MR): the destination buffer was never filled, so
          // surface a zero-size completion instead of claiming the full
          // read succeeded.
          const bool failed = pending.served < pending.total;
          if (failed) {
            AMTNET_LOG_ERROR("shm read ", rec.op_id, " from rank ", src,
                             " failed at the target (MR invalid or "
                             "deregistered); completing with size 0 of ",
                             pending.total, " requested bytes");
          }
          done.kind = RxEvent::Kind::kReadDone;
          done.src = src;
          done.imm = pending.imm;
          done.size = failed ? 0 : pending.total;
          complete = true;
          pending_reads_.erase(it);
        }
      }
      if (complete) sink(std::move(done));
      break;
    }
    default:
      AMTNET_LOG_ERROR("shm ring: unknown record kind ",
                       static_cast<int>(rec.kind));
      break;
  }
}

std::size_t ShmNic::poll_rx_sink(std::size_t max_packets, RxSink sink) {
  if (max_packets == 0) return 0;
  // Retry anything staged while its ring was full, before draining RX, so a
  // pair of busy localities cannot wedge each other's service responses.
  for (Rank r = 0; r < config_.num_ranks; ++r) {
    if (r != rank_) flush_pending(r);
  }

  std::size_t processed = self_events_.try_drain(
      max_packets, [&](RxEvent&& event) {
        ctr_packets_received_.add();
        sink(std::move(event));
      });

  const Rank n = config_.num_ranks;
  if (n <= 1) return processed;
  const std::uint64_t start =
      poll_rr_.fetch_add(1, std::memory_order_relaxed);
  for (Rank i = 0; i < n && processed < max_packets; ++i) {
    const Rank src = static_cast<Rank>((start + i) % n);
    if (src == rank_) continue;
    detail::ShmRing& ring = *domain_.ring(src, rank_);
    while (processed < max_packets) {
      std::uint64_t pos = 0;
      detail::ShmSlot* slot = ring.try_consume(pos);
      if (slot == nullptr) break;
      const detail::ShmRecord rec = slot->record;
      // Handle straight out of the slot: the payload is copied exactly once
      // (into the event / MR region), then the slot is recycled.
      handle_record(src, rec, slot->payload(), sink);
      ring.release(slot, pos);
      ctr_packets_received_.add();
      ++processed;
    }
  }
  return processed;
}

bool ShmNic::rx_looks_nonempty() const {
  if (!self_events_.looks_empty()) return true;
  for (Rank r = 0; r < config_.num_ranks; ++r) {
    if (r == rank_) continue;
    if (domain_.ring(r, rank_)->looks_nonempty()) return true;
  }
  return false;
}

NicStats ShmNic::stats() const {
  NicStats stats;
  stats.packets_sent = ctr_packets_sent_.value();
  stats.bytes_sent = ctr_bytes_sent_.value();
  stats.packets_received = ctr_packets_received_.value();
  stats.sends_rejected_tx_window = ctr_tx_window_rejects_.value();
  stats.faults_dropped = ctr_faults_dropped_.value();
  stats.faults_duplicated = ctr_faults_duplicated_.value();
  stats.faults_corrupted = ctr_faults_corrupted_.value();
  return stats;
}

}  // namespace fabric
