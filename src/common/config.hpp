// Tiny "key=value,key=value" config-string parser used by benchmark harnesses
// and the parcelport factory, so every paper configuration (Table 1 names
// like lci_psr_cq_pin_i) can be selected from a single string.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace common {

class KvConfig {
 public:
  KvConfig() = default;
  /// Parses "a=1,b=foo". Whitespace around keys/values is trimmed.
  static KvConfig parse(const std::string& text);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;
  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

/// Splits on a delimiter, trimming whitespace from each piece.
std::vector<std::string> split_trim(const std::string& text, char delim);

// ---- introspectable knob registry -----------------------------------------
//
// Every tuning surface of the stack — AMTNET_* environment variables,
// parcelport config-name tokens, CMake options — is declared here once, with
// its default, what it does, and which benchmark demonstrates it. The
// experiment driver enumerates this table to build config matrices and
// `bench_suite --render` generates the knob tables in docs/tuning.md from
// it, so the documentation cannot drift from the knobs the code reads
// (tests/test_expdriver.cpp asserts every AMTNET_* getenv in the tree is
// registered).

struct Knob {
  enum class Kind { kEnv, kConfigToken, kCMake };
  Kind kind;
  std::string name;           // "AMTNET_BENCH_SCALE", "pd<N>", ...
  std::string default_value;  // human-readable default
  std::string description;
  std::string demo;           // benchmark / suite that demonstrates it
};

/// The full knob table, in stable documentation order (env vars, then
/// config tokens, then CMake options).
const std::vector<Knob>& knob_registry();

}  // namespace common
