// Minimal leveled logging. Level is read once from the AMTNET_LOG environment
// variable (error|warn|info|debug); default is warn. Logging is off the hot
// path everywhere — debug-level calls compile to a level check only.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace common {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level() noexcept;
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) <= static_cast<int>(log_level())) {
    log_line(level, detail::format_parts(std::forward<Args>(args)...));
  }
}

#define AMTNET_LOG_ERROR(...) \
  ::common::log(::common::LogLevel::kError, __VA_ARGS__)
#define AMTNET_LOG_WARN(...) \
  ::common::log(::common::LogLevel::kWarn, __VA_ARGS__)
#define AMTNET_LOG_INFO(...) \
  ::common::log(::common::LogLevel::kInfo, __VA_ARGS__)
#define AMTNET_LOG_DEBUG(...) \
  ::common::log(::common::LogLevel::kDebug, __VA_ARGS__)

}  // namespace common
