#include "common/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace common {

unsigned hardware_core_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_current_thread(unsigned core) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % hardware_core_count(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

void set_current_thread_name(const std::string& name) noexcept {
#if defined(__linux__)
  // The kernel limits thread names to 15 characters + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace common
