#include "common/affinity.hpp"

#include <cstdlib>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace common {

unsigned hardware_core_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

CpuRange process_cpu_range() noexcept {
  static const CpuRange range = [] {
    CpuRange r;
    r.first = 0;
    r.count = hardware_core_count();
    r.configured = false;
    const char* first = std::getenv("AMTNET_CPU_FIRST");
    if (first != nullptr && *first != '\0') {
      r.first = static_cast<unsigned>(std::atoi(first));
      r.configured = true;
    }
    const char* count = std::getenv("AMTNET_CPU_COUNT");
    if (count != nullptr && *count != '\0') {
      const int parsed = std::atoi(count);
      if (parsed > 0) {
        r.count = static_cast<unsigned>(parsed);
        r.configured = true;
      }
    }
    if (r.count == 0) r.count = 1;
    return r;
  }();
  return range;
}

bool pin_current_thread(unsigned slot) noexcept {
#if defined(__linux__)
  const CpuRange range = process_cpu_range();
  const unsigned core =
      (range.first + slot % range.count) % hardware_core_count();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

void set_current_thread_name(const std::string& name) noexcept {
#if defined(__linux__)
  // The kernel limits thread names to 15 characters + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace common
