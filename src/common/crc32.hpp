// CRC-32 (IEEE 802.3 polynomial) with a compile-time-generated slice-by-4
// table. Used for end-to-end integrity checking of wire headers, control
// messages, and RDMA payloads: the simulated fabric can flip payload bits
// under fault injection (fabric/fault.hpp), and every decode path verifies
// a CRC so corruption is detected instead of silently deserialized.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace common {

namespace detail {

struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  constexpr Crc32Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c >> 1) ^ ((c & 1u) != 0 ? 0xEDB88320u : 0u);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

inline constexpr Crc32Tables kCrc32Tables{};

}  // namespace detail

/// Incremental CRC-32: pass a previous return value as `seed` to continue a
/// running checksum over discontiguous pieces. crc32(p, n) ==
/// crc32(p + k, n - k, crc32(p, k)).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto& t = detail::kCrc32Tables.t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^
        t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFFu];
  return ~c;
}

}  // namespace common
