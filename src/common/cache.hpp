// Cache-line utilities: alignment constants and a padded wrapper that keeps
// hot shared variables on their own cache line to avoid false sharing.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace common {

// Pinned to 64 (true for every platform we target) rather than
// std::hardware_destructive_interference_size, whose value is ABI-unstable
// across compiler versions and tuning flags.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies at least one full cache line.
/// Use for per-thread or per-channel counters that are written concurrently.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value;

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace common
