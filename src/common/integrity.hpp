// Fail-fast reporting for detected end-to-end integrity violations.
//
// When a CRC or generation check catches corruption on a path with no
// software retransmit (the zero-copy RDMA path) — or when the bounded
// retransmit path exhausts its retry budget — continuing would hand the
// application silently corrupted parcels. The contract here is "loud
// fail-fast": dump every diagnostic the detection site has, flush, abort.
// Paths with a recovery story (eager/control messages under
// fabric::ReliableEndpoint) never call this for a first offence; they
// retransmit instead.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace common {

[[noreturn]] inline void integrity_abort(const std::string& dump) {
  log_line(LogLevel::kError, "INTEGRITY FAILURE: " + dump);
  std::fprintf(stderr, "INTEGRITY FAILURE: %s\n", dump.c_str());
  std::fflush(nullptr);
  std::abort();
}

/// integrity_fail("crc mismatch src=", src, " tag=", tag, ...) — formats the
/// diagnostic dump like the logging macros, then aborts the process.
template <typename... Args>
[[noreturn]] void integrity_fail(Args&&... args) {
  integrity_abort(detail::format_parts(std::forward<Args>(args)...));
}

}  // namespace common
