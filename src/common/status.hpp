// Non-blocking operation result codes shared by the fabric and the
// communication libraries. Mirrors LCI's convention: every injection
// primitive may return kRetry when a transient resource (packet pool, SRQ
// credit, queue slot) is unavailable, and the caller decides when to retry.
#pragma once

namespace common {

enum class Status {
  kOk,      // operation accepted / completed
  kRetry,   // transient resource exhaustion; retry later
  kError,   // permanent failure (bad argument, shut down)
};

inline const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kRetry:
      return "retry";
    case Status::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace common
