// Small, fast, seedable RNG (splitmix64 + xoshiro256**) plus the derived
// samplers the stack's workload and fault models share (exponential and
// Poisson draws). Deterministic across platforms, unlike
// std::default_random_engine; used by tests, workload generators, the fault
// injector, and the octree proxy so runs are reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace common {

inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Maps 64 uniform bits to a uniform double in (0, 1] — never exactly 0, so
/// it is safe under std::log. The complement of the usual [0, 1) mapping.
inline double unit_open_from_bits(std::uint64_t bits) noexcept {
  return static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
}

/// Maps 64 uniform bits to an exponential variate with the given mean.
/// Pure function of its inputs, so counter-indexed decision streams (the
/// fault injector's splitmix64 streams) can draw spike magnitudes without
/// carrying sampler state. mean <= 0 yields 0.
inline double exponential_from_bits(std::uint64_t bits, double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  return -mean * std::log(unit_open_from_bits(bits));
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x8f1b2c3d4e5f6a7bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponential variate with the given mean (inter-arrival gaps of a
  /// Poisson process at rate 1/mean). mean <= 0 yields 0.
  double next_exponential(double mean) noexcept {
    return exponential_from_bits(next(), mean);
  }

  /// Poisson-distributed count with the given mean (Knuth's product
  /// method; the stack only needs small means — arrival counts per slot,
  /// fault multiplicities — where it is exact and fast).
  std::uint64_t next_poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = 1.0;
    do {
      ++count;
      product *= unit_open_from_bits(next());
    } while (product > limit);
    return count - 1;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace common
