// Non-owning callable reference (the missing std::function_ref): one
// pointer + one trampoline, no allocation, no virtual table. Used on hot
// paths where a template callback must cross a virtual interface — the
// fabric backends' poll loop hands events through one of these.
//
// Lifetime: a FunctionRef is valid only while the referenced callable is;
// use it strictly for downward calls (pass into a function, never store).
#pragma once

#include <type_traits>
#include <utility>

namespace common {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& fn) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace common
