#include "common/logging.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace common {

namespace {
LogLevel parse_level_from_env() {
  const char* env = std::getenv("AMTNET_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

LogLevel log_level() noexcept {
  static const LogLevel level = parse_level_from_env();
  return level;
}

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> guard(log_mutex());
  std::fprintf(stderr, "[amtnet %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace common
