// Monotonic time helpers. All fabric/latency arithmetic is done in integer
// nanoseconds to keep comparisons between threads cheap and lock-free.
#pragma once

#include <chrono>
#include <cstdint>

namespace common {

using Nanos = std::int64_t;

inline Nanos now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double ns_to_us(Nanos ns) noexcept {
  return static_cast<double>(ns) / 1e3;
}

inline double ns_to_s(Nanos ns) noexcept {
  return static_cast<double>(ns) / 1e9;
}

/// Simple stopwatch for benchmark harnesses.
class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  Nanos elapsed_ns() const { return now_ns() - start_; }
  double elapsed_us() const { return ns_to_us(elapsed_ns()); }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }

 private:
  Nanos start_;
};

}  // namespace common
