#include "common/config.hpp"

#include <cstdlib>

namespace common {

namespace {
std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}
}  // namespace

std::vector<std::string> split_trim(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(trim(text.substr(start)));
      break;
    }
    out.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

KvConfig KvConfig::parse(const std::string& text) {
  KvConfig config;
  for (const auto& piece : split_trim(text, ',')) {
    if (piece.empty()) continue;
    const auto eq = piece.find('=');
    if (eq == std::string::npos) {
      config.kv_[trim(piece)] = "1";  // bare key acts as a boolean flag
    } else {
      config.kv_[trim(piece.substr(0, eq))] = trim(piece.substr(eq + 1));
    }
  }
  return config;
}

std::optional<std::string> KvConfig::get(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string KvConfig::get_or(const std::string& key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t KvConfig::get_int_or(const std::string& key,
                                  std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double KvConfig::get_double_or(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::strtod(value->c_str(), nullptr);
}

bool KvConfig::get_bool_or(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" ||
         *value == "on";
}

void KvConfig::set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool KvConfig::contains(const std::string& key) const {
  return kv_.count(key) != 0;
}

}  // namespace common
