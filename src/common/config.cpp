#include "common/config.hpp"

#include <cstdlib>

namespace common {

namespace {
std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}
}  // namespace

std::vector<std::string> split_trim(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(trim(text.substr(start)));
      break;
    }
    out.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

KvConfig KvConfig::parse(const std::string& text) {
  KvConfig config;
  for (const auto& piece : split_trim(text, ',')) {
    if (piece.empty()) continue;
    const auto eq = piece.find('=');
    if (eq == std::string::npos) {
      config.kv_[trim(piece)] = "1";  // bare key acts as a boolean flag
    } else {
      config.kv_[trim(piece.substr(0, eq))] = trim(piece.substr(eq + 1));
    }
  }
  return config;
}

std::optional<std::string> KvConfig::get(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string KvConfig::get_or(const std::string& key,
                             const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t KvConfig::get_int_or(const std::string& key,
                                  std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double KvConfig::get_double_or(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return std::strtod(value->c_str(), nullptr);
}

bool KvConfig::get_bool_or(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" ||
         *value == "on";
}

void KvConfig::set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

bool KvConfig::contains(const std::string& key) const {
  return kv_.count(key) != 0;
}

const std::vector<Knob>& knob_registry() {
  using Kind = Knob::Kind;
  static const std::vector<Knob> knobs = {
      // -- benchmark / driver environment --
      {Kind::kEnv, "AMTNET_BENCH_SCALE", "1.0",
       "multiplies every suite's message/step counts (scaled counts are "
       "clamped to >= 1)",
       "all bench_* binaries, bench_suite"},
      {Kind::kEnv, "AMTNET_BENCH_RUNS", "2",
       "recorded repetitions per data point; the driver reports the median "
       "of N plus mean/stddev",
       "bench_suite --run"},
      {Kind::kEnv, "AMTNET_BENCH_WARMUP", "1",
       "discarded leading runs per data point (cold-start: first runtime "
       "construction, allocator warm-up)",
       "bench_suite --run"},
      {Kind::kEnv, "AMTNET_BENCH_WORKERS", "8",
       "worker threads per locality for suite points that do not pin their "
       "own count",
       "all bench_* binaries"},
      {Kind::kEnv, "AMTNET_LOG", "warn",
       "stack log level: error|warn|info|debug", "any binary"},
      // -- telemetry --
      {Kind::kEnv, "AMTNET_TELEMETRY", "1",
       "0/off/false: kill switch for timing instrumentation (no clock "
       "reads, no tracing; counters stay on)",
       "bench_overhead_probe"},
      {Kind::kEnv, "AMTNET_TRACE_FILE", "bench_profile_trace.json",
       "where bench_profile writes its Chrome trace", "bench_profile"},
      // -- LCI parcelport --
      {Kind::kEnv, "AMTNET_LCI_PIPELINE_DEPTH", "0 (unbounded)",
       "max in-flight follow-up pieces per connection when the config name "
       "carries no pd<N> token",
       "ablation_pipeline"},
      {Kind::kEnv, "AMTNET_LCI_PACKET_CACHE", "32",
       "per-thread packet-pool magazine capacity in minilci (0: every "
       "allocation hits the shared free list)",
       "bench_micro_ops"},
      {Kind::kEnv, "AMTNET_LCI_PROGRESS_THREADS", "0 (unbounded)",
       "max worker threads polling the NIC concurrently in mt mode (the "
       "progress-ticket bound) when the config name carries no pt<K> token",
       "ablation_progress"},
      {Kind::kEnv, "AMTNET_LCI_RDV_SHARDS", "16",
       "rendezvous-state table shards in minilci (rounded up to a power of "
       "two; 1 = single global table) when the name carries no rs<N> token",
       "ablation_progress"},
      {Kind::kEnv, "AMTNET_LCI_FASTPATH", "1 (on)",
       "small-parcel fast path: 0/off disables, 1/on caps at the eager "
       "threshold, N >= 2 caps whole-parcel frames at N bytes; only read "
       "when the config name carries no fp token",
       "ablation_fastpath"},
      {Kind::kEnv, "AMTNET_LCI_AGG", "0 (off)",
       "adaptive aggregation: batch-frame byte cap for per-destination "
       "coalescing of fast-path parcels under backpressure (0/off disables; "
       "clamped to [minimum frame, eager threshold]); only read when the "
       "config name carries no agg token",
       "ablation_aggregation"},
      {Kind::kEnv, "AMTNET_LCI_AGG_AGE_US", "200",
       "adaptive aggregation: microseconds a partially filled batch may age "
       "before it is flushed anyway (0 disables the age trigger; size, "
       "window-stall, and idle flushes still apply); only read when the "
       "config name carries no aggt token",
       "ablation_aggregation"},
      // -- collectives (CollectiveGroup algorithm selection) --
      {Kind::kEnv, "AMTNET_COLL_ALGO", "auto",
       "force a collective algorithm family (central|tree|rd|ring) for ops "
       "that have a member of it; auto = payload size x locality count "
       "selection (see docs/collectives.md); overrides the coll<ALGO> "
       "config token",
       "ablation_collectives"},
      {Kind::kEnv, "AMTNET_COLL_SEG_BYTES", "8192",
       "segment size for the pipelined binomial broadcast (store-and-"
       "forward pipelining above the large-payload crossover)",
       "ablation_collectives"},
      {Kind::kEnv, "AMTNET_COLL_LARGE_BYTES", "16384",
       "small/large payload crossover: above it broadcast pipelines "
       "segments and allreduce switches from recursive doubling to the "
       "ring (bandwidth-optimal) algorithm",
       "ablation_collectives"},
      {Kind::kEnv, "AMTNET_COLL_WINDOW", "16",
       "bounded round-window slot count for in-flight collective epochs "
       "(each slot is an independently locked shard; minimum 2)",
       "test_collectives"},
      {Kind::kEnv, "AMTNET_LCI_PACKET_POOL", "4096",
       "send-side packet-pool size in minilci (a pool of 1 forces fast-path "
       "pool exhaustion — the credit-conservation regression setup)",
       "test_amt AdmissionTest"},
      {Kind::kEnv, "AMTNET_REL_SCAN_QUANTUM", "64",
       "progress ticks between retransmit scans in the reliability layer "
       "(0: scan on every progress call)",
       "bench_chaos_sweep"},
      // -- fault injection (see docs/ and README for the full model) --
      {Kind::kEnv, "AMTNET_FAULT_DROP", "0",
       "P(drop) per two-sided datagram", "bench_chaos_sweep, test_chaos"},
      {Kind::kEnv, "AMTNET_FAULT_DUP", "0",
       "P(duplicate delivery) per datagram", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_CORRUPT", "0",
       "P(single bit-flip) per payload", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_CORRUPT_MIN", "0",
       "only corrupt payloads >= this size (bytes)", "test_chaos"},
      {Kind::kEnv, "AMTNET_FAULT_DELAY", "0",
       "P(latency spike) per packet", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_DELAY_US", "50",
       "latency-spike magnitude (microseconds)", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_BROWNOUT", "0",
       "P(entering a brownout) per post", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_BROWNOUT_POSTS", "64",
       "posts rejected (kRetry) per brownout", "test_chaos"},
      {Kind::kEnv, "AMTNET_FAULT_RNR", "0",
       "P(entering an RNR storm) per poll", "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_FAULT_RNR_POLLS", "32",
       "polls stalled per RNR storm", "test_chaos"},
      {Kind::kEnv, "AMTNET_FAULT_SEED", "fixed constant",
       "seed of the deterministic fault streams (any u64)", "test_chaos"},
      {Kind::kEnv, "AMTNET_FAULT_INTEGRITY", "0",
       "1: arm the CRC/sequence integrity layer with all fault "
       "probabilities 0",
       "bench_chaos_sweep"},
      {Kind::kEnv, "AMTNET_CHAOS_SEEDS", "1..8 in CI",
       "comma-separated seed sweep for the chaos test harness",
       "test_chaos"},
      // -- transport backends (sim | shm) and multi-process launch --
      {Kind::kEnv, "AMTNET_BACKEND", "sim",
       "fabric transport backend: sim (in-process simulated RDMA fabric) or "
       "shm (real POSIX shared-memory fabric); overrides the backend<name> "
       "config token and StackOptions",
       "ablation_backend"},
      {Kind::kEnv, "AMTNET_SHM_RANK", "-1 (single-process)",
       "shm backend: the locality rank hosted by THIS process; set per "
       "process by amtnet_launch. Unset/-1 constructs every rank in one "
       "process (conformance-test mode)",
       "amtnet_launch"},
      {Kind::kEnv, "AMTNET_SHM_RANKS", "unset",
       "shm backend: total locality count of the multi-process run; "
       "overrides StackOptions::num_localities (set by amtnet_launch)",
       "amtnet_launch"},
      {Kind::kEnv, "AMTNET_SHM_SESSION", "per-fabric unique",
       "shm backend: rendezvous namespace shared by all processes of one "
       "run; segment names derive from it (set by amtnet_launch)",
       "amtnet_launch"},
      {Kind::kEnv, "AMTNET_SHM_RING_DEPTH", "256",
       "shm backend: slots per directed per-pair ring (rounded up to a "
       "power of two); each slot holds one eager datagram",
       "ablation_backend"},
      {Kind::kEnv, "AMTNET_SHM_FORCE_FALLBACK", "0",
       "shm backend: 1 disables the direct (same-process) and cross-memory "
       "attach copy modes so one-sided put/get takes the segmented "
       "ring-record path (testing)",
       "test_backends"},
      {Kind::kEnv, "AMTNET_CPU_FIRST", "unset (no pinning)",
       "first CPU of this process's affinity range; worker/progress threads "
       "pin into [first, first+count) (set per rank by amtnet_launch)",
       "amtnet_launch"},
      {Kind::kEnv, "AMTNET_CPU_COUNT", "hardware cores",
       "number of CPUs in this process's affinity range",
       "amtnet_launch"},
      // -- serving path: admission control and the open-loop load generator --
      {Kind::kEnv, "AMTNET_ADMIT_POLICY", "off",
       "send-path admission policy override: off|shed|block|deadline "
       "(config-name tokens take precedence)",
       "openloop"},
      {Kind::kEnv, "AMTNET_ADMIT_BOUND", "64",
       "per-destination admission window: parcels accepted but not yet "
       "executed at the destination (credits return from the destination's "
       "handler, so the window spans the whole serving path)",
       "openloop"},
      {Kind::kEnv, "AMTNET_ADMIT_DEADLINE_US", "1000",
       "deadline policy: max queue age in microseconds before a parcel is "
       "dropped at flush time",
       "openloop"},
      {Kind::kEnv, "AMTNET_LOADGEN_SEED", "2026",
       "overrides the open-loop arrival-schedule seed (the schedule is "
       "bit-for-bit reproducible per seed)",
       "openloop"},
      // -- parcelport config-name tokens (Table 1 + ablations) --
      {Kind::kConfigToken, "mpi | lci | tcp", "lci",
       "backend selection prefix of the configuration name",
       "fig1_msgrate_8b"},
      {Kind::kConfigToken, "psr | sr", "psr",
       "LCI header protocol: one-sided dynamic put vs two-sided send/recv",
       "fig2_msgrate_8b_lci"},
      {Kind::kConfigToken, "cq | sy", "cq",
       "LCI completion mechanism: completion queue vs synchronizer",
       "fig5_msgrate_16k_lci"},
      {Kind::kConfigToken, "pin | mt", "pin",
       "progress engine: dedicated pinned thread vs idle worker threads "
       "(paper alias: rp = pin)",
       "fig2_msgrate_8b_lci"},
      {Kind::kConfigToken, "_i", "off",
       "send-immediate: bypass the parcel queue and connection cache",
       "ablation_aggregation"},
      {Kind::kConfigToken, "pd<N>", "unbounded",
       "LCI follow-up pipeline depth (pd1 = serialized one-op walk, "
       "pdinf/no token = unbounded)",
       "ablation_pipeline"},
      {Kind::kConfigToken, "pt<K>", "unbounded",
       "LCI progress-ticket bound: max concurrent NIC pollers in mt mode "
       "(ptinf/no token = every idle worker polls)",
       "ablation_progress"},
      {Kind::kConfigToken, "rs<N>", "16",
       "LCI rendezvous-state shard count (rs1 = the single global-table "
       "baseline)",
       "ablation_progress"},
      {Kind::kConfigToken, "fp | fp<N> | fpoff", "on (eager threshold)",
       "LCI small-parcel fast path: whole parcels at or under the cap ride "
       "a single put-with-completion frame, skipping connection acquisition "
       "and follow-up transfers (fp = cap at the eager threshold, fp<N> = "
       "cap at N bytes, fpoff = kill switch)",
       "ablation_fastpath"},
      {Kind::kConfigToken, "agg<N> | aggt<U> | aggoff", "off",
       "LCI adaptive aggregation: coalesce fast-path parcels bound for a "
       "backpressured destination into one batch frame of at most N bytes "
       "(agg<N>, minimum the one-parcel frame overhead), flushed by size, "
       "window stall (the buffer absorbed every outstanding admission "
       "credit), age (aggt<U> microseconds), idle background work, or stop "
       "(aggoff = kill switch)",
       "ablation_aggregation"},
      {Kind::kConfigToken, "shed<N> | block<N> | dl<N>", "off",
       "send-path admission control with per-destination window N: shed "
       "refuses surplus fire-and-forget parcels at the bound, block "
       "backpressures the producer task, dl admits up to N but drops "
       "parcels whose queue age exceeds AMTNET_ADMIT_DEADLINE_US",
       "openloop"},
      {Kind::kConfigToken, "coll<ALGO>", "auto",
       "collective algorithm family for CollectiveGroup ops (collcentral | "
       "colltree | collrd | collring | collauto); applies to every backend "
       "and is overridden by AMTNET_COLL_ALGO",
       "ablation_collectives"},
      {Kind::kConfigToken, "fine", "off (coarse)",
       "fine-grained progress lock in the MPI/UCX layer",
       "ablation_mpi_lock"},
      {Kind::kConfigToken, "orig", "off (improved)",
       "pre-optimisation MPI parcelport (static 512B header, tag-release "
       "protocol)",
       "ablation_mpi_original"},
      // -- CMake options --
      {Kind::kCMake, "AMTNET_TELEMETRY_DISABLED", "OFF",
       "compile every telemetry primitive to an inline no-op",
       "bench_overhead_probe"},
      {Kind::kCMake, "AMTNET_SANITIZE", "off",
       "thread|address sanitizer build", "CI tsan job"},
  };
  return knobs;
}

}  // namespace common
