// Spin locks used throughout the stack.
//
// SpinMutex is a test-and-test-and-set lock that yields to the OS scheduler
// while contended; on the over-subscribed machines we target (worker count >
// hardware threads) pure busy-waiting would live-lock the holder off the CPU.
// It satisfies the Lockable named requirement so it composes with
// std::lock_guard / std::unique_lock.
#pragma once

#include <atomic>
#include <thread>

namespace common {

template <int SpinsBeforeYield>
class BasicSpinMutex {
 public:
  BasicSpinMutex() = default;
  BasicSpinMutex(const BasicSpinMutex&) = delete;
  BasicSpinMutex& operator=(const BasicSpinMutex&) = delete;

  void lock() noexcept {
    int spins = 0;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Test loop: wait until it looks free before attempting the exchange
      // again, so contended acquires do not ping-pong the cache line.
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins >= kSpinsBeforeYield) {
          spins = 0;
          std::this_thread::yield();
        } else {
          cpu_relax();
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  static constexpr int kSpinsBeforeYield = SpinsBeforeYield;
  std::atomic<bool> locked_{false};
};

/// Default spin lock for the stack's own fine-grained critical sections:
/// short spin budget, quick to hand the core back.
using SpinMutex = BasicSpinMutex<64>;

/// Models the pure spinlock real transports (UCX's ucs_spinlock) wrap around
/// their progress engine: contended waiters burn a long spin budget before
/// yielding and never park. This is what makes coarse-grained locking
/// expensive under thread oversubscription — the paper's profiles show
/// worker threads spinning inside MPI_Test on exactly such a lock.
using UcxStyleSpinMutex = BasicSpinMutex<8192>;

}  // namespace common
