// Thread-affinity shim. On the paper's clusters HPX pins the dedicated LCI
// progress thread to core 0 via the resource partitioner; on our test machine
// (possibly 1 hardware core) pinning is best-effort and never fatal.
#pragma once

#include <string>

namespace common {

/// Tries to pin the calling thread to `core` (mod hardware concurrency).
/// Returns false when the platform refuses; callers treat that as advisory.
bool pin_current_thread(unsigned core) noexcept;

/// Names the calling thread for debuggers/profilers (best effort).
void set_current_thread_name(const std::string& name) noexcept;

unsigned hardware_core_count() noexcept;

}  // namespace common
