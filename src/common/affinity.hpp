// Thread-affinity shim. On the paper's clusters HPX pins the dedicated LCI
// progress thread to core 0 via the resource partitioner; on our test machine
// (possibly 1 hardware core) pinning is best-effort and never fatal.
//
// Multi-process runs (amtnet_launch) carve the machine into per-rank core
// ranges via AMTNET_CPU_FIRST / AMTNET_CPU_COUNT, so rank k's workers pin
// into [first, first+count) instead of every process stacking on core 0.
#pragma once

#include <string>

namespace common {

/// The CPU range this process may pin threads into. Defaults to the whole
/// machine; AMTNET_CPU_FIRST / AMTNET_CPU_COUNT narrow it (set per rank by
/// amtnet_launch). `configured` is true when either variable was set —
/// schedulers use it to decide whether workers should pin at all.
struct CpuRange {
  unsigned first = 0;
  unsigned count = 1;
  bool configured = false;
};
CpuRange process_cpu_range() noexcept;

/// Tries to pin the calling thread to slot `slot` of the process CPU range
/// (wrapping within the range, then within the machine). Returns false when
/// the platform refuses; callers treat that as advisory.
bool pin_current_thread(unsigned slot) noexcept;

/// Names the calling thread for debuggers/profilers (best effort).
void set_current_thread_name(const std::string& name) noexcept;

unsigned hardware_core_count() noexcept;

}  // namespace common
