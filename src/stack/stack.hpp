// Facade assembling the full stack: runtime + the concrete parcelports.
// Benchmarks, tests, and examples construct runtimes through this single
// entry point using the paper's Table-1 configuration names.
#pragma once

#include <memory>
#include <string>

#include "amt/runtime.hpp"
#include "fabric/fault.hpp"

namespace amtnet {

/// Factory dispatching on ParcelportConfig::kind: "mpi*" names build the MPI
/// parcelport over minimpi, "lci*" names the LCI parcelport over minilci.
amt::Runtime::ParcelportFactory default_parcelport_factory();

struct StackOptions {
  std::string parcelport = "lci_psr_cq_pin_i";  // Table-1 name
  amt::Rank num_localities = 2;
  unsigned threads_per_locality = 2;
  std::string platform = "loopback";  // loopback | expanse | rostam
  std::size_t zero_copy_threshold = amt::kDefaultZeroCopyThreshold;
  std::size_t max_connections = 8192;  // HPX connection-cache cap
  unsigned fabric_rails = 0;           // 0 = keep the platform default
  /// Fabric transport backend: "" keeps whatever the parcelport name's
  /// backend<sim|shm> token says (default sim). Explicit values here beat
  /// the token; the AMTNET_BACKEND env var beats both.
  std::string backend;
  // Fault-injection seeds/probabilities; AMTNET_FAULT_* env knobs are layered
  // on top of these in make_runtime_config (env wins over code defaults).
  fabric::FaultConfig faults;
};

/// Resolves a platform name to a fabric profile (Table 2 / Table 3).
fabric::Config platform_config(const std::string& platform,
                               amt::Rank num_localities);

/// Builds a fully wired RuntimeConfig from options.
amt::RuntimeConfig make_runtime_config(const StackOptions& options);

/// Convenience: construct and start a runtime in one call.
std::unique_ptr<amt::Runtime> make_runtime(const StackOptions& options);

}  // namespace amtnet
