#include "stack/stack.hpp"

#include <cstdlib>
#include <stdexcept>

#include "parcelport_lci/parcelport_lci.hpp"
#include "parcelport_mpi/parcelport_mpi.hpp"
#include "parcelport_tcp/parcelport_tcp.hpp"

namespace amtnet {

amt::Runtime::ParcelportFactory default_parcelport_factory() {
  return [](amt::Runtime&, const amt::ParcelportContext& context)
             -> std::unique_ptr<amt::Parcelport> {
    switch (context.config.kind) {
      case amt::ParcelportConfig::Kind::kMpi:
        return std::make_unique<ppmpi::MpiParcelport>(context);
      case amt::ParcelportConfig::Kind::kLci:
        return std::make_unique<pplci::LciParcelport>(context);
      case amt::ParcelportConfig::Kind::kTcp:
        return std::make_unique<pptcp::TcpParcelport>(context);
    }
    throw std::invalid_argument("unknown parcelport kind");
  };
}

fabric::Config platform_config(const std::string& platform,
                               amt::Rank num_localities) {
  if (platform == "loopback") return fabric::Profile::loopback(num_localities);
  if (platform == "expanse") return fabric::Profile::expanse(num_localities);
  if (platform == "rostam") return fabric::Profile::rostam(num_localities);
  throw std::invalid_argument("unknown platform: " + platform);
}

amt::RuntimeConfig make_runtime_config(const StackOptions& options) {
  amt::RuntimeConfig config;
  config.num_localities = options.num_localities;
  // amtnet_launch exports the multi-process locality count; it must win so
  // SPMD binaries written against a single-process default run unmodified.
  if (const char* ranks = std::getenv("AMTNET_SHM_RANKS");
      ranks != nullptr && *ranks != '\0') {
    config.num_localities = static_cast<amt::Rank>(std::atoi(ranks));
  }
  config.threads_per_locality = options.threads_per_locality;
  config.zero_copy_threshold = options.zero_copy_threshold;
  config.max_connections = options.max_connections;
  config.parcelport = amt::ParcelportConfig::parse(options.parcelport);
  amt::apply_admission_env(config.parcelport.admission);
  config.fabric = platform_config(options.platform, config.num_localities);
  if (options.fabric_rails != 0) config.fabric.num_rails = options.fabric_rails;
  config.fabric.faults = options.faults;
  fabric::apply_fault_env(config.fabric.faults);
  // Backend resolution: AMTNET_BACKEND env > StackOptions::backend >
  // backend<name> config token > "sim".
  if (!options.backend.empty()) {
    fabric::validate_backend_name(options.backend);
    config.parcelport.fabric_backend = options.backend;
  }
  config.fabric.backend = config.parcelport.fabric_backend;
  fabric::apply_backend_env(config.fabric);
  config.parcelport.fabric_backend = config.fabric.backend;
  return config;
}

std::unique_ptr<amt::Runtime> make_runtime(const StackOptions& options) {
  auto runtime = std::make_unique<amt::Runtime>(make_runtime_config(options),
                                                default_parcelport_factory());
  runtime->start();
  return runtime;
}

}  // namespace amtnet
