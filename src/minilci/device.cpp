#include "minilci/device.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <string>

#include "common/crc32.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace minilci {

namespace {

// Wire immediate layout: [63:56] kind | [31:0] tag or rendezvous id.
enum class MsgKind : std::uint8_t {
  kMedium = 1,    // payload = user data
  kPutEager = 2,  // payload = user data -> remote CQ
  kRts = 3,       // payload = RdvHello
  kCts = 4,       // payload = CtsPayload
  kFin = 5,       // RDMA write-with-immediate; arg = receiver rdv id
  kPutRts = 6,    // payload = RdvHello
  kPutCts = 7,    // payload = PutCtsPayload
  kPutFin = 8,    // RDMA write-with-immediate; arg = receiver rdv id
  kGetDone = 9,   // RDMA read completion; arg = local get id
};

struct RdvHello {
  std::uint64_t size;
  std::uint32_t sender_id;
  // CRC-32 over the full payload that will travel by RDMA write; 0 when
  // integrity mode is off. The receiver verifies it when the FIN lands —
  // the only software detection point the one-sided path has.
  std::uint32_t crc;
};

struct CtsPayload {
  std::uint64_t mr_id;
  std::uint64_t max_len;
  std::uint32_t sender_id;
  std::uint32_t recv_id;
};

struct PutCtsPayload {
  std::uint64_t mr_id;
  std::uint32_t sender_id;
  std::uint32_t recv_id;
};

std::uint64_t make_imm(MsgKind kind, std::uint32_t arg) {
  return (static_cast<std::uint64_t>(kind) << 56) | arg;
}
MsgKind imm_kind(std::uint64_t imm) { return static_cast<MsgKind>(imm >> 56); }
std::uint32_t imm_arg(std::uint64_t imm) {
  return static_cast<std::uint32_t>(imm);
}

template <typename T>
T from_bytes(const std::byte* data, std::size_t len) {
  T value{};
  assert(len >= sizeof(T));
  (void)len;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

std::string dev_metric(Rank rank, const char* leaf) {
  return "minilci/dev" + std::to_string(rank) + "/" + leaf;
}

}  // namespace

static_assert(sizeof(CtsPayload) <= 24 && sizeof(PutCtsPayload) <= 24 &&
                  sizeof(RdvHello) <= 24,
              "control payloads must fit the inline DeferredSend buffer");

Device::Device(fabric::Fabric& fabric, Rank rank, Config config,
               CompQueue* remote_put_cq)
    : fabric_(fabric),
      nic_(fabric.nic(rank)),
      rank_(rank),
      config_(config),
      remote_put_cq_(remote_put_cq),
      rel_(fabric, rank, "lci"),
      integrity_on_(fabric.config().faults.integrity_on()),
      packet_pool_(config.packet_pool_size, config.eager_threshold,
                   config.packet_cache_size),
      rdv_sends_(config.rdv_shards),
      rdv_recvs_(config.rdv_shards),
      put_sends_(config.rdv_shards),
      put_recvs_(config.rdv_shards),
      pending_gets_(config.rdv_shards),
      deferred_lanes_(fabric.num_ranks()),
      ctr_progress_calls_(
          fabric.telemetry().counter(dev_metric(rank, "progress_calls"))),
      ctr_match_hits_(
          fabric.telemetry().counter(dev_metric(rank, "match_hits"))),
      ctr_match_misses_(
          fabric.telemetry().counter(dev_metric(rank, "match_misses"))),
      ctr_pool_exhausted_(
          fabric.telemetry().counter(dev_metric(rank, "pool_exhausted"))),
      ctr_pool_cache_hits_(
          fabric.telemetry().counter(dev_metric(rank, "pool_cache_hits"))),
      hist_progress_ns_(
          fabric.telemetry().histogram(dev_metric(rank, "progress_ns"))) {
  // Integrity mode appends an 8-byte trailer to every eager send.
  assert(config_.eager_threshold + (rel_.enabled() ? 8 : 0) <=
         nic_.srq_buffer_size());
  packet_pool_.attach_cache_hit_counter(&ctr_pool_cache_hits_);
}

// ---- two-sided: medium ----------------------------------------------------

common::Status Device::sendm(Rank dst, Tag tag, const void* data,
                             std::size_t len, const Comp& local_comp,
                             std::uint64_t user_context) {
  if (len > config_.eager_threshold) return common::Status::kError;
  const common::Status status =
      rel_.send(dst, data, len, make_imm(MsgKind::kMedium, tag));
  if (status != common::Status::kOk) return status;
  CqEntry entry;
  entry.op = OpKind::kSendMedium;
  entry.rank = dst;
  entry.tag = tag;
  entry.size = len;
  entry.user_context = user_context;
  signal_completion(local_comp, std::move(entry));
  return common::Status::kOk;
}

common::Status Device::sendm_packet(Rank dst, Tag tag, PacketBuffer& packet,
                                    const Comp& local_comp,
                                    std::uint64_t user_context) {
  assert(packet.valid() && packet.size() <= config_.eager_threshold);
  const common::Status status = rel_.send(
      dst, packet.data(), packet.size(), make_imm(MsgKind::kMedium, tag));
  if (status != common::Status::kOk) return status;
  CqEntry entry;
  entry.op = OpKind::kSendMedium;
  entry.rank = dst;
  entry.tag = tag;
  entry.size = packet.size();
  entry.user_context = user_context;
  packet.release();  // fabric copied; recycle the pool buffer
  signal_completion(local_comp, std::move(entry));
  return common::Status::kOk;
}

common::Status Device::recvm(Rank src, Tag tag, const Comp& comp,
                             std::uint64_t user_context) {
  PostedRecv recv;
  recv.is_long = false;
  recv.comp = comp;
  recv.user_context = user_context;
  auto arrival = matching_.insert_recv(src, tag, std::move(recv));
  (arrival ? ctr_match_hits_ : ctr_match_misses_).add();
  if (!arrival) return common::Status::kOk;  // recv stored in the table
  if (arrival->is_rts) {
    AMTNET_LOG_ERROR("minilci: recvm matched a long-protocol RTS (src=", src,
                     " tag=", tag, ")");
    return common::Status::kError;
  }
  CqEntry entry;
  entry.op = OpKind::kRecvMedium;
  entry.rank = src;
  entry.tag = tag;
  entry.size = arrival->payload.size();
  entry.data = std::move(arrival->payload);
  entry.user_context = user_context;
  signal_completion(comp, std::move(entry));
  return common::Status::kOk;
}

// ---- two-sided: long (rendezvous) -----------------------------------------

common::Status Device::sendl(Rank dst, Tag tag, const void* data,
                             std::size_t len, const Comp& local_comp,
                             std::uint64_t user_context) {
  RdvSend rdv;
  rdv.data = static_cast<const std::byte*>(data);
  rdv.len = len;
  rdv.comp = local_comp;
  rdv.user_context = user_context;
  rdv.tag = tag;
  rdv.dst = dst;
  const std::uint32_t id = rdv_sends_.insert(std::move(rdv));
  const std::uint32_t crc =
      integrity_on_ ? common::crc32(data, len) : 0;
  const RdvHello hello{len, id, crc};
  const common::Status status =
      rel_.send(dst, &hello, sizeof(hello), make_imm(MsgKind::kRts, tag));
  if (status != common::Status::kOk) {
    rdv_sends_.extract(id);
    return status;
  }
  return common::Status::kOk;
}

common::Status Device::recvl(Rank src, Tag tag, void* buf, std::size_t maxlen,
                             const Comp& comp, std::uint64_t user_context) {
  PostedRecv recv;
  recv.is_long = true;
  recv.comp = comp;
  recv.buf = buf;
  recv.maxlen = maxlen;
  recv.user_context = user_context;
  auto arrival = matching_.insert_recv(src, tag, std::move(recv));
  (arrival ? ctr_match_hits_ : ctr_match_misses_).add();
  if (!arrival) return common::Status::kOk;  // recv stored in the table
  if (!arrival->is_rts) {
    AMTNET_LOG_ERROR("minilci: recvl matched a medium arrival (src=", src,
                     " tag=", tag, ")");
    return common::Status::kError;
  }
  start_long_recv(src, tag, arrival->rdv_size, arrival->rdv_sender_id,
                  arrival->rdv_crc, std::move(recv));
  return common::Status::kOk;
}

void Device::start_long_recv(Rank src, Tag tag, std::size_t size,
                             std::uint32_t sender_id, std::uint32_t crc,
                             PostedRecv&& recv) {
  const fabric::MrKey mr = nic_.register_memory(recv.buf, recv.maxlen);
  RdvRecv rdv;
  rdv.comp = recv.comp;
  rdv.buf = recv.buf;
  rdv.mr = mr;
  rdv.user_context = recv.user_context;
  rdv.tag = tag;
  rdv.src = src;
  rdv.expected_crc = crc;
  rdv.expected_size = size;
  const std::uint32_t recv_id = rdv_recvs_.insert(std::move(rdv));
  const CtsPayload cts{mr.id, recv.maxlen, sender_id, recv_id};
  send_ctrl(src, make_imm(MsgKind::kCts, 0), &cts, sizeof(cts));
}

void Device::handle_cts(Rank src, const std::byte* payload, std::size_t len) {
  const auto cts = from_bytes<CtsPayload>(payload, len);
  std::optional<RdvSend> extracted = rdv_sends_.extract(cts.sender_id);
  if (!extracted) {
    AMTNET_LOG_ERROR("minilci: CTS for unknown rendezvous id ",
                     cts.sender_id);
    return;
  }
  RdvSend& rdv = *extracted;
  const std::size_t to_write =
      std::min<std::size_t>(rdv.len, cts.max_len);
  CqEntry entry;
  entry.op = OpKind::kSendLong;
  entry.rank = rdv.dst;
  entry.tag = rdv.tag;
  entry.size = to_write;
  entry.user_context = rdv.user_context;
  if (nic_.post_write_imm(src, fabric::MrKey{src, cts.mr_id}, 0, rdv.data,
                          to_write, make_imm(MsgKind::kFin, cts.recv_id)) ==
      common::Status::kOk) {
    signal_completion(rdv.comp, std::move(entry));
    return;
  }
  // TX window full: buffer the write and retry from progress. The fabric
  // copies at post time, so once the deferred post succeeds the semantics
  // are identical.
  DeferredSend deferred;
  deferred.dst = src;
  deferred.imm = make_imm(MsgKind::kFin, cts.recv_id);
  deferred.payload.assign(rdv.data, rdv.data + to_write);
  deferred.is_write = true;
  deferred.write_mr_id = cts.mr_id;
  deferred.comp = rdv.comp;
  deferred.entry = std::move(entry);
  defer_send(std::move(deferred));
}

void Device::handle_fin(std::uint32_t recv_id, std::size_t written) {
  std::optional<RdvRecv> extracted = rdv_recvs_.extract(recv_id);
  if (!extracted) {
    AMTNET_LOG_ERROR("minilci: FIN for unknown rendezvous id ", recv_id);
    return;
  }
  RdvRecv& rdv = *extracted;
  nic_.deregister_memory(rdv.mr);
  // Integrity mode: the RTS carried the sender's CRC over the full payload;
  // a mismatch here means the RDMA write itself was corrupted — there is no
  // retransmit path for one-sided data, so fail fast with a diagnostic dump.
  if (integrity_on_ && rdv.expected_crc != 0 &&
      written == rdv.expected_size) {
    const std::uint32_t actual = common::crc32(rdv.buf, written);
    if (actual != rdv.expected_crc) {
      common::integrity_fail(
          "minilci: RDMA payload CRC mismatch (zero-copy path) rank=", rank_,
          " src=", rdv.src, " tag=", rdv.tag, " recv_id=", recv_id,
          " size=", written, " expected_crc=", rdv.expected_crc,
          " actual_crc=", actual,
          " — corruption past the rendezvous; no retransmit path exists");
    }
  }
  CqEntry entry;
  entry.op = OpKind::kRecvLong;
  entry.rank = rdv.src;
  entry.tag = rdv.tag;
  entry.user_buf = rdv.buf;
  entry.size = written;
  entry.user_context = rdv.user_context;
  signal_completion(rdv.comp, std::move(entry));
}

// ---- one-sided get -----------------------------------------------------------

common::Status Device::get(const RemoteBuffer& src, std::size_t offset,
                           void* dst, std::size_t len, const Comp& comp,
                           std::uint64_t user_context) {
  if (offset + len > src.len) return common::Status::kError;
  PendingGet pending;
  pending.comp = comp;
  pending.user_context = user_context;
  pending.src = src.mr.rank;
  pending.len = len;
  const std::uint32_t id = pending_gets_.insert(std::move(pending));
  const common::Status status =
      nic_.post_read(src.mr.rank, src.mr, offset, dst, len,
                     make_imm(MsgKind::kGetDone, id));
  if (status != common::Status::kOk) {
    pending_gets_.extract(id);
    return status;
  }
  return common::Status::kOk;
}

void Device::handle_get_done(std::uint32_t get_id) {
  std::optional<PendingGet> extracted = pending_gets_.extract(get_id);
  if (!extracted) {
    AMTNET_LOG_ERROR("minilci: completion for unknown get id ", get_id);
    return;
  }
  PendingGet& pending = *extracted;
  CqEntry entry;
  entry.op = OpKind::kGet;
  entry.rank = pending.src;
  entry.size = pending.len;
  entry.user_context = pending.user_context;
  signal_completion(pending.comp, std::move(entry));
}

// ---- one-sided dynamic put --------------------------------------------------

common::Status Device::put_dyn(Rank dst, Tag tag, const void* data,
                               std::size_t len, const Comp& local_comp,
                               std::uint64_t user_context) {
  if (len <= config_.eager_threshold) {
    // Stage the payload in a pool packet and reuse the packet injection
    // path: the eager put allocates nothing in steady state. Pool
    // exhaustion is transient-resource pressure, i.e. kRetry.
    auto packet = try_alloc_packet();
    if (!packet) return common::Status::kRetry;
    std::memcpy(packet->data(), data, len);
    packet->set_size(len);
    return put_dyn_packet(dst, tag, *packet, local_comp, user_context);
  }
  // Large put: rendezvous with target-side allocation. The payload is copied
  // so the caller's buffer is reusable on return (buffered-put semantics).
  PutSend put;
  put.data.assign(static_cast<const std::byte*>(data),
                  static_cast<const std::byte*>(data) + len);
  put.comp = local_comp;
  put.tag = tag;
  put.dst = dst;
  put.user_context = user_context;
  const std::uint32_t id = put_sends_.insert(std::move(put));
  const std::uint32_t crc =
      integrity_on_ ? common::crc32(data, len) : 0;
  const RdvHello hello{len, id, crc};
  const common::Status status = rel_.send(
      dst, &hello, sizeof(hello), make_imm(MsgKind::kPutRts, tag));
  if (status != common::Status::kOk) {
    put_sends_.extract(id);
    return status;
  }
  return common::Status::kOk;
}

common::Status Device::put_dyn_packet(Rank dst, Tag tag, PacketBuffer& packet,
                                      const Comp& local_comp,
                                      std::uint64_t user_context) {
  assert(packet.valid() && packet.size() <= config_.eager_threshold);
  const common::Status status = rel_.send(
      dst, packet.data(), packet.size(), make_imm(MsgKind::kPutEager, tag));
  if (status != common::Status::kOk) return status;
  CqEntry entry;
  entry.op = OpKind::kPutDyn;
  entry.rank = dst;
  entry.tag = tag;
  entry.size = packet.size();
  entry.user_context = user_context;
  packet.release();
  signal_completion(local_comp, std::move(entry));
  return common::Status::kOk;
}

void Device::handle_put_eager(Rank src, Tag tag,
                              std::vector<std::byte>&& data) {
  if (deliver_to_handler(src, tag, OpKind::kRemotePut, std::move(data))) {
    return;
  }
  assert(remote_put_cq_ != nullptr);
  CqEntry entry;
  entry.op = OpKind::kRemotePut;
  entry.rank = src;
  entry.tag = tag;
  entry.size = data.size();
  entry.data = std::move(data);
  remote_put_cq_->push(std::move(entry));
}

void Device::handle_put_rts(Rank src, Tag tag, std::size_t size,
                            std::uint32_t sender_id, std::uint32_t crc) {
  // The vector's heap buffer is registered before the insert; moves into
  // (and rehashes inside) the table never move the registered bytes.
  PutRecv put;
  put.data.resize(size);
  put.mr = nic_.register_memory(put.data.data(), size);
  put.tag = tag;
  put.src = src;
  put.expected_crc = crc;
  const std::uint64_t mr_id = put.mr.id;
  const std::uint32_t recv_id = put_recvs_.insert(std::move(put));
  const PutCtsPayload cts{mr_id, sender_id, recv_id};
  send_ctrl(src, make_imm(MsgKind::kPutCts, 0), &cts, sizeof(cts));
}

void Device::handle_put_cts(Rank src, const std::byte* payload,
                            std::size_t len) {
  const auto cts = from_bytes<PutCtsPayload>(payload, len);
  std::optional<PutSend> extracted = put_sends_.extract(cts.sender_id);
  if (!extracted) {
    AMTNET_LOG_ERROR("minilci: put-CTS for unknown id ", cts.sender_id);
    return;
  }
  PutSend& put = *extracted;
  CqEntry entry;
  entry.op = OpKind::kPutDyn;
  entry.rank = put.dst;
  entry.tag = put.tag;
  entry.size = put.data.size();
  entry.user_context = put.user_context;
  if (nic_.post_write_imm(src, fabric::MrKey{src, cts.mr_id}, 0,
                          put.data.data(), put.data.size(),
                          make_imm(MsgKind::kPutFin, cts.recv_id)) ==
      common::Status::kOk) {
    signal_completion(put.comp, std::move(entry));
    return;
  }
  DeferredSend deferred;
  deferred.dst = src;
  deferred.imm = make_imm(MsgKind::kPutFin, cts.recv_id);
  deferred.payload = std::move(put.data);
  deferred.is_write = true;
  deferred.write_mr_id = cts.mr_id;
  deferred.comp = put.comp;
  deferred.entry = std::move(entry);
  defer_send(std::move(deferred));
}

void Device::handle_put_fin(std::uint32_t recv_id) {
  std::optional<PutRecv> extracted = put_recvs_.extract(recv_id);
  if (!extracted) {
    AMTNET_LOG_ERROR("minilci: put-FIN for unknown id ", recv_id);
    return;
  }
  PutRecv& put = *extracted;
  nic_.deregister_memory(put.mr);
  if (integrity_on_ && put.expected_crc != 0) {
    const std::uint32_t actual =
        common::crc32(put.data.data(), put.data.size());
    if (actual != put.expected_crc) {
      common::integrity_fail(
          "minilci: RDMA put payload CRC mismatch rank=", rank_,
          " src=", put.src, " tag=", put.tag, " recv_id=", recv_id,
          " size=", put.data.size(), " expected_crc=", put.expected_crc,
          " actual_crc=", actual,
          " — corruption past the rendezvous; no retransmit path exists");
    }
  }
  assert(remote_put_cq_ != nullptr);
  CqEntry entry;
  entry.op = OpKind::kRemotePut;
  entry.rank = put.src;
  entry.tag = put.tag;
  entry.size = put.data.size();
  entry.data = std::move(put.data);
  remote_put_cq_->push(std::move(entry));
}

// ---- progress engine ---------------------------------------------------------

void Device::send_ctrl(Rank dst, std::uint64_t imm, const void* payload,
                       std::size_t len) {
  assert(len <= kMaxCtrlPayload);
  if (rel_.send(dst, payload, len, imm) == common::Status::kOk) {
    return;
  }
  DeferredSend deferred;
  deferred.dst = dst;
  deferred.imm = imm;
  std::memcpy(deferred.ctrl.data(), payload, len);
  deferred.ctrl_len = len;
  defer_send(std::move(deferred));
}

void Device::defer_send(DeferredSend&& deferred) {
  // Count before publishing: a progress call that observes the element must
  // also observe a nonzero count.
  const Rank dst = deferred.dst;
  deferred_count_.fetch_add(1, std::memory_order_release);
  deferred_lanes_[dst].value.queue.push(std::move(deferred));
}

void Device::retry_deferred() {
  if (deferred_count_.load(std::memory_order_acquire) == 0) return;
  for (auto& padded : deferred_lanes_) {
    DeferredLane& lane = padded.value;
    if (!lane.consumer.try_lock()) continue;  // another thread drains it
    bool lane_blocked = false;
    const auto try_post = [&](DeferredSend&& msg) {
      common::Status status;
      if (msg.is_write) {
        status = nic_.post_write_imm(
            msg.dst, fabric::MrKey{msg.dst, msg.write_mr_id}, 0,
            msg.payload.data(), msg.payload.size(), msg.imm);
      } else {
        status = rel_.send(msg.dst, msg.ctrl.data(), msg.ctrl_len, msg.imm);
      }
      if (status != common::Status::kOk) {
        // Still refused: re-park at the head so per-destination FIFO order
        // survives, and stop hammering this destination until next time.
        lane.stalled.push_front(std::move(msg));
        lane_blocked = true;
        return;
      }
      deferred_count_.fetch_sub(1, std::memory_order_relaxed);
      signal_completion(msg.comp, std::move(msg.entry));
    };
    while (!lane_blocked && !lane.stalled.empty()) {
      DeferredSend msg = std::move(lane.stalled.front());
      lane.stalled.pop_front();
      try_post(std::move(msg));
    }
    while (!lane_blocked) {
      auto msg = lane.queue.try_pop();
      if (!msg) break;
      try_post(std::move(*msg));
    }
    lane.consumer.unlock();
  }
}

std::size_t Device::progress() {
  ctr_progress_calls_.add();
  telemetry::ScopedTimer timer(hist_progress_ns_);
  retry_deferred();
  rel_.progress();
  return nic_.poll_rx(config_.progress_batch, [this](fabric::RxEvent&& event) {
    // The reliable sublayer strips its trailer, dedups, and swallows acks;
    // only fresh verified datagrams reach the protocol handlers.
    if (!rel_.on_recv(event)) return;
    handle_event(std::move(event));
  });
}

bool Device::deliver_to_handler(Rank src, Tag tag, OpKind op,
                                std::vector<std::byte>&& data) {
  if (!handler_armed_ || tag != handler_tag_) return false;
  CqEntry entry;
  entry.op = op;
  entry.rank = src;
  entry.tag = tag;
  entry.size = data.size();
  entry.data = std::move(data);
  signal_completion(handler_comp_, std::move(entry));
  return true;
}

void Device::handle_medium_arrival(Rank src, Tag tag,
                                   std::vector<std::byte>&& data) {
  // Active-message fast path: the registered tag handler fires straight
  // from progress context, skipping the matching table.
  if (handler_armed_ && tag == handler_tag_) {
    deliver_to_handler(src, tag, OpKind::kRecvMedium, std::move(data));
    return;
  }
  const std::size_t len = data.size();
  Arrival arrival;
  arrival.is_rts = false;
  arrival.src = src;
  arrival.tag = tag;
  arrival.payload = std::move(data);
  auto posted = matching_.insert_arrival(src, tag, std::move(arrival));
  (posted ? ctr_match_hits_ : ctr_match_misses_).add();
  if (!posted) return;  // stored as unexpected (payload moved into table)
  if (posted->is_long) {
    AMTNET_LOG_ERROR("minilci: medium arrival matched recvl (src=", src,
                     " tag=", tag, ")");
    return;
  }
  // Matched: insert_arrival left `arrival` intact, so the payload moves
  // straight into the completion entry — no copy on the fast path.
  CqEntry entry;
  entry.op = OpKind::kRecvMedium;
  entry.rank = src;
  entry.tag = tag;
  entry.size = len;
  entry.data = std::move(arrival.payload);
  entry.user_context = posted->user_context;
  signal_completion(posted->comp, std::move(entry));
}

void Device::handle_rts(Rank src, Tag tag, std::size_t size,
                        std::uint32_t sender_id, std::uint32_t crc) {
  Arrival arrival;
  arrival.is_rts = true;
  arrival.src = src;
  arrival.tag = tag;
  arrival.rdv_size = size;
  arrival.rdv_sender_id = sender_id;
  arrival.rdv_crc = crc;
  auto posted = matching_.insert_arrival(src, tag, std::move(arrival));
  (posted ? ctr_match_hits_ : ctr_match_misses_).add();
  if (!posted) return;
  if (!posted->is_long) {
    AMTNET_LOG_ERROR("minilci: RTS matched recvm (src=", src, " tag=", tag,
                     ")");
    return;
  }
  start_long_recv(src, tag, size, sender_id, crc, std::move(*posted));
}

void Device::handle_event(fabric::RxEvent&& event) {
  const MsgKind kind = imm_kind(event.imm);
  if (event.kind == fabric::RxEvent::Kind::kReadDone) {
    if (kind == MsgKind::kGetDone) {
      handle_get_done(imm_arg(event.imm));
    } else {
      AMTNET_LOG_ERROR("minilci: unexpected read-done kind ",
                       static_cast<int>(kind));
    }
    return;
  }
  if (event.kind == fabric::RxEvent::Kind::kWriteImm) {
    if (kind == MsgKind::kFin) {
      handle_fin(imm_arg(event.imm), event.size);
    } else if (kind == MsgKind::kPutFin) {
      handle_put_fin(imm_arg(event.imm));
    } else {
      AMTNET_LOG_ERROR("minilci: unexpected write-imm kind ",
                       static_cast<int>(kind));
    }
    return;
  }

  const std::byte* data = event.payload.data();
  switch (kind) {
    case MsgKind::kMedium:
      handle_medium_arrival(event.src, imm_arg(event.imm),
                            std::move(event.payload));
      break;
    case MsgKind::kPutEager:
      handle_put_eager(event.src, imm_arg(event.imm),
                       std::move(event.payload));
      break;
    case MsgKind::kRts: {
      const auto hello = from_bytes<RdvHello>(data, event.size);
      handle_rts(event.src, imm_arg(event.imm), hello.size, hello.sender_id,
                 hello.crc);
      break;
    }
    case MsgKind::kPutRts: {
      const auto hello = from_bytes<RdvHello>(data, event.size);
      handle_put_rts(event.src, imm_arg(event.imm), hello.size,
                     hello.sender_id, hello.crc);
      break;
    }
    case MsgKind::kCts:
      handle_cts(event.src, data, event.size);
      break;
    case MsgKind::kPutCts:
      handle_put_cts(event.src, data, event.size);
      break;
    default:
      AMTNET_LOG_ERROR("minilci: unexpected message kind ",
                       static_cast<int>(kind));
  }
}

}  // namespace minilci
