// ShardedIdTable — the rendezvous-state store of the progress engine.
//
// Every in-flight rendezvous operation (long send awaiting CTS, long recv
// awaiting the RDMA write, large put, pending get) parks its state under a
// freshly allocated 32-bit id that travels in the control messages. The
// paper's multi-threaded progress analysis makes the cost model clear: with
// one global map + mutex, every CTS/FIN handled by any progress thread
// serializes against every sendl/recvl on every worker. Here the id itself
// encodes its shard — `id = (seq << shard_bits) | shard` — so the CTS/FIN
// lookup goes straight to one small open-addressed table under one fine
// spinlock, and inserts pick the caller's "home" shard (per-thread slot
// hint) so concurrent senders don't collide either.
//
// Ids are never 0 (sequences start at 1), so 0 doubles as the empty-slot
// sentinel in the probe array; ~0 marks tombstones and is skipped by the
// allocator. Each shard's table grows by rehash at 3/4 load, dropping
// tombstones.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "telemetry/metrics.hpp"

namespace minilci {

template <typename T>
class ShardedIdTable {
 public:
  /// `shards` is rounded up to a power of two (minimum 1). One shard
  /// degenerates to a single table + lock — the pre-sharding behaviour,
  /// kept reachable (config token `rs1`) as the ablation baseline.
  explicit ShardedIdTable(std::size_t shards) {
    std::size_t n = 1;
    while (n < shards && n < kMaxShards) n <<= 1;
    shard_bits_ = 0;
    while ((std::size_t{1} << shard_bits_) < n) ++shard_bits_;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Allocates a fresh id and parks `value` under it. The shard is chosen
  /// from the calling thread's slot hint, so concurrent inserters spread
  /// out; the id encodes the shard for the later extract().
  std::uint32_t insert(T&& value) {
    const std::uint32_t shard_index =
        telemetry::shard_slot() & (num_shards() - 1);
    Shard& shard = *shards_[shard_index];
    std::lock_guard<common::SpinMutex> guard(shard.mutex);
    std::uint32_t id;
    do {
      id = (shard.next_seq++ << shard_bits_) | shard_index;
    } while (id == kEmpty || id == kTombstone);
    shard.put(id, std::move(value));
    return id;
  }

  /// Removes and returns the value parked under `id`; nullopt when the id
  /// is unknown (stale control message).
  std::optional<T> extract(std::uint32_t id) {
    Shard& shard = *shards_[id & (num_shards() - 1)];
    std::lock_guard<common::SpinMutex> guard(shard.mutex);
    return shard.take(id);
  }

  /// Diagnostics / drain checks only (takes every shard lock).
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<common::SpinMutex> guard(shard->mutex);
      n += shard->live;
    }
    return n;
  }

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

 private:
  static constexpr std::size_t kMaxShards = 256;
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kTombstone = ~std::uint32_t{0};
  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  struct Slot {
    std::uint32_t id = kEmpty;
    T value{};
  };

  struct Shard {
    mutable common::SpinMutex mutex;
    std::uint32_t next_seq = 1;
    std::size_t live = 0;      // occupied slots
    std::size_t occupied = 0;  // occupied + tombstones (probe-chain load)
    std::vector<Slot> slots = std::vector<Slot>(kInitialCapacity);

    static std::size_t probe_start(std::uint32_t id, std::size_t mask) {
      return (id * 0x9E3779B1u) & mask;
    }

    void put(std::uint32_t id, T&& value) {
      if ((occupied + 1) * 4 >= slots.size() * 3) rehash();
      const std::size_t mask = slots.size() - 1;
      std::size_t i = probe_start(id, mask);
      while (slots[i].id != kEmpty && slots[i].id != kTombstone) {
        i = (i + 1) & mask;
      }
      if (slots[i].id == kEmpty) ++occupied;
      slots[i].id = id;
      slots[i].value = std::move(value);
      ++live;
    }

    std::optional<T> take(std::uint32_t id) {
      const std::size_t mask = slots.size() - 1;
      std::size_t i = probe_start(id, mask);
      while (slots[i].id != kEmpty) {
        if (slots[i].id == id) {
          std::optional<T> out(std::move(slots[i].value));
          slots[i].id = kTombstone;
          slots[i].value = T{};
          --live;
          return out;
        }
        i = (i + 1) & mask;
      }
      return std::nullopt;
    }

    void rehash() {
      // Grow only when the live load justifies it; otherwise the rehash
      // just sweeps out tombstones at the same capacity.
      const std::size_t capacity =
          (live * 2 >= slots.size()) ? slots.size() * 2 : slots.size();
      std::vector<Slot> old = std::move(slots);
      slots = std::vector<Slot>(capacity);
      occupied = 0;
      const std::size_t mask = capacity - 1;
      for (Slot& slot : old) {
        if (slot.id == kEmpty || slot.id == kTombstone) continue;
        std::size_t i = probe_start(slot.id, mask);
        while (slots[i].id != kEmpty) i = (i + 1) & mask;
        slots[i].id = slot.id;
        slots[i].value = std::move(slot.value);
        ++occupied;
      }
    }
  };

  std::uint32_t shard_bits_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace minilci
