// minilci — a miniature Lightweight Communication Interface over the
// simulated fabric, standing in for LCI v1.7 in the paper.
//
// Feature set reproduced (paper §2.1):
//   * two-sided medium (eager) and long (rendezvous) send/receive,
//   * one-sided *dynamic put*: the target buffer is allocated by the runtime
//     on arrival and an entry is pushed to a pre-configured completion queue
//     on the remote side,
//   * three completion mechanisms — completion queues, synchronizers, and
//     function handlers — combinable with any primitive,
//   * explicit progress() and explicit retry: every injection returns
//     Status::kRetry under transient resource exhaustion,
//   * no ordering guarantee between messages (the fabric stripes rails).
//
// Concurrency discipline (the paper's point (a)): no global lock anywhere —
// per-bucket spin locks in the matching table, consumer try-locks on
// completion queues and fabric channels, atomics for ids and counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fabric/types.hpp"

namespace minilci {

using Rank = fabric::Rank;
using Tag = std::uint32_t;

/// Reserved tag: mediums/puts sent with it bypass matching and completion
/// queues and are delivered straight to the device's registered tag handler
/// from progress context (Device::register_tag_handler) — LCI's
/// active-message style, used by the parcelport's small-parcel fast path.
inline constexpr Tag kFastpathTag = 0xFFFFFFFFu;

struct Config {
  std::size_t eager_threshold = 8192;   // max medium-message payload
  std::size_t packet_pool_size = 4096;  // send-side packet buffers
  std::size_t packet_cache_size = 32;   // per-slot magazine capacity
                                        // (0 = every alloc hits the shared
                                        // MPMC free list)
  std::size_t progress_batch = 64;      // fabric packets per progress call
  std::size_t rdv_shards = 16;          // rendezvous-state table shards
                                        // (rounded up to a power of two;
                                        // 1 = single table + lock, the
                                        // pre-sharding ablation baseline)
};

/// What completed. Mirrors LCI's request status fields.
enum class OpKind : std::uint8_t {
  kSendMedium,
  kRecvMedium,
  kSendLong,
  kRecvLong,
  kPutDyn,     // local completion of a dynamic put
  kRemotePut,  // remote side of a dynamic put (pushed to the device's RCQ)
  kGet,        // local completion of a one-sided get
};

/// Descriptor of a remotely readable buffer, obtained from
/// Device::register_remote_buffer and shipped to peers out of band (it is
/// trivially copyable, so it serializes as a scalar).
struct RemoteBuffer {
  fabric::MrKey mr;
  std::uint64_t len = 0;
};

/// Completion record delivered through a queue, synchronizer, or handler.
struct CqEntry {
  OpKind op = OpKind::kSendMedium;
  Rank rank = 0;   // peer
  Tag tag = 0;
  std::vector<std::byte> data;  // received medium / remote-put payload
  void* user_buf = nullptr;     // long-recv destination buffer
  std::size_t size = 0;         // payload byte count
  std::uint64_t user_context = 0;
};

}  // namespace minilci
