// Two-sided matching table with fine-grained bucket locks. Keys are exact
// (rank, tag) pairs — minilci does not support wildcard receives, matching
// real LCI, whose parcelport gives every message its own tag anyway.
//
// Each key holds FIFO queues of posted receives and of arrivals; insert_recv
// and insert_arrival atomically pair the newcomer with a waiting counterpart
// when one exists. Bucket-level spin locks keep concurrent posters and the
// progress engine from serialising on one global lock.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "minilci/completion.hpp"
#include "minilci/types.hpp"

namespace minilci {

struct PostedRecv {
  bool is_long = false;
  Comp comp;
  void* buf = nullptr;       // long receives only
  std::size_t maxlen = 0;    // long receives only
  std::uint64_t user_context = 0;
};

struct Arrival {
  bool is_rts = false;                // true: long-protocol RTS
  std::vector<std::byte> payload;     // medium payload copy
  std::size_t rdv_size = 0;           // RTS only
  std::uint32_t rdv_sender_id = 0;    // RTS only
  std::uint32_t rdv_crc = 0;          // RTS only: payload CRC (integrity mode)
  Rank src = 0;
  Tag tag = 0;
};

class MatchingTable {
 public:
  explicit MatchingTable(std::size_t num_buckets = 256)
      : buckets_(round_up_pow2(num_buckets)), mask_(buckets_.size() - 1) {}

  /// Posts a receive; returns the matching arrival if one was waiting.
  /// `recv` is consumed (moved into the table) only when no match is
  /// returned; on a match the caller's object is left intact.
  std::optional<Arrival> insert_recv(Rank src, Tag tag, PostedRecv&& recv) {
    Bucket& bucket = bucket_for(src, tag);
    std::lock_guard<common::SpinMutex> guard(bucket.mutex);
    Entry& entry = bucket.map[key_of(src, tag)];
    if (!entry.arrivals.empty()) {
      Arrival arrival = std::move(entry.arrivals.front());
      entry.arrivals.pop_front();
      maybe_erase(bucket, src, tag, entry);
      return arrival;
    }
    entry.recvs.push_back(std::move(recv));
    return std::nullopt;
  }

  /// Records an arrival; returns the matching posted receive if one was
  /// waiting. `arrival` is consumed only when no match is returned; on a
  /// match the caller keeps its payload (the zero-copy delivery path).
  std::optional<PostedRecv> insert_arrival(Rank src, Tag tag,
                                           Arrival&& arrival) {
    Bucket& bucket = bucket_for(src, tag);
    std::lock_guard<common::SpinMutex> guard(bucket.mutex);
    Entry& entry = bucket.map[key_of(src, tag)];
    if (!entry.recvs.empty()) {
      PostedRecv recv = std::move(entry.recvs.front());
      entry.recvs.pop_front();
      maybe_erase(bucket, src, tag, entry);
      return recv;
    }
    entry.arrivals.push_back(std::move(arrival));
    return std::nullopt;
  }

  /// Diagnostic: total posted receives still waiting (racy snapshot).
  std::size_t pending_recvs() const {
    std::size_t n = 0;
    for (const auto& bucket : buckets_) {
      std::lock_guard<common::SpinMutex> guard(bucket.mutex);
      for (const auto& [key, entry] : bucket.map) n += entry.recvs.size();
    }
    return n;
  }

  /// Diagnostic: total unmatched arrivals (racy snapshot).
  std::size_t pending_arrivals() const {
    std::size_t n = 0;
    for (const auto& bucket : buckets_) {
      std::lock_guard<common::SpinMutex> guard(bucket.mutex);
      for (const auto& [key, entry] : bucket.map) n += entry.arrivals.size();
    }
    return n;
  }

 private:
  struct Entry {
    std::deque<PostedRecv> recvs;
    std::deque<Arrival> arrivals;
  };

  struct Bucket {
    mutable common::SpinMutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static std::uint64_t key_of(Rank src, Tag tag) {
    return (static_cast<std::uint64_t>(src) << 32) | tag;
  }

  Bucket& bucket_for(Rank src, Tag tag) {
    // Tags are sequential counter values; mix them so neighbours spread
    // across buckets.
    std::uint64_t h = key_of(src, tag) * 0x9e3779b97f4a7c15ULL;
    return buckets_[(h >> 32) & mask_];
  }

  void maybe_erase(Bucket& bucket, Rank src, Tag tag, Entry& entry) {
    if (entry.recvs.empty() && entry.arrivals.empty()) {
      bucket.map.erase(key_of(src, tag));
    }
  }

  std::vector<Bucket> buckets_;
  std::size_t mask_;
};

}  // namespace minilci
