// Completion mechanisms: completion queue, synchronizer, handler — plus the
// Comp handle that lets any primitive signal any mechanism (paper §2.1
// "versatile communication interface").
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/spinlock.hpp"
#include "minilci/types.hpp"
#include "queues/mpsc_queue.hpp"
#include "telemetry/metrics.hpp"

namespace minilci {

/// Multi-producer completion queue. Pollable from many threads; concurrent
/// pollers use a consumer try-lock, so contended polls return nullopt
/// quickly rather than blocking (the paper's "polling one completion queue
/// leads to fewer CPU cycles and less thread contention").
class CompQueue {
 public:
  void push(CqEntry&& entry) {
    queue_.push(std::move(entry));
    if (depth_gauge_ != nullptr) depth_gauge_->add();
  }

  std::optional<CqEntry> poll() {
    auto entry = queue_.try_pop(nullptr);
    if (entry && depth_gauge_ != nullptr) depth_gauge_->sub();
    return entry;
  }

  /// Drains up to `max_items` entries in one lock acquisition.
  template <typename Fn>
  std::size_t poll_batch(std::size_t max_items, Fn&& fn) {
    const std::size_t n = queue_.try_drain(max_items, std::forward<Fn>(fn));
    if (n > 0 && depth_gauge_ != nullptr) {
      depth_gauge_->sub(static_cast<std::int64_t>(n));
    }
    return n;
  }

  bool looks_empty() const { return queue_.looks_empty(); }

  /// Optional registry gauge tracking the queue depth (push - poll). The
  /// gauge must outlive the queue; pass nullptr to detach.
  void attach_depth_gauge(telemetry::Gauge* gauge) { depth_gauge_ = gauge; }

 private:
  queues::TryMpmcQueue<CqEntry> queue_;
  telemetry::Gauge* depth_gauge_ = nullptr;
};

/// Synchronizer: MPI_Request-like object, with the LCI twist of allowing
/// multiple producers (threshold > 1). test() succeeds once `threshold`
/// signals have arrived and hands back the accumulated entries.
class Synchronizer {
 public:
  explicit Synchronizer(int threshold = 1) : threshold_(threshold) {
    entries_.reserve(static_cast<std::size_t>(threshold));
  }

  /// Producer side; called by the progress engine or injection path.
  void signal(CqEntry&& entry) {
    {
      std::lock_guard<common::SpinMutex> guard(mutex_);
      entries_.push_back(std::move(entry));
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  /// Nonblocking test; on success moves the entries into `out` (if non-null)
  /// and resets the synchronizer for reuse.
  bool test(std::vector<CqEntry>* out = nullptr) {
    if (count_.load(std::memory_order_acquire) < threshold_) return false;
    std::lock_guard<common::SpinMutex> guard(mutex_);
    if (count_.load(std::memory_order_relaxed) < threshold_) return false;
    if (out != nullptr) {
      *out = std::move(entries_);
    }
    entries_.clear();
    count_.fetch_sub(threshold_, std::memory_order_relaxed);
    return true;
  }

  int threshold() const { return threshold_; }

 private:
  const int threshold_;
  std::atomic<int> count_{0};
  common::SpinMutex mutex_;
  std::vector<CqEntry> entries_;
};

using HandlerFn = void (*)(CqEntry&&, void* user_arg);

/// Handle naming where a completion should be signalled. Cheap to copy.
struct Comp {
  enum class Type : std::uint8_t { kNone, kQueue, kSync, kHandler };

  Type type = Type::kNone;
  CompQueue* cq = nullptr;
  Synchronizer* sync_obj = nullptr;
  HandlerFn handler_fn = nullptr;
  void* handler_arg = nullptr;

  static Comp none() { return Comp{}; }
  static Comp queue(CompQueue* cq) {
    Comp comp;
    comp.type = Type::kQueue;
    comp.cq = cq;
    return comp;
  }
  static Comp sync(Synchronizer* sync) {
    Comp comp;
    comp.type = Type::kSync;
    comp.sync_obj = sync;
    return comp;
  }
  static Comp handler(HandlerFn fn, void* arg) {
    Comp comp;
    comp.type = Type::kHandler;
    comp.handler_fn = fn;
    comp.handler_arg = arg;
    return comp;
  }
};

inline void signal_completion(const Comp& comp, CqEntry&& entry) {
  switch (comp.type) {
    case Comp::Type::kNone:
      break;
    case Comp::Type::kQueue:
      assert(comp.cq != nullptr);
      comp.cq->push(std::move(entry));
      break;
    case Comp::Type::kSync:
      assert(comp.sync_obj != nullptr);
      comp.sync_obj->signal(std::move(entry));
      break;
    case Comp::Type::kHandler:
      assert(comp.handler_fn != nullptr);
      comp.handler_fn(std::move(entry), comp.handler_arg);
      break;
  }
}

}  // namespace minilci
