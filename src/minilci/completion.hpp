// Completion mechanisms: completion queue, synchronizer, handler — plus the
// Comp handle that lets any primitive signal any mechanism (paper §2.1
// "versatile communication interface").
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/spinlock.hpp"
#include "minilci/types.hpp"
#include "queues/mpsc_queue.hpp"
#include "telemetry/metrics.hpp"

namespace minilci {

/// Multi-producer completion queue. Pollable from many threads; concurrent
/// pollers use a consumer try-lock, so contended polls return nullopt
/// quickly rather than blocking (the paper's "polling one completion queue
/// leads to fewer CPU cycles and less thread contention").
class CompQueue {
 public:
  void push(CqEntry&& entry) {
    queue_.push(std::move(entry));
    if (depth_gauge_ != nullptr) depth_gauge_->add();
  }

  std::optional<CqEntry> poll() {
    // Route through poll_batch so the depth gauge has exactly one
    // batch-aware update path regardless of how entries are drained.
    std::optional<CqEntry> entry;
    poll_batch(1, [&entry](CqEntry&& popped) { entry = std::move(popped); });
    return entry;
  }

  /// Drains up to `max_items` entries in one lock acquisition.
  template <typename Fn>
  std::size_t poll_batch(std::size_t max_items, Fn&& fn) {
    const std::size_t n = queue_.try_drain(max_items, std::forward<Fn>(fn));
    if (n > 0 && depth_gauge_ != nullptr) {
      depth_gauge_->sub(static_cast<std::int64_t>(n));
    }
    return n;
  }

  bool looks_empty() const { return queue_.looks_empty(); }

  /// Optional registry gauge tracking the queue depth (push - poll). The
  /// gauge must outlive the queue; pass nullptr to detach.
  void attach_depth_gauge(telemetry::Gauge* gauge) { depth_gauge_ = gauge; }

 private:
  queues::TryMpmcQueue<CqEntry> queue_;
  telemetry::Gauge* depth_gauge_ = nullptr;
};

/// Synchronizer: MPI_Request-like object, with the LCI twist of allowing
/// multiple producers (threshold > 1). test() succeeds once `threshold`
/// signals have arrived and hands back the accumulated entries.
///
/// The common case — thresholds up to kInlineSlots, which covers the one
/// the parcelport recycles by the thousand (threshold 1) — is lock-free:
/// each producer claims a distinct inline slot with one fetch_add, writes
/// its entry, and publishes with a release increment of the arrival count.
/// test() observes the count with an acquire load; the release sequence on
/// the count makes every producer's slot write visible, so neither signal()
/// nor test() ever takes a lock. Larger thresholds fall back to the
/// spinlocked vector.
class Synchronizer {
 public:
  static constexpr int kInlineSlots = 8;

  explicit Synchronizer(int threshold = 1) : threshold_(threshold) {
    assert(threshold >= 1);
    if (!inline_mode()) {
      entries_.reserve(static_cast<std::size_t>(threshold));
    }
  }

  /// Producer side; called by the progress engine or injection path. At
  /// most `threshold` signals per arm/test cycle (the LCI contract: one
  /// synchronizer serves one N-part operation at a time).
  void signal(CqEntry&& entry) {
    if (inline_mode()) {
      const int slot = claimed_.fetch_add(1, std::memory_order_relaxed);
      assert(slot < threshold_ && "more signals than the armed threshold");
      slots_[slot] = std::move(entry);
      count_.fetch_add(1, std::memory_order_release);
      return;
    }
    {
      std::lock_guard<common::SpinMutex> guard(mutex_);
      entries_.push_back(std::move(entry));
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  /// Nonblocking test; on success moves the entries into `out` (if non-null)
  /// and resets the synchronizer for reuse.
  bool test(std::vector<CqEntry>* out = nullptr) {
    if (count_.load(std::memory_order_acquire) < threshold_) return false;
    if (inline_mode()) {
      // Concurrent testers elect one consumer; losers report not-ready and
      // retry later rather than spinning on the winner.
      if (consuming_.exchange(true, std::memory_order_acquire)) return false;
      if (count_.load(std::memory_order_acquire) < threshold_) {
        consuming_.store(false, std::memory_order_release);
        return false;
      }
      if (out != nullptr) {
        out->clear();
        for (int i = 0; i < threshold_; ++i) {
          out->push_back(std::move(slots_[i]));
        }
      }
      for (int i = 0; i < threshold_; ++i) slots_[i] = CqEntry{};
      claimed_.store(0, std::memory_order_relaxed);
      count_.store(0, std::memory_order_relaxed);
      consuming_.store(false, std::memory_order_release);
      return true;
    }
    std::lock_guard<common::SpinMutex> guard(mutex_);
    if (count_.load(std::memory_order_relaxed) < threshold_) return false;
    if (out != nullptr) {
      *out = std::move(entries_);
    }
    entries_.clear();
    // A moved-from vector forfeits its buffer; re-reserve so steady-state
    // reuse of the synchronizer stays allocation-free.
    entries_.reserve(static_cast<std::size_t>(threshold_));
    count_.fetch_sub(threshold_, std::memory_order_relaxed);
    return true;
  }

  int threshold() const { return threshold_; }
  bool inline_mode() const { return threshold_ <= kInlineSlots; }

 private:
  const int threshold_;
  std::atomic<int> count_{0};
  // Inline (lock-free) path: slot tickets + fixed entry array.
  std::atomic<int> claimed_{0};
  std::atomic<bool> consuming_{false};
  std::array<CqEntry, kInlineSlots> slots_;
  // Fallback path (threshold > kInlineSlots).
  common::SpinMutex mutex_;
  std::vector<CqEntry> entries_;
};

using HandlerFn = void (*)(CqEntry&&, void* user_arg);

/// Handle naming where a completion should be signalled. Cheap to copy.
struct Comp {
  enum class Type : std::uint8_t { kNone, kQueue, kSync, kHandler };

  Type type = Type::kNone;
  CompQueue* cq = nullptr;
  Synchronizer* sync_obj = nullptr;
  HandlerFn handler_fn = nullptr;
  void* handler_arg = nullptr;

  static Comp none() { return Comp{}; }
  static Comp queue(CompQueue* cq) {
    Comp comp;
    comp.type = Type::kQueue;
    comp.cq = cq;
    return comp;
  }
  static Comp sync(Synchronizer* sync) {
    Comp comp;
    comp.type = Type::kSync;
    comp.sync_obj = sync;
    return comp;
  }
  static Comp handler(HandlerFn fn, void* arg) {
    Comp comp;
    comp.type = Type::kHandler;
    comp.handler_fn = fn;
    comp.handler_arg = arg;
    return comp;
  }
};

inline void signal_completion(const Comp& comp, CqEntry&& entry) {
  switch (comp.type) {
    case Comp::Type::kNone:
      break;
    case Comp::Type::kQueue:
      assert(comp.cq != nullptr);
      comp.cq->push(std::move(entry));
      break;
    case Comp::Type::kSync:
      assert(comp.sync_obj != nullptr);
      comp.sync_obj->signal(std::move(entry));
      break;
    case Comp::Type::kHandler:
      assert(comp.handler_fn != nullptr);
      comp.handler_fn(std::move(entry), comp.handler_arg);
      break;
  }
}

}  // namespace minilci
