// minilci::Device — one communication device per locality (the paper notes
// the current LCI parcelport uses exactly one device per process; replicating
// devices is its future work). Owns the fabric NIC binding, the packet pool,
// the matching table, and the rendezvous state; exposes the communication
// primitives and the explicit, thread-safe progress() function.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "common/status.hpp"
#include "fabric/nic.hpp"
#include "fabric/reliable.hpp"
#include "minilci/completion.hpp"
#include "minilci/matching_table.hpp"
#include "minilci/packet_pool.hpp"
#include "minilci/rdv_table.hpp"
#include "minilci/types.hpp"
#include "queues/mpsc_queue.hpp"

namespace minilci {

class Device {
 public:
  /// `remote_put_cq` is the pre-configured completion queue that receives
  /// the remote side of dynamic puts (the only remote completion mechanism
  /// the current LCI put supports — paper §3.2.2).
  Device(fabric::Fabric& fabric, Rank rank, Config config,
         CompQueue* remote_put_cq);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  Rank rank() const { return rank_; }
  Rank world_size() const { return fabric_.num_ranks(); }
  const Config& config() const { return config_; }
  CompQueue* remote_put_cq() const { return remote_put_cq_; }

  // ---- buffer management -------------------------------------------------

  /// Grabs a send packet for in-place assembly; nullopt == pool exhausted.
  std::optional<PacketBuffer> try_alloc_packet() {
    auto packet = packet_pool_.try_alloc();
    if (!packet) ctr_pool_exhausted_.add();
    return packet;
  }

  std::size_t max_medium_size() const { return config_.eager_threshold; }

  // ---- two-sided ----------------------------------------------------------

  /// Medium (eager) send; len <= eager_threshold. Copies before returning.
  common::Status sendm(Rank dst, Tag tag, const void* data, std::size_t len,
                       const Comp& local_comp, std::uint64_t user_context = 0);

  /// Medium send from a pool packet assembled in place (no user-side copy).
  /// On kOk the packet is consumed; on kRetry it stays with the caller.
  common::Status sendm_packet(Rank dst, Tag tag, PacketBuffer& packet,
                              const Comp& local_comp,
                              std::uint64_t user_context = 0);

  /// Posts a matching receive for a medium message; the payload is delivered
  /// as an owned buffer in the CqEntry.
  common::Status recvm(Rank src, Tag tag, const Comp& comp,
                       std::uint64_t user_context = 0);

  /// Long (rendezvous) send; `data` must stay valid until local completion.
  common::Status sendl(Rank dst, Tag tag, const void* data, std::size_t len,
                       const Comp& local_comp, std::uint64_t user_context = 0);

  /// Posts a long receive into `buf` (capacity maxlen).
  common::Status recvl(Rank src, Tag tag, void* buf, std::size_t maxlen,
                       const Comp& comp, std::uint64_t user_context = 0);

  // ---- one-sided get --------------------------------------------------------

  /// Exposes [ptr, ptr+len) for one-sided gets by peers. The descriptor is
  /// plain data; ship it to peers inside any message.
  RemoteBuffer register_remote_buffer(void* ptr, std::size_t len) {
    return RemoteBuffer{nic_.register_memory(ptr, len), len};
  }
  void deregister_remote_buffer(const RemoteBuffer& buffer) {
    nic_.deregister_memory(buffer.mr);
  }

  /// One-sided get: reads `len` bytes at `offset` inside the peer's
  /// registered buffer into `dst`, without peer software involvement.
  /// Completion (kGet) signals the chosen local mechanism.
  common::Status get(const RemoteBuffer& src, std::size_t offset, void* dst,
                     std::size_t len, const Comp& comp,
                     std::uint64_t user_context = 0);

  // ---- one-sided dynamic put ----------------------------------------------

  /// Dynamic put: the target buffer is allocated on arrival and a kRemotePut
  /// entry lands in the *target's* remote_put_cq. Any size.
  common::Status put_dyn(Rank dst, Tag tag, const void* data, std::size_t len,
                         const Comp& local_comp, std::uint64_t user_context = 0);

  /// Dynamic put from a pool packet assembled in place (the parcelport's
  /// header-message fast path). Consumes the packet on kOk.
  common::Status put_dyn_packet(Rank dst, Tag tag, PacketBuffer& packet,
                                const Comp& local_comp,
                                std::uint64_t user_context = 0);

  // ---- active-message tag handler ------------------------------------------

  /// Arms a handler completion for one reserved tag (kFastpathTag): mediums
  /// and dynamic puts arriving with that tag skip the matching table and the
  /// remote-put queue entirely and `comp` (normally Comp::handler) fires
  /// straight from progress context with the owned payload. Call once,
  /// before any progress thread runs — there is deliberately no
  /// synchronisation on the slot.
  void register_tag_handler(Tag tag, const Comp& comp) {
    handler_tag_ = tag;
    handler_comp_ = comp;
    handler_armed_ = true;
  }

  // ---- progress -----------------------------------------------------------

  /// Drives the communication engine: drains the NIC, matches messages, and
  /// fires completions. Thread-safe; concurrent callers cooperate through
  /// try-locks (they never block each other). Returns packets processed.
  std::size_t progress();

  /// Racy idle hint for schedulers.
  bool looks_idle() const { return !nic_.rx_looks_nonempty(); }

  fabric::Nic& nic() { return nic_; }

 private:
  struct RdvSend {  // two-sided long send awaiting CTS
    const std::byte* data = nullptr;
    std::size_t len = 0;
    Comp comp;
    std::uint64_t user_context = 0;
    Tag tag = 0;
    Rank dst = 0;
  };

  struct RdvRecv {  // two-sided long recv awaiting the RDMA write
    Comp comp;
    void* buf = nullptr;
    fabric::MrKey mr;
    std::uint64_t user_context = 0;
    Tag tag = 0;
    Rank src = 0;
    // Integrity mode: the sender's CRC over the full payload (from the RTS)
    // and its size, verified once the RDMA write lands (see handle_fin).
    std::uint32_t expected_crc = 0;
    std::size_t expected_size = 0;
  };

  struct PutSend {  // large dynamic put awaiting CTS
    std::vector<std::byte> data;  // owned: put_dyn copies (any-size payload)
    Comp comp;
    Tag tag = 0;
    Rank dst = 0;
    std::uint64_t user_context = 0;
  };

  struct PutRecv {  // large dynamic put: target-side allocated buffer
    std::vector<std::byte> data;
    fabric::MrKey mr;
    Tag tag = 0;
    Rank src = 0;
    std::uint32_t expected_crc = 0;  // integrity mode only (see RdvRecv)
  };

  // Largest control-message payload (CtsPayload); deferred control sends
  // buffer it inline instead of in a heap vector.
  static constexpr std::size_t kMaxCtrlPayload = 24;

  struct DeferredSend {  // message that hit TX back-pressure
    Rank dst = 0;
    std::uint64_t imm = 0;
    // Control payloads are tiny and fixed-size: buffered inline. Deferred
    // RDMA writes keep their (arbitrarily large) payload in the vector.
    std::array<std::byte, kMaxCtrlPayload> ctrl{};
    std::size_t ctrl_len = 0;
    std::vector<std::byte> payload;
    bool is_write = false;
    std::uint64_t write_mr_id = 0;
    // Completion to signal once actually injected (writes = local long-send
    // completion), or none.
    Comp comp;
    CqEntry entry;
  };

  void handle_event(fabric::RxEvent&& event);
  void handle_medium_arrival(Rank src, Tag tag,
                             std::vector<std::byte>&& data);
  void handle_rts(Rank src, Tag tag, std::size_t size,
                  std::uint32_t sender_id, std::uint32_t crc);
  void start_long_recv(Rank src, Tag tag, std::size_t size,
                       std::uint32_t sender_id, std::uint32_t crc,
                       PostedRecv&& recv);
  void handle_cts(Rank src, const std::byte* payload, std::size_t len);
  void handle_fin(std::uint32_t recv_id, std::size_t written);
  void handle_put_eager(Rank src, Tag tag, std::vector<std::byte>&& data);
  void handle_put_rts(Rank src, Tag tag, std::size_t size,
                      std::uint32_t sender_id, std::uint32_t crc);
  void handle_put_cts(Rank src, const std::byte* payload, std::size_t len);
  void handle_put_fin(std::uint32_t recv_id);
  void handle_get_done(std::uint32_t get_id);
  /// Posts a small fixed-size control message (RTS/CTS family) directly from
  /// the caller's stack — the NIC copies at post time, so no heap buffer is
  /// ever needed; TX back-pressure defers it into an inline buffer.
  void send_ctrl(Rank dst, std::uint64_t imm, const void* payload,
                 std::size_t len);
  void retry_deferred();

  fabric::Fabric& fabric_;
  fabric::Nic& nic_;
  const Rank rank_;
  const Config config_;
  CompQueue* const remote_put_cq_;
  // Retransmit/dedup/CRC sublayer for every two-sided send (eager payloads
  // AND the RTS/CTS control plane); a passthrough when the fabric's fault
  // config is clean. One-sided RDMA integrity is handled end-to-end instead:
  // the RTS carries the payload CRC, verified when the FIN lands.
  fabric::ReliableEndpoint rel_;
  const bool integrity_on_;

  PacketPool packet_pool_;
  MatchingTable matching_;

  // Active-message slot (register_tag_handler): written once at startup,
  // read from progress context.
  Tag handler_tag_ = 0;
  Comp handler_comp_;
  bool handler_armed_ = false;

  /// True when `tag` is routed to the registered handler completion.
  bool deliver_to_handler(Rank src, Tag tag, OpKind op,
                          std::vector<std::byte>&& data);

  struct PendingGet {  // one-sided get awaiting the read completion
    Comp comp;
    std::uint64_t user_context = 0;
    Rank src = 0;
    std::size_t len = 0;
  };

  // Rendezvous state, sharded by id (the id encodes its shard — see
  // rdv_table.hpp). Each kind keeps its own id space: a CTS can only name a
  // rdv_sends_ id, a FIN only a rdv_recvs_ id, and so on, so the tables
  // never alias even when ids collide numerically.
  ShardedIdTable<RdvSend> rdv_sends_;
  ShardedIdTable<RdvRecv> rdv_recvs_;
  ShardedIdTable<PutSend> put_sends_;
  ShardedIdTable<PutRecv> put_recvs_;
  ShardedIdTable<PendingGet> pending_gets_;

  // Messages that hit TX back-pressure wait in per-destination MPSC lanes:
  // producers (any thread on the injection path) push wait-free, and
  // progress threads drain each lane under a consumer try-lock, stopping at
  // the first still-refused post (per-destination FIFO, no cross-destination
  // head-of-line blocking). `stalled` re-parks the element a drain popped
  // but could not post. The global count lets an idle progress call skip
  // the whole sweep with one atomic load.
  struct DeferredLane {
    queues::MpscQueue<DeferredSend> queue;
    common::SpinMutex consumer;
    std::deque<DeferredSend> stalled;
  };
  std::vector<common::CachePadded<DeferredLane>> deferred_lanes_;
  std::atomic<std::size_t> deferred_count_{0};

  void defer_send(DeferredSend&& deferred);

  // Metrics under minilci/dev<rank>/... in the Fabric's registry.
  telemetry::Counter& ctr_progress_calls_;
  telemetry::Counter& ctr_match_hits_;    // recv/arrival paired immediately
  telemetry::Counter& ctr_match_misses_;  // stored to wait for the other side
  telemetry::Counter& ctr_pool_exhausted_;
  telemetry::Counter& ctr_pool_cache_hits_;  // packet allocs served by the
                                             // per-slot magazine
  telemetry::Histogram& hist_progress_ns_;  // duration of each progress()
};

}  // namespace minilci
