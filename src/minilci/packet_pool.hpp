// Send-side packet pool: a fixed arena of eager-sized, conceptually
// registered buffers handed to users for in-place message assembly ("we
// directly assemble the header message in an LCI-allocated buffer so that,
// for eager messages, we save one memory copy" — paper §3.2.1).
//
// Exhaustion is a transient condition surfaced to the caller as
// Status::kRetry, per LCI's explicit-retry contract.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "queues/mpmc_queue.hpp"

namespace minilci {

class PacketPool;

/// Owning handle to one pool packet. Movable; returns the buffer to the pool
/// on destruction unless it has been handed off to the device.
class PacketBuffer {
 public:
  PacketBuffer() = default;
  PacketBuffer(PacketPool* pool, std::byte* data) : pool_(pool), data_(data) {}

  PacketBuffer(PacketBuffer&& other) noexcept { move_from(other); }
  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  PacketBuffer(const PacketBuffer&) = delete;
  PacketBuffer& operator=(const PacketBuffer&) = delete;
  ~PacketBuffer() { release(); }

  std::byte* data() const { return data_; }
  std::size_t capacity() const;
  bool valid() const { return data_ != nullptr; }

  /// Number of valid bytes the user assembled; set before sending.
  void set_size(std::size_t size) { size_ = size; }
  std::size_t size() const { return size_; }

  void release();

 private:
  void move_from(PacketBuffer& other) {
    pool_ = other.pool_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  PacketPool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class PacketPool {
 public:
  PacketPool(std::size_t num_packets, std::size_t packet_size)
      : packet_size_(packet_size),
        storage_(num_packets * packet_size),
        free_list_(num_packets) {
    for (std::size_t i = 0; i < num_packets; ++i) {
      const bool ok = free_list_.try_push(storage_.data() + i * packet_size);
      assert(ok);
      (void)ok;
    }
  }

  /// Empty optional == pool exhausted (caller should retry later).
  std::optional<PacketBuffer> try_alloc() {
    auto data = free_list_.try_pop();
    if (!data) return std::nullopt;
    return PacketBuffer(this, *data);
  }

  void release(std::byte* data) {
    const bool ok = free_list_.try_push(data);
    assert(ok);  // we only ever recycle our own packets
    (void)ok;
  }

  std::size_t packet_size() const { return packet_size_; }

 private:
  std::size_t packet_size_;
  std::vector<std::byte> storage_;
  queues::MpmcQueue<std::byte*> free_list_;
};

inline std::size_t PacketBuffer::capacity() const {
  return pool_ != nullptr ? pool_->packet_size() : 0;
}

inline void PacketBuffer::release() {
  if (pool_ != nullptr && data_ != nullptr) pool_->release(data_);
  pool_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

}  // namespace minilci
