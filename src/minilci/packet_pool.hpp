// Send-side packet pool: a fixed arena of eager-sized, conceptually
// registered buffers handed to users for in-place message assembly ("we
// directly assemble the header message in an LCI-allocated buffer so that,
// for eager messages, we save one memory copy" — paper §3.2.1).
//
// Allocation is two-level: a small per-slot *magazine* (a cache-padded stack
// indexed by the calling thread's shard slot) absorbs the common
// alloc/release traffic, refilling from / flushing to the shared MPMC free
// list in half-magazine batches. Under concurrent senders this keeps most
// packet traffic off the shared ring (LCI's per-thread packet caches).
// Magazines are taken with a try-lock; a collision on the slot simply falls
// through to the shared list, so no path ever blocks.
//
// Exhaustion is a transient condition surfaced to the caller as
// Status::kRetry, per LCI's explicit-retry contract.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "queues/mpmc_queue.hpp"
#include "telemetry/metrics.hpp"

namespace minilci {

class PacketPool;

/// Owning handle to one pool packet. Movable; returns the buffer to the pool
/// on destruction unless it has been handed off to the device.
class PacketBuffer {
 public:
  PacketBuffer() = default;
  PacketBuffer(PacketPool* pool, std::byte* data) : pool_(pool), data_(data) {}

  PacketBuffer(PacketBuffer&& other) noexcept { move_from(other); }
  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  PacketBuffer(const PacketBuffer&) = delete;
  PacketBuffer& operator=(const PacketBuffer&) = delete;
  ~PacketBuffer() { release(); }

  std::byte* data() const { return data_; }
  std::size_t capacity() const;
  bool valid() const { return data_ != nullptr; }

  /// Number of valid bytes the user assembled; set before sending.
  void set_size(std::size_t size) { size_ = size; }
  std::size_t size() const { return size_; }

  void release();

 private:
  void move_from(PacketBuffer& other) {
    pool_ = other.pool_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  PacketPool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class PacketPool {
 public:
  /// `cache_size` is the per-slot magazine capacity; 0 disables the
  /// magazines entirely (every alloc/release hits the shared free list).
  PacketPool(std::size_t num_packets, std::size_t packet_size,
             std::size_t cache_size = 0)
      : packet_size_(packet_size),
        cache_size_(cache_size),
        storage_(num_packets * packet_size),
        free_list_(num_packets) {
    for (std::size_t i = 0; i < num_packets; ++i) {
      const bool ok = free_list_.try_push(storage_.data() + i * packet_size);
      assert(ok);
      (void)ok;
    }
    if (cache_size_ > 0) {
      for (auto& magazine : magazines_) {
        magazine.value.items.reserve(cache_size_);
      }
    }
    PoolRegistry& reg = registry();
    std::lock_guard<common::SpinMutex> lock(reg.mutex);
    reg.live.insert(this);
  }

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  ~PacketPool() {
    PoolRegistry& reg = registry();
    std::lock_guard<common::SpinMutex> lock(reg.mutex);
    reg.live.erase(this);
  }

  /// Empty optional == pool exhausted (caller should retry later).
  std::optional<PacketBuffer> try_alloc() {
    if (cache_size_ > 0) {
      Magazine& magazine = local_magazine();
      std::unique_lock<common::SpinMutex> lock(magazine.mutex,
                                               std::try_to_lock);
      if (lock.owns_lock()) {
        if (!magazine.items.empty()) {
          std::byte* data = magazine.items.back();
          magazine.items.pop_back();
          note_cache_hit();
          return PacketBuffer(this, data);
        }
        // Empty magazine: refill half its capacity from the shared list in
        // one go, keeping the first packet for this caller.
        std::byte* first = nullptr;
        for (std::size_t i = 0; i < cache_size_ / 2 + 1; ++i) {
          auto data = free_list_.try_pop();
          if (!data) break;
          if (first == nullptr) {
            first = *data;
          } else {
            magazine.items.push_back(*data);
          }
        }
        if (first != nullptr) {
          note_cache_miss();
          return PacketBuffer(this, first);
        }
        // fall through: shared list exhausted too
      }
    }
    auto data = free_list_.try_pop();
    if (data) {
      note_cache_miss();
      return PacketBuffer(this, *data);
    }
    // Last resort: the shared list is dry, so lift a packet parked in a
    // sibling slot's magazine. Releases always land in the *releasing*
    // thread's magazine, so without this a thread whose slot never sees a
    // release can starve behind a peer whose magazine holds the pool's
    // entire remaining capacity — callers looping on try_alloc() then spin
    // forever even though the pool is not actually exhausted.
    if (cache_size_ > 0) {
      if (std::byte* stolen = try_steal()) {
        note_cache_miss();
        return PacketBuffer(this, stolen);
      }
    }
    return std::nullopt;
  }

  void release(std::byte* data) {
    if (cache_size_ > 0) {
      Magazine& magazine = local_magazine();
      std::unique_lock<common::SpinMutex> lock(magazine.mutex,
                                               std::try_to_lock);
      if (lock.owns_lock()) {
        if (magazine.items.size() >= cache_size_) {
          // Full magazine: flush half back to the shared list so other
          // slots (and magazine-less callers) can make progress.
          for (std::size_t i = 0; i < cache_size_ / 2; ++i) {
            push_shared(magazine.items.back());
            magazine.items.pop_back();
          }
        }
        magazine.items.push_back(data);
        return;
      }
    }
    push_shared(data);
  }

  std::size_t packet_size() const { return packet_size_; }
  std::size_t cache_size() const { return cache_size_; }

  /// Magazine effectiveness (internal tallies; relaxed snapshots). A hit is
  /// an alloc served by a non-empty magazine without touching the shared
  /// free list.
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  /// Mirrors magazine hits into a registry counter (may be null to detach).
  void attach_cache_hit_counter(telemetry::Counter* counter) {
    hit_counter_ = counter;
  }

  /// Returns every magazine-cached packet to the shared free list. Packets
  /// cached by one thread's magazine are invisible to allocs from other
  /// slots; call this before exhaustion-style accounting (or shutdown
  /// checks) that must see the pool's full capacity.
  void flush_caches() {
    for (auto& padded : magazines_) {
      Magazine& magazine = padded.value;
      std::lock_guard<common::SpinMutex> lock(magazine.mutex);
      for (std::byte* data : magazine.items) push_shared(data);
      magazine.items.clear();
    }
  }

 private:
  struct Magazine {
    common::SpinMutex mutex;
    std::vector<std::byte*> items;
  };

  /// Pops one packet from any sibling magazine (try-lock, skip on
  /// collision). The caller may hold its own slot's mutex: that slot's
  /// try_lock simply fails and is skipped.
  std::byte* try_steal() {
    for (auto& padded : magazines_) {
      Magazine& magazine = padded.value;
      std::unique_lock<common::SpinMutex> lock(magazine.mutex,
                                               std::try_to_lock);
      if (!lock.owns_lock() || magazine.items.empty()) continue;
      std::byte* data = magazine.items.back();
      magazine.items.pop_back();
      return data;
    }
    return nullptr;
  }

  static constexpr std::size_t kNumMagazines = 16;  // power of two

  // Thread-exit accounting. shard_slot() hands out monotonically increasing
  // per-thread ids, so a short-lived thread can be the *only* thread mapping
  // to its magazine slot: packets it cached would stay invisible to every
  // other slot until someone called flush_caches() by hand. Each thread
  // therefore records the (pool, slot) pairs it touched in a thread_local
  // flusher whose destructor returns those magazines to the shared free list
  // — but only for pools still registered as alive, since the pool may be
  // destroyed before the thread exits.
  struct PoolRegistry {
    common::SpinMutex mutex;
    std::unordered_set<PacketPool*> live;
  };

  static PoolRegistry& registry() {
    // Function-static so it outlives every pool and (by construction order:
    // a pool registers itself before any thread notes a slot) every
    // main-thread flusher.
    static PoolRegistry instance;
    return instance;
  }

  struct ThreadFlusher {
    std::vector<std::pair<PacketPool*, unsigned>> used;

    void note(PacketPool* pool, unsigned slot) {
      for (const auto& entry : used) {
        if (entry.first == pool && entry.second == slot) return;
      }
      used.emplace_back(pool, slot);
    }

    ~ThreadFlusher() {
      PoolRegistry& reg = registry();
      std::lock_guard<common::SpinMutex> lock(reg.mutex);
      for (const auto& [pool, slot] : used) {
        if (reg.live.count(pool) == 0) continue;  // pool already destroyed
        pool->flush_magazine(slot);
      }
    }
  };

  void flush_magazine(unsigned slot) {
    Magazine& magazine = magazines_[slot].value;
    std::lock_guard<common::SpinMutex> lock(magazine.mutex);
    for (std::byte* data : magazine.items) push_shared(data);
    magazine.items.clear();
  }

  Magazine& local_magazine() {
    const unsigned slot = telemetry::shard_slot() & (kNumMagazines - 1);
    thread_local ThreadFlusher flusher;
    flusher.note(this, slot);
    return magazines_[slot].value;
  }

  void note_cache_hit() {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_counter_ != nullptr) hit_counter_->add();
  }
  void note_cache_miss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  void push_shared(std::byte* data) {
    const bool ok = free_list_.try_push(data);
    assert(ok);  // we only ever recycle our own packets
    (void)ok;
  }

  std::size_t packet_size_;
  std::size_t cache_size_;
  std::vector<std::byte> storage_;
  queues::MpmcQueue<std::byte*> free_list_;
  std::array<common::CachePadded<Magazine>, kNumMagazines> magazines_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  telemetry::Counter* hit_counter_ = nullptr;
};

inline std::size_t PacketBuffer::capacity() const {
  return pool_ != nullptr ? pool_->packet_size() : 0;
}

inline void PacketBuffer::release() {
  if (pool_ != nullptr && data_ != nullptr) pool_->release(data_);
  pool_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

}  // namespace minilci
