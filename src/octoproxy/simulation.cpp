#include "octoproxy/simulation.hpp"

#include <cassert>
#include <cmath>
#include <mutex>

#include "common/clock.hpp"
#include "common/logging.hpp"

namespace octo {

namespace {

// ---- action entry points (free functions; the typed action layer derives
// serialization from these signatures) ----

void act_ghost_batch(std::uint32_t step, std::vector<std::uint64_t> keys,
                     std::vector<double> planes) {
  Simulation::slot(amt::here().rank())
      ->on_ghost_batch(step, std::move(keys), std::move(planes));
}

void act_m2m_batch(std::uint32_t step, std::uint32_t level,
                   std::vector<std::uint64_t> slots,
                   std::vector<double> moments) {
  Simulation::slot(amt::here().rank())
      ->on_m2m_batch(step, level, std::move(slots), std::move(moments));
}

void act_total(std::uint32_t step, double mass) {
  Simulation::slot(amt::here().rank())->on_total(step, mass);
}

double leaf_distance_to_center(LeafId leaf, int level, int nx) {
  const auto [lx, ly, lz] = morton_decode(leaf);
  const double side = static_cast<double>(1u << level) * nx;
  const double cx = (lx + 0.5) * nx - side / 2;
  const double cy = (ly + 0.5) * nx - side / 2;
  const double cz = (lz + 0.5) * nx - side / 2;
  return std::sqrt(cx * cx + cy * cy + cz * cz);
}

}  // namespace

Simulation*& Simulation::slot(amt::Rank rank) {
  static std::array<Simulation*, 64> slots{};
  assert(rank < slots.size());
  return slots[rank];
}

Simulation::Simulation(amt::Locality& locality, const Params& params)
    : locality_(locality),
      params_(params),
      nloc_(locality.num_localities()),
      level_(params.level),
      n_leaves_(1ull << (3 * params.level)) {
  assert(level_ >= 1 && level_ <= 5);
  leaf_lo_ = partition_begin(locality_.rank(), n_leaves_, nloc_);
  leaf_hi_ = partition_begin(locality_.rank() + 1, n_leaves_, nloc_);

  leaves_.resize(leaf_hi_ - leaf_lo_);
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    leaves_[leaf - leaf_lo_].init(leaf, params_.nx, params_.seed);
    initial_mass_ += leaves_[leaf - leaf_lo_].mass();
  }

  // Static communication expectations.
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    for (int face = 0; face < kNumFaces; ++face) {
      const auto nbr = face_neighbor(leaf, face, level_);
      if (nbr && owner_of_leaf(*nbr, n_leaves_, nloc_) != locality_.rank()) {
        ++expected_ghost_planes_;
      }
    }
  }
  for (int k = 0; k <= level_; ++k) {
    const std::uint64_t stride = 1ull << (3 * (level_ - k));
    // My nodes at level k: those whose first leaf (node * stride) is mine.
    const std::uint64_t lo = (leaf_lo_ + stride - 1) / stride;
    const std::uint64_t hi =
        leaf_hi_ > 0 ? (leaf_hi_ - 1) / stride + 1 : 0;
    my_nodes_[k] = {lo, std::max<std::uint64_t>(lo, hi)};
  }
  for (int k = 0; k < level_; ++k) {
    for (std::uint64_t node = my_nodes_[k].first;
         node < my_nodes_[k].second; ++node) {
      for (int j = 0; j < 8; ++j) {
        if (owner_of_node(k + 1, node * 8 + j) != locality_.rank()) {
          ++expected_m2m_[k];
        }
      }
    }
  }
}

amt::Rank Simulation::owner_of_node(int level, std::uint64_t node) const {
  const std::uint64_t stride = 1ull << (3 * (level_ - level));
  return owner_of_leaf(static_cast<LeafId>(node * stride), n_leaves_, nloc_);
}

Simulation::StepState& Simulation::step_state(std::uint32_t step) {
  std::lock_guard<common::SpinMutex> guard(steps_mutex_);
  auto& state = steps_[step];
  if (!state) state = std::make_unique<StepState>();
  return *state;
}

void Simulation::drop_step_state(std::uint32_t step) {
  std::lock_guard<common::SpinMutex> guard(steps_mutex_);
  steps_.erase(step);
}

void Simulation::on_ghost_batch(std::uint32_t step,
                                std::vector<std::uint64_t> keys,
                                std::vector<double> planes) {
  StepState& state = step_state(step);
  const auto count = static_cast<std::int64_t>(keys.size());
  {
    std::lock_guard<common::SpinMutex> guard(state.mutex);
    state.ghost_batches.push_back(
        GhostBatch{std::move(keys), std::move(planes)});
  }
  state.ghost_planes.fetch_add(count, std::memory_order_release);
}

void Simulation::on_m2m_batch(std::uint32_t step, std::uint32_t level,
                              std::vector<std::uint64_t> slots,
                              std::vector<double> moments) {
  StepState& state = step_state(step);
  const auto count = static_cast<std::int64_t>(slots.size());
  {
    std::lock_guard<common::SpinMutex> guard(state.mutex);
    state.m2m_batches[level].push_back(
        M2mBatch{std::move(slots), std::move(moments)});
  }
  state.m2m_contribs[level].fetch_add(count, std::memory_order_release);
}

void Simulation::on_total(std::uint32_t step, double mass) {
  StepState& state = step_state(step);
  state.total_mass = mass;
  state.total_seen.fetch_add(1, std::memory_order_release);
}

void Simulation::phase_ghosts(std::uint32_t step) {
  StepState& state = step_state(step);
  const std::size_t plane_size =
      static_cast<std::size_t>(params_.nx) * params_.nx;

  // Local neighbours: copy planes directly (all extraction happens before
  // any diffusion, on both sides — Jacobi semantics). Remote neighbours:
  // batch planes per destination locality.
  std::unordered_map<amt::Rank, GhostBatch> outgoing;
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    LeafGrid& grid = leaves_[leaf - leaf_lo_];
    for (int face = 0; face < kNumFaces; ++face) {
      const auto nbr = face_neighbor(leaf, face, level_);
      if (!nbr) {
        grid.ghosts[face].clear();  // domain boundary: zero flux
        continue;
      }
      const amt::Rank owner = owner_of_leaf(*nbr, n_leaves_, nloc_);
      if (owner == locality_.rank()) {
        grid.ghosts[face] =
            leaves_[*nbr - leaf_lo_].extract_face(opposite_face(face));
      } else {
        // The neighbour's owner needs *our* plane: for its leaf *nbr, its
        // face opposite(face)... but extraction is symmetric: we extract
        // leaf's `face` plane and address it to (nbr, opposite(face)).
        GhostBatch& batch = outgoing[owner];
        batch.keys.push_back((static_cast<std::uint64_t>(*nbr) << 3) |
                             static_cast<std::uint64_t>(opposite_face(face)));
        const auto plane = grid.extract_face(face);
        batch.planes.insert(batch.planes.end(), plane.begin(), plane.end());
      }
    }
  }
  for (auto& [dst, batch] : outgoing) {
    locality_.apply<&act_ghost_batch>(dst, step, std::move(batch.keys),
                                      std::move(batch.planes));
  }

  locality_.scheduler().wait_until([&] {
    return state.ghost_planes.load(std::memory_order_acquire) >=
           expected_ghost_planes_;
  });

  // Apply queued remote planes (unique (leaf, face) slots: order-free).
  std::vector<GhostBatch> batches;
  {
    std::lock_guard<common::SpinMutex> guard(state.mutex);
    batches.swap(state.ghost_batches);
  }
  for (const GhostBatch& batch : batches) {
    for (std::size_t i = 0; i < batch.keys.size(); ++i) {
      const LeafId leaf = static_cast<LeafId>(batch.keys[i] >> 3);
      const int face = static_cast<int>(batch.keys[i] & 7);
      assert(leaf >= leaf_lo_ && leaf < leaf_hi_);
      auto& ghost = leaves_[leaf - leaf_lo_].ghosts[face];
      ghost.assign(batch.planes.begin() +
                       static_cast<std::ptrdiff_t>(i * plane_size),
                   batch.planes.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * plane_size));
    }
  }

  for (LeafGrid& grid : leaves_) grid.diffuse(params_.kappa);
}

void Simulation::phase_multipoles(std::uint32_t step) {
  StepState& state = step_state(step);

  // P2M at the leaves.
  node_moments_[level_].clear();
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    node_moments_[level_][leaf] = leaves_[leaf - leaf_lo_].multipole(leaf);
  }

  // M2M up-sweep, one level at a time.
  for (int k = level_ - 1; k >= 0; --k) {
    std::unordered_map<std::uint64_t, std::array<Moments, 8>> accum;
    std::unordered_map<amt::Rank, M2mBatch> outgoing;
    for (std::uint64_t child = my_nodes_[k + 1].first;
         child < my_nodes_[k + 1].second; ++child) {
      const Moments& moments = node_moments_[k + 1][child];
      const std::uint64_t parent = child >> 3;
      const int j = static_cast<int>(child & 7);
      const amt::Rank owner = owner_of_node(k, parent);
      if (owner == locality_.rank()) {
        accum[parent][static_cast<std::size_t>(j)] = moments;
      } else {
        M2mBatch& batch = outgoing[owner];
        batch.slots.push_back((parent << 3) | static_cast<std::uint64_t>(j));
        batch.moments.insert(batch.moments.end(), moments.begin(),
                             moments.end());
      }
    }
    for (auto& [dst, batch] : outgoing) {
      locality_.apply<&act_m2m_batch>(dst, step,
                                      static_cast<std::uint32_t>(k),
                                      std::move(batch.slots),
                                      std::move(batch.moments));
    }

    locality_.scheduler().wait_until([&] {
      return state.m2m_contribs[k].load(std::memory_order_acquire) >=
             expected_m2m_[k];
    });

    std::vector<M2mBatch> batches;
    {
      std::lock_guard<common::SpinMutex> guard(state.mutex);
      batches.swap(state.m2m_batches[k]);
    }
    for (const M2mBatch& batch : batches) {
      for (std::size_t i = 0; i < batch.slots.size(); ++i) {
        const std::uint64_t parent = batch.slots[i] >> 3;
        const std::size_t j = batch.slots[i] & 7;
        Moments moments;
        std::copy(batch.moments.begin() +
                      static_cast<std::ptrdiff_t>(i * kMoments),
                  batch.moments.begin() +
                      static_cast<std::ptrdiff_t>((i + 1) * kMoments),
                  moments.begin());
        accum[parent][j] = moments;
      }
    }

    // Combine children in child-index order: bit-exact determinism.
    node_moments_[k].clear();
    for (std::uint64_t node = my_nodes_[k].first; node < my_nodes_[k].second;
         ++node) {
      Moments sum{};
      const auto& slots = accum[node];
      for (int j = 0; j < 8; ++j) add_moments(sum, slots[static_cast<std::size_t>(j)]);
      node_moments_[k][node] = sum;
    }
  }

  // Root broadcast (L2L stand-in): the owner of the root node tells
  // everyone the global mass.
  if (owner_of_node(0, 0) == locality_.rank()) {
    const double total = node_moments_[0][0][0];
    for (amt::Rank r = 0; r < nloc_; ++r) {
      locality_.apply<&act_total>(r, step, total);
    }
  }
}

void Simulation::phase_potential(std::uint32_t step) {
  StepState& state = step_state(step);
  locality_.scheduler().wait_until([&] {
    return state.total_seen.load(std::memory_order_acquire) >= 1;
  });
  const double total = state.total_mass;
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    leaves_[leaf - leaf_lo_].potential +=
        total / (1.0 + leaf_distance_to_center(leaf, level_, params_.nx));
  }
}

void Simulation::run_driver() {
  for (std::uint32_t step = 0;
       step < static_cast<std::uint32_t>(params_.steps); ++step) {
    phase_ghosts(step);
    phase_multipoles(step);
    phase_potential(step);
    drop_step_state(step);
  }
}

double Simulation::local_mass() const {
  double sum = 0;
  for (const LeafGrid& grid : leaves_) sum += grid.mass();
  return sum;
}

std::uint64_t Simulation::local_checksum() const {
  std::uint64_t h = 0;
  for (LeafId leaf = leaf_lo_; leaf < leaf_hi_; ++leaf) {
    h ^= leaf_fingerprint(leaf, leaves_[leaf - leaf_lo_]);
  }
  return h;
}

Report run_simulation(amt::Runtime& runtime, const Params& params) {
  const amt::Rank nloc = runtime.num_localities();
  std::vector<std::unique_ptr<Simulation>> sims;
  sims.reserve(nloc);
  for (amt::Rank r = 0; r < nloc; ++r) {
    sims.push_back(
        std::make_unique<Simulation>(runtime.locality(r), params));
    Simulation::slot(r) = sims.back().get();
  }

  Report report;
  report.steps = params.steps;
  for (amt::Rank r = 0; r < nloc; ++r) {
    report.initial_mass += sims[r]->initial_mass();
  }

  amt::Latch done(nloc);
  common::Timer timer;
  for (amt::Rank r = 0; r < nloc; ++r) {
    Simulation* sim = sims[r].get();
    runtime.locality(r).spawn([sim, &done] {
      sim->run_driver();
      done.count_down();
    });
  }
  done.wait(runtime.locality(0).scheduler());
  report.seconds = timer.elapsed_s();
  report.steps_per_second = params.steps / report.seconds;

  for (amt::Rank r = 0; r < nloc; ++r) {
    report.final_mass += sims[r]->local_mass();
    report.checksum ^= sims[r]->local_checksum();
    Simulation::slot(r) = nullptr;
  }
  return report;
}

Report run_reference(const Params& params) {
  const int level = params.level;
  const std::uint64_t n_leaves = 1ull << (3 * level);
  std::vector<LeafGrid> leaves(n_leaves);
  Report report;
  report.steps = params.steps;
  for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
    leaves[leaf].init(leaf, params.nx, params.seed);
    report.initial_mass += leaves[leaf].mass();
  }

  common::Timer timer;
  for (int step = 0; step < params.steps; ++step) {
    // Ghost exchange (all planes extracted before any update).
    for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
      for (int face = 0; face < kNumFaces; ++face) {
        const auto nbr = face_neighbor(leaf, face, level);
        if (nbr) {
          leaves[leaf].ghosts[face] =
              leaves[*nbr].extract_face(opposite_face(face));
        } else {
          leaves[leaf].ghosts[face].clear();
        }
      }
    }
    for (LeafGrid& grid : leaves) grid.diffuse(params.kappa);

    // Multipole up-sweep, identical hierarchical combine order.
    std::vector<std::unordered_map<std::uint64_t, Moments>> levels(
        static_cast<std::size_t>(level) + 1);
    for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
      levels[static_cast<std::size_t>(level)][leaf] =
          leaves[leaf].multipole(leaf);
    }
    for (int k = level - 1; k >= 0; --k) {
      const std::uint64_t n_nodes = 1ull << (3 * k);
      for (std::uint64_t node = 0; node < n_nodes; ++node) {
        Moments sum{};
        for (int j = 0; j < 8; ++j) {
          add_moments(sum, levels[static_cast<std::size_t>(k) + 1]
                               [node * 8 + static_cast<std::uint64_t>(j)]);
        }
        levels[static_cast<std::size_t>(k)][node] = sum;
      }
    }
    const double total = levels[0][0][0];
    for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
      leaves[leaf].potential +=
          total / (1.0 + leaf_distance_to_center(leaf, level, params.nx));
    }
  }
  report.seconds = timer.elapsed_s();
  report.steps_per_second = params.steps / report.seconds;

  for (LeafId leaf = 0; leaf < n_leaves; ++leaf) {
    report.final_mass += leaves[leaf].mass();
    report.checksum ^= leaf_fingerprint(leaf, leaves[leaf]);
  }
  return report;
}

}  // namespace octo
