// The Octo-Tiger proxy: a complete octree of depth `level` with nx^3-cell
// leaf subgrids, partitioned over localities by Morton space-filling curve.
// Each step performs, like the real application's communication skeleton:
//   1. face ghost-zone exchange between the 26->6 neighbouring subgrids
//      (many small messages, batched per destination locality),
//   2. an FMM-style multipole up-sweep (P2M at the leaves, per-level M2M
//      with cross-locality contributions batched per destination — message
//      sizes grow with the subtree, mixing small and large arguments),
//   3. a root->all broadcast of the global multipole and a far-field
//      potential update (L2L/L2P stand-in),
// then a conservative flux-form diffusion update of the densities.
//
// Correctness oracles: total mass is conserved across steps, and the final
// state fingerprint is BIT-EXACT equal to the serial reference and across
// parcelports/locality counts (the proxy's update order is arrival-order
// independent by construction).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "amt/runtime.hpp"
#include "octoproxy/grid.hpp"
#include "octoproxy/morton.hpp"

namespace octo {

struct Params {
  int level = 3;        // octree depth; 8^level leaves
  int nx = 8;           // leaf subgrid side (Octo-Tiger uses 8)
  int steps = 5;        // paper's "stop step"
  double kappa = 0.1;   // diffusion coefficient (stable for kappa <= 1/6)
  std::uint64_t seed = 42;
};

struct Report {
  double initial_mass = 0.0;
  double final_mass = 0.0;
  std::uint64_t checksum = 0;  // order-independent state fingerprint
  double seconds = 0.0;
  int steps = 0;
  double steps_per_second = 0.0;
};

class Simulation {
 public:
  Simulation(amt::Locality& locality, const Params& params);

  /// Per-locality instance registry used by the action entry points.
  static Simulation*& slot(amt::Rank rank);

  /// Runs all steps; call as a task on the owning locality.
  void run_driver();

  // ---- action entry points (invoked by remote localities) ----
  void on_ghost_batch(std::uint32_t step, std::vector<std::uint64_t> keys,
                      std::vector<double> planes);
  void on_m2m_batch(std::uint32_t step, std::uint32_t level,
                    std::vector<std::uint64_t> slots,
                    std::vector<double> moments);
  void on_total(std::uint32_t step, double mass);

  // ---- results ----
  double local_mass() const;
  std::uint64_t local_checksum() const;
  double initial_mass() const { return initial_mass_; }
  std::size_t num_local_leaves() const { return leaves_.size(); }

 private:
  struct GhostBatch {
    std::vector<std::uint64_t> keys;  // (target leaf << 3) | face
    std::vector<double> planes;       // keys.size() * nx*nx doubles
  };
  struct M2mBatch {
    std::vector<std::uint64_t> slots;  // (parent node << 3) | child index
    std::vector<double> moments;       // slots.size() * kMoments doubles
  };
  struct StepState {
    std::atomic<std::int64_t> ghost_planes{0};
    std::atomic<std::int64_t> m2m_contribs[16] = {};
    std::atomic<int> total_seen{0};
    double total_mass = 0.0;
    common::SpinMutex mutex;  // guards the batch vectors below
    std::vector<GhostBatch> ghost_batches;
    std::vector<M2mBatch> m2m_batches[16];
  };

  StepState& step_state(std::uint32_t step);
  void drop_step_state(std::uint32_t step);
  amt::Rank owner_of_node(int level, std::uint64_t node) const;
  void phase_ghosts(std::uint32_t step);
  void phase_multipoles(std::uint32_t step);
  void phase_potential(std::uint32_t step);

  amt::Locality& locality_;
  const Params params_;
  const amt::Rank nloc_;
  const int level_;
  const std::uint64_t n_leaves_;
  LeafId leaf_lo_ = 0, leaf_hi_ = 0;  // my contiguous Morton range

  // Local leaf state, indexed leaf - leaf_lo_.
  std::vector<LeafGrid> leaves_;
  double initial_mass_ = 0.0;

  // Static comm expectations, precomputed at construction.
  std::int64_t expected_ghost_planes_ = 0;
  std::array<std::int64_t, 16> expected_m2m_{};
  // My node id ranges per level (contiguous in Morton order).
  std::array<std::pair<std::uint64_t, std::uint64_t>, 16> my_nodes_{};

  // Per-level multipoles of nodes I own (rebuilt every step).
  std::array<std::unordered_map<std::uint64_t, Moments>, 17> node_moments_;

  common::SpinMutex steps_mutex_;
  std::map<std::uint32_t, std::unique_ptr<StepState>> steps_;
};

/// Orchestrates a full proxy run over an already started runtime.
Report run_simulation(amt::Runtime& runtime, const Params& params);

/// Serial reference implementation (no runtime, no messages). Produces a
/// bit-identical Report (mass + checksum) to run_simulation.
Report run_reference(const Params& params);

}  // namespace octo
