// Per-leaf subgrid state and kernels for the octree proxy: an nx^3 density
// grid per leaf (Octo-Tiger uses 8^3 subgrids), face-plane extraction for
// ghost exchange, a conservative flux-form diffusion update, and
// multipole-moment computation (P2M).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "octoproxy/morton.hpp"

namespace octo {

/// Number of multipole moments we track per node: total mass, three
/// first-order moments, three diagonal second-order moments, and a cell
/// count (handy as a structural checksum).
inline constexpr int kMoments = 8;
using Moments = std::array<double, kMoments>;

inline void add_moments(Moments& into, const Moments& from) {
  for (int m = 0; m < kMoments; ++m) into[m] += from[m];
}

struct LeafGrid {
  int nx = 8;
  std::vector<double> rho;   // nx^3, x-fastest layout
  double potential = 0.0;    // far-field contribution, one value per leaf
  // Ghost planes received from the 6 face neighbours for the current step;
  // empty vector = domain boundary (zero-flux).
  std::array<std::vector<double>, kNumFaces> ghosts;

  int idx(int i, int j, int k) const { return i + nx * (j + nx * k); }

  void init(LeafId leaf, int nx_cells, std::uint64_t seed) {
    nx = nx_cells;
    rho.assign(static_cast<std::size_t>(nx) * nx * nx, 0.0);
    // Deterministic, leaf-dependent smooth blob plus hashed noise.
    const auto [lx, ly, lz] = morton_decode(leaf);
    common::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (leaf + 1)));
    for (int k = 0; k < nx; ++k) {
      for (int j = 0; j < nx; ++j) {
        for (int i = 0; i < nx; ++i) {
          const double gx = lx * nx + i, gy = ly * nx + j, gz = lz * nx + k;
          const double base =
              1.0 + 0.25 * ((gx + 2 * gy + 3 * gz) * 1e-3);
          rho[static_cast<std::size_t>(idx(i, j, k))] =
              base + 0.05 * rng.next_double();
        }
      }
    }
  }

  /// Extracts the plane of cells adjacent to `face` (the data a neighbour
  /// needs as its ghost layer). Size nx*nx; layout (u, v) = the two
  /// non-face axes in ascending order, u fastest.
  std::vector<double> extract_face(int face) const {
    std::vector<double> plane(static_cast<std::size_t>(nx) * nx);
    const int axis = face_axis(face);
    const int slab = face_sign(face) > 0 ? nx - 1 : 0;
    std::size_t out = 0;
    for (int v = 0; v < nx; ++v) {
      for (int u = 0; u < nx; ++u) {
        int c[3];
        c[axis] = slab;
        c[(axis + 1) % 3] = u;
        c[(axis + 2) % 3] = v;
        plane[out++] = rho[static_cast<std::size_t>(idx(c[0], c[1], c[2]))];
      }
    }
    return plane;
  }

  /// Flux-form diffusion step using the current ghost planes. Conservative:
  /// every interior flux appears with opposite signs in the two cells it
  /// couples; fluxes across partition faces are antisymmetric by
  /// construction (both sides compute kappa*(theirs - ours)). Missing ghost
  /// planes (domain boundary) contribute zero flux.
  void diffuse(double kappa) {
    const std::vector<double> old = rho;
    auto at = [&](int i, int j, int k) {
      return old[static_cast<std::size_t>(idx(i, j, k))];
    };
    for (int k = 0; k < nx; ++k) {
      for (int j = 0; j < nx; ++j) {
        for (int i = 0; i < nx; ++i) {
          const double own = at(i, j, k);
          double delta = 0.0;
          const int c[3] = {i, j, k};
          for (int face = 0; face < kNumFaces; ++face) {
            const int axis = face_axis(face);
            const int n = c[axis] + face_sign(face);
            double nbr;
            if (n >= 0 && n < nx) {
              int cc[3] = {i, j, k};
              cc[axis] = n;
              nbr = at(cc[0], cc[1], cc[2]);
            } else if (!ghosts[face].empty()) {
              const int u = c[(axis + 1) % 3], v = c[(axis + 2) % 3];
              nbr = ghosts[face][static_cast<std::size_t>(u + nx * v)];
            } else {
              continue;  // domain boundary: zero flux
            }
            delta += kappa * (nbr - own);
          }
          rho[static_cast<std::size_t>(idx(i, j, k))] = own + delta;
        }
      }
    }
  }

  /// P2M: multipole moments about the global origin (unit cell volume).
  Moments multipole(LeafId leaf) const {
    Moments m{};
    const auto [lx, ly, lz] = morton_decode(leaf);
    for (int k = 0; k < nx; ++k) {
      for (int j = 0; j < nx; ++j) {
        for (int i = 0; i < nx; ++i) {
          const double q = rho[static_cast<std::size_t>(idx(i, j, k))];
          const double x = lx * nx + i + 0.5;
          const double y = ly * nx + j + 0.5;
          const double z = lz * nx + k + 0.5;
          m[0] += q;
          m[1] += q * x;
          m[2] += q * y;
          m[3] += q * z;
          m[4] += q * x * x;
          m[5] += q * y * y;
          m[6] += q * z * z;
          m[7] += 1.0;
        }
      }
    }
    return m;
  }

  double mass() const {
    double sum = 0;
    for (double q : rho) sum += q;
    return sum;
  }
};

/// Order-independent, bit-exact state fingerprint: XOR of per-leaf FNV-1a
/// hashes, so distributed and serial runs can compare checksums regardless
/// of summation or arrival order.
inline std::uint64_t leaf_fingerprint(LeafId leaf, const LeafGrid& grid) {
  std::uint64_t h = 14695981039346656037ull ^ (leaf * 0x9e3779b97f4a7c15ULL);
  auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  mix(grid.rho.data(), grid.rho.size() * sizeof(double));
  mix(&grid.potential, sizeof(double));
  return h;
}

}  // namespace octo
