// Morton (Z-order) indexing for the octree proxy. Octo-Tiger partitions its
// adaptive octree across processes with a space-filling curve; we reproduce
// that with Morton order over a complete octree of configurable depth.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace octo {

using LeafId = std::uint32_t;

/// Interleaves the low 10 bits of x, y, z: bit i of x lands at bit 3i.
inline LeafId morton_encode(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) {
  auto spread = [](std::uint32_t v) {
    std::uint64_t r = v & 0x3ff;
    r = (r | (r << 16)) & 0x030000ff;
    r = (r | (r << 8)) & 0x0300f00f;
    r = (r | (r << 4)) & 0x030c30c3;
    r = (r | (r << 2)) & 0x09249249;
    return r;
  };
  return static_cast<LeafId>(spread(x) | (spread(y) << 1) |
                             (spread(z) << 2));
}

inline std::array<std::uint32_t, 3> morton_decode(LeafId code) {
  auto compact = [](std::uint64_t r) {
    r &= 0x09249249;
    r = (r | (r >> 2)) & 0x030c30c3;
    r = (r | (r >> 4)) & 0x0300f00f;
    r = (r | (r >> 8)) & 0x030000ff;
    r = (r | (r >> 16)) & 0x3ff;
    return static_cast<std::uint32_t>(r);
  };
  return {compact(code), compact(code >> 1), compact(code >> 2)};
}

/// Face directions: -x, +x, -y, +y, -z, +z.
inline constexpr int kNumFaces = 6;
inline constexpr int face_axis(int face) { return face / 2; }
inline constexpr int face_sign(int face) { return (face % 2) ? +1 : -1; }
inline constexpr int opposite_face(int face) { return face ^ 1; }

/// Neighbouring leaf across `face` at tree depth `level`, or nullopt at the
/// domain boundary.
inline std::optional<LeafId> face_neighbor(LeafId leaf, int face,
                                           int level) {
  auto [x, y, z] = morton_decode(leaf);
  const std::uint32_t side = 1u << level;
  std::int64_t coords[3] = {x, y, z};
  coords[face_axis(face)] += face_sign(face);
  if (coords[face_axis(face)] < 0 ||
      coords[face_axis(face)] >= static_cast<std::int64_t>(side)) {
    return std::nullopt;
  }
  return morton_encode(static_cast<std::uint32_t>(coords[0]),
                       static_cast<std::uint32_t>(coords[1]),
                       static_cast<std::uint32_t>(coords[2]));
}

/// Contiguous-Morton-range partition of `n_leaves` over `n_parts`
/// (Octo-Tiger's SFC partitioning).
inline std::uint32_t owner_of_leaf(LeafId leaf, std::uint64_t n_leaves,
                                   std::uint32_t n_parts) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(leaf) * n_parts) / n_leaves);
}

/// First (inclusive) leaf owned by `part`.
inline LeafId partition_begin(std::uint32_t part, std::uint64_t n_leaves,
                              std::uint32_t n_parts) {
  // Smallest leaf with leaf * n_parts / n_leaves == part:
  // ceil(part * n_leaves / n_parts).
  return static_cast<LeafId>(
      (static_cast<std::uint64_t>(part) * n_leaves + n_parts - 1) / n_parts);
}

}  // namespace octo
