// Chrome trace-event recorder. Each thread owns an SPSC ring of fixed-size
// events; the recording hot path is one ring push (no locks, no allocation,
// drop-on-full with a drop counter). dump_json() drains every ring and
// writes the standard `chrome://tracing` / Perfetto JSON object:
//
//   {"traceEvents":[{"name":"...","cat":"...","ph":"B","ts":1.5,
//                    "pid":0,"tid":3}, ...]}
//
// Recording is off unless AMTNET_TRACE_FILE is set (or a recorder is
// explicitly enabled), and the whole facility compiles to no-ops under
// AMTNET_TELEMETRY_DISABLED. Use the macros at the bottom:
//
//   AMTNET_TRACE_SCOPE("minilci", "progress");   // B/E pair via RAII
//   AMTNET_TRACE_INSTANT("fabric", "rnr_stall"); // single instant event
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "queues/spsc_ring.hpp"
#include "telemetry/metrics.hpp"

namespace telemetry {

#ifndef AMTNET_TELEMETRY_DISABLED

/// One trace event. `name` and `category` must be string literals (or
/// otherwise outlive the recorder) — only the pointer is stored.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'I';  // 'B' begin, 'E' end, 'I' instant
  std::uint32_t tid = 0;
  common::Nanos timestamp_ns = 0;
};

class TraceRecorder {
 public:
  /// Process-wide recorder used by the macros. Enabled iff AMTNET_TRACE_FILE
  /// is set in the environment (and AMTNET_TELEMETRY isn't 0).
  static TraceRecorder& instance();

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring push on the caller's thread-local ring. Safe from any thread.
  void record(const char* category, const char* name, char phase) {
    if (!enabled()) return;
    record_slow(category, name, phase);
  }

  /// Events dropped because a thread ring was full.
  std::uint64_t dropped() const { return dropped_.value(); }

  /// Drains all rings (events recorded so far) into Chrome trace JSON.
  /// Concurrent recording during the dump may or may not be included.
  std::string dump_json();

  /// dump_json() to `path`; returns false on I/O failure.
  bool dump_json_to_file(const std::string& path);

  /// Path from AMTNET_TRACE_FILE, empty if unset.
  static std::string env_trace_file();

 private:
  struct ThreadRing {
    std::uint32_t tid = 0;
    queues::SpscRing<TraceEvent> ring{1u << 14};
  };

  void record_slow(const char* category, const char* name, char phase);
  ThreadRing& ring_for_this_thread();
  static std::uint64_t next_recorder_id();

  // Process-unique (never reused), so the thread-local ring cache can't
  // mistake a new recorder at a recycled address for the one it cached.
  const std::uint64_t id_ = next_recorder_id();
  std::atomic<bool> enabled_{false};
  Counter dropped_;
  common::SpinMutex rings_mutex_;  // guards rings_ growth only
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::vector<TraceEvent> drained_;  // events popped by previous dumps
};

/// RAII begin/end pair.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name)
      : category_(category), name_(name) {
    TraceRecorder::instance().record(category_, name_, 'B');
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() { TraceRecorder::instance().record(category_, name_, 'E'); }

 private:
  const char* category_;
  const char* name_;
};

#define AMTNET_TRACE_CONCAT2(a, b) a##b
#define AMTNET_TRACE_CONCAT(a, b) AMTNET_TRACE_CONCAT2(a, b)
#define AMTNET_TRACE_SCOPE(category, name)            \
  ::telemetry::TraceScope AMTNET_TRACE_CONCAT(        \
      amtnet_trace_scope_, __LINE__)(category, name)
#define AMTNET_TRACE_INSTANT(category, name) \
  ::telemetry::TraceRecorder::instance().record(category, name, 'I')

#else  // AMTNET_TELEMETRY_DISABLED

struct TraceEvent {};

class TraceRecorder {
 public:
  static TraceRecorder& instance() {
    static TraceRecorder stub;
    return stub;
  }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void record(const char*, const char*, char) {}
  std::uint64_t dropped() const { return 0; }
  std::string dump_json() { return "{\"traceEvents\":[]}"; }
  bool dump_json_to_file(const std::string&) { return true; }
  static std::string env_trace_file() { return {}; }
};

class TraceScope {
 public:
  TraceScope(const char*, const char*) {}
};

#define AMTNET_TRACE_SCOPE(category, name) \
  do {                                     \
  } while (false)
#define AMTNET_TRACE_INSTANT(category, name) \
  do {                                       \
  } while (false)

#endif  // AMTNET_TELEMETRY_DISABLED

}  // namespace telemetry
