// Compiled with -DAMTNET_TELEMETRY_DISABLED (see CMakeLists.txt) to prove the
// no-op stubs keep instrumented code compiling and linking. Exercises every
// public entry point an instrumented module uses.
#include "telemetry/telemetry.hpp"

namespace telemetry::noop_check {

std::uint64_t exercise_all() {
  Registry registry;
  Counter& counter = registry.counter("check/counter");
  counter.add(3);
  Gauge& gauge = registry.gauge("check/gauge");
  gauge.add(2);
  gauge.sub(1);
  Histogram& histogram = registry.histogram("check/histogram");
  histogram.record(42);
  {
    ScopedTimer timer(histogram);
    AMTNET_TRACE_SCOPE("check", "scope");
    AMTNET_TRACE_INSTANT("check", "instant");
  }
  TraceRecorder::instance().record("check", "direct", 'I');
  const Snapshot snap = registry.snapshot();
  return counter.value() + static_cast<std::uint64_t>(gauge.value()) +
         histogram.count() + histogram.percentile(0.5) +
         snap.counters.size() + TraceRecorder::instance().dropped();
}

}  // namespace telemetry::noop_check
