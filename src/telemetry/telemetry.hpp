// Umbrella header for the telemetry subsystem.
//
//   Registry   — hierarchical find-or-create metric store (per Fabric/Runtime)
//   Counter    — sharded relaxed monotonic counter
//   Gauge      — sharded relaxed up/down counter
//   Histogram  — log-bucketed latency histogram (p50/p90/p99/max)
//   ScopedTimer— RAII ns timer into a Histogram (AMTNET_TELEMETRY gated)
//   TraceRecorder / AMTNET_TRACE_SCOPE / AMTNET_TRACE_INSTANT
//              — Chrome trace-event recording (AMTNET_TRACE_FILE gated)
//
// Environment variables:
//   AMTNET_TELEMETRY=0|off|false  disable timing instrumentation + tracing
//   AMTNET_TRACE_FILE=<path>      enable the process trace recorder
// Compile-time: -DAMTNET_TELEMETRY_DISABLED turns everything into no-ops.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
