#include "telemetry/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace telemetry {

bool timing_enabled_from_env() {
  const char* raw = std::getenv("AMTNET_TELEMETRY");
  if (raw == nullptr) return true;
  return !(std::strcmp(raw, "0") == 0 || std::strcmp(raw, "off") == 0 ||
           std::strcmp(raw, "false") == 0);
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

std::int64_t Snapshot::gauge(std::string_view name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) return value;
  }
  return 0;
}

const HistogramSummary* Snapshot::histogram(std::string_view name) const {
  for (const auto& summary : histograms) {
    if (summary.name == name) return &summary;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter_sum(std::string_view prefix,
                                    std::string_view suffix) const {
  std::uint64_t total = 0;
  for (const auto& [key, value] : counters) {
    if (key.size() < prefix.size() + suffix.size()) continue;
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    if (key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    total += value;
  }
  return total;
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string Snapshot::to_csv() const {
  std::string out = "name,kind,value,count,sum,max,p50,p90,p99\n";
  char line[512];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "%s,counter,%llu,,,,,,\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "%s,gauge,%lld,,,,,,\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& h : histograms) {
    std::snprintf(line, sizeof(line),
                  "%s,histogram,,%llu,%llu,%llu,%llu,%llu,%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum),
                  static_cast<unsigned long long>(h.max),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p90),
                  static_cast<unsigned long long>(h.p99));
    out += line;
  }
  return out;
}

std::string Snapshot::to_json(
    const std::map<std::string, std::string>& tags) const {
  std::string out = "{\"schema\":\"";
  out += kJsonSchema;
  out += "\",\"tags\":{";
  // Snapshot identity tags first, explicit arguments overriding on key
  // collision (std::map::insert keeps the existing = explicit entry).
  std::map<std::string, std::string> merged = tags;
  merged.insert(this->tags.begin(), this->tags.end());
  bool first = true;
  for (const auto& [key, value] : merged) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, key);
    out += "\":\"";
    append_json_escaped(out, value);
    out += '"';
  }
  out += "},\"metrics\":";
  out += to_json();
  out += '}';
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(value));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, h.name);
    std::snprintf(
        buf, sizeof(buf),
        "\":{\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"p50\":%llu,"
        "\"p90\":%llu,\"p99\":%llu}",
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.max),
        static_cast<unsigned long long>(h.p50),
        static_cast<unsigned long long>(h.p90),
        static_cast<unsigned long long>(h.p99));
    out += buf;
  }
  out += "}}";
  return out;
}

#ifndef AMTNET_TELEMETRY_DISABLED

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::set_tag(std::string_view key, std::string_view value) {
  std::lock_guard lock(mutex_);
  tags_[std::string(key)] = std::string(value);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mutex_);
  snap.tags.insert(tags_.begin(), tags_.end());
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.name = name;
    summary.count = histogram->count();
    summary.sum = histogram->sum();
    summary.max = histogram->max();
    std::array<std::uint64_t, 3> qs{};
    histogram->percentiles({{0.50, 0.90, 0.99}}, qs);
    summary.p50 = qs[0];
    summary.p90 = qs[1];
    summary.p99 = qs[2];
    snap.histograms.push_back(std::move(summary));
  }
  return snap;
}

#endif  // AMTNET_TELEMETRY_DISABLED

}  // namespace telemetry
