// Hierarchical metrics registry. Metric names are '/'-separated paths
// ("fabric/nic0/packets_sent") grouped per layer/instance. Registration is
// find-or-create under a mutex; the returned pointers are stable for the
// registry's lifetime, so hot paths hold raw pointers and never touch the
// map again. snapshot() aggregates every metric in one pass with relaxed
// reads (see metrics.hpp for the exact consistency contract).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/spinlock.hpp"
#include "telemetry/metrics.hpp"

namespace telemetry {

/// One aggregated histogram in a Snapshot.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

/// Point-in-time aggregation of a Registry: one pass over every shard.
/// All values are relaxed reads taken during the same snapshot() call; they
/// are individually coherent but not a cross-metric atomic cut.
struct Snapshot {
  /// Identity of the process/registry that produced the snapshot (e.g.
  /// backend=shm, locality_rank=2 in multi-process runs), set via
  /// Registry::set_tag. Empty for the historical single-process sim case,
  /// so existing exports stay byte-identical.
  std::map<std::string, std::string> tags;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSummary> histograms;

  /// Counter value by exact name, 0 if absent.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by exact name, 0 if absent.
  std::int64_t gauge(std::string_view name) const;
  /// Histogram summary by exact name, nullptr if absent.
  const HistogramSummary* histogram(std::string_view name) const;
  /// Sum of all counters whose name matches "prefix*suffix" (both parts may
  /// be empty). Lets callers aggregate across instances, e.g.
  /// counter_sum("fabric/", "/packets_sent") over all NICs.
  std::uint64_t counter_sum(std::string_view prefix,
                            std::string_view suffix) const;

  /// "name,kind,value[,count,sum,max,p50,p90,p99]" CSV lines with header.
  std::string to_csv() const;
  /// Single JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Schema-versioned export for downstream tooling (the experiment driver
  /// stores one per benchmark point): {"schema":"amtnet-telemetry-v1",
  /// "tags":{...},"counters":...}. Tags identify the run that produced the
  /// snapshot (suite, point labels, seed, ...); the snapshot's own identity
  /// tags are merged in first, explicit arguments winning on collision.
  static constexpr const char* kJsonSchema = "amtnet-telemetry-v1";
  std::string to_json(const std::map<std::string, std::string>& tags) const;
};

#ifndef AMTNET_TELEMETRY_DISABLED

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Pointers remain valid for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Attaches an identity tag copied into every snapshot (the fabric sets
  /// backend/locality_rank for shm runs). Last write per key wins.
  void set_tag(std::string_view key, std::string_view value);

  Snapshot snapshot() const;

 private:
  mutable common::SpinMutex mutex_;
  std::map<std::string, std::string, std::less<>> tags_;
  // node_ptr-stable maps; unique_ptr keeps metric addresses fixed regardless.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // AMTNET_TELEMETRY_DISABLED

/// No-op registry: hands out references to shared static stubs.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view) {
    static Counter stub;
    return stub;
  }
  Gauge& gauge(std::string_view) {
    static Gauge stub;
    return stub;
  }
  Histogram& histogram(std::string_view) {
    static Histogram stub;
    return stub;
  }
  void set_tag(std::string_view, std::string_view) {}
  Snapshot snapshot() const { return {}; }
};

#endif  // AMTNET_TELEMETRY_DISABLED

}  // namespace telemetry
