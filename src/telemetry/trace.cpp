#include "telemetry/trace.hpp"

#ifndef AMTNET_TELEMETRY_DISABLED

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace telemetry {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  static const bool initialized = [] {
    recorder.set_enabled(timing_enabled() && !env_trace_file().empty());
    return true;
  }();
  (void)initialized;
  return recorder;
}

std::string TraceRecorder::env_trace_file() {
  const char* raw = std::getenv("AMTNET_TRACE_FILE");
  return raw != nullptr ? std::string(raw) : std::string();
}

std::uint64_t TraceRecorder::next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::ThreadRing& TraceRecorder::ring_for_this_thread() {
  // Cache the (recorder, ring) pair: in practice only the singleton records,
  // but unit tests construct private recorders, so the owner is checked —
  // by process-unique id, not address, which malloc can recycle.
  struct Cached {
    std::uint64_t owner_id = 0;
    ThreadRing* ring = nullptr;
  };
  thread_local Cached cached;
  if (cached.owner_id == id_) return *cached.ring;
  std::lock_guard lock(rings_mutex_);
  auto ring = std::make_unique<ThreadRing>();
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  rings_.push_back(std::move(ring));
  cached.owner_id = id_;
  cached.ring = rings_.back().get();
  return *cached.ring;
}

void TraceRecorder::record_slow(const char* category, const char* name,
                                char phase) {
  ThreadRing& ring = ring_for_this_thread();
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = phase;
  event.tid = ring.tid;
  event.timestamp_ns = common::now_ns();
  if (!ring.ring.try_push(event)) dropped_.add();
}

std::string TraceRecorder::dump_json() {
  // Serializing the drain under rings_mutex_ keeps each ring single-consumer;
  // owner threads may keep pushing concurrently (SPSC contract holds).
  std::lock_guard lock(rings_mutex_);
  for (auto& ring : rings_) {
    while (auto event = ring->ring.try_pop()) {
      drained_.push_back(*event);
    }
  }
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : drained_) {
    if (!first) out += ',';
    first = false;
    // Chrome's ts field is in microseconds; keep sub-µs precision.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%.3f,\"pid\":0,\"tid\":%u}",
                  e.name, e.category, e.phase,
                  static_cast<double>(e.timestamp_ns) / 1e3, e.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

bool TraceRecorder::dump_json_to_file(const std::string& path) {
  const std::string json = dump_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace telemetry

#endif  // AMTNET_TELEMETRY_DISABLED
