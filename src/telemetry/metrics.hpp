// Low-overhead metric primitives: cache-line-sharded lock-free counters and
// gauges, and log-bucketed (HDR-style) latency histograms with fixed memory.
//
// Cost model (the reason hot paths may keep these always-on):
//   * Counter::add / Gauge::add are one relaxed fetch_add on a per-thread
//     shard — no shared cache line is written by concurrent threads, so a
//     counter on a million-ops/s path costs the same as a private increment.
//   * Histogram::record is one relaxed fetch_add into a bucket plus a relaxed
//     max update; timing helpers (ScopedTimer) additionally pay two clock
//     reads and honour the AMTNET_TELEMETRY=0 runtime kill switch.
//   * Reads (value(), percentile(), Registry::snapshot()) aggregate the
//     shards with relaxed loads: each returned number is a coherent 64-bit
//     value that existed at some instant during the call, counters are
//     monotonic, but two different metrics are not sampled at the same
//     instant. This "relaxed snapshot" semantic is the documented contract
//     for every stats() accessor built on top of the registry.
//
// Compiling with AMTNET_TELEMETRY_DISABLED replaces every type in this header
// with an inline no-op stub so instrumented code compiles to nothing.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/cache.hpp"
#include "common/clock.hpp"

namespace telemetry {

/// Runtime kill switch for *timing* instrumentation (clock reads). Counters
/// stay on — they are too cheap to be worth a branch. Reads AMTNET_TELEMETRY
/// once: "0" / "off" / "false" disable timers and tracing.
bool timing_enabled_from_env();
inline bool timing_enabled() {
  static const bool enabled = timing_enabled_from_env();
  return enabled;
}

/// Per-thread shard slot, assigned round-robin on first use so short-lived
/// thread bursts spread across shards.
inline unsigned shard_slot() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

#ifndef AMTNET_TELEMETRY_DISABLED

/// Monotonic counter, sharded across cache lines to avoid false sharing.
class Counter {
 public:
  static constexpr unsigned kShards = 8;  // power of two

  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_slot() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Relaxed aggregate of all shards (see header comment for semantics).
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::array<common::CachePadded<std::atomic<std::uint64_t>>, kShards>
      shards_{};
};

/// Signed up/down counter (e.g. queue depth). A concurrent reader may observe
/// a transiently negative aggregate while an add/sub pair straddles the read.
class Gauge {
 public:
  static constexpr unsigned kShards = 8;

  void add(std::int64_t n = 1) noexcept {
    shards_[shard_slot() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }

  std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::array<common::CachePadded<std::atomic<std::int64_t>>, kShards>
      shards_{};
};

/// Log-bucketed histogram of non-negative 64-bit samples (typically
/// nanoseconds), HDR-style: 32 sub-buckets per power of two, giving a fixed
/// ~3% (1/32) relative error at ~15 KiB of memory, any value range, no
/// allocation after construction. Percentile queries return the upper bound
/// of the bucket containing the requested rank, so reported quantiles never
/// under-state the true value by more than one bucket width.
class Histogram {
 public:
  static constexpr unsigned kLog2Sub = 5;
  static constexpr unsigned kSub = 1u << kLog2Sub;  // 32
  // kSub exact buckets for v < kSub, then kSub sub-buckets per power of two
  // for exponents kLog2Sub..63.
  static constexpr unsigned kBuckets = kSub + (64 - kLog2Sub) * kSub;  // 1920

  /// Maps a sample to its bucket. Values < kSub map exactly (bucket == value).
  static constexpr unsigned bucket_index(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<unsigned>(v);
    const unsigned top = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = top - kLog2Sub;
    return (top - kLog2Sub) * kSub +
           static_cast<unsigned>((v >> shift) & (kSub - 1)) + kSub;
  }

  /// Largest value mapping to `index` (the reported quantile value).
  static constexpr std::uint64_t bucket_upper(unsigned index) noexcept {
    if (index < kSub) return index;
    const unsigned group = index / kSub;  // >= 1
    const unsigned sub = index % kSub;
    const unsigned top = group + kLog2Sub - 1;
    const std::uint64_t low =
        (std::uint64_t{1} << top) + (std::uint64_t{sub} << (top - kLog2Sub));
    return low + (std::uint64_t{1} << (top - kLog2Sub)) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& bucket : buckets_) {
      n += bucket.load(std::memory_order_relaxed);
    }
    return n;
  }

  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Quantile `q` in [0, 1]: upper bound of the bucket holding the sample of
  /// rank ceil(q * count). Relaxed snapshot; returns 0 on an empty histogram.
  std::uint64_t percentile(double q) const noexcept {
    std::array<std::uint64_t, 3> out{};
    percentiles({{q, q, q}}, out);
    return out[0];
  }

  /// Computes several quantiles from ONE pass over a single bucket snapshot,
  /// so the returned set is mutually consistent.
  void percentiles(const std::array<double, 3>& qs,
                   std::array<std::uint64_t, 3>& out) const noexcept {
    std::array<std::uint64_t, kBuckets> snap;
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    out.fill(0);
    if (total == 0) return;
    const std::uint64_t observed_max = max();
    for (unsigned qi = 0; qi < qs.size(); ++qi) {
      const double q = qs[qi] < 0.0 ? 0.0 : (qs[qi] > 1.0 ? 1.0 : qs[qi]);
      std::uint64_t rank = static_cast<std::uint64_t>(q * total + 0.5);
      if (rank == 0) rank = 1;
      if (rank > total) rank = total;
      std::uint64_t cum = 0;
      for (unsigned i = 0; i < kBuckets; ++i) {
        cum += snap[i];
        if (cum >= rank) {
          const std::uint64_t upper = bucket_upper(i);
          out[qi] = upper < observed_max || observed_max == 0 ? upper
                                                             : observed_max;
          break;
        }
      }
    }
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII timer recording elapsed nanoseconds into a histogram. Honours the
/// AMTNET_TELEMETRY kill switch (no clock reads when disabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(timing_enabled() ? &histogram : nullptr),
        start_(histogram_ != nullptr ? common::now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->record(
          static_cast<std::uint64_t>(common::now_ns() - start_));
    }
  }

 private:
  Histogram* histogram_;
  common::Nanos start_;
};

#else  // AMTNET_TELEMETRY_DISABLED — every primitive is an inline no-op.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void add(std::int64_t = 1) noexcept {}
  void sub(std::int64_t = 1) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  static constexpr unsigned bucket_index(std::uint64_t) noexcept { return 0; }
  static constexpr std::uint64_t bucket_upper(unsigned) noexcept { return 0; }
  void record(std::uint64_t) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  std::uint64_t sum() const noexcept { return 0; }
  std::uint64_t max() const noexcept { return 0; }
  std::uint64_t percentile(double) const noexcept { return 0; }
  void percentiles(const std::array<double, 3>&,
                   std::array<std::uint64_t, 3>& out) const noexcept {
    out.fill(0);
  }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // AMTNET_TELEMETRY_DISABLED

}  // namespace telemetry
