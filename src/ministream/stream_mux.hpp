// ministream — a TCP-like reliable byte-stream layer over the simulated
// fabric, standing in for the socket transport beneath HPX's original TCP
// parcelport (the second pre-LCI backend the paper mentions in §1).
//
// Model:
//   * one full-duplex stream per ordered pair of ranks, auto-established,
//   * nonblocking socket semantics: send() accepts as many bytes as fit in
//     the send buffer (possibly zero — the caller retries later, as with
//     EWOULDBLOCK), recv() drains whatever has arrived,
//   * segments travel as fabric datagrams with per-stream sequence numbers
//     and are reassembled in order (the fabric stripes rails, so ministream
//     provides its own ordering, like TCP over ECMP),
//   * back-pressure comes from the send buffer bound plus the fabric's TX
//     window and SRQ credits; an explicit receive window is not modelled
//     (the parcelport above consumes frames promptly).
//
// Threading: all calls are thread-safe; each direction of each stream is
// guarded by its own mutex (the lock-per-socket structure of a classic
// sockets stack — coarser than minilci, finer than the minimpi big lock).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/spinlock.hpp"
#include "common/status.hpp"
#include "fabric/nic.hpp"
#include "fabric/reliable.hpp"

namespace ministream {

using Rank = fabric::Rank;

struct Config {
  std::size_t max_segment = 8192;       // bytes per fabric datagram
  std::size_t send_buffer = 256 * 1024; // SO_SNDBUF analogue
  std::size_t recv_buffer = 256 * 1024; // SO_RCVBUF analogue
};

class StreamMux {
 public:
  StreamMux(fabric::Fabric& fabric, Rank rank, Config config = {});
  StreamMux(const StreamMux&) = delete;
  StreamMux& operator=(const StreamMux&) = delete;

  Rank rank() const { return rank_; }
  Rank world_size() const { return fabric_.num_ranks(); }

  /// Appends up to `len` bytes to the outbound stream toward `dst`.
  /// Returns the number of bytes accepted (0 when the send buffer is full).
  std::size_t send_some(Rank dst, const void* data, std::size_t len);

  /// Bytes currently readable from `src`.
  std::size_t available(Rank src);

  /// Reads up to `maxlen` in-order bytes from `src`; returns bytes read.
  std::size_t recv_some(Rank src, void* buf, std::size_t maxlen);

  /// Drives segmentation, transmission, reception, and reassembly.
  /// Thread-safe; returns whether any bytes moved.
  bool progress();

  std::uint64_t bytes_sent() const {
    return stat_bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return stat_bytes_received_.load(std::memory_order_relaxed);
  }

 private:
  struct TxStream {
    common::SpinMutex mutex;
    std::deque<std::byte> buffer;       // bytes not yet on the wire
    std::uint32_t next_seq = 0;
  };

  struct RxStream {
    common::SpinMutex mutex;
    std::deque<std::byte> buffer;       // in-order bytes awaiting recv()
    std::uint32_t next_seq = 0;
    std::map<std::uint32_t, std::vector<std::byte>> out_of_order;
  };

  bool flush_tx(Rank dst);
  void handle_segment(Rank src, std::uint32_t seq,
                      std::vector<std::byte>&& payload);

  fabric::Fabric& fabric_;
  fabric::Nic& nic_;
  const Rank rank_;
  const Config config_;
  // Retransmit/dedup/CRC sublayer for every segment; passthrough when the
  // fabric's fault config is clean.
  fabric::ReliableEndpoint rel_;

  std::vector<std::unique_ptr<TxStream>> tx_;  // indexed by destination
  std::vector<std::unique_ptr<RxStream>> rx_;  // indexed by source

  std::atomic<std::uint64_t> stat_bytes_sent_{0};
  std::atomic<std::uint64_t> stat_bytes_received_{0};
};

}  // namespace ministream
