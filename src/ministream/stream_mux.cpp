#include "ministream/stream_mux.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#include "common/logging.hpp"

namespace ministream {

namespace {
// Wire immediate: [63:56] kind (always 1) | [31:0] per-stream sequence.
constexpr std::uint64_t kSegmentKind = 1ull << 56;
std::uint64_t make_imm(std::uint32_t seq) { return kSegmentKind | seq; }
std::uint32_t imm_seq(std::uint64_t imm) {
  return static_cast<std::uint32_t>(imm);
}
}  // namespace

StreamMux::StreamMux(fabric::Fabric& fabric, Rank rank, Config config)
    : fabric_(fabric),
      nic_(fabric.nic(rank)),
      rank_(rank),
      config_(config),
      rel_(fabric, rank, "stream") {
  // Integrity mode appends an 8-byte trailer to every segment.
  assert(config_.max_segment + (rel_.enabled() ? 8 : 0) <=
         nic_.srq_buffer_size());
  tx_.reserve(fabric.num_ranks());
  rx_.reserve(fabric.num_ranks());
  for (Rank r = 0; r < fabric.num_ranks(); ++r) {
    tx_.push_back(std::make_unique<TxStream>());
    rx_.push_back(std::make_unique<RxStream>());
  }
}

std::size_t StreamMux::send_some(Rank dst, const void* data,
                                 std::size_t len) {
  TxStream& tx = *tx_[dst];
  std::size_t accepted;
  {
    std::lock_guard<common::SpinMutex> guard(tx.mutex);
    const std::size_t room =
        config_.send_buffer > tx.buffer.size()
            ? config_.send_buffer - tx.buffer.size()
            : 0;
    accepted = std::min(len, room);
    const auto* bytes = static_cast<const std::byte*>(data);
    tx.buffer.insert(tx.buffer.end(), bytes, bytes + accepted);
  }
  if (accepted > 0) flush_tx(dst);
  return accepted;
}

bool StreamMux::flush_tx(Rank dst) {
  TxStream& tx = *tx_[dst];
  std::lock_guard<common::SpinMutex> guard(tx.mutex);
  bool moved = false;
  while (!tx.buffer.empty()) {
    const std::size_t seg_len =
        std::min(config_.max_segment, tx.buffer.size());
    // Deques are not contiguous: stage the segment in a scratch buffer.
    std::vector<std::byte> segment(tx.buffer.begin(),
                                   tx.buffer.begin() +
                                       static_cast<std::ptrdiff_t>(seg_len));
    if (rel_.send(dst, segment.data(), segment.size(),
                  make_imm(tx.next_seq)) != common::Status::kOk) {
      break;  // TX back-pressure: leave the bytes queued
    }
    tx.buffer.erase(tx.buffer.begin(),
                    tx.buffer.begin() + static_cast<std::ptrdiff_t>(seg_len));
    ++tx.next_seq;
    stat_bytes_sent_.fetch_add(seg_len, std::memory_order_relaxed);
    moved = true;
  }
  return moved;
}

void StreamMux::handle_segment(Rank src, std::uint32_t seq,
                               std::vector<std::byte>&& payload) {
  RxStream& rx = *rx_[src];
  std::lock_guard<common::SpinMutex> guard(rx.mutex);
  if (seq == rx.next_seq) {
    stat_bytes_received_.fetch_add(payload.size(), std::memory_order_relaxed);
    rx.buffer.insert(rx.buffer.end(), payload.begin(), payload.end());
    ++rx.next_seq;
    auto it = rx.out_of_order.begin();
    while (it != rx.out_of_order.end() && it->first == rx.next_seq) {
      stat_bytes_received_.fetch_add(it->second.size(),
                                     std::memory_order_relaxed);
      rx.buffer.insert(rx.buffer.end(), it->second.begin(),
                       it->second.end());
      it = rx.out_of_order.erase(it);
      ++rx.next_seq;
    }
  } else {
    rx.out_of_order.emplace(seq, std::move(payload));
  }
}

std::size_t StreamMux::available(Rank src) {
  RxStream& rx = *rx_[src];
  std::lock_guard<common::SpinMutex> guard(rx.mutex);
  return rx.buffer.size();
}

std::size_t StreamMux::recv_some(Rank src, void* buf, std::size_t maxlen) {
  RxStream& rx = *rx_[src];
  std::lock_guard<common::SpinMutex> guard(rx.mutex);
  const std::size_t n = std::min(maxlen, rx.buffer.size());
  auto* out = static_cast<std::byte*>(buf);
  std::copy(rx.buffer.begin(),
            rx.buffer.begin() + static_cast<std::ptrdiff_t>(n), out);
  rx.buffer.erase(rx.buffer.begin(),
                  rx.buffer.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

bool StreamMux::progress() {
  bool moved = false;
  for (Rank dst = 0; dst < tx_.size(); ++dst) {
    bool nonempty;
    {
      TxStream& tx = *tx_[dst];
      std::lock_guard<common::SpinMutex> guard(tx.mutex);
      nonempty = !tx.buffer.empty();
    }
    if (nonempty) moved |= flush_tx(dst);
  }
  rel_.progress();
  moved |= nic_.poll_rx(64, [this](fabric::RxEvent&& event) {
             if (event.kind != fabric::RxEvent::Kind::kRecv) {
               AMTNET_LOG_ERROR("ministream: unexpected event kind");
               return;
             }
             // The reliable sublayer strips its trailer, dedups, and
             // swallows acks; only fresh verified segments pass.
             if (!rel_.on_recv(event)) return;
             handle_segment(event.src, imm_seq(event.imm),
                            std::move(event.payload));
           }) > 0;
  return moved;
}

}  // namespace ministream
