#include "parcelport_mpi/parcelport_mpi.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/integrity.hpp"
#include "common/logging.hpp"

namespace ppmpi {

namespace {
minimpi::Config make_comm_config(const amt::ParcelportContext& context) {
  minimpi::Config config;
  config.lock_mode = context.config.mpi_coarse_lock
                         ? minimpi::LockMode::kCoarseBlocking
                         : minimpi::LockMode::kFineGrained;
  return config;
}

std::string pp_metric(amt::Rank rank, const char* leaf) {
  return "ppmpi/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

MpiParcelport::MpiParcelport(const amt::ParcelportContext& context)
    : context_(context),
      original_(context.config.mpi_original),
      max_header_size_(original_
                           ? 512
                           : std::max(context.zero_copy_threshold,
                                      sizeof(amt::WireHeader))),
      comm_(*context.fabric, context.rank, make_comm_config(context)),
      header_seq_tx_(context.fabric->num_ranks()),
      header_seq_rx_(context.fabric->num_ranks()),
      ctr_delivered_(context.fabric->telemetry().counter(
          pp_metric(context.rank, "messages_delivered"))),
      hist_send_ns_(context.fabric->telemetry().histogram(
          pp_metric(context.rank, "send_ns"))),
      gauge_send_queue_depth_(context.fabric->telemetry().gauge(
          pp_metric(context.rank, "send_queue_depth"))) {}

MpiParcelport::~MpiParcelport() = default;

void MpiParcelport::start() {
  started_.store(true);
  header_recv_buf_.resize(max_header_size_);
  header_req_ = comm_.irecv(header_recv_buf_.data(), header_recv_buf_.size(),
                            minimpi::kAnySource, kHeaderTag);
  if (original_) {
    tag_release_req_ = comm_.irecv(&tag_release_buf_, sizeof(tag_release_buf_),
                                   minimpi::kAnySource, kTagReleaseTag);
  }
}

void MpiParcelport::stop() { started_.store(false); }

minimpi::Tag MpiParcelport::alloc_tag() {
  if (original_) {
    // Tag provider: reuse released tags before minting new ones.
    std::lock_guard<common::SpinMutex> guard(tag_provider_mutex_);
    if (!free_tags_.empty()) {
      const minimpi::Tag tag = free_tags_.back();
      free_tags_.pop_back();
      return tag;
    }
  }
  // Wrap-around atomic counter; assumes a connection pair with the same tag
  // value completes before the value is reused (paper §3.1's caveat).
  const std::uint64_t raw = next_tag_.fetch_add(1, std::memory_order_relaxed);
  return kFirstDataTag +
         static_cast<minimpi::Tag>(
             raw % (minimpi::kTagUpperBound - kFirstDataTag));
}

void MpiParcelport::release_tag(minimpi::Tag tag) {
  std::lock_guard<common::SpinMutex> guard(tag_provider_mutex_);
  free_tags_.push_back(tag);
}

void MpiParcelport::send(amt::Rank dst, amt::OutMessage msg,
                         common::UniqueFunction<void()> done) {
  AMTNET_TRACE_SCOPE("ppmpi", "send");
  gauge_send_queue_depth_.add();
  done = [this, inner = std::move(done)]() mutable {
    gauge_send_queue_depth_.sub();
    inner();
  };
  if (telemetry::timing_enabled()) {
    const common::Nanos start = common::now_ns();
    done = [this, start, inner = std::move(done)]() mutable {
      hist_send_ns_.record(
          static_cast<std::uint64_t>(common::now_ns() - start));
      inner();
    };
  }
  const amt::HeaderPlan plan =
      original_ ? amt::HeaderPlan::decide_original(msg)
                : amt::HeaderPlan::decide(msg, max_header_size_);

  auto connection = std::make_unique<SenderConnection>();
  connection->dst = dst;
  connection->done = std::move(done);
  connection->tag =
      plan.num_followups(msg) > 0 ? alloc_tag() : 0;
  const std::uint32_t header_seq =
      header_seq_tx_[dst].value.fetch_add(1, std::memory_order_relaxed);
  amt::encode_header(msg, plan, static_cast<std::uint32_t>(connection->tag),
                     header_seq, connection->header_buf);

  // Follow-up pieces in wire order (paper §3.1): non-zero-copy chunk,
  // transmission chunk, zero-copy chunks.
  if (!plan.piggy_main) {
    connection->pieces.emplace_back(msg.main_chunk.data(),
                                    msg.main_chunk.size());
  }
  if (msg.has_zchunks() && !plan.piggy_tchunk) {
    connection->tchunk_buf = msg.make_tchunk();
    connection->pieces.emplace_back(connection->tchunk_buf.data(),
                                    connection->tchunk_buf.size());
  }
  for (const amt::ZChunk& chunk : msg.zchunks) {
    connection->pieces.emplace_back(chunk.data, chunk.size);
  }
  connection->msg = std::move(msg);

  // The header message goes out on tag 0 from the calling worker thread.
  connection->current =
      comm_.isend(connection->header_buf.data(), connection->header_buf.size(),
                  dst, kHeaderTag);
  if (connection->pieces.empty()) {
    // Whole message piggybacked: the connection finishes as soon as the
    // header send completes (usually immediately — eager path).
    if (connection->current.done()) {
      connection->done();
      return;
    }
  }
  enqueue_pending(std::move(connection));
}

bool MpiParcelport::SenderConnection::advance(MpiParcelport& port) {
  if (current.valid() && !port.comm_.test(current)) return false;
  if (next_piece < pieces.size()) {
    const auto [data, size] = pieces[next_piece];
    ++next_piece;
    current = port.comm_.isend(data, size, dst, tag);
    return false;
  }
  done();
  return true;
}

void MpiParcelport::ReceiverConnection::post_next(MpiParcelport& port) {
  for (;;) {
    switch (stage) {
      case Stage::kMain:
        stage = Stage::kTchunk;
        if (!fields.piggy_main && fields.main_size > 0) {
          main.resize(fields.main_size);
          current = port.comm_.irecv(main.data(), main.size(),
                                     static_cast<int>(src), tag);
          return;
        }
        break;
      case Stage::kTchunk:
        stage = Stage::kZchunks;
        if (fields.num_zchunks > 0 && !fields.piggy_tchunk) {
          tchunk.resize(fields.num_zchunks * sizeof(std::uint64_t));
          current = port.comm_.irecv(tchunk.data(), tchunk.size(),
                                     static_cast<int>(src), tag);
          return;
        }
        break;
      case Stage::kZchunks:
        if (zsizes.empty() && fields.num_zchunks > 0) {
          zsizes = amt::parse_tchunk(tchunk.data(), tchunk.size());
          assert(zsizes.size() == fields.num_zchunks);
        }
        if (zindex < fields.num_zchunks) {
          zchunks.emplace_back(zsizes[zindex]);
          current = port.comm_.irecv(zchunks.back().data(),
                                     zchunks.back().size(),
                                     static_cast<int>(src), tag);
          ++zindex;
          return;
        }
        stage = Stage::kDone;
        return;
      case Stage::kDone:
        return;
    }
  }
}

bool MpiParcelport::ReceiverConnection::advance(MpiParcelport& port) {
  if (current.valid() && !port.comm_.test(current)) return false;
  post_next(port);
  if (stage == Stage::kDone) {
    finish(port);
    return true;
  }
  return false;
}

void MpiParcelport::ReceiverConnection::finish(MpiParcelport& port) {
  amt::InMessage in;
  in.source = src;
  in.main_chunk = std::move(main);
  in.zchunks = std::move(zchunks);
  port.ctr_delivered_.add();
  port.context_.deliver(std::move(in));
  if (port.original_ && tag != 0) {
    // Tag-release protocol: hand the tag back to the sender's provider.
    const std::uint32_t released = static_cast<std::uint32_t>(tag);
    port.comm_.isend(&released, sizeof(released), src, kTagReleaseTag);
  }
}

void MpiParcelport::handle_header(amt::Rank src, const std::byte* data,
                                  std::size_t size) {
  amt::DecodedHeader decoded = amt::decode_header(data, size);
  {
    // A duplicated header would double-deliver a parcel: fail fast.
    HeaderSeqRx& rx = header_seq_rx_[src].value;
    std::lock_guard<common::SpinMutex> guard(rx.mutex);
    if (!rx.tracker.accept(decoded.fields.seq)) {
      common::integrity_fail("ppmpi: duplicated wire header rank=",
                             context_.rank, " src=", src,
                             " seq=", decoded.fields.seq,
                             " tag=", decoded.fields.tag,
                             " — a duplicate would double-deliver a parcel");
    }
  }

  auto connection = std::make_unique<ReceiverConnection>();
  connection->src = src;
  connection->tag = static_cast<minimpi::Tag>(decoded.fields.tag);
  connection->fields = decoded.fields;
  connection->main = std::move(decoded.piggy_main);
  connection->tchunk = std::move(decoded.piggy_tchunk);

  connection->post_next(*this);
  if (connection->stage == ReceiverConnection::Stage::kDone) {
    connection->finish(*this);  // fully piggybacked message
    return;
  }
  enqueue_pending(std::move(connection));
}

void MpiParcelport::enqueue_pending(std::unique_ptr<Connection> connection) {
  std::lock_guard<common::SpinMutex> guard(pending_mutex_);
  pending_.push_back(std::move(connection));
}

bool MpiParcelport::check_header_receive() {
  if (!header_mutex_.try_lock()) return false;
  bool did_work = false;
  if (header_req_.valid() && comm_.test(header_req_)) {
    const amt::Rank src = static_cast<amt::Rank>(header_req_.source());
    // Decode before reposting: the buffer is reused for the next header.
    handle_header(src, header_recv_buf_.data(), header_req_.size());
    header_req_ = comm_.irecv(header_recv_buf_.data(),
                              header_recv_buf_.size(), minimpi::kAnySource,
                              kHeaderTag);
    did_work = true;
  }
  header_mutex_.unlock();
  return did_work;
}

bool MpiParcelport::check_tag_release_receive() {
  if (!tag_release_mutex_.try_lock()) return false;
  bool did_work = false;
  if (tag_release_req_.valid() && comm_.test(tag_release_req_)) {
    release_tag(static_cast<minimpi::Tag>(tag_release_buf_));
    tag_release_req_ = comm_.irecv(&tag_release_buf_,
                                   sizeof(tag_release_buf_),
                                   minimpi::kAnySource, kTagReleaseTag);
    did_work = true;
  }
  tag_release_mutex_.unlock();
  return did_work;
}

bool MpiParcelport::advance_pending(unsigned max_connections) {
  bool finished_any = false;
  for (unsigned i = 0; i < max_connections; ++i) {
    std::unique_ptr<Connection> connection;
    {
      std::lock_guard<common::SpinMutex> guard(pending_mutex_);
      if (pending_.empty()) break;
      connection = std::move(pending_.front());
      pending_.pop_front();
    }
    if (connection->advance(*this)) {
      finished_any = true;  // connection completed and is destroyed
    } else {
      std::lock_guard<common::SpinMutex> guard(pending_mutex_);
      pending_.push_back(std::move(connection));
    }
  }
  return finished_any;
}

bool MpiParcelport::background_work(unsigned /*worker_index*/) {
  if (!started_.load(std::memory_order_relaxed)) return false;
  bool did_work = check_header_receive();
  if (original_) did_work |= check_tag_release_receive();
  did_work |= advance_pending(8);
  return did_work;
}

}  // namespace ppmpi
