// The MPI parcelport (paper §3.1), implemented over minimpi.
//
// Faithful behaviours:
//   * one sender/receiver *connection* object per HPX message, each with at
//     most one outstanding send/receive at any time,
//   * a header message on MPI tag 0 (one receive always posted with the
//     maximum header size and ANY_SOURCE), carrying follow-up tag + sizes
//     and piggybacking the transmission and non-zero-copy chunks when they
//     fit under the zero-copy serialization threshold,
//   * follow-up messages (non-zero-copy chunk, transmission chunk, zero-copy
//     chunks) all on one tag drawn from an atomic counter,
//   * a spinlock-guarded pending-connection list checked round-robin by the
//     worker threads' background work; no dedicated progress thread,
//   * MPI initialized THREAD_MULTIPLE: any worker may start connections.
//
// The "original" variant (config token `orig`) reverts the paper's two
// optimisations: a fixed 512-byte stack header that can only piggyback the
// non-zero-copy chunk, and a tag provider with tag-release messages and a
// lock-protected free-tag list.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "amt/parcelport.hpp"
#include "amt/wire_header.hpp"
#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "minimpi/minimpi.hpp"

namespace ppmpi {

class MpiParcelport final : public amt::Parcelport {
 public:
  explicit MpiParcelport(const amt::ParcelportContext& context);
  ~MpiParcelport() override;

  void start() override;
  void stop() override;
  void send(amt::Rank dst, amt::OutMessage msg,
            common::UniqueFunction<void()> done) override;
  bool background_work(unsigned worker_index) override;

  /// Tags used by protocol messages. Follow-up tags start at kFirstDataTag.
  static constexpr minimpi::Tag kHeaderTag = 0;
  static constexpr minimpi::Tag kTagReleaseTag = 1;  // original variant only
  static constexpr minimpi::Tag kFirstDataTag = 2;

  std::uint64_t messages_delivered() const { return ctr_delivered_.value(); }

 private:
  struct Connection {
    virtual ~Connection() = default;
    /// Drives the connection's send/receive chain one step.
    /// Returns true when the connection has finished all work.
    virtual bool advance(MpiParcelport& port) = 0;
  };

  struct SenderConnection final : Connection {
    amt::Rank dst = 0;
    amt::OutMessage msg;
    common::UniqueFunction<void()> done;
    minimpi::Tag tag = 0;
    std::vector<std::byte> header_buf;
    std::vector<std::byte> tchunk_buf;
    // Follow-up payload views, in wire order (buffers owned by msg /
    // tchunk_buf and kept alive until completion).
    std::vector<std::pair<const std::byte*, std::size_t>> pieces;
    std::size_t next_piece = 0;
    minimpi::Request current;

    bool advance(MpiParcelport& port) override;
  };

  struct ReceiverConnection final : Connection {
    amt::Rank src = 0;
    minimpi::Tag tag = 0;
    amt::WireHeader fields;
    std::vector<std::byte> main;
    std::vector<std::byte> tchunk;
    std::vector<std::uint64_t> zsizes;
    std::vector<std::vector<std::byte>> zchunks;
    enum class Stage : std::uint8_t { kMain, kTchunk, kZchunks, kDone };
    Stage stage = Stage::kMain;
    std::size_t zindex = 0;
    minimpi::Request current;  // invalid until the first recv is posted

    void post_next(MpiParcelport& port);
    bool advance(MpiParcelport& port) override;
    void finish(MpiParcelport& port);
  };

  minimpi::Tag alloc_tag();
  void release_tag(minimpi::Tag tag);  // original variant: free-tag list
  void enqueue_pending(std::unique_ptr<Connection> connection);
  bool check_header_receive();
  bool check_tag_release_receive();
  bool advance_pending(unsigned max_connections);
  void handle_header(amt::Rank src, const std::byte* data, std::size_t size);

  const amt::ParcelportContext context_;
  const bool original_;
  const std::size_t max_header_size_;
  minimpi::Comm comm_;

  // Always-posted header receive (and its buffer), guarded by a try-lock so
  // a single worker at a time checks/reposts it.
  common::SpinMutex header_mutex_;
  std::vector<std::byte> header_recv_buf_;
  minimpi::Request header_req_;

  // Original variant: always-posted tag-release receive + free-tag list.
  common::SpinMutex tag_release_mutex_;
  std::uint32_t tag_release_buf_ = 0;
  minimpi::Request tag_release_req_;
  common::SpinMutex tag_provider_mutex_;
  std::vector<minimpi::Tag> free_tags_;

  std::atomic<std::uint64_t> next_tag_{0};

  // End-to-end header integrity: per-destination generation counters stamped
  // into every WireHeader, and per-source trackers that fail fast on a
  // duplicated header (which would double-deliver a parcel).
  std::vector<common::CachePadded<std::atomic<std::uint32_t>>> header_seq_tx_;
  struct HeaderSeqRx {
    common::SpinMutex mutex;
    amt::HeaderSeqTracker tracker;
  };
  std::vector<common::CachePadded<HeaderSeqRx>> header_seq_rx_;

  common::SpinMutex pending_mutex_;
  std::deque<std::unique_ptr<Connection>> pending_;

  // Metrics under ppmpi/loc<rank>/... in the fabric's registry; send_ns
  // spans send() entry to done-callback firing when timing is enabled.
  telemetry::Counter& ctr_delivered_;
  telemetry::Histogram& hist_send_ns_;
  telemetry::Gauge& gauge_send_queue_depth_;  // messages accepted by send(),
                                              // done callback still pending

  std::atomic<bool> started_{false};
};

}  // namespace ppmpi
