// Adaptive per-destination parcel aggregation (ROADMAP item 3): coalesces
// sub-threshold parcels bound for the same destination into one multi-parcel
// batch frame (wire_header.hpp's kBatchMagic frame kind), trading a little
// latency for a large per-message overhead reduction on small-parcel floods —
// the "message coalescing" lever of Yan et al.'s follow-up study.
//
// The engine is load-aware rather than always-on: when the destination's
// admission window is empty the caller is told to send the parcel immediately
// (enqueue returns false), preserving the single-parcel fast-path latency;
// once parcels start queueing behind the window the buffer grows batches.
// Buffers flush on four triggers, in priority order:
//   * size  — the projected batch frame reached the byte cap,
//   * stall — the buffer absorbed the destination's whole admission window
//             (no more arrivals possible until credits return),
//   * age   — the oldest buffered parcel exceeded the age deadline (poll),
//   * idle  — an idle worker's background_work found nothing else to do.
// A final flush (stop()) drains everything unconditionally.
//
// Thread-safety: every public method may be called concurrently from any
// worker. Each destination's buffer is guarded by its own cache-padded
// spinlock; the flush callback always runs OUTSIDE the lock (concurrent
// flushers each carry away their own snapshot — frame order per destination
// is irrelevant because delivery is unordered and the per-channel seq only
// dedups).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "amt/message.hpp"
#include "common/cache.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "common/unique_function.hpp"

namespace amt {

class Aggregator {
 public:
  enum class FlushReason { kSize, kStall, kAge, kIdle, kFinal };

  /// One buffered parcel: the serialized message, its send-completion
  /// callback, and when it entered the buffer (for the age trigger).
  struct Entry {
    OutMessage msg;
    common::UniqueFunction<void()> done;
    common::Nanos enqueued_ns = 0;
  };

  /// Invoked with an ownership-transferring batch snapshot (never empty).
  /// Runs outside the destination's buffer lock; must eventually fire every
  /// entry's `done` exactly once.
  using FlushFn =
      std::function<void(Rank dst, std::vector<Entry>&& batch,
                         FlushReason reason)>;

  /// `max_bytes` caps the projected batch frame size (size trigger);
  /// `age_ns` is the oldest-entry flush deadline (0 disables the age
  /// trigger — size/idle/final still apply).
  Aggregator(Rank num_ranks, std::size_t max_bytes, common::Nanos age_ns,
             FlushFn flush);

  /// Offers a parcel to the destination's buffer. `queue_depth` is the
  /// destination's admission gauge (parcels accepted but not yet executed
  /// there; <=0 when admission is off) — the load signal. Returns false —
  /// leaving `msg`/`done` untouched — when the buffer is empty and the
  /// destination is not backpressured (depth <= 1: only this parcel is
  /// outstanding): the caller should send immediately, preserving the
  /// single-parcel fast-path latency. Otherwise consumes both and returns
  /// true; may invoke the flush callback before returning, on two triggers:
  ///   * size  — the projected batch frame reached the byte cap;
  ///   * stall — the buffer now holds every outstanding parcel of the
  ///     window (entries >= depth): no further parcel can arrive until
  ///     credits return, so continuing to wait is pure added latency.
  bool enqueue(Rank dst, std::int64_t queue_depth, OutMessage& msg,
               common::UniqueFunction<void()>& done);

  /// Age trigger: flushes every buffer whose oldest entry is older than the
  /// age deadline. Returns whether anything flushed.
  bool poll(common::Nanos now);

  /// Idle trigger: flushes every non-empty buffer unconditionally (latency
  /// rescue when the flood stops mid-batch). Returns whether anything
  /// flushed.
  bool flush_idle();

  /// Final drain for Parcelport::stop().
  void flush_all();

  std::size_t max_bytes() const { return max_bytes_; }
  common::Nanos age_ns() const { return age_ns_; }

  /// Lock-free: true when no parcel is buffered anywhere. Lets the idle
  /// polling loop skip the clock read and the per-destination scan that
  /// poll()/flush_idle() would otherwise pay on every pass.
  bool empty() const {
    return pending_.load(std::memory_order_relaxed) == 0;
  }

 private:
  struct Buffer {
    common::SpinMutex mutex;
    std::vector<Entry> entries;
    /// Projected wire size of the batch frame holding `entries`
    /// (header + length table + entry bodies). 0 when empty.
    std::size_t bytes = 0;
    common::Nanos oldest_ns = 0;
    /// Lock-free emptiness hint so poll/flush_idle skip idle destinations
    /// without taking the lock. Updated under the lock.
    std::atomic<std::uint32_t> count{0};
  };

  /// Swaps the buffer's contents out under its lock; returns the snapshot.
  std::vector<Entry> steal(Buffer& buffer);
  bool flush_buffers(FlushReason reason, bool aged_only, common::Nanos now);

  const std::size_t max_bytes_;
  const common::Nanos age_ns_;
  const FlushFn flush_;
  /// Total buffered parcels across all destinations (emptiness hint).
  std::atomic<std::int64_t> pending_{0};
  std::vector<common::CachePadded<Buffer>> buffers_;
};

}  // namespace amt
