#include "amt/collectives.hpp"

#include <cassert>
#include <mutex>

namespace amt {

namespace {

void act_arrive(std::uint64_t epoch, Rank from, double value) {
  CollectiveGroup::slot(here().rank())->on_arrive(epoch, from, value);
}

void act_release(std::uint64_t epoch, double value) {
  CollectiveGroup::slot(here().rank())->on_release(epoch, value);
}

}  // namespace

CollectiveGroup*& CollectiveGroup::slot(Rank rank) {
  static std::array<CollectiveGroup*, 64> slots{};
  assert(rank < slots.size());
  return slots[rank];
}

CollectiveGroup::CollectiveGroup(Runtime& runtime)
    : runtime_(runtime),
      num_ranks_(runtime.num_localities()),
      rank_epoch_(num_ranks_) {
  for (Rank r = 0; r < num_ranks_; ++r) {
    assert(slot(r) == nullptr && "one CollectiveGroup at a time");
    slot(r) = this;
  }
}

CollectiveGroup::~CollectiveGroup() {
  for (Rank r = 0; r < num_ranks_; ++r) slot(r) = nullptr;
}

CollectiveGroup::Round& CollectiveGroup::round(std::uint64_t epoch) {
  std::lock_guard<common::SpinMutex> guard(rounds_mutex_);
  auto& entry = rounds_[epoch];
  if (!entry) {
    entry = std::make_unique<Round>();
    entry->contributions.assign(num_ranks_, 0.0);
    entry->released =
        std::vector<common::CachePadded<std::atomic<int>>>(num_ranks_);
  }
  return *entry;
}

void CollectiveGroup::drop_round(std::uint64_t epoch) {
  std::lock_guard<common::SpinMutex> guard(rounds_mutex_);
  auto it = rounds_.find(epoch);
  if (it == rounds_.end()) return;
  // The last rank to leave frees the round.
  if (++it->second->leavers == static_cast<int>(num_ranks_)) {
    rounds_.erase(it);
  }
}

void CollectiveGroup::on_arrive(std::uint64_t epoch, Rank from,
                                double value) {
  Round& r = round(epoch);
  r.contributions[from] = value;
  r.arrived.fetch_add(1, std::memory_order_release);
}

void CollectiveGroup::on_release(std::uint64_t epoch, double value) {
  Round& r = round(epoch);
  r.result = value;
  r.released[here().rank()].value.fetch_add(1, std::memory_order_release);
}

double CollectiveGroup::run_collective(double value) {
  Locality& locality = here();
  const Rank rank = locality.rank();
  const std::uint64_t epoch = ++rank_epoch_[rank].value;
  Round& r = round(epoch);

  if (rank == 0) {
    on_arrive(epoch, 0, value);
    locality.scheduler().wait_until([&] {
      return r.arrived.load(std::memory_order_acquire) ==
             static_cast<int>(num_ranks_);
    });
    double sum = 0.0;
    for (double c : r.contributions) sum += c;
    for (Rank peer = 0; peer < num_ranks_; ++peer) {
      locality.apply<&act_release>(peer, epoch, sum);
    }
  } else {
    locality.apply<&act_arrive>(0, epoch, rank, value);
  }

  locality.scheduler().wait_until([&] {
    return r.released[rank].value.load(std::memory_order_acquire) >= 1;
  });
  const double result = r.result;
  drop_round(epoch);
  return result;
}

double CollectiveGroup::broadcast_from_root(double value) {
  return run_collective(here().rank() == 0 ? value : 0.0);
}

}  // namespace amt
