#include "amt/collectives.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace amt {

namespace {

// Inbox keys: (destination rank, algorithm step, source rank). Ranks fit the
// 64-entry slot table; steps are phase-strided so composed collectives
// (reduce-then-broadcast) never collide.
constexpr std::uint32_t kPhaseStride = 1u << 20;
constexpr std::uint32_t kRdFinalStep = kPhaseStride - 1;

std::uint64_t inbox_key(Rank dst, std::uint32_t step, Rank src) {
  return (static_cast<std::uint64_t>(dst) << 40) |
         (static_cast<std::uint64_t>(step) << 8) |
         static_cast<std::uint64_t>(src);
}

std::uint32_t pow2_ceil(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint32_t pow2_floor(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p * 2 <= n) p <<= 1;
  return p;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

void act_coll(std::uint64_t epoch, std::uint32_t step, Rank from,
              CollectiveGroup::Bytes payload) {
  CollectiveGroup::slot(here().rank())
      ->on_msg(epoch, step, from, std::move(payload));
}

void noop_combine(std::uint8_t*, const std::uint8_t*, std::size_t) {}

void add_doubles(std::uint8_t* acc, const std::uint8_t* in, std::size_t n) {
  for (std::size_t i = 0; i < n; i += sizeof(double)) {
    double a;
    double b;
    std::memcpy(&a, acc + i, sizeof(double));
    std::memcpy(&b, in + i, sizeof(double));
    a += b;
    std::memcpy(acc + i, &a, sizeof(double));
  }
}

}  // namespace

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kBarrier:
      return "barrier";
    case CollOp::kBroadcast:
      return "broadcast";
    case CollOp::kReduce:
      return "reduce";
    case CollOp::kAllreduce:
      return "allreduce";
    case CollOp::kScatter:
      return "scatter";
    case CollOp::kGather:
      return "gather";
    case CollOp::kAllToAll:
      return "all-to-all";
  }
  return "unknown";
}

const char* coll_algo_name(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::kCentral:
      return "central";
    case CollAlgo::kDissemination:
      return "dissemination";
    case CollAlgo::kBinomial:
      return "binomial";
    case CollAlgo::kBinomialPipelined:
      return "binomial-pipelined";
    case CollAlgo::kRecursiveDoubling:
      return "recursive-doubling";
    case CollAlgo::kRing:
      return "ring";
    case CollAlgo::kPairwise:
      return "pairwise";
  }
  return "unknown";
}

CollTuning coll_tuning_from_environment(const std::string& config_token) {
  CollTuning tuning;
  tuning.force = config_token;
  if (const char* forced = std::getenv("AMTNET_COLL_ALGO")) {
    tuning.force = forced;
  }
  if (tuning.force == "auto") tuning.force.clear();
  if (!tuning.force.empty() && tuning.force != "central" &&
      tuning.force != "tree" && tuning.force != "rd" &&
      tuning.force != "ring") {
    throw std::invalid_argument("unknown collective algorithm family: " +
                                tuning.force);
  }
  tuning.seg_bytes =
      std::max<std::size_t>(1, env_size("AMTNET_COLL_SEG_BYTES", 8192));
  tuning.large_bytes = env_size("AMTNET_COLL_LARGE_BYTES", 16384);
  tuning.window = std::max<std::size_t>(2, env_size("AMTNET_COLL_WINDOW", 16));
  return tuning;
}

CollAlgo select_algorithm(CollOp op, std::size_t bytes, Rank n,
                          const CollTuning& tuning) {
  // A forced family applies wherever the op has a member of that family;
  // elsewhere the op falls back to the auto model below.
  if (tuning.force == "central") return CollAlgo::kCentral;
  if (tuning.force == "tree") {
    switch (op) {
      case CollOp::kBroadcast:
        return bytes > tuning.large_bytes ? CollAlgo::kBinomialPipelined
                                          : CollAlgo::kBinomial;
      case CollOp::kReduce:
      case CollOp::kAllreduce:
      case CollOp::kScatter:
      case CollOp::kGather:
        return CollAlgo::kBinomial;
      default:
        break;
    }
  } else if (tuning.force == "rd") {
    if (op == CollOp::kAllreduce) return CollAlgo::kRecursiveDoubling;
    if (op == CollOp::kBarrier) return CollAlgo::kDissemination;
  } else if (tuning.force == "ring") {
    if (op == CollOp::kAllreduce) return CollAlgo::kRing;
    if (op == CollOp::kAllToAll) return CollAlgo::kPairwise;
  }
  // Auto: below four localities the centralised round is at most two hops
  // deep already and skips the tree bookkeeping; above, go log-depth, with
  // the large-payload crossover switching to the bandwidth-optimal shape.
  if (n < 4) return CollAlgo::kCentral;
  switch (op) {
    case CollOp::kBarrier:
      return CollAlgo::kDissemination;
    case CollOp::kBroadcast:
      return bytes > tuning.large_bytes ? CollAlgo::kBinomialPipelined
                                        : CollAlgo::kBinomial;
    case CollOp::kReduce:
    case CollOp::kScatter:
    case CollOp::kGather:
      return CollAlgo::kBinomial;
    case CollOp::kAllreduce:
      return bytes > tuning.large_bytes ? CollAlgo::kRing
                                        : CollAlgo::kRecursiveDoubling;
    case CollOp::kAllToAll:
      return CollAlgo::kPairwise;
  }
  return CollAlgo::kCentral;
}

std::string collective_selection_table_markdown(const CollTuning& tuning) {
  struct TableRow {
    CollOp op;
    std::size_t bytes;
    const char* payload;
  };
  static constexpr TableRow kRows[] = {
      {CollOp::kBarrier, 0, "-"},
      {CollOp::kBroadcast, 1024, "1 KiB"},
      {CollOp::kBroadcast, 65536, "64 KiB"},
      {CollOp::kReduce, 1024, "1 KiB"},
      {CollOp::kReduce, 65536, "64 KiB"},
      {CollOp::kAllreduce, 1024, "1 KiB"},
      {CollOp::kAllreduce, 65536, "64 KiB"},
      {CollOp::kScatter, 1024, "1 KiB/rank"},
      {CollOp::kGather, 1024, "1 KiB/rank"},
      {CollOp::kAllToAll, 1024, "1 KiB/rank"},
  };
  static constexpr Rank kCounts[] = {2, 4, 8, 16, 33};
  std::string out = "| collective | payload |";
  for (Rank n : kCounts) out += " n=" + std::to_string(n) + " |";
  out += "\n|---|---|";
  for (Rank n : kCounts) {
    (void)n;
    out += "---|";
  }
  out += "\n";
  for (const TableRow& row : kRows) {
    out += std::string("| ") + coll_op_name(row.op) + " | " + row.payload +
           " |";
    for (Rank n : kCounts) {
      out += std::string(" ") +
             coll_algo_name(select_algorithm(row.op, row.bytes, n, tuning)) +
             " |";
    }
    out += "\n";
  }
  return out;
}

CollectiveGroup*& CollectiveGroup::slot(Rank rank) {
  static std::array<CollectiveGroup*, 64> slots{};
  assert(rank < slots.size());
  return slots[rank];
}

CollectiveGroup::CollectiveGroup(Runtime& runtime)
    : runtime_(runtime),
      num_ranks_(runtime.num_localities()),
      tuning_(coll_tuning_from_environment(runtime.config().parcelport.coll)),
      rank_epoch_(num_ranks_),
      ops_(runtime.telemetry().counter("amt/coll/ops")),
      msgs_(runtime.telemetry().counter("amt/coll/msgs")),
      bytes_(runtime.telemetry().counter("amt/coll/bytes")),
      depth_(runtime.telemetry().counter("amt/coll/depth")) {
  window_.reserve(tuning_.window);
  for (std::size_t i = 0; i < tuning_.window; ++i) {
    window_.push_back(std::make_unique<RoundSlot>());
  }
  for (Rank r = 0; r < num_ranks_; ++r) {
    assert(slot(r) == nullptr && "one CollectiveGroup at a time");
    slot(r) = this;
  }
}

CollectiveGroup::~CollectiveGroup() {
  for (Rank r = 0; r < num_ranks_; ++r) slot(r) = nullptr;
}

CollectiveGroup::RoundSlot& CollectiveGroup::acquire(std::uint64_t epoch) {
  RoundSlot& s = *window_[epoch % window_.size()];
  here().scheduler().wait_until([&] {
    std::lock_guard<common::SpinMutex> guard(s.mutex);
    if (s.epoch == epoch) return true;
    if (s.epoch == 0) {
      s.epoch = epoch;
      return true;
    }
    // An older epoch is still draining from this slot; receipt-complete
    // algorithms guarantee it retires (a newer epoch here would mean a
    // stale message for a recycled round — a protocol bug).
    assert(s.epoch < epoch);
    return false;
  });
  return s;
}

void CollectiveGroup::on_msg(std::uint64_t epoch, std::uint32_t step,
                             Rank from, Bytes payload) {
  RoundSlot& s = acquire(epoch);
  std::lock_guard<common::SpinMutex> guard(s.mutex);
  s.inbox.emplace(inbox_key(here().rank(), step, from), std::move(payload));
}

CollectiveGroup::Ctx CollectiveGroup::begin() {
  Locality& locality = here();
  const Rank rank = locality.rank();
  const std::uint64_t epoch = ++rank_epoch_[rank].value;
  return Ctx{locality, rank, epoch, acquire(epoch)};
}

void CollectiveGroup::finish(Ctx& ctx, CollOp op, CollAlgo algo) {
  ops_.add(1);
  depth_.add(ctx.steps);
  runtime_.telemetry()
      .counter(std::string("amt/coll/") + coll_op_name(op) + "/" +
               coll_algo_name(algo))
      .add(1);
  RoundSlot& s = ctx.round;
  std::lock_guard<common::SpinMutex> guard(s.mutex);
  if (++s.leavers == static_cast<int>(num_ranks_)) {
    // Every rank consumed the messages addressed to it before leaving, so
    // the slot recycles empty and the next epoch can claim it.
    assert(s.inbox.empty());
    s.leavers = 0;
    s.epoch = 0;
  }
}

void CollectiveGroup::send(Ctx& ctx, std::uint32_t step, Rank to,
                           Bytes payload) {
  msgs_.add(1);
  bytes_.add(payload.size());
  ctx.loc.apply<&act_coll>(to, ctx.epoch, step, ctx.rank, std::move(payload));
}

CollectiveGroup::Bytes CollectiveGroup::recv(Ctx& ctx, std::uint32_t step,
                                             Rank from) {
  const std::uint64_t key = inbox_key(ctx.rank, step, from);
  RoundSlot& s = ctx.round;
  Bytes out;
  ctx.loc.scheduler().wait_until([&] {
    std::lock_guard<common::SpinMutex> guard(s.mutex);
    auto it = s.inbox.find(key);
    if (it == s.inbox.end()) return false;
    out = std::move(it->second);
    s.inbox.erase(it);
    return true;
  });
  ++ctx.steps;
  return out;
}

// ---- centralised baselines -------------------------------------------------

void CollectiveGroup::bcast_central(Ctx& ctx, Rank root, Bytes& data,
                                    std::uint32_t step_base) {
  if (ctx.rank == root) {
    for (Rank peer = 0; peer < num_ranks_; ++peer) {
      if (peer != root) send(ctx, step_base, peer, data);
    }
  } else {
    data = recv(ctx, step_base, root);
  }
}

void CollectiveGroup::reduce_central(Ctx& ctx, Rank root, Bytes& data,
                                     ReduceFn fn, std::uint32_t step_base) {
  if (ctx.rank == root) {
    // Fold in rank order for a deterministic reference combine.
    std::vector<Bytes> gathered(num_ranks_);
    for (Rank peer = 0; peer < num_ranks_; ++peer) {
      if (peer != root) gathered[peer] = recv(ctx, step_base, peer);
    }
    gathered[root] = std::move(data);
    Bytes acc = std::move(gathered[0]);
    for (Rank peer = 1; peer < num_ranks_; ++peer) {
      fn(acc.data(), gathered[peer].data(), acc.size());
    }
    data = std::move(acc);
  } else {
    send(ctx, step_base, root, std::move(data));
    data.clear();
  }
}

// ---- log-depth algorithms --------------------------------------------------

// Binomial-tree broadcast with store-and-forward segments. The first
// segment's message carries an 8-byte total-size header so non-roots can
// derive the segment count; the segment size rule (whole payload below the
// large-payload crossover, tuning.seg_bytes above) is evaluated identically
// on every rank from the received total.
void CollectiveGroup::bcast_binomial(Ctx& ctx, Rank root, Bytes& data,
                                     std::uint32_t step_base) {
  const Rank n = num_ranks_;
  const Rank vrank = (ctx.rank + n - root) % n;
  std::uint32_t span;  // power-of-two subtree size rooted at vrank
  Rank parent = 0;
  if (vrank == 0) {
    span = pow2_ceil(n);
  } else {
    span = vrank & (~vrank + 1);  // lowest set bit
    parent = (vrank - span + root) % n;
  }

  const auto forward = [&](std::uint32_t step, const Bytes& msg) {
    for (std::uint32_t m = span >> 1; m != 0; m >>= 1) {
      const Rank child_v = vrank + m;
      if (child_v < n) send(ctx, step, (child_v + root) % n, msg);
    }
  };

  // Segment rule (evaluated identically on every rank once the total is
  // known): one segment below the large-payload crossover, seg_bytes
  // pipelined segments above it.
  const auto seg_for = [&](std::size_t total) {
    return total > tuning_.large_bytes ? tuning_.seg_bytes
                                       : std::max<std::size_t>(1, total);
  };
  std::size_t total;
  std::size_t seg;
  std::size_t segments;
  if (vrank == 0) {
    total = data.size();
    seg = seg_for(total);
    segments = total == 0 ? 1 : (total + seg - 1) / seg;
    Bytes first(sizeof(std::uint64_t));
    const std::uint64_t header = total;
    std::memcpy(first.data(), &header, sizeof(header));
    const std::size_t len0 = std::min(seg, total);
    first.insert(first.end(), data.begin(), data.begin() + len0);
    forward(step_base, first);
  } else {
    Bytes first = recv(ctx, step_base, parent);
    std::uint64_t header = 0;
    std::memcpy(&header, first.data(), sizeof(header));
    total = static_cast<std::size_t>(header);
    seg = seg_for(total);
    segments = total == 0 ? 1 : (total + seg - 1) / seg;
    data.resize(total);
    std::memcpy(data.data(), first.data() + sizeof(header),
                first.size() - sizeof(header));
    forward(step_base, first);
  }
  for (std::size_t s = 1; s < segments; ++s) {
    const std::size_t offset = s * seg;
    const std::size_t len = std::min(seg, total - offset);
    if (vrank == 0) {
      forward(step_base + static_cast<std::uint32_t>(s),
              Bytes(data.begin() + offset, data.begin() + offset + len));
    } else {
      Bytes chunk =
          recv(ctx, step_base + static_cast<std::uint32_t>(s), parent);
      std::memcpy(data.data() + offset, chunk.data(), len);
      forward(step_base + static_cast<std::uint32_t>(s), chunk);
    }
  }
}

void CollectiveGroup::reduce_binomial(Ctx& ctx, Rank root, Bytes& data,
                                      ReduceFn fn, std::uint32_t step_base) {
  const Rank n = num_ranks_;
  const Rank vrank = (ctx.rank + n - root) % n;
  for (std::uint32_t mask = 1; mask < n; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const Rank src_v = vrank | mask;
      if (src_v < n) {
        Bytes in = recv(ctx, step_base, (src_v + root) % n);
        fn(data.data(), in.data(), data.size());
      }
    } else {
      send(ctx, step_base, (vrank - mask + root) % n, std::move(data));
      data.clear();
      return;
    }
  }
}

void CollectiveGroup::allreduce_rd(Ctx& ctx, Bytes& data, ReduceFn fn,
                                   std::uint32_t step_base) {
  const Rank n = num_ranks_;
  const Rank rank = ctx.rank;
  const std::uint32_t pof2 = pow2_floor(n);
  const Rank rem = n - pof2;
  // Fold the ranks above the largest power of two into their even partners
  // so the doubling loop runs on a power-of-two group.
  std::int64_t newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      send(ctx, step_base, rank - 1, data);
      newrank = -1;
    } else {
      Bytes in = recv(ctx, step_base, rank + 1);
      fn(data.data(), in.data(), data.size());
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }
  if (newrank != -1) {
    std::uint32_t step = step_base + 1;
    for (std::uint32_t mask = 1; mask < pof2; mask <<= 1, ++step) {
      const Rank peer_new = static_cast<Rank>(newrank) ^ mask;
      const Rank peer = peer_new < rem ? peer_new * 2 : peer_new + rem;
      send(ctx, step, peer, data);
      Bytes in = recv(ctx, step, peer);
      fn(data.data(), in.data(), data.size());
    }
  }
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      data = recv(ctx, step_base + kRdFinalStep, rank - 1);
    } else {
      send(ctx, step_base + kRdFinalStep, rank + 1, data);
    }
  }
}

// Ring reduce-scatter + allgather over per-rank chunks aligned to
// elem_bytes; chunks may be empty when elements < ranks.
void CollectiveGroup::allreduce_ring(Ctx& ctx, Bytes& data,
                                     std::size_t elem_bytes, ReduceFn fn,
                                     std::uint32_t step_base) {
  const Rank n = num_ranks_;
  const Rank rank = ctx.rank;
  assert(elem_bytes > 0 && data.size() % elem_bytes == 0);
  const std::size_t elems = data.size() / elem_bytes;
  const std::size_t base = elems / n;
  const std::size_t extra = elems % n;
  const auto chunk_offset = [&](Rank c) {
    return (c * base + std::min<std::size_t>(c, extra)) * elem_bytes;
  };
  const auto chunk_len = [&](Rank c) {
    return (base + (c < extra ? 1 : 0)) * elem_bytes;
  };
  const Rank right = (rank + 1) % n;
  const Rank left = (rank + n - 1) % n;
  for (Rank s = 0; s + 1 < n; ++s) {
    const Rank send_chunk = (rank + n - s) % n;
    const Rank recv_chunk = (rank + 2 * n - s - 1) % n;
    send(ctx, step_base + s, right,
         Bytes(data.begin() + chunk_offset(send_chunk),
               data.begin() + chunk_offset(send_chunk) +
                   chunk_len(send_chunk)));
    Bytes in = recv(ctx, step_base + s, left);
    fn(data.data() + chunk_offset(recv_chunk), in.data(),
       chunk_len(recv_chunk));
  }
  for (Rank s = 0; s + 1 < n; ++s) {
    const Rank send_chunk = (rank + 1 + n - s) % n;
    const Rank recv_chunk = (rank + n - s) % n;
    send(ctx, step_base + (n - 1) + s, right,
         Bytes(data.begin() + chunk_offset(send_chunk),
               data.begin() + chunk_offset(send_chunk) +
                   chunk_len(send_chunk)));
    Bytes in = recv(ctx, step_base + (n - 1) + s, left);
    std::memcpy(data.data() + chunk_offset(recv_chunk), in.data(),
                chunk_len(recv_chunk));
  }
}

void CollectiveGroup::barrier_dissemination(Ctx& ctx) {
  const Rank n = num_ranks_;
  std::uint32_t step = 0;
  for (Rank dist = 1; dist < n; dist <<= 1, ++step) {
    send(ctx, step, (ctx.rank + dist) % n, Bytes{});
    recv(ctx, step, (ctx.rank + n - dist) % n);
  }
}

// ---- public operations -----------------------------------------------------

void CollectiveGroup::barrier() {
  Ctx ctx = begin();
  const CollAlgo algo =
      select_algorithm(CollOp::kBarrier, 0, num_ranks_, tuning_);
  if (algo == CollAlgo::kDissemination) {
    barrier_dissemination(ctx);
  } else {
    Bytes empty;
    reduce_central(ctx, 0, empty, &noop_combine, 0);
    bcast_central(ctx, 0, empty, kPhaseStride);
  }
  finish(ctx, CollOp::kBarrier, algo);
}

void CollectiveGroup::broadcast(Rank root, Bytes& data) {
  Ctx ctx = begin();
  // Central vs tree depends only on locality count and the forced family,
  // so ranks agree even though only the root knows the payload size; the
  // pipelined split is derived on every rank from the header total.
  CollAlgo algo =
      select_algorithm(CollOp::kBroadcast, data.size(), num_ranks_, tuning_);
  if (algo == CollAlgo::kCentral) {
    bcast_central(ctx, root, data, 0);
  } else {
    bcast_binomial(ctx, root, data, 0);
    // Re-evaluate with the received size so non-roots label a pipelined
    // run correctly in telemetry.
    algo = select_algorithm(CollOp::kBroadcast, data.size(), num_ranks_,
                            tuning_);
  }
  finish(ctx, CollOp::kBroadcast, algo);
}

void CollectiveGroup::reduce(Rank root, Bytes& data, std::size_t elem_bytes,
                             ReduceFn fn) {
  (void)elem_bytes;
  Ctx ctx = begin();
  const CollAlgo algo =
      select_algorithm(CollOp::kReduce, data.size(), num_ranks_, tuning_);
  if (algo == CollAlgo::kCentral) {
    reduce_central(ctx, root, data, fn, 0);
  } else {
    reduce_binomial(ctx, root, data, fn, 0);
  }
  finish(ctx, CollOp::kReduce, algo);
}

void CollectiveGroup::allreduce(Bytes& data, std::size_t elem_bytes,
                                ReduceFn fn) {
  Ctx ctx = begin();
  const CollAlgo algo =
      select_algorithm(CollOp::kAllreduce, data.size(), num_ranks_, tuning_);
  switch (algo) {
    case CollAlgo::kRecursiveDoubling:
      allreduce_rd(ctx, data, fn, 0);
      break;
    case CollAlgo::kRing:
      allreduce_ring(ctx, data, elem_bytes, fn, 0);
      break;
    case CollAlgo::kBinomial:
      reduce_binomial(ctx, 0, data, fn, 0);
      bcast_binomial(ctx, 0, data, kPhaseStride);
      break;
    default:
      reduce_central(ctx, 0, data, fn, 0);
      bcast_central(ctx, 0, data, kPhaseStride);
      break;
  }
  finish(ctx, CollOp::kAllreduce, algo);
}

CollectiveGroup::Bytes CollectiveGroup::scatter(Rank root, const Bytes& all,
                                                std::size_t bytes_per_rank) {
  Ctx ctx = begin();
  const Rank n = num_ranks_;
  const std::size_t block = bytes_per_rank;
  const CollAlgo algo =
      select_algorithm(CollOp::kScatter, block, n, tuning_);
  Bytes mine(block);
  if (algo == CollAlgo::kCentral) {
    if (ctx.rank == root) {
      assert(all.size() == block * n);
      for (Rank peer = 0; peer < n; ++peer) {
        if (peer == root) {
          std::memcpy(mine.data(), all.data() + peer * block, block);
        } else {
          send(ctx, 0, peer,
               Bytes(all.begin() + peer * block,
                     all.begin() + (peer + 1) * block));
        }
      }
    } else {
      mine = recv(ctx, 0, root);
    }
  } else {
    // Binomial: each node receives the blocks for its subtree (in
    // root-relative vrank order) and halves them down to its children.
    const Rank vrank = (ctx.rank + n - root) % n;
    Bytes buf;
    std::uint32_t span;
    if (vrank == 0) {
      assert(all.size() == block * n);
      span = pow2_ceil(n);
      buf.resize(block * n);
      for (Rank w = 0; w < n; ++w) {
        std::memcpy(buf.data() + w * block,
                    all.data() + ((w + root) % n) * block, block);
      }
    } else {
      span = vrank & (~vrank + 1);
      buf = recv(ctx, 0, (vrank - span + root) % n);
    }
    for (std::uint32_t m = span >> 1; m != 0; m >>= 1) {
      const Rank child_v = vrank + m;
      if (child_v < n) {
        const std::size_t count = std::min<Rank>(child_v + m, n) - child_v;
        const std::size_t offset = (child_v - vrank) * block;
        send(ctx, 0, (child_v + root) % n,
             Bytes(buf.begin() + offset,
                   buf.begin() + offset + count * block));
      }
    }
    std::memcpy(mine.data(), buf.data(), block);
  }
  finish(ctx, CollOp::kScatter, algo);
  return mine;
}

CollectiveGroup::Bytes CollectiveGroup::gather(Rank root, const Bytes& mine) {
  Ctx ctx = begin();
  const Rank n = num_ranks_;
  const std::size_t block = mine.size();
  const CollAlgo algo = select_algorithm(CollOp::kGather, block, n, tuning_);
  Bytes out;
  if (algo == CollAlgo::kCentral) {
    if (ctx.rank == root) {
      out.resize(block * n);
      std::memcpy(out.data() + root * block, mine.data(), block);
      for (Rank peer = 0; peer < n; ++peer) {
        if (peer == root) continue;
        Bytes in = recv(ctx, 0, peer);
        std::memcpy(out.data() + peer * block, in.data(), block);
      }
    } else {
      send(ctx, 0, root, mine);
    }
  } else {
    // Binomial: subtree blocks merge up the tree in vrank order; the root
    // rotates the concatenation back to rank order.
    const Rank vrank = (ctx.rank + n - root) % n;
    Bytes buf = mine;
    for (std::uint32_t mask = 1; mask < n; mask <<= 1) {
      if ((vrank & mask) == 0) {
        const Rank src_v = vrank + mask;
        if (src_v < n) {
          Bytes in = recv(ctx, 0, (src_v + root) % n);
          buf.insert(buf.end(), in.begin(), in.end());
        }
      } else {
        send(ctx, 0, (vrank - mask + root) % n, std::move(buf));
        buf.clear();
        break;
      }
    }
    if (vrank == 0) {
      out.resize(block * n);
      for (Rank w = 0; w < n; ++w) {
        std::memcpy(out.data() + ((w + root) % n) * block,
                    buf.data() + w * block, block);
      }
    }
  }
  finish(ctx, CollOp::kGather, algo);
  return out;
}

CollectiveGroup::Bytes CollectiveGroup::all_to_all(
    const Bytes& send_buf, std::size_t bytes_per_rank) {
  Ctx ctx = begin();
  const Rank n = num_ranks_;
  const std::size_t block = bytes_per_rank;
  assert(send_buf.size() == block * n);
  const CollAlgo algo =
      select_algorithm(CollOp::kAllToAll, block, n, tuning_);
  Bytes out(block * n);
  if (algo == CollAlgo::kCentral) {
    // Baseline: the root receives every rank's full buffer, transposes,
    // and sends each rank its column — O(n^2) blocks through one NIC.
    if (ctx.rank == 0) {
      std::vector<Bytes> full(n);
      for (Rank src = 1; src < n; ++src) full[src] = recv(ctx, 0, src);
      for (Rank dst = 0; dst < n; ++dst) {
        Bytes column(block * n);
        std::memcpy(column.data(), send_buf.data() + dst * block, block);
        for (Rank src = 1; src < n; ++src) {
          std::memcpy(column.data() + src * block,
                      full[src].data() + dst * block, block);
        }
        if (dst == 0) {
          out = std::move(column);
        } else {
          send(ctx, 1, dst, std::move(column));
        }
      }
    } else {
      send(ctx, 0, 0, send_buf);
      out = recv(ctx, 1, 0);
    }
  } else {
    std::memcpy(out.data() + ctx.rank * block,
                send_buf.data() + ctx.rank * block, block);
    const bool pow2 = (n & (n - 1)) == 0;
    for (Rank s = 1; s < n; ++s) {
      const Rank to = pow2 ? (ctx.rank ^ s) : (ctx.rank + s) % n;
      const Rank from = pow2 ? to : (ctx.rank + n - s) % n;
      send(ctx, s, to,
           Bytes(send_buf.begin() + to * block,
                 send_buf.begin() + (to + 1) * block));
      Bytes in = recv(ctx, s, from);
      std::memcpy(out.data() + from * block, in.data(), block);
    }
  }
  finish(ctx, CollOp::kAllToAll, algo);
  return out;
}

// ---- one-double convenience wrappers ---------------------------------------

double CollectiveGroup::allreduce_sum(double value) {
  Bytes data(sizeof(double));
  std::memcpy(data.data(), &value, sizeof(double));
  allreduce(data, sizeof(double), &add_doubles);
  double out = 0.0;
  std::memcpy(&out, data.data(), sizeof(double));
  return out;
}

double CollectiveGroup::broadcast_from_root(double value) {
  Bytes data;
  if (here().rank() == 0) {
    data.resize(sizeof(double));
    std::memcpy(data.data(), &value, sizeof(double));
  }
  broadcast(0, data);
  double out = 0.0;
  std::memcpy(&out, data.data(), sizeof(double));
  return out;
}

}  // namespace amt
