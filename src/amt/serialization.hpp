// Serialization archives with zero-copy chunk extraction.
//
// Mirrors HPX's behaviour (paper §2.2): while serializing action arguments,
// any contiguous argument larger than the *zero-copy serialization threshold*
// (default 8192 bytes) is not copied into the main chunk; instead a zero-copy
// chunk referencing its storage is emitted and only a (count, chunk-index)
// descriptor lands inline. Smaller arguments are serialized inline.
//
// Supported types: trivially copyable scalars/structs, std::string,
// std::vector<T>, std::array<T, N>, std::pair, std::tuple.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "amt/message.hpp"

namespace amt {

inline constexpr std::size_t kDefaultZeroCopyThreshold = 8192;

class OutputArchive {
 public:
  explicit OutputArchive(std::size_t zero_copy_threshold =
                             kDefaultZeroCopyThreshold)
      : threshold_(zero_copy_threshold) {}

  std::size_t zero_copy_threshold() const { return threshold_; }

  void write_raw(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::byte*>(data);
    main_.insert(main_.end(), bytes, bytes + size);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  OutputArchive& operator<<(const T& value) {
    write_raw(&value, sizeof(T));
    return *this;
  }

  OutputArchive& operator<<(const std::string& value) {
    const std::uint64_t size = value.size();
    write_raw(&size, sizeof(size));
    write_raw(value.data(), value.size());
    return *this;
  }

  /// Vectors of trivially copyable elements: inline below the threshold,
  /// zero-copy chunk above it. The lvalue overload copies the storage into a
  /// keepalive buffer; prefer the rvalue overload to transfer ownership.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  OutputArchive& operator<<(const std::vector<T>& value) {
    const std::uint64_t count = value.size();
    const std::size_t bytes = value.size() * sizeof(T);
    if (bytes > threshold_) {
      auto owned = std::make_shared<std::vector<T>>(value);
      const void* data = owned->data();  // before the move (eval order!)
      emit_zchunk(count, data, bytes, std::move(owned));
    } else {
      write_inline_vector(count, value.data(), bytes);
    }
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  OutputArchive& operator<<(std::vector<T>&& value) {
    const std::uint64_t count = value.size();
    const std::size_t bytes = value.size() * sizeof(T);
    if (bytes > threshold_) {
      auto owned = std::make_shared<std::vector<T>>(std::move(value));
      const void* data = owned->data();  // before the move (eval order!)
      emit_zchunk(count, data, bytes, std::move(owned));
    } else {
      write_inline_vector(count, value.data(), bytes);
    }
    return *this;
  }

  /// Vectors of non-trivial elements are serialized element-wise.
  template <typename T>
    requires(!std::is_trivially_copyable_v<T>)
  OutputArchive& operator<<(const std::vector<T>& value) {
    const std::uint64_t count = value.size();
    write_raw(&count, sizeof(count));
    for (const auto& element : value) *this << element;
    return *this;
  }

  template <typename T, std::size_t N>
    requires(!std::is_trivially_copyable_v<std::array<T, N>>)
  OutputArchive& operator<<(const std::array<T, N>& value) {
    for (const auto& element : value) *this << element;
    return *this;
  }

  template <typename A, typename B>
    requires(!std::is_trivially_copyable_v<std::pair<A, B>>)
  OutputArchive& operator<<(const std::pair<A, B>& value) {
    return *this << value.first << value.second;
  }

  template <typename... Ts>
    requires(!std::is_trivially_copyable_v<std::tuple<Ts...>>)
  OutputArchive& operator<<(const std::tuple<Ts...>& value) {
    std::apply([this](const Ts&... elements) { ((*this << elements), ...); },
               value);
    return *this;
  }

  template <typename T>
    requires(!std::is_trivially_copyable_v<std::optional<T>>)
  OutputArchive& operator<<(const std::optional<T>& value) {
    const std::uint8_t has = value.has_value() ? 1 : 0;
    write_raw(&has, sizeof(has));
    if (value) *this << *value;
    return *this;
  }

  /// Ordered and unordered maps serialize as count + (key, value) pairs.
  template <typename K, typename V, typename... Rest,
            template <typename...> typename Map>
    requires(std::is_same_v<Map<K, V, Rest...>, std::map<K, V, Rest...>> ||
             std::is_same_v<Map<K, V, Rest...>,
                            std::unordered_map<K, V, Rest...>>)
  OutputArchive& operator<<(const Map<K, V, Rest...>& value) {
    const std::uint64_t count = value.size();
    write_raw(&count, sizeof(count));
    for (const auto& [key, mapped] : value) *this << key << mapped;
    return *this;
  }

  /// Hands over the accumulated chunks. The archive is empty afterwards.
  OutMessage finish() {
    OutMessage msg;
    msg.main_chunk = std::move(main_);
    msg.zchunks = std::move(zchunks_);
    main_.clear();
    zchunks_.clear();
    return msg;
  }

  std::size_t main_size() const { return main_.size(); }
  std::size_t num_zchunks() const { return zchunks_.size(); }

 private:
  void write_inline_vector(std::uint64_t count, const void* data,
                           std::size_t bytes) {
    const std::uint8_t marker = 0;  // inline
    write_raw(&marker, sizeof(marker));
    write_raw(&count, sizeof(count));
    write_raw(data, bytes);
  }

  void emit_zchunk(std::uint64_t count, const void* data, std::size_t bytes,
                   std::shared_ptr<const void> keepalive) {
    const std::uint8_t marker = 1;  // zero-copy
    write_raw(&marker, sizeof(marker));
    write_raw(&count, sizeof(count));
    const std::uint32_t index = static_cast<std::uint32_t>(zchunks_.size());
    write_raw(&index, sizeof(index));
    zchunks_.push_back(ZChunk{static_cast<const std::byte*>(data), bytes,
                              std::move(keepalive)});
  }

  std::size_t threshold_;
  std::vector<std::byte> main_;
  std::vector<ZChunk> zchunks_;
};

class InputArchive {
 public:
  /// Views into a received message; the message must outlive the archive.
  explicit InputArchive(const InMessage& msg)
      : msg_(msg), cursor_(msg.main_chunk.data()),
        end_(msg.main_chunk.data() + msg.main_chunk.size()) {}

  void read_raw(void* out, std::size_t size) {
    assert(cursor_ + size <= end_ && "archive underflow");
    std::memcpy(out, cursor_, size);
    cursor_ += size;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  InputArchive& operator>>(T& value) {
    read_raw(&value, sizeof(T));
    return *this;
  }

  InputArchive& operator>>(std::string& value) {
    std::uint64_t size = 0;
    read_raw(&size, sizeof(size));
    value.resize(size);
    read_raw(value.data(), size);
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  InputArchive& operator>>(std::vector<T>& value) {
    std::uint8_t marker = 0;
    read_raw(&marker, sizeof(marker));
    std::uint64_t count = 0;
    read_raw(&count, sizeof(count));
    value.resize(count);
    if (marker == 0) {
      read_raw(value.data(), count * sizeof(T));
    } else {
      std::uint32_t index = 0;
      read_raw(&index, sizeof(index));
      assert(index < msg_.zchunks.size());
      const auto& chunk = msg_.zchunks[index];
      assert(chunk.size() == count * sizeof(T));
      std::memcpy(value.data(), chunk.data(), chunk.size());
    }
    return *this;
  }

  template <typename T>
    requires(!std::is_trivially_copyable_v<T>)
  InputArchive& operator>>(std::vector<T>& value) {
    std::uint64_t count = 0;
    read_raw(&count, sizeof(count));
    value.clear();
    value.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      T element;
      *this >> element;
      value.push_back(std::move(element));
    }
    return *this;
  }

  template <typename T, std::size_t N>
    requires(!std::is_trivially_copyable_v<std::array<T, N>>)
  InputArchive& operator>>(std::array<T, N>& value) {
    for (auto& element : value) *this >> element;
    return *this;
  }

  template <typename A, typename B>
    requires(!std::is_trivially_copyable_v<std::pair<A, B>>)
  InputArchive& operator>>(std::pair<A, B>& value) {
    return *this >> value.first >> value.second;
  }

  template <typename... Ts>
    requires(!std::is_trivially_copyable_v<std::tuple<Ts...>>)
  InputArchive& operator>>(std::tuple<Ts...>& value) {
    std::apply([this](Ts&... elements) { ((*this >> elements), ...); },
               value);
    return *this;
  }

  template <typename T>
    requires(!std::is_trivially_copyable_v<std::optional<T>>)
  InputArchive& operator>>(std::optional<T>& value) {
    std::uint8_t has = 0;
    read_raw(&has, sizeof(has));
    if (has) {
      T element;
      *this >> element;
      value = std::move(element);
    } else {
      value.reset();
    }
    return *this;
  }

  template <typename K, typename V, typename... Rest,
            template <typename...> typename Map>
    requires(std::is_same_v<Map<K, V, Rest...>, std::map<K, V, Rest...>> ||
             std::is_same_v<Map<K, V, Rest...>,
                            std::unordered_map<K, V, Rest...>>)
  InputArchive& operator>>(Map<K, V, Rest...>& value) {
    std::uint64_t count = 0;
    read_raw(&count, sizeof(count));
    value.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      K key;
      V mapped;
      *this >> key >> mapped;
      value.emplace(std::move(key), std::move(mapped));
    }
    return *this;
  }

  bool exhausted() const { return cursor_ == end_; }
  Rank source() const { return msg_.source; }

 private:
  const InMessage& msg_;
  const std::byte* cursor_;
  const std::byte* end_;
};

}  // namespace amt
