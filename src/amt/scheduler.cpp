#include "amt/scheduler.hpp"

#include <cassert>
#include <mutex>

#include "common/affinity.hpp"

namespace amt {

namespace {
// Which scheduler (if any) the current thread belongs to, and as which
// worker. Used to route spawn() to the local queue and to answer
// current_worker_index() without a map lookup.
struct WorkerTls {
  const Scheduler* scheduler = nullptr;
  unsigned index = 0;
};
thread_local WorkerTls tls_worker;
}  // namespace

namespace {
std::string sched_metric(const std::string& name, const char* leaf) {
  return "sched/" + name + "/" + leaf;
}
}  // namespace

Scheduler::Scheduler(unsigned num_workers, std::string name,
                     telemetry::Registry* registry)
    : num_workers_(num_workers == 0 ? 1 : num_workers),
      name_(std::move(name)),
      owned_registry_(registry == nullptr
                          ? std::make_unique<telemetry::Registry>()
                          : nullptr),
      ctr_executed_((registry != nullptr ? *registry : *owned_registry_)
                        .counter(sched_metric(name_, "tasks_executed"))),
      ctr_steals_((registry != nullptr ? *registry : *owned_registry_)
                      .counter(sched_metric(name_, "tasks_stolen"))),
      ctr_background_polls_(
          (registry != nullptr ? *registry : *owned_registry_)
              .counter(sched_metric(name_, "background_polls"))),
      workers_(num_workers_) {}

Scheduler::~Scheduler() { stop(); }

void Scheduler::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  stopping_.store(false);
  threads_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Scheduler::stop() {
  if (!started_.load()) return;
  stopping_.store(true);
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  started_.store(false);
}

bool Scheduler::on_worker() const { return tls_worker.scheduler == this; }

unsigned Scheduler::current_worker_index() const {
  return on_worker() ? tls_worker.index : num_workers_;
}

void Scheduler::spawn(Task task) {
  assert(task);
  if (on_worker()) {
    Worker& worker = *workers_[tls_worker.index];
    std::lock_guard<common::SpinMutex> guard(worker.mutex);
    worker.queue.push_back(std::move(task));
    return;
  }
  inject_.push(std::move(task));
}

bool Scheduler::try_pop_local(unsigned index, Task& task) {
  Worker& worker = *workers_[index];
  std::lock_guard<common::SpinMutex> guard(worker.mutex);
  if (worker.queue.empty()) return false;
  task = std::move(worker.queue.front());
  worker.queue.pop_front();
  return true;
}

bool Scheduler::try_steal(unsigned thief, Task& task) {
  // One sweep over the other workers, starting after the thief.
  for (unsigned k = 1; k < num_workers_; ++k) {
    Worker& victim = *workers_[(thief + k) % num_workers_];
    if (!victim.mutex.try_lock()) continue;  // busy victim: skip, don't wait
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.back());
      victim.queue.pop_back();
      victim.mutex.unlock();
      ctr_steals_.add();
      return true;
    }
    victim.mutex.unlock();
  }
  return false;
}

bool Scheduler::try_pop_inject(Task& task) {
  auto popped = inject_.try_pop();
  if (!popped) return false;
  task = std::move(*popped);
  return true;
}

bool Scheduler::run_one() {
  Task task;
  if (on_worker()) {
    const unsigned index = tls_worker.index;
    if (!try_pop_local(index, task) && !try_pop_inject(task) &&
        !try_steal(index, task)) {
      return false;
    }
  } else {
    // External threads may help drain the inject queue (used by tests).
    if (!try_pop_inject(task)) return false;
  }
  ctr_executed_.add();
  task();
  return true;
}

void Scheduler::worker_loop(unsigned index) {
  tls_worker.scheduler = this;
  tls_worker.index = index;
  common::set_current_thread_name(name_ + "-w" + std::to_string(index));
  // Pin only when a per-process CPU range is configured (amtnet_launch sets
  // one per rank); single-process runs keep the historical free placement.
  if (common::process_cpu_range().configured) {
    common::pin_current_thread(index);
  }
  // Adaptive idle backoff: a worker that has gone many consecutive
  // iterations without a task or background progress polls the background
  // hook on only one iteration in four, yielding in between. Idle fleets
  // stay off the parcelport's shared progress path, while the first real
  // task or completion resets the streak immediately; no sleeping, so
  // wakeup latency stays at one yield.
  constexpr unsigned kIdleStreakGate = 16;
  unsigned idle_streak = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (run_one()) {
      idle_streak = 0;
      continue;
    }
    // Idle: perform communication background work, like an HPX worker.
    if (background_ != nullptr &&
        (idle_streak < kIdleStreakGate || (idle_streak & 3u) == 0)) {
      ctr_background_polls_.add();
      if (background_(index)) {
        idle_streak = 0;
        continue;
      }
    }
    if (idle_streak < ~0u) ++idle_streak;
    std::this_thread::yield();
  }
  tls_worker.scheduler = nullptr;
}

}  // namespace amt
