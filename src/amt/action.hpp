// Untyped action registry. Actions are functions registered process-wide and
// invoked by id on any locality; the typed front end (runtime.hpp) derives
// serialization and invocation glue from the function signature.
//
// Id 0 is reserved for the internal response action that fulfills promises
// of async<> calls.
#pragma once

#include <cstdint>
#include <vector>

#include "amt/serialization.hpp"
#include "common/spinlock.hpp"

namespace amt {

class Locality;

using ActionId = std::uint32_t;
inline constexpr ActionId kResponseAction = 0;

struct ActionVTable {
  /// Deserializes the argument tuple from `ar`, runs the action on the
  /// calling (destination) locality, and — when promise_id != 0 — sends the
  /// result back to `source` as a response parcel.
  void (*invoke)(Locality& here, Rank source, std::uint64_t promise_id,
                 InputArchive& ar) = nullptr;
  const char* name = "";
};

class ActionRegistry {
 public:
  static ActionRegistry& instance();

  ActionId add(const ActionVTable& vtable);
  ActionVTable get(ActionId id) const;  // by value: the vector may grow
  std::size_t size() const;

 private:
  ActionRegistry();
  mutable common::SpinMutex mutex_;
  std::vector<ActionVTable> actions_;
};

}  // namespace amt
