// Futures/promises with continuations — the local-control-object layer the
// runtime and applications use to express dependencies. Waiting is
// scheduler-aware: a worker blocked in get() keeps executing other tasks and
// communication background work, like a suspended HPX thread.
#pragma once

#include <atomic>
#include <cassert>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "amt/scheduler.hpp"
#include "common/spinlock.hpp"

namespace amt {

namespace detail {

template <typename T>
struct FutureState {
  using Stored = std::conditional_t<std::is_void_v<T>, std::monostate, T>;

  common::SpinMutex mutex;
  std::atomic<bool> ready{false};
  std::optional<Stored> value;          // guarded by mutex until ready
  std::vector<Task> continuations;      // guarded by mutex
  Scheduler* scheduler = nullptr;       // where waits help / conts run

  void set(Stored stored) {
    std::vector<Task> to_run;
    {
      std::lock_guard<common::SpinMutex> guard(mutex);
      assert(!ready.load() && "promise satisfied twice");
      value.emplace(std::move(stored));
      ready.store(true, std::memory_order_release);
      to_run.swap(continuations);
    }
    for (auto& task : to_run) dispatch(std::move(task));
  }

  void add_continuation(Task task) {
    {
      std::lock_guard<common::SpinMutex> guard(mutex);
      if (!ready.load(std::memory_order_relaxed)) {
        continuations.push_back(std::move(task));
        return;
      }
    }
    dispatch(std::move(task));
  }

  void dispatch(Task task) {
    if (scheduler != nullptr) {
      scheduler->spawn(std::move(task));
    } else {
      task();
    }
  }

  void wait() {
    if (ready.load(std::memory_order_acquire)) return;
    if (scheduler != nullptr) {
      scheduler->wait_until(
          [this] { return ready.load(std::memory_order_acquire); });
    } else {
      while (!ready.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }
};

}  // namespace detail

template <typename T>
class Future {
  using State = detail::FutureState<T>;

 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const {
    return state_ && state_->ready.load(std::memory_order_acquire);
  }

  /// Blocks scheduler-aware until ready, then returns the value (by value;
  /// void futures just return). Safe to call once per future copy.
  T get() const {
    assert(valid());
    state_->wait();
    if constexpr (!std::is_void_v<T>) {
      return *state_->value;
    }
  }

  /// Read access without consuming (non-void only).
  template <typename U = T>
    requires(!std::is_void_v<U>)
  const U& value() const {
    assert(ready());
    return *state_->value;
  }

  /// Schedules `task` to run once the future becomes ready. The task runs on
  /// the promise's scheduler (or inline when there is none).
  void then(Task task) const {
    assert(valid());
    state_->add_continuation(std::move(task));
  }

 private:
  template <typename>
  friend class Promise;
  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

template <typename T>
class Promise {
  using State = detail::FutureState<T>;

 public:
  /// `scheduler` (optional) is where continuations run and where waiting
  /// threads help out.
  explicit Promise(Scheduler* scheduler = nullptr)
      : state_(std::make_shared<State>()) {
    state_->scheduler = scheduler;
  }

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  Future<T> get_future() const { return Future<T>(state_); }

  template <typename U = T>
    requires(!std::is_void_v<U>)
  void set_value(U value) {
    state_->set(std::move(value));
  }

  template <typename U = T>
    requires std::is_void_v<U>
  void set_value() {
    state_->set(std::monostate{});
  }

 private:
  std::shared_ptr<State> state_;
};

/// A future that becomes ready when every input future is ready. The inputs
/// stay usable (values are not consumed). `scheduler` is where continuations
/// of the combined future run.
template <typename T>
Future<void> when_all(const std::vector<Future<T>>& futures,
                      Scheduler* scheduler = nullptr) {
  Promise<void> promise(scheduler);
  Future<void> combined = promise.get_future();
  if (futures.empty()) {
    promise.set_value();
    return combined;
  }
  struct Shared {
    Shared(std::size_t n, Promise<void> p)
        : remaining(n), promise(std::move(p)) {}
    std::atomic<std::size_t> remaining;
    Promise<void> promise;
  };
  auto shared = std::make_shared<Shared>(futures.size(), std::move(promise));
  for (const auto& future : futures) {
    future.then([shared] {
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        shared->promise.set_value();
      }
    });
  }
  return combined;
}

}  // namespace amt
