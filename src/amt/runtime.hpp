// The AMT runtime: localities, the parcel layer (parcel queues + connection
// cache + send-immediate path), the promise table for remote results, and
// the typed action front end (apply / async).
//
// One process hosts all simulated localities (each the analogue of an MPI
// rank running an HPX runtime): every locality has its own worker pool,
// parcelport instance, and NIC; they share only the simulated fabric — the
// same sharing a real cluster has through its switch.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "amt/action.hpp"
#include "amt/future.hpp"
#include "amt/message.hpp"
#include "amt/parcelport.hpp"
#include "amt/scheduler.hpp"
#include "amt/serialization.hpp"
#include "common/clock.hpp"
#include "common/spinlock.hpp"
#include "fabric/nic.hpp"

namespace amt {

class Runtime;
class Locality;

/// The locality whose task the calling thread is currently executing.
/// Valid inside action handlers and tasks spawned via Locality::spawn.
Locality& here();
bool has_here();

namespace detail {

struct ScopedHere {
  explicit ScopedHere(Locality* locality);
  ~ScopedHere();
  Locality* previous;
};

template <typename Fn>
struct FnTraits;

template <typename R, typename... As>
struct FnTraits<R (*)(As...)> {
  using Result = R;
  using ArgsTuple = std::tuple<std::decay_t<As>...>;
};

}  // namespace detail

/// HPX's connection cache, reduced to its contention-relevant essentials: a
/// counter of live connections with a configurable cap (8192 by default).
/// Acquire fails when the cap is reached, leaving parcels queued — which is
/// exactly when the parcel queue provides aggregation.
///
/// Lock-free: acquire reserves a slot with a CAS loop that never pushes the
/// counter past the cap. (An earlier fetch_add/fetch_sub scheme overshot
/// transiently, which let N concurrent losers read in_use() up to cap+N and
/// — with a cap of 1 — let two acquirers both fail even though a slot was
/// free the whole time.)
class ConnectionCache {
 public:
  explicit ConnectionCache(std::size_t max_connections)
      : max_(max_connections) {}

  /// Mirrors acquire outcomes into registry counters (either may be null).
  /// The internal tallies keep working regardless, so standalone caches
  /// (tests) need no registry.
  void attach_counters(telemetry::Counter* hits, telemetry::Counter* failures) {
    hit_counter_ = hits;
    failure_counter_ = failures;
  }

  bool try_acquire() {
    std::size_t current = in_use_.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= max_) {
        acquire_failures_.fetch_add(1, std::memory_order_relaxed);
        if (failure_counter_ != nullptr) failure_counter_->add();
        return false;
      }
      if (in_use_.compare_exchange_weak(current, current + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        if (hit_counter_ != nullptr) hit_counter_->add();
        return true;
      }
    }
  }

  void release() {
    const std::size_t prev = in_use_.fetch_sub(1, std::memory_order_acq_rel);
    assert(prev > 0);
    (void)prev;
  }

  std::size_t in_use() const {
    return in_use_.load(std::memory_order_acquire);
  }

  std::uint64_t acquire_failures() const {
    return acquire_failures_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t max_;
  std::atomic<std::size_t> in_use_{0};
  std::atomic<std::uint64_t> acquire_failures_{0};
  telemetry::Counter* hit_counter_ = nullptr;
  telemetry::Counter* failure_counter_ = nullptr;
};

struct RuntimeConfig {
  Rank num_localities = 2;
  unsigned threads_per_locality = 2;
  std::size_t zero_copy_threshold = kDefaultZeroCopyThreshold;
  std::size_t max_connections = 8192;  // HPX default connection cap
  ParcelportConfig parcelport;         // backend + variant knobs
  fabric::Config fabric;               // num_ranks is overridden
};

/// Per-locality statistics (racy snapshots, for tests and benches).
struct LocalityStats {
  std::uint64_t parcels_sent = 0;
  std::uint64_t messages_sent = 0;  // HPX messages handed to the parcelport
  std::uint64_t messages_received = 0;
  std::uint64_t actions_executed = 0;
};

/// Admission-control tallies of one locality (all destinations summed).
/// Kept in plain atomics — not the telemetry registry — so the conservation
/// invariant (accepted == executed + deadline_drops at quiescence) holds
/// exactly even in AMTNET_TELEMETRY_DISABLED builds.
struct AdmissionStats {
  std::uint64_t accepted = 0;        // admissible parcels admitted
  std::uint64_t shed = 0;            // refused at the bound (shed/deadline)
  std::uint64_t deadline_drops = 0;  // dropped stale from a parcel queue
  std::uint64_t block_waits = 0;     // put_parcel calls that had to wait
  std::int64_t peak_queue_depth = 0; // max in-flight parcels to any one dest
};

class Locality {
 public:
  Locality(Runtime& runtime, Rank rank, const RuntimeConfig& config);
  Locality(const Locality&) = delete;
  Locality& operator=(const Locality&) = delete;
  ~Locality();

  Rank rank() const { return rank_; }
  Rank num_localities() const;
  Scheduler& scheduler() { return scheduler_; }
  Runtime& runtime() { return runtime_; }

  /// Spawns a task on this locality's workers; inside it, here() works.
  void spawn(common::UniqueFunction<void()> fn);

  /// Fire-and-forget remote (or local) action invocation. Under an active
  /// admission policy the parcel may be shed (see try_apply to observe it).
  template <auto Fn, typename... Args>
  void apply(Rank dst, Args&&... args) {
    put_parcel_typed<Fn>(dst, 0, std::forward<Args>(args)...);
  }

  /// apply() that reports admission: returns false when the parcel was shed
  /// at the per-destination bound (never false while admission is off or
  /// under the block policy, which waits instead). The open-loop load
  /// generator's send primitive.
  template <auto Fn, typename... Args>
  [[nodiscard]] bool try_apply(Rank dst, Args&&... args) {
    return put_parcel_typed<Fn>(dst, 0, std::forward<Args>(args)...);
  }

  /// Action invocation returning a future for the result.
  template <auto Fn, typename... Args>
  auto async(Rank dst, Args&&... args)
      -> Future<typename detail::FnTraits<decltype(Fn)>::Result> {
    using Result = typename detail::FnTraits<decltype(Fn)>::Result;
    Promise<Result> promise(&scheduler_);
    auto future = promise.get_future();
    const std::uint64_t promise_id = register_promise(
        [promise = std::move(promise)](InputArchive& ar) mutable {
          if constexpr (std::is_void_v<Result>) {
            (void)ar;
            promise.set_value();
          } else {
            Result value{};
            ar >> value;
            promise.set_value(std::move(value));
          }
        });
    put_parcel_typed<Fn>(dst, promise_id, std::forward<Args>(args)...);
    return future;
  }

  LocalityStats stats() const;
  /// Relaxed snapshot of the admission tallies (exact at quiescence).
  AdmissionStats admission_stats() const;
  const AdmissionConfig& admission_config() const { return admission_; }
  const ConnectionCache& connection_cache() const {
    return connection_cache_;
  }
  /// The installed parcelport (null before Runtime::start). Tests use this
  /// to reach backend-specific hooks (e.g. the LCI tag-counter positioner).
  Parcelport* parcelport() { return parcelport_.get(); }

  // ---- internal plumbing (used by Runtime, parcelports, action glue) ----

  using ParcelWriter = common::UniqueFunction<void(OutputArchive&)>;

  /// Queues one parcel for `dst` (or serializes immediately when the
  /// send-immediate optimisation is on). Thread-safe. `admissible` marks
  /// fire-and-forget parcels the admission policy may refuse; responses and
  /// promise-bearing requests pass false and are always accepted. Returns
  /// whether the parcel was accepted (always true when admission is off).
  bool put_parcel(Rank dst, ParcelWriter writer, bool admissible = false);

  /// Registers a one-shot handler for a response parcel; returns its id.
  std::uint64_t register_promise(
      common::UniqueFunction<void(InputArchive&)> handler);

  /// Sends a response parcel fulfilling `promise_id` at `dst`.
  void send_response(Rank dst, std::uint64_t promise_id, ParcelWriter payload);

  /// Entry point for the parcelport: a complete HPX message arrived.
  void on_message(InMessage&& msg);

 private:
  friend class Runtime;

  template <auto Fn, typename... Args>
  bool put_parcel_typed(Rank dst, std::uint64_t promise_id, Args&&... args);

  void try_flush(Rank dst);
  void flush_all();
  void deliver_local(OutMessage&& msg);
  /// Executes every parcel in `msg`; returns the parcel count (the credits
  /// on_message hands back to the sender's admission window).
  std::uint32_t handle_message(const InMessage& msg);

  /// One queued parcel: its serializer plus, under the deadline policy, the
  /// absolute time after which try_flush drops it instead of sending
  /// (0 = never drop — responses and exempt parcels).
  struct PendingParcel {
    ParcelWriter writer;
    common::Nanos deadline_ns = 0;
  };

  struct DestQueue {
    common::SpinMutex mutex;
    std::vector<PendingParcel> parcels;
    /// Credit window: parcels accepted for this destination that have not
    /// yet *executed* there (or been deadline-dropped). Send-side completion
    /// callbacks fire at injection — long before the NIC drains — so credits
    /// return from the destination's handler instead, making `outstanding`
    /// cover the whole serving path. Only maintained while admission is on.
    std::atomic<std::int64_t> outstanding{0};
  };

  /// Returns `parcels` credits for destination `dst`: called by the
  /// destination locality once a message's parcels executed, and by
  /// try_flush for deadline-dropped parcels. No-op while admission is off.
  void admission_release(Rank dst, std::int64_t parcels);

  Runtime& runtime_;
  const Rank rank_;
  const std::size_t zero_copy_threshold_;
  const bool send_immediate_;
  const AdmissionConfig admission_;
  const bool admission_on_;  // admission_.on(): zero-cost path when false
  Scheduler scheduler_;
  std::unique_ptr<Parcelport> parcelport_;  // installed by Runtime::start

  std::vector<std::unique_ptr<DestQueue>> parcel_queues_;
  ConnectionCache connection_cache_;

  // Admission tallies (plain atomics: exact under TELEMETRY_DISABLED too).
  std::atomic<std::uint64_t> admit_accepted_{0};
  std::atomic<std::uint64_t> admit_shed_{0};
  std::atomic<std::uint64_t> admit_deadline_drops_{0};
  std::atomic<std::uint64_t> admit_block_waits_{0};
  std::atomic<std::int64_t> admit_peak_depth_{0};

  common::SpinMutex promise_mutex_;
  std::uint64_t next_promise_id_ = 1;
  std::unordered_map<std::uint64_t,
                     common::UniqueFunction<void(InputArchive&)>>
      promises_;

  // Metrics under amt/loc<rank>/... in the Runtime's (= Fabric's) registry.
  telemetry::Counter& ctr_parcels_sent_;
  telemetry::Counter& ctr_messages_sent_;
  telemetry::Counter& ctr_messages_received_;
  telemetry::Counter& ctr_actions_executed_;
  telemetry::Histogram& hist_serialize_ns_;    // per-message serialize time
  telemetry::Histogram& hist_aggregate_batch_; // parcels per flushed message
  telemetry::Gauge& gauge_parcel_queue_depth_; // in-flight parcels, all dests
  telemetry::Counter& ctr_admit_accepted_;
  telemetry::Counter& ctr_admit_shed_;
  telemetry::Counter& ctr_admit_deadline_drops_;
};

class Runtime {
 public:
  using ParcelportFactory = std::function<std::unique_ptr<Parcelport>(
      Runtime& runtime, const ParcelportContext& context)>;

  Runtime(RuntimeConfig config, ParcelportFactory factory);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  void start();
  void stop();

  Rank num_localities() const { return config_.num_localities; }
  /// The locality object of `rank`. In multi-process (shm) mode only
  /// AMTNET_SHM_RANK's locality exists in this process; asking for another
  /// rank's aborts — check locality_is_local() first on generic paths.
  Locality& locality(Rank rank) {
    assert(rank < localities_.size() && localities_[rank] != nullptr &&
           "locality() for a rank hosted by another process");
    return *localities_[rank];
  }
  /// True when `rank`'s locality object lives in this process.
  bool locality_is_local(Rank rank) const {
    return rank < localities_.size() && localities_[rank] != nullptr;
  }
  /// The locality this process hosts in multi-process mode (rank 0 in
  /// single-process mode, where every locality is local).
  Locality& local_locality() {
    return locality(config_.fabric.single_process()
                        ? 0
                        : static_cast<Rank>(config_.fabric.local_rank));
  }
  fabric::Fabric& fabric() { return fabric_; }
  const RuntimeConfig& config() const { return config_; }

  /// The registry every layer of this runtime reports into (owned by the
  /// fabric). Snapshot it for a full per-layer breakdown.
  telemetry::Registry& telemetry() const { return fabric_.telemetry(); }

  /// Runs `fn` as a task on locality 0 and waits for `latch_count` latch
  /// decrements signalled via the passed Latch. Convenience for mains.
  template <typename F>
  void run_on_root(F&& fn) {
    Latch done(1);
    locality(0).spawn([&] {
      fn();
      done.count_down();
    });
    done.wait(locality(0).scheduler());
  }

 private:
  RuntimeConfig config_;
  ParcelportFactory factory_;
  fabric::Fabric fabric_;
  std::vector<std::unique_ptr<Locality>> localities_;
  bool started_ = false;
};

// ---- typed action glue ------------------------------------------------------

namespace detail {

template <auto Fn>
void invoke_action(Locality& here_locality, Rank source,
                   std::uint64_t promise_id, InputArchive& ar) {
  using Traits = FnTraits<decltype(Fn)>;
  using Result = typename Traits::Result;
  typename Traits::ArgsTuple args{};
  // Element-wise, mirroring the element-wise writes in put_parcel_typed
  // (never as one tuple blob: tuple layout/padding is not wire format).
  std::apply([&ar](auto&... elements) { ((ar >> elements), ...); }, args);
  if constexpr (std::is_void_v<Result>) {
    std::apply(Fn, std::move(args));
    if (promise_id != 0) {
      here_locality.send_response(source, promise_id,
                                  [](OutputArchive&) {});
    }
  } else {
    Result result = std::apply(Fn, std::move(args));
    if (promise_id != 0) {
      here_locality.send_response(
          source, promise_id,
          [result = std::move(result)](OutputArchive& out) mutable {
            out << std::move(result);
          });
    }
  }
}

}  // namespace detail

/// Process-wide id of the action wrapping function pointer `Fn`. The id is
/// assigned on first use; since all localities share the process, ids are
/// trivially consistent.
template <auto Fn>
ActionId action_id() {
  static const ActionId id = ActionRegistry::instance().add(
      ActionVTable{&detail::invoke_action<Fn>, "amt::action"});
  return id;
}

template <auto Fn, typename... Args>
bool Locality::put_parcel_typed(Rank dst, std::uint64_t promise_id,
                                Args&&... args) {
  using Traits = detail::FnTraits<decltype(Fn)>;
  const ActionId action = action_id<Fn>();
  typename Traits::ArgsTuple tuple(std::forward<Args>(args)...);
  // Only fire-and-forget parcels are admissible: shedding a promise-bearing
  // request would strand its future forever.
  return put_parcel(
      dst,
      [action, promise_id,
       tuple = std::move(tuple)](OutputArchive& ar) mutable {
        ar << action << promise_id;
        // Move each argument out so large vectors transfer into zero-copy
        // keepalives instead of being copied again.
        std::apply(
            [&ar](auto&... elements) { ((ar << std::move(elements)), ...); },
            tuple);
      },
      /*admissible=*/promise_id == 0);
}

}  // namespace amt
