// The serialized-message types exchanged between the parcel layer and the
// parcelport layer. Mirrors HPX's structure (paper §2.2): an HPX message is
//   * one non-zero-copy chunk (small arguments + parcel metadata),
//   * optionally a transmission chunk (index/length of the zero-copy pieces),
//   * zero or more zero-copy chunks (each one large argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace amt {

using Rank = std::uint32_t;

/// One zero-copy chunk on the send side: a non-owning view plus a keepalive
/// that holds the backing storage until the parcelport reports completion.
struct ZChunk {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  std::shared_ptr<const void> keepalive;
};

/// Serialized HPX message, sender side.
struct OutMessage {
  std::vector<std::byte> main_chunk;   // the non-zero-copy chunk
  std::vector<ZChunk> zchunks;

  bool has_zchunks() const { return !zchunks.empty(); }

  /// The transmission chunk: the byte sizes of the zero-copy chunks, needed
  /// by the receiver to post appropriately sized receives. Only transferred
  /// when there is at least one zero-copy chunk.
  std::vector<std::byte> make_tchunk() const {
    std::vector<std::byte> tchunk;
    make_tchunk_into(tchunk);
    return tchunk;
  }

  /// In-place variant: reuses `out`'s capacity, so callers recycling their
  /// buffers (the LCI parcelport's pooled connections) allocate nothing in
  /// steady state.
  void make_tchunk_into(std::vector<std::byte>& out) const {
    out.resize(zchunks.size() * sizeof(std::uint64_t));
    for (std::size_t i = 0; i < zchunks.size(); ++i) {
      const std::uint64_t size = zchunks[i].size;
      std::memcpy(out.data() + i * sizeof(std::uint64_t), &size, sizeof(size));
    }
  }
};

/// Received HPX message, ready for deserialization.
struct InMessage {
  Rank source = 0;
  std::vector<std::byte> main_chunk;
  std::vector<std::vector<std::byte>> zchunks;
};

/// Decodes a received transmission chunk back into chunk sizes.
inline std::vector<std::uint64_t> parse_tchunk(const std::byte* data,
                                               std::size_t size) {
  std::vector<std::uint64_t> sizes(size / sizeof(std::uint64_t));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::memcpy(&sizes[i], data + i * sizeof(std::uint64_t),
                sizeof(std::uint64_t));
  }
  return sizes;
}

}  // namespace amt
