// Blocking collectives built purely on actions and futures — the small
// coordination toolkit distributed AMT applications keep reinventing
// (Octo-Tiger's step synchronisation is a hand-rolled version of these).
//
// Implementation: centralised gather-release rounds. Every rank's n-th
// collective call joins round n (per-rank epoch counters; all ranks must
// issue collectives in the same order, at most one outstanding per rank —
// the usual collective-calling convention). Rank 0 gathers one double from
// every rank, combines, and releases the result to all; arrive/release
// travel as ordinary actions through the parcelport under test.
//
// Call collectives from locality tasks: waiting is scheduler-aware, so the
// calling worker keeps executing other tasks (including the collective's
// own message handling).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "amt/runtime.hpp"
#include "common/cache.hpp"
#include "common/spinlock.hpp"

namespace amt {

class CollectiveGroup {
 public:
  /// One group per runtime; registers itself in the per-rank slots used by
  /// the action entry points. Construct after Runtime::start, destroy
  /// before Runtime::stop.
  explicit CollectiveGroup(Runtime& runtime);
  ~CollectiveGroup();
  CollectiveGroup(const CollectiveGroup&) = delete;
  CollectiveGroup& operator=(const CollectiveGroup&) = delete;

  Rank size() const { return num_ranks_; }

  /// Returns once every rank has entered the same round.
  void barrier() { run_collective(0.0); }

  /// All-reduce sum of one double; every rank receives the global sum.
  double allreduce_sum(double value) { return run_collective(value); }

  /// Rank 0's value is returned on every rank (others' inputs are ignored).
  double broadcast_from_root(double value);

  // ---- internal action entry points ----
  void on_arrive(std::uint64_t epoch, Rank from, double value);
  void on_release(std::uint64_t epoch, double value);
  static CollectiveGroup*& slot(Rank rank);

 private:
  struct Round {
    std::atomic<int> arrived{0};
    std::vector<double> contributions;  // indexed by rank, gathered at root
    double result = 0.0;
    std::vector<common::CachePadded<std::atomic<int>>> released;  // per rank
    int leavers = 0;  // guarded by rounds_mutex_
  };

  Round& round(std::uint64_t epoch);
  void drop_round(std::uint64_t epoch);
  double run_collective(double value);

  Runtime& runtime_;
  const Rank num_ranks_;

  // Per-rank round counters: rank r's n-th collective call uses epoch n.
  std::vector<common::CachePadded<std::uint64_t>> rank_epoch_;

  common::SpinMutex rounds_mutex_;
  std::map<std::uint64_t, std::unique_ptr<Round>> rounds_;
};

}  // namespace amt
