// Blocking collectives built purely on actions — the coordination toolkit
// distributed AMT applications keep reinventing (Octo-Tiger's step
// synchronisation is a hand-rolled version of these), generalised from
// one-double payloads to byte spans and from centralised gather-release
// rounds to log-depth algorithms:
//
//   barrier    — dissemination (log2 n rounds of shifted pairs)
//   broadcast  — binomial tree; pipelined segments above a payload threshold
//   reduce     — binomial tree (commutative+associative combine)
//   allreduce  — recursive doubling (small) / ring reduce-scatter+allgather
//                (large, segmented by rank chunks)
//   scatter    — binomial tree (root's buffer halves down the tree)
//   gather     — binomial tree (subtree blocks merge up the tree)
//   all_to_all — pairwise exchange (XOR partners for power-of-two locality
//                counts, ring shift otherwise)
//
// plus the centralised variants kept as the measurable baseline. The
// algorithm is chosen per call by payload size x locality count through
// select_algorithm(); `coll<ALGO>` config tokens and AMTNET_COLL_* env
// knobs override it (docs/collectives.md documents the model, and a test
// cross-checks the doc against collective_selection_table_markdown()).
//
// Round matching: every rank's n-th collective call joins epoch n (per-rank
// epoch counters; all ranks must issue collectives in the same order, at
// most one outstanding per rank). Epochs live in a bounded window of
// sharded round slots (epoch % window), each with its own lock — replacing
// the former single SpinMutex-guarded std::map, which serialised every
// arrival and grew without bound when one rank raced ahead. A slot is
// recycled as soon as all ranks leave its epoch; this is safe because every
// algorithm is receipt-complete: a rank consumes every message addressed to
// it before leaving the round, so no stale arrival can land in a recycled
// slot. Messages travel as ordinary actions through the parcelport under
// test (byte spans above the zero-copy threshold go as zero-copy chunks).
//
// Call collectives from locality tasks: waiting is scheduler-aware, so the
// calling worker keeps executing other tasks (including the collective's
// own message handling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "amt/runtime.hpp"
#include "common/cache.hpp"
#include "common/spinlock.hpp"
#include "telemetry/metrics.hpp"

namespace amt {

/// The collective shapes. Payload "bytes" for selection purposes is the
/// full span for barrier/broadcast/reduce/allreduce and the per-rank block
/// for scatter/gather/all_to_all.
enum class CollOp {
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduce,
  kScatter,
  kGather,
  kAllToAll,
};

enum class CollAlgo {
  kCentral,            // gather-release through rank 0 (baseline)
  kDissemination,      // barrier: log2 n rounds of (rank +- 2^k) pairs
  kBinomial,           // tree broadcast/reduce/scatter/gather
  kBinomialPipelined,  // broadcast: segments pipelined down the tree
  kRecursiveDoubling,  // allreduce: XOR partner exchange
  kRing,               // allreduce: reduce-scatter + allgather by chunks
  kPairwise,           // all_to_all: XOR (power of two) or ring shift
};

const char* coll_op_name(CollOp op);
const char* coll_algo_name(CollAlgo algo);

/// Selection inputs, resolved once per CollectiveGroup: a forced algorithm
/// family ("" = auto; "central", "tree", "rd", "ring") from the
/// AMTNET_COLL_ALGO env knob or the `coll<ALGO>` config token, the
/// pipelining segment size, the small/large payload crossover, and the
/// round-window slot count.
struct CollTuning {
  std::string force;               // "" | central | tree | rd | ring
  std::size_t seg_bytes = 8192;    // AMTNET_COLL_SEG_BYTES
  std::size_t large_bytes = 16384; // AMTNET_COLL_LARGE_BYTES
  std::size_t window = 16;         // AMTNET_COLL_WINDOW
};

/// Reads the AMTNET_COLL_* knobs, with `config_token` (the parcelport's
/// coll token value) as the fallback for the forced family. Throws
/// std::invalid_argument for an unknown family name.
CollTuning coll_tuning_from_environment(const std::string& config_token = "");

/// The documented selection model: payload size x locality count ->
/// algorithm, honouring the forced family where it applies to the op.
/// docs/collectives.md embeds collective_selection_table_markdown() output
/// and a test keeps the two in sync.
CollAlgo select_algorithm(CollOp op, std::size_t bytes, Rank n,
                          const CollTuning& tuning);

/// Renders the selection table (ops x sample payload sizes x locality
/// counts) by probing select_algorithm with `tuning`.
std::string collective_selection_table_markdown(
    const CollTuning& tuning = CollTuning{});

class CollectiveGroup {
 public:
  using Bytes = std::vector<std::uint8_t>;
  /// In-place combine: acc[0..bytes) = acc OP in. Must be commutative and
  /// associative — reduction order depends on the algorithm (integer
  /// payloads stay exact under any order; floating-point sums may differ
  /// in rounding between algorithms).
  using ReduceFn = void (*)(std::uint8_t* acc, const std::uint8_t* in,
                            std::size_t bytes);

  /// One group per runtime; registers itself in the per-rank slots used by
  /// the action entry points. Construct after Runtime::start, destroy
  /// before Runtime::stop.
  explicit CollectiveGroup(Runtime& runtime);
  ~CollectiveGroup();
  CollectiveGroup(const CollectiveGroup&) = delete;
  CollectiveGroup& operator=(const CollectiveGroup&) = delete;

  Rank size() const { return num_ranks_; }
  const CollTuning& tuning() const { return tuning_; }

  /// Returns once every rank has entered the same round.
  void barrier();

  /// All-reduce sum of one double; every rank receives the global sum.
  double allreduce_sum(double value);

  /// Rank 0's value is returned on every rank (others' inputs are ignored).
  double broadcast_from_root(double value);

  /// Root's `data` is copied into every rank's `data` (non-root contents
  /// are replaced; non-root sizes need not match beforehand).
  void broadcast(Rank root, Bytes& data);

  /// Element-wise reduction into root's `data`; every rank passes a span of
  /// the same size. Non-root spans are scratch after the call.
  void reduce(Rank root, Bytes& data, std::size_t elem_bytes, ReduceFn fn);

  /// Element-wise reduction; every rank's `data` holds the combined span
  /// after the call. `elem_bytes` aligns ring chunk boundaries.
  void allreduce(Bytes& data, std::size_t elem_bytes, ReduceFn fn);

  /// Root's `all` (size() * bytes_per_rank bytes) is split into rank-order
  /// blocks; every rank returns its own block. Non-roots pass {}.
  Bytes scatter(Rank root, const Bytes& all, std::size_t bytes_per_rank);

  /// Every rank contributes `mine` (same size on all ranks); root returns
  /// the rank-order concatenation, other ranks return {}.
  Bytes gather(Rank root, const Bytes& mine);

  /// `send` holds size() blocks of bytes_per_rank (block i goes to rank i);
  /// returns size() blocks where block i came from rank i.
  Bytes all_to_all(const Bytes& send, std::size_t bytes_per_rank);

  // ---- internal action entry point ----
  void on_msg(std::uint64_t epoch, std::uint32_t step, Rank from,
              Bytes payload);
  static CollectiveGroup*& slot(Rank rank);

 private:
  /// One epoch in flight; recycled (epoch = 0) when all ranks leave.
  struct RoundSlot {
    common::SpinMutex mutex;
    std::uint64_t epoch = 0;  // 0 = free
    int leavers = 0;
    std::map<std::uint64_t, Bytes> inbox;  // (dst, step, src) -> payload
  };

  /// Per-call state threaded through the algorithm bodies.
  struct Ctx {
    Locality& loc;
    Rank rank;
    std::uint64_t epoch;
    RoundSlot& round;
    std::uint64_t steps = 0;  // messages this rank waited on (depth proxy)
  };

  RoundSlot& acquire(std::uint64_t epoch);
  Ctx begin();
  void finish(Ctx& ctx, CollOp op, CollAlgo algo);
  void send(Ctx& ctx, std::uint32_t step, Rank to, Bytes payload);
  Bytes recv(Ctx& ctx, std::uint32_t step, Rank from);

  // Centralised baselines (gather-release through the root).
  void bcast_central(Ctx& ctx, Rank root, Bytes& data,
                     std::uint32_t step_base);
  void reduce_central(Ctx& ctx, Rank root, Bytes& data, ReduceFn fn,
                      std::uint32_t step_base);

  // Log-depth algorithms.
  void bcast_binomial(Ctx& ctx, Rank root, Bytes& data,
                      std::uint32_t step_base);
  void reduce_binomial(Ctx& ctx, Rank root, Bytes& data, ReduceFn fn,
                       std::uint32_t step_base);
  void allreduce_rd(Ctx& ctx, Bytes& data, ReduceFn fn,
                    std::uint32_t step_base);
  void allreduce_ring(Ctx& ctx, Bytes& data, std::size_t elem_bytes,
                      ReduceFn fn, std::uint32_t step_base);
  void barrier_dissemination(Ctx& ctx);

  Runtime& runtime_;
  const Rank num_ranks_;
  CollTuning tuning_;

  // Per-rank round counters: rank r's n-th collective call uses epoch n.
  std::vector<common::CachePadded<std::uint64_t>> rank_epoch_;

  // Bounded window of sharded round slots, indexed by epoch % window.
  std::vector<std::unique_ptr<RoundSlot>> window_;

  telemetry::Counter& ops_;
  telemetry::Counter& msgs_;
  telemetry::Counter& bytes_;
  telemetry::Counter& depth_;
};

}  // namespace amt
