#include "amt/runtime.hpp"

#include <mutex>
#include <stdexcept>
#include <string>

#include "common/logging.hpp"

namespace amt {

namespace {
thread_local Locality* tls_here = nullptr;

std::string loc_metric(Rank rank, const char* leaf) {
  return "amt/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

Locality& here() {
  assert(tls_here != nullptr && "here() outside a locality task");
  return *tls_here;
}

bool has_here() { return tls_here != nullptr; }

namespace detail {
ScopedHere::ScopedHere(Locality* locality) : previous(tls_here) {
  tls_here = locality;
}
ScopedHere::~ScopedHere() { tls_here = previous; }
}  // namespace detail

// ---- Locality ---------------------------------------------------------------

Locality::Locality(Runtime& runtime, Rank rank, const RuntimeConfig& config)
    : runtime_(runtime),
      rank_(rank),
      zero_copy_threshold_(config.zero_copy_threshold),
      send_immediate_(config.parcelport.send_immediate),
      admission_(config.parcelport.admission),
      admission_on_(config.parcelport.admission.on()),
      scheduler_(config.threads_per_locality, "loc" + std::to_string(rank),
                 &runtime.telemetry()),
      connection_cache_(config.max_connections),
      ctr_parcels_sent_(
          runtime.telemetry().counter(loc_metric(rank, "parcels_sent"))),
      ctr_messages_sent_(
          runtime.telemetry().counter(loc_metric(rank, "messages_sent"))),
      ctr_messages_received_(
          runtime.telemetry().counter(loc_metric(rank, "messages_received"))),
      ctr_actions_executed_(
          runtime.telemetry().counter(loc_metric(rank, "actions_executed"))),
      hist_serialize_ns_(
          runtime.telemetry().histogram(loc_metric(rank, "serialize_ns"))),
      hist_aggregate_batch_(runtime.telemetry().histogram(
          loc_metric(rank, "aggregate_batch"))),
      gauge_parcel_queue_depth_(runtime.telemetry().gauge(
          loc_metric(rank, "parcel_queue_depth"))),
      ctr_admit_accepted_(
          runtime.telemetry().counter(loc_metric(rank, "admit_accepted"))),
      ctr_admit_shed_(
          runtime.telemetry().counter(loc_metric(rank, "admit_shed"))),
      ctr_admit_deadline_drops_(runtime.telemetry().counter(
          loc_metric(rank, "admit_deadline_drops"))) {
  connection_cache_.attach_counters(
      &runtime.telemetry().counter(loc_metric(rank, "conncache_hits")),
      &runtime.telemetry().counter(loc_metric(rank, "conncache_failures")));
  parcel_queues_.reserve(config.num_localities);
  for (Rank r = 0; r < config.num_localities; ++r) {
    parcel_queues_.push_back(std::make_unique<DestQueue>());
  }
}

Locality::~Locality() = default;

Rank Locality::num_localities() const { return runtime_.num_localities(); }

void Locality::spawn(common::UniqueFunction<void()> fn) {
  scheduler_.spawn([this, fn = std::move(fn)]() mutable {
    detail::ScopedHere scope(this);
    fn();
  });
}

bool Locality::put_parcel(Rank dst, ParcelWriter writer, bool admissible) {
  common::Nanos parcel_deadline = 0;
  // Admission control (remote destinations only: local delivery never
  // queues on the network). The whole block compiles down to one branch on
  // admission_on_ for the historical configurations.
  if (admission_on_ && dst != rank_) {
    DestQueue& queue = *parcel_queues_[dst];
    const auto bound = static_cast<std::int64_t>(admission_.queue_bound);
    if (admissible) {
      switch (admission_.policy) {
        case AdmissionConfig::Policy::kShed:
        case AdmissionConfig::Policy::kDeadline:
          if (queue.outstanding.load(std::memory_order_relaxed) >= bound) {
            admit_shed_.fetch_add(1, std::memory_order_relaxed);
            ctr_admit_shed_.add();
            return false;
          }
          break;
        case AdmissionConfig::Policy::kBlock:
          if (queue.outstanding.load(std::memory_order_relaxed) >= bound) {
            admit_block_waits_.fetch_add(1, std::memory_order_relaxed);
            // Runs tasks + parcelport progress while waiting, so send
            // completions keep draining even when every worker blocks here.
            scheduler_.wait_until([&queue, bound] {
              return queue.outstanding.load(std::memory_order_relaxed) <
                     bound;
            });
          }
          break;
        case AdmissionConfig::Policy::kNone:
          break;
      }
      if (admission_.policy == AdmissionConfig::Policy::kDeadline) {
        parcel_deadline =
            common::now_ns() +
            static_cast<common::Nanos>(admission_.deadline_us * 1000.0);
      }
      admit_accepted_.fetch_add(1, std::memory_order_relaxed);
      ctr_admit_accepted_.add();
    }
    // Every accepted parcel — admissible or exempt — occupies a queue slot
    // until its send completes; exempt traffic fills the bound but is never
    // refused by it.
    const std::int64_t depth =
        queue.outstanding.fetch_add(1, std::memory_order_relaxed) + 1;
    gauge_parcel_queue_depth_.add();
    std::int64_t peak = admit_peak_depth_.load(std::memory_order_relaxed);
    while (depth > peak && !admit_peak_depth_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }
  ctr_parcels_sent_.add();

  if (send_immediate_) {
    // Bypass the parcel queue and the connection cache entirely (paper
    // §3.2.2, the "_i" configurations).
    OutputArchive ar(zero_copy_threshold_);
    const std::uint32_t count = 1;
    ar << count;
    OutMessage msg = [&] {
      telemetry::ScopedTimer timer(hist_serialize_ns_);
      writer(ar);
      return ar.finish();
    }();
    ctr_messages_sent_.add();
    if (dst == rank_) {
      deliver_local(std::move(msg));
    } else {
      parcelport_->send(dst, std::move(msg), [] {});
    }
    return true;
  }

  {
    DestQueue& queue = *parcel_queues_[dst];
    std::lock_guard<common::SpinMutex> guard(queue.mutex);
    queue.parcels.push_back({std::move(writer), parcel_deadline});
  }
  try_flush(dst);
  return true;
}

void Locality::admission_release(Rank dst, std::int64_t parcels) {
  if (!admission_on_ || parcels == 0) return;
  parcel_queues_[dst]->outstanding.fetch_sub(parcels,
                                             std::memory_order_relaxed);
  gauge_parcel_queue_depth_.sub(parcels);
}

void Locality::try_flush(Rank dst) {
  for (;;) {
    if (!connection_cache_.try_acquire()) return;  // parcels stay queued
    std::vector<PendingParcel> pending;
    {
      DestQueue& queue = *parcel_queues_[dst];
      std::lock_guard<common::SpinMutex> guard(queue.mutex);
      pending.swap(queue.parcels);
    }
    // Deadline policy: parcels that aged past their deadline while waiting
    // for a connection are dropped here instead of sent — stale work is the
    // one thing an overloaded serving path should never transmit.
    if (admission_on_ &&
        admission_.policy == AdmissionConfig::Policy::kDeadline &&
        !pending.empty()) {
      const common::Nanos now = common::now_ns();
      std::size_t kept = 0;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].deadline_ns != 0 && now > pending[i].deadline_ns) {
          continue;
        }
        if (kept != i) pending[kept] = std::move(pending[i]);
        ++kept;
      }
      const auto dropped =
          static_cast<std::int64_t>(pending.size() - kept);
      if (dropped != 0) {
        pending.resize(kept);
        admit_deadline_drops_.fetch_add(static_cast<std::uint64_t>(dropped),
                                        std::memory_order_relaxed);
        ctr_admit_deadline_drops_.add(static_cast<std::uint64_t>(dropped));
        admission_release(dst, dropped);
      }
    }
    if (pending.empty()) {
      connection_cache_.release();
      return;
    }
    // Aggregate everything queued for this destination into one HPX message.
    hist_aggregate_batch_.record(pending.size());
    OutputArchive ar(zero_copy_threshold_);
    ar << static_cast<std::uint32_t>(pending.size());
    OutMessage msg = [&] {
      telemetry::ScopedTimer timer(hist_serialize_ns_);
      for (auto& parcel : pending) parcel.writer(ar);
      return ar.finish();
    }();
    ctr_messages_sent_.add();
    const auto batch = static_cast<std::int64_t>(pending.size());

    if (dst == rank_) {
      deliver_local(std::move(msg));
      connection_cache_.release();
      continue;  // more parcels may have queued meanwhile
    }
    (void)batch;
    parcelport_->send(dst, std::move(msg), [this, dst] {
      connection_cache_.release();
      // The freed connection may unblock queued parcels — this or others.
      try_flush(dst);
      flush_all();
    });
    return;
  }
}

void Locality::flush_all() {
  for (Rank dst = 0; dst < parcel_queues_.size(); ++dst) {
    bool nonempty;
    {
      DestQueue& queue = *parcel_queues_[dst];
      std::lock_guard<common::SpinMutex> guard(queue.mutex);
      nonempty = !queue.parcels.empty();
    }
    if (nonempty) try_flush(dst);
  }
}

void Locality::deliver_local(OutMessage&& msg) {
  // Local-destination parcels skip the parcelport (as in HPX) but take the
  // same serialize/deserialize path, so local and remote semantics match.
  InMessage in;
  in.source = rank_;
  in.main_chunk = std::move(msg.main_chunk);
  in.zchunks.reserve(msg.zchunks.size());
  for (const ZChunk& chunk : msg.zchunks) {
    in.zchunks.emplace_back(chunk.data, chunk.data + chunk.size);
  }
  on_message(std::move(in));
}

void Locality::on_message(InMessage&& msg) {
  ctr_messages_received_.add();
  scheduler_.spawn([this, msg = std::move(msg)]() mutable {
    detail::ScopedHere scope(this);
    const std::uint32_t parcels = handle_message(msg);
    // Credit return for the sender's admission window: a slot frees only
    // once its parcel has *executed* here, so `outstanding` spans the whole
    // serving path (sender queue, wire, destination scheduler) — send-side
    // completions fire at injection and would hide the downstream backlog.
    // The return is an in-process shortcut, so it only works when the
    // sender's locality object lives here; multi-process (shm) runs reject
    // admission-on configs at construction.
    if (msg.source != rank_ && runtime_.locality_is_local(msg.source)) {
      runtime_.locality(msg.source).admission_release(rank_, parcels);
    }
  });
}

std::uint32_t Locality::handle_message(const InMessage& msg) {
  InputArchive ar(msg);
  std::uint32_t count = 0;
  ar >> count;
  for (std::uint32_t i = 0; i < count; ++i) {
    ActionId action = 0;
    std::uint64_t promise_id = 0;
    ar >> action >> promise_id;
    if (action == kResponseAction) {
      common::UniqueFunction<void(InputArchive&)> handler;
      {
        std::lock_guard<common::SpinMutex> guard(promise_mutex_);
        auto it = promises_.find(promise_id);
        if (it == promises_.end()) {
          AMTNET_LOG_ERROR("response for unknown promise ", promise_id);
          // Cannot resynchronise the archive; drop the rest (the credits
          // still return in full — a leaked slot would wedge admission).
          return count;
        }
        handler = std::move(it->second);
        promises_.erase(it);
      }
      handler(ar);
    } else {
      const ActionVTable vtable = ActionRegistry::instance().get(action);
      assert(vtable.invoke != nullptr);
      vtable.invoke(*this, msg.source, promise_id, ar);
    }
    ctr_actions_executed_.add();
  }
  return count;
}

std::uint64_t Locality::register_promise(
    common::UniqueFunction<void(InputArchive&)> handler) {
  std::lock_guard<common::SpinMutex> guard(promise_mutex_);
  const std::uint64_t id = next_promise_id_++;
  promises_.emplace(id, std::move(handler));
  return id;
}

void Locality::send_response(Rank dst, std::uint64_t promise_id,
                             ParcelWriter payload) {
  put_parcel(dst, [promise_id,
                   payload = std::move(payload)](OutputArchive& ar) mutable {
    ar << kResponseAction << promise_id;
    payload(ar);
  });
}

AdmissionStats Locality::admission_stats() const {
  AdmissionStats stats;
  stats.accepted = admit_accepted_.load(std::memory_order_relaxed);
  stats.shed = admit_shed_.load(std::memory_order_relaxed);
  stats.deadline_drops =
      admit_deadline_drops_.load(std::memory_order_relaxed);
  stats.block_waits = admit_block_waits_.load(std::memory_order_relaxed);
  stats.peak_queue_depth = admit_peak_depth_.load(std::memory_order_relaxed);
  return stats;
}

LocalityStats Locality::stats() const {
  // Single aggregation pass over the registry counters; relaxed-read
  // semantics as documented in telemetry/metrics.hpp (each field coherent
  // and monotonic, the set not a cross-counter atomic cut).
  LocalityStats stats;
  stats.parcels_sent = ctr_parcels_sent_.value();
  stats.messages_sent = ctr_messages_sent_.value();
  stats.messages_received = ctr_messages_received_.value();
  stats.actions_executed = ctr_actions_executed_.value();
  return stats;
}

// ---- Runtime ----------------------------------------------------------------

Runtime::Runtime(RuntimeConfig config, ParcelportFactory factory)
    : config_([&] {
        config.fabric.num_ranks = config.num_localities;
        return config;
      }()),
      factory_(std::move(factory)),
      fabric_(config_.fabric) {
  if (!config_.fabric.single_process() && config_.parcelport.admission.on()) {
    // Admission credits return through the sender's in-process locality
    // object, which does not exist across process boundaries.
    throw std::invalid_argument(
        "admission control (shed/block/dl) is not supported in "
        "multi-process shm mode");
  }
  localities_.resize(config_.num_localities);
  for (Rank r = 0; r < config_.num_localities; ++r) {
    if (!config_.fabric.rank_is_local(r)) continue;  // another process hosts it
    localities_[r] = std::make_unique<Locality>(*this, r, config_);
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  if (started_) return;
  started_ = true;
  for (Rank r = 0; r < config_.num_localities; ++r) {
    if (localities_[r] == nullptr) continue;
    Locality& locality = *localities_[r];
    ParcelportContext context;
    context.fabric = &fabric_;
    context.rank = r;
    context.zero_copy_threshold = config_.zero_copy_threshold;
    context.num_workers = config_.threads_per_locality;
    context.config = config_.parcelport;
    context.deliver = [&locality](InMessage&& msg) {
      locality.on_message(std::move(msg));
    };
    context.queue_depth = [&locality](Rank dst) -> std::uint64_t {
      const std::int64_t depth =
          locality.parcel_queues_[dst]->outstanding.load(
              std::memory_order_relaxed);
      return depth > 0 ? static_cast<std::uint64_t>(depth) : 0;
    };
    locality.parcelport_ = factory_(*this, context);
    Parcelport* port = locality.parcelport_.get();
    locality.scheduler_.set_background(
        [port](unsigned worker) { return port->background_work(worker); });
    port->start();
  }
  for (auto& locality : localities_) {
    if (locality) locality->scheduler_.start();
  }
}

void Runtime::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& locality : localities_) {
    if (locality) locality->scheduler_.stop();
  }
  for (auto& locality : localities_) {
    if (locality && locality->parcelport_) locality->parcelport_->stop();
  }
}

}  // namespace amt
