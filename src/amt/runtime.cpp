#include "amt/runtime.hpp"

#include <mutex>
#include <string>

#include "common/logging.hpp"

namespace amt {

namespace {
thread_local Locality* tls_here = nullptr;

std::string loc_metric(Rank rank, const char* leaf) {
  return "amt/loc" + std::to_string(rank) + "/" + leaf;
}
}  // namespace

Locality& here() {
  assert(tls_here != nullptr && "here() outside a locality task");
  return *tls_here;
}

bool has_here() { return tls_here != nullptr; }

namespace detail {
ScopedHere::ScopedHere(Locality* locality) : previous(tls_here) {
  tls_here = locality;
}
ScopedHere::~ScopedHere() { tls_here = previous; }
}  // namespace detail

// ---- Locality ---------------------------------------------------------------

Locality::Locality(Runtime& runtime, Rank rank, const RuntimeConfig& config)
    : runtime_(runtime),
      rank_(rank),
      zero_copy_threshold_(config.zero_copy_threshold),
      send_immediate_(config.parcelport.send_immediate),
      scheduler_(config.threads_per_locality, "loc" + std::to_string(rank),
                 &runtime.telemetry()),
      connection_cache_(config.max_connections),
      ctr_parcels_sent_(
          runtime.telemetry().counter(loc_metric(rank, "parcels_sent"))),
      ctr_messages_sent_(
          runtime.telemetry().counter(loc_metric(rank, "messages_sent"))),
      ctr_messages_received_(
          runtime.telemetry().counter(loc_metric(rank, "messages_received"))),
      ctr_actions_executed_(
          runtime.telemetry().counter(loc_metric(rank, "actions_executed"))),
      hist_serialize_ns_(
          runtime.telemetry().histogram(loc_metric(rank, "serialize_ns"))),
      hist_aggregate_batch_(runtime.telemetry().histogram(
          loc_metric(rank, "aggregate_batch"))) {
  connection_cache_.attach_counters(
      &runtime.telemetry().counter(loc_metric(rank, "conncache_hits")),
      &runtime.telemetry().counter(loc_metric(rank, "conncache_failures")));
  parcel_queues_.reserve(config.num_localities);
  for (Rank r = 0; r < config.num_localities; ++r) {
    parcel_queues_.push_back(std::make_unique<DestQueue>());
  }
}

Locality::~Locality() = default;

Rank Locality::num_localities() const { return runtime_.num_localities(); }

void Locality::spawn(common::UniqueFunction<void()> fn) {
  scheduler_.spawn([this, fn = std::move(fn)]() mutable {
    detail::ScopedHere scope(this);
    fn();
  });
}

void Locality::put_parcel(Rank dst, ParcelWriter writer) {
  ctr_parcels_sent_.add();

  if (send_immediate_) {
    // Bypass the parcel queue and the connection cache entirely (paper
    // §3.2.2, the "_i" configurations).
    OutputArchive ar(zero_copy_threshold_);
    const std::uint32_t count = 1;
    ar << count;
    OutMessage msg = [&] {
      telemetry::ScopedTimer timer(hist_serialize_ns_);
      writer(ar);
      return ar.finish();
    }();
    ctr_messages_sent_.add();
    if (dst == rank_) {
      deliver_local(std::move(msg));
    } else {
      parcelport_->send(dst, std::move(msg), [] {});
    }
    return;
  }

  {
    DestQueue& queue = *parcel_queues_[dst];
    std::lock_guard<common::SpinMutex> guard(queue.mutex);
    queue.parcels.push_back(std::move(writer));
  }
  try_flush(dst);
}

void Locality::try_flush(Rank dst) {
  for (;;) {
    if (!connection_cache_.try_acquire()) return;  // parcels stay queued
    std::vector<ParcelWriter> writers;
    {
      DestQueue& queue = *parcel_queues_[dst];
      std::lock_guard<common::SpinMutex> guard(queue.mutex);
      writers.swap(queue.parcels);
    }
    if (writers.empty()) {
      connection_cache_.release();
      return;
    }
    // Aggregate everything queued for this destination into one HPX message.
    hist_aggregate_batch_.record(writers.size());
    OutputArchive ar(zero_copy_threshold_);
    ar << static_cast<std::uint32_t>(writers.size());
    OutMessage msg = [&] {
      telemetry::ScopedTimer timer(hist_serialize_ns_);
      for (auto& writer : writers) writer(ar);
      return ar.finish();
    }();
    ctr_messages_sent_.add();

    if (dst == rank_) {
      deliver_local(std::move(msg));
      connection_cache_.release();
      continue;  // more parcels may have queued meanwhile
    }
    parcelport_->send(dst, std::move(msg), [this, dst] {
      connection_cache_.release();
      // The freed connection may unblock queued parcels — this or others.
      try_flush(dst);
      flush_all();
    });
    return;
  }
}

void Locality::flush_all() {
  for (Rank dst = 0; dst < parcel_queues_.size(); ++dst) {
    bool nonempty;
    {
      DestQueue& queue = *parcel_queues_[dst];
      std::lock_guard<common::SpinMutex> guard(queue.mutex);
      nonempty = !queue.parcels.empty();
    }
    if (nonempty) try_flush(dst);
  }
}

void Locality::deliver_local(OutMessage&& msg) {
  // Local-destination parcels skip the parcelport (as in HPX) but take the
  // same serialize/deserialize path, so local and remote semantics match.
  InMessage in;
  in.source = rank_;
  in.main_chunk = std::move(msg.main_chunk);
  in.zchunks.reserve(msg.zchunks.size());
  for (const ZChunk& chunk : msg.zchunks) {
    in.zchunks.emplace_back(chunk.data, chunk.data + chunk.size);
  }
  on_message(std::move(in));
}

void Locality::on_message(InMessage&& msg) {
  ctr_messages_received_.add();
  scheduler_.spawn([this, msg = std::move(msg)]() mutable {
    detail::ScopedHere scope(this);
    handle_message(msg);
  });
}

void Locality::handle_message(const InMessage& msg) {
  InputArchive ar(msg);
  std::uint32_t count = 0;
  ar >> count;
  for (std::uint32_t i = 0; i < count; ++i) {
    ActionId action = 0;
    std::uint64_t promise_id = 0;
    ar >> action >> promise_id;
    if (action == kResponseAction) {
      common::UniqueFunction<void(InputArchive&)> handler;
      {
        std::lock_guard<common::SpinMutex> guard(promise_mutex_);
        auto it = promises_.find(promise_id);
        if (it == promises_.end()) {
          AMTNET_LOG_ERROR("response for unknown promise ", promise_id);
          return;  // cannot resynchronise the archive; drop the rest
        }
        handler = std::move(it->second);
        promises_.erase(it);
      }
      handler(ar);
    } else {
      const ActionVTable vtable = ActionRegistry::instance().get(action);
      assert(vtable.invoke != nullptr);
      vtable.invoke(*this, msg.source, promise_id, ar);
    }
    ctr_actions_executed_.add();
  }
}

std::uint64_t Locality::register_promise(
    common::UniqueFunction<void(InputArchive&)> handler) {
  std::lock_guard<common::SpinMutex> guard(promise_mutex_);
  const std::uint64_t id = next_promise_id_++;
  promises_.emplace(id, std::move(handler));
  return id;
}

void Locality::send_response(Rank dst, std::uint64_t promise_id,
                             ParcelWriter payload) {
  put_parcel(dst, [promise_id,
                   payload = std::move(payload)](OutputArchive& ar) mutable {
    ar << kResponseAction << promise_id;
    payload(ar);
  });
}

LocalityStats Locality::stats() const {
  // Single aggregation pass over the registry counters; relaxed-read
  // semantics as documented in telemetry/metrics.hpp (each field coherent
  // and monotonic, the set not a cross-counter atomic cut).
  LocalityStats stats;
  stats.parcels_sent = ctr_parcels_sent_.value();
  stats.messages_sent = ctr_messages_sent_.value();
  stats.messages_received = ctr_messages_received_.value();
  stats.actions_executed = ctr_actions_executed_.value();
  return stats;
}

// ---- Runtime ----------------------------------------------------------------

Runtime::Runtime(RuntimeConfig config, ParcelportFactory factory)
    : config_([&] {
        config.fabric.num_ranks = config.num_localities;
        return config;
      }()),
      factory_(std::move(factory)),
      fabric_(config_.fabric) {
  localities_.reserve(config_.num_localities);
  for (Rank r = 0; r < config_.num_localities; ++r) {
    localities_.push_back(std::make_unique<Locality>(*this, r, config_));
  }
}

Runtime::~Runtime() { stop(); }

void Runtime::start() {
  if (started_) return;
  started_ = true;
  for (Rank r = 0; r < config_.num_localities; ++r) {
    Locality& locality = *localities_[r];
    ParcelportContext context;
    context.fabric = &fabric_;
    context.rank = r;
    context.zero_copy_threshold = config_.zero_copy_threshold;
    context.num_workers = config_.threads_per_locality;
    context.config = config_.parcelport;
    context.deliver = [&locality](InMessage&& msg) {
      locality.on_message(std::move(msg));
    };
    locality.parcelport_ = factory_(*this, context);
    Parcelport* port = locality.parcelport_.get();
    locality.scheduler_.set_background(
        [port](unsigned worker) { return port->background_work(worker); });
    port->start();
  }
  for (auto& locality : localities_) locality->scheduler_.start();
}

void Runtime::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& locality : localities_) locality->scheduler_.stop();
  for (auto& locality : localities_) {
    if (locality->parcelport_) locality->parcelport_->stop();
  }
}

}  // namespace amt
