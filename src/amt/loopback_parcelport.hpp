// A trivial in-process parcelport that hands messages straight to the
// destination locality, bypassing the fabric. Used by runtime unit tests and
// as the reference semantics every real parcelport must match.
#pragma once

#include <utility>

#include "amt/parcelport.hpp"
#include "amt/runtime.hpp"

namespace amt {

class LoopbackParcelport final : public Parcelport {
 public:
  LoopbackParcelport(Runtime& runtime, const ParcelportContext& context)
      : runtime_(runtime), rank_(context.rank) {}

  void send(Rank dst, OutMessage msg,
            common::UniqueFunction<void()> done) override {
    InMessage in;
    in.source = rank_;
    in.main_chunk = std::move(msg.main_chunk);
    in.zchunks.reserve(msg.zchunks.size());
    for (const ZChunk& chunk : msg.zchunks) {
      in.zchunks.emplace_back(chunk.data, chunk.data + chunk.size);
    }
    runtime_.locality(dst).on_message(std::move(in));
    done();
  }

  bool background_work(unsigned) override { return false; }

 private:
  Runtime& runtime_;
  const Rank rank_;
};

inline Runtime::ParcelportFactory loopback_parcelport_factory() {
  return [](Runtime& runtime, const ParcelportContext& context) {
    return std::make_unique<LoopbackParcelport>(runtime, context);
  };
}

}  // namespace amt
