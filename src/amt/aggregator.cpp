#include "amt/aggregator.hpp"

#include <mutex>
#include <utility>

#include "amt/wire_header.hpp"

namespace amt {

namespace {
/// Bytes a message adds to a batch frame: its length-table slot plus its
/// entry body.
std::size_t entry_cost(const OutMessage& msg) {
  return sizeof(std::uint32_t) + batch_entry_size(msg);
}
}  // namespace

Aggregator::Aggregator(Rank num_ranks, std::size_t max_bytes,
                       common::Nanos age_ns, FlushFn flush)
    : max_bytes_(max_bytes),
      age_ns_(age_ns),
      flush_(std::move(flush)),
      buffers_(num_ranks) {}

bool Aggregator::enqueue(Rank dst, std::int64_t queue_depth, OutMessage& msg,
                         common::UniqueFunction<void()>& done) {
  Buffer& buffer = buffers_[dst].value;
  // Unloaded fast-out: no lock, no clock read. A racing enqueuer whose
  // entry is not yet visible in `count` at worst makes this parcel travel
  // as its own frame while the other batches — harmless, delivery is
  // unordered and each frame carries its own seq.
  if (queue_depth <= 1 &&
      buffer.count.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  const std::size_t cost = entry_cost(msg);
  const common::Nanos now = common::now_ns();
  std::vector<Entry> evicted;   // previous batch the new entry didn't fit in
  std::vector<Entry> complete;  // batch the new entry completed
  FlushReason complete_reason = FlushReason::kSize;
  {
    std::lock_guard<common::SpinMutex> guard(buffer.mutex);
    if (buffer.entries.empty() && queue_depth <= 1) return false;
    if (!buffer.entries.empty() && buffer.bytes + cost > max_bytes_) {
      evicted = std::move(buffer.entries);
      buffer.entries.clear();
      buffer.bytes = 0;
    }
    if (buffer.entries.empty()) {
      buffer.bytes = sizeof(BatchHeader);
      buffer.oldest_ns = now;
    }
    buffer.entries.push_back({std::move(msg), std::move(done), now});
    buffer.bytes += cost;
    if (buffer.bytes >= max_bytes_) {
      complete = std::move(buffer.entries);
      buffer.entries.clear();
      buffer.bytes = 0;
    } else if (queue_depth > 0 &&
               buffer.entries.size() >=
                   static_cast<std::size_t>(queue_depth)) {
      // Window stall: every outstanding parcel of the destination's
      // admission window is sitting in this buffer, so no further parcel
      // can arrive until this batch executes remotely and credits return —
      // holding it any longer is pure added latency with zero added
      // coalescing. Flush now instead of waiting for the age/idle triggers.
      complete = std::move(buffer.entries);
      buffer.entries.clear();
      buffer.bytes = 0;
      complete_reason = FlushReason::kStall;
    }
    buffer.count.store(static_cast<std::uint32_t>(buffer.entries.size()),
                       std::memory_order_relaxed);
    pending_.fetch_add(1 - static_cast<std::int64_t>(evicted.size()) -
                           static_cast<std::int64_t>(complete.size()),
                       std::memory_order_relaxed);
  }
  if (!evicted.empty()) flush_(dst, std::move(evicted), FlushReason::kSize);
  if (!complete.empty()) flush_(dst, std::move(complete), complete_reason);
  return true;
}

std::vector<Aggregator::Entry> Aggregator::steal(Buffer& buffer) {
  std::vector<Entry> batch = std::move(buffer.entries);
  buffer.entries.clear();
  buffer.bytes = 0;
  buffer.count.store(0, std::memory_order_relaxed);
  pending_.fetch_sub(static_cast<std::int64_t>(batch.size()),
                     std::memory_order_relaxed);
  return batch;
}

bool Aggregator::flush_buffers(FlushReason reason, bool aged_only,
                               common::Nanos now) {
  bool flushed = false;
  for (Rank dst = 0; dst < static_cast<Rank>(buffers_.size()); ++dst) {
    Buffer& buffer = buffers_[dst].value;
    if (buffer.count.load(std::memory_order_relaxed) == 0) continue;
    std::vector<Entry> batch;
    {
      std::lock_guard<common::SpinMutex> guard(buffer.mutex);
      if (buffer.entries.empty()) continue;
      if (aged_only && now - buffer.oldest_ns < age_ns_) continue;
      batch = steal(buffer);
    }
    flush_(dst, std::move(batch), reason);
    flushed = true;
  }
  return flushed;
}

bool Aggregator::poll(common::Nanos now) {
  if (age_ns_ <= 0) return false;
  return flush_buffers(FlushReason::kAge, /*aged_only=*/true, now);
}

bool Aggregator::flush_idle() {
  return flush_buffers(FlushReason::kIdle, /*aged_only=*/false, 0);
}

void Aggregator::flush_all() {
  flush_buffers(FlushReason::kFinal, /*aged_only=*/false, 0);
}

}  // namespace amt
