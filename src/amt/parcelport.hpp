// The parcelport interface — the boundary between the AMT runtime's parcel
// layer and a communication backend (paper §2.2/§3), plus the configuration
// naming scheme of Table 1 (mpi, lci, sr/psr, cq/sy, pin/mt, _i).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "amt/message.hpp"
#include "amt/serialization.hpp"
#include "common/unique_function.hpp"
#include "fabric/nic.hpp"

namespace amt {

/// Admission control for the parcel send path (the serving-side analogue of
/// the fabric's TX-window back-pressure): a bound on per-destination
/// in-flight parcels plus a policy for what happens to new *admissible*
/// parcels — fire-and-forget applies — once the bound is hit. Responses and
/// promise-bearing requests are always exempt: shedding them would strand
/// promises (and futures) on the caller, so only best-effort traffic is
/// ever refused. Configured by name tokens (shed<N> / block<N> / dl<N>) or
/// the AMTNET_ADMIT_* environment knobs (env wins, see
/// apply_admission_env).
struct AdmissionConfig {
  enum class Policy {
    kNone,      // unbounded queues (the historical behaviour)
    kShed,      // reject new admissible parcels while the bound is hit
    kBlock,     // back-pressure the caller (runs scheduler + progress work)
    kDeadline,  // shed at the bound AND drop queued parcels older than
                // deadline_us at flush time (no effect on "_i" configs,
                // which never queue)
  };
  Policy policy = Policy::kNone;
  std::size_t queue_bound = 0;  // per-destination in-flight parcel cap
  double deadline_us = 1000.0;  // kDeadline: max queue age before drop

  bool on() const { return policy != Policy::kNone && queue_bound > 0; }
};

/// Overrides fields from AMTNET_ADMIT_* environment variables (unset
/// variables leave the passed-in value untouched):
///   AMTNET_ADMIT_POLICY       off | shed | block | deadline
///   AMTNET_ADMIT_BOUND        per-destination in-flight parcel cap
///   AMTNET_ADMIT_DEADLINE_US  queue-age drop threshold (deadline policy)
void apply_admission_env(AdmissionConfig& config);

/// Which backend and which design-variant knobs to use. Parsed from the
/// paper's configuration names, e.g. "lci_psr_cq_pin_i", "mpi_i"; "tcp" is
/// HPX's original stream backend (no variant knobs beyond "_i").
struct ParcelportConfig {
  enum class Kind { kMpi, kLci, kTcp };
  /// LCI header-message protocol: one-sided dynamic put vs two-sided.
  enum class Protocol { kPutSendRecv, kSendRecv };  // psr | sr
  /// Who calls the progress function: a dedicated pinned thread or all
  /// worker threads when idle.
  enum class ProgressType { kPinned, kWorker };  // pin (a.k.a rp) | mt
  /// Completion mechanism for sends/receives.
  enum class CompType { kQueue, kSync };  // cq | sy

  Kind kind = Kind::kLci;
  Protocol protocol = Protocol::kPutSendRecv;
  ProgressType progress = ProgressType::kPinned;
  CompType completion = CompType::kQueue;
  bool send_immediate = false;  // "_i": bypass parcel queue + connection cache

  /// LCI follow-up pipeline depth: max in-flight follow-up pieces per
  /// connection. 0 = unbounded (post everything eagerly, the default);
  /// 1 reproduces the serialized one-op-per-connection behaviour. Parsed
  /// from a "pd<N>" token ("pdinf" = unbounded); overridable at runtime by
  /// AMTNET_LCI_PIPELINE_DEPTH when the name leaves it unbounded.
  std::size_t lci_pipeline_depth = 0;

  /// LCI progress-ticket bound: max threads polling the NIC concurrently in
  /// mt mode (excess callers skip cheaply). 0 = unbounded (every idle
  /// worker polls, the pre-ticket behaviour). Parsed from a "pt<K>" token
  /// ("ptinf" = unbounded); overridable by AMTNET_LCI_PROGRESS_THREADS when
  /// the name leaves it unbounded.
  std::size_t lci_progress_threads = 0;

  /// LCI rendezvous-state shard count ("rs<N>"; rounded up to a power of
  /// two by minilci). 0 = the device default; rs1 reproduces the single
  /// global-table baseline for the progress ablation. Overridable by
  /// AMTNET_LCI_RDV_SHARDS when absent from the name.
  std::size_t lci_rdv_shards = 0;

  /// LCI small-parcel fast path (put-with-completion): parcels whose whole
  /// frame fits under a byte cap travel as ONE self-contained message and
  /// dispatch from a remote handler. -1 = unset in the name (the
  /// AMTNET_LCI_FASTPATH env decides, default on); "fpoff" = 0 (disabled),
  /// "fp" = 1 (on, capped at the eager threshold), "fp<N>" = N (on, capped
  /// at min(N, eager threshold) bytes).
  long lci_fastpath = -1;

  /// LCI adaptive aggregation: per-destination coalescing of fast-path-sized
  /// parcels into multi-parcel batch frames, activated only while the
  /// destination's admission window is backpressured. -1 = unset in the name
  /// (AMTNET_LCI_AGG decides, default off); "aggoff" = 0 (disabled);
  /// "agg<BYTES>" = batch-frame byte cap (capped at the eager threshold;
  /// values below the minimum frame overhead are rejected at parse).
  long lci_agg = -1;
  /// Age deadline in microseconds for a partially filled batch ("aggt<N>";
  /// AMTNET_LCI_AGG_AGE_US when absent; default 200 µs when aggregation is
  /// on). 0 disables the age trigger (size/idle flushes still apply).
  long lci_agg_age_us = -1;

  // MPI-parcelport ablation knobs (beyond Table 1):
  bool mpi_coarse_lock = true;  // "fine" clears it (lock-granularity ablation)
  bool mpi_original = false;    // "orig": pre-optimisation MPI parcelport
                                // (static 512B header, tag-release protocol)

  /// Send-path admission control, from shed<N> / block<N> / dl<N> tokens
  /// (N = per-destination bound). Applies to every backend.
  AdmissionConfig admission;

  /// Collective algorithm family, from a coll<ALGO> token: "central",
  /// "tree", "rd", or "ring" force that family where the op has a member
  /// of it (see amt::select_algorithm); "" = auto (payload size x locality
  /// count selection, the default — omitted from name()). Applies to every
  /// backend; AMTNET_COLL_ALGO overrides at runtime.
  std::string coll;

  /// Fabric transport backend, from a backendsim / backendshm token: "sim"
  /// (the simulated fabric, the default — omitted from name()) or "shm"
  /// (the real POSIX shared-memory fabric). Orthogonal to `kind`: every
  /// parcelport runs over either transport. AMTNET_BACKEND overrides.
  std::string fabric_backend = "sim";

  /// Parses a Table-1 style name. Unknown tokens throw std::invalid_argument.
  static ParcelportConfig parse(const std::string& name);
  /// Canonical Table-1 style name for this configuration.
  std::string name() const;
};

/// Everything a parcelport implementation receives from its hosting
/// locality.
struct ParcelportContext {
  fabric::Fabric* fabric = nullptr;
  Rank rank = 0;
  std::size_t zero_copy_threshold = kDefaultZeroCopyThreshold;
  unsigned num_workers = 1;
  ParcelportConfig config;
  /// Delivers a fully received HPX message to the runtime. Thread-safe;
  /// callable from any progress context.
  std::function<void(InMessage&&)> deliver;
  /// Parcels accepted for `dst` whose admission credits have not yet
  /// returned (DestQueue::outstanding) — the aggregator's backpressure
  /// signal. Exact even under AMTNET_TELEMETRY_DISABLED, but only
  /// maintained while admission control is on; reads 0 otherwise. Null when
  /// the hosting runtime provides no admission window at all.
  std::function<std::uint64_t(Rank dst)> queue_depth;
};

class Parcelport {
 public:
  virtual ~Parcelport() = default;

  virtual void start() {}
  virtual void stop() {}

  /// Transfers one serialized HPX message. `done` fires exactly once, when
  /// all of the message's buffers (including zero-copy keepalives) may be
  /// released; it may fire before send() returns.
  virtual void send(Rank dst, OutMessage msg,
                    common::UniqueFunction<void()> done) = 0;

  /// Invoked by idle worker threads (HPX background work). Returns whether
  /// any progress was made.
  virtual bool background_work(unsigned worker_index) = 0;
};

}  // namespace amt
